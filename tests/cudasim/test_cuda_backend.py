"""CUDA-flavoured execution model: warps, shuffles, block reductions."""

import numpy as np
import pytest

from repro.cudasim import (
    CudaItem,
    LaunchConfig,
    Stream,
    WARP_SIZE,
    a100_device,
    h100_device,
)
from repro.cudasim.thread import cuda_nd_range
from repro.kernels.blas1 import block_reduce_cuda, warp_reduce_sum
from repro.sycl.group import NDItem
from repro.sycl.ndrange import NDRange


class TestDeviceDescriptors:
    def test_a100_matches_table5(self):
        dev = a100_device()
        assert dev.num_sms == 108
        assert dev.slm_bytes_per_cu == 192 * 1024
        assert dev.sub_group_sizes == (32,)
        assert dev.warp_size == 32

    def test_h100_matches_table5(self):
        dev = h100_device()
        assert dev.num_sms == 114
        assert dev.slm_bytes_per_cu == 228 * 1024


class TestLaunchGeometry:
    def test_cuda_nd_range_shapes(self):
        nd = cuda_nd_range(4, 64)
        assert nd.global_size == 256
        assert nd.local_size == 64
        assert nd.sub_group_size == WARP_SIZE

    def test_block_dim_must_be_warp_multiple(self):
        with pytest.raises(ValueError, match="warp"):
            cuda_nd_range(1, 48)

    def test_launch_config_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 32)

    def test_cuda_item_requires_warp_width(self):
        item = NDItem(NDRange(16, 16, 16), 0)
        with pytest.raises(ValueError, match="warp width"):
            CudaItem(item)


class TestThreadIdentities:
    def test_thread_and_block_indices(self):
        stream = Stream(a100_device())
        out = np.zeros((4, 64))

        def kernel(cuda, shared, out):
            out[0, cuda.global_thread_id % 64] = cuda.thread_idx
            out[1, cuda.global_thread_id % 64] = cuda.block_idx
            out[2, cuda.global_thread_id % 64] = cuda.lane_id
            out[3, cuda.global_thread_id % 64] = cuda.warp_id

        stream.launch_kernel(LaunchConfig(1, 64), kernel, args=(out,))
        assert list(out[0]) == list(range(64))
        assert np.all(out[1] == 0.0)
        assert list(out[2]) == list(range(32)) + list(range(32))
        assert np.all(out[3, :32] == 0.0) and np.all(out[3, 32:] == 1.0)


class TestWarpReductions:
    def test_warp_reduce_sum_lane0(self):
        stream = Stream(a100_device())
        x = np.arange(32, dtype=np.float64)
        out = np.zeros(1)

        def kernel(cuda, shared, x, out):
            total = yield from warp_reduce_sum(cuda, float(x[cuda.thread_idx]))
            if cuda.lane_id == 0:
                out[0] = total

        stream.launch_kernel(LaunchConfig(1, 32), kernel, args=(x, out))
        assert out[0] == x.sum()

    def test_block_reduce_matches_numpy_multi_warp(self):
        stream = Stream(h100_device())
        rng = np.random.default_rng(3)
        x = rng.standard_normal(128)
        out = np.zeros(128)

        def kernel(cuda, shared, x, out):
            total = yield from block_reduce_cuda(
                cuda, shared, float(x[cuda.global_thread_id])
            )
            out[cuda.global_thread_id] = total

        from repro.sycl.memory import LocalSpec

        stream.launch_kernel(
            LaunchConfig(1, 128),
            kernel,
            args=(x, out),
            shared_specs=[LocalSpec("reduce_buf", (4,))],
        )
        assert np.allclose(out, x.sum())

    def test_block_reduce_is_per_block(self):
        stream = Stream(a100_device())
        x = np.ones(64)
        out = np.zeros(64)

        def kernel(cuda, shared, x, out):
            total = yield from block_reduce_cuda(
                cuda, shared, float(x[cuda.global_thread_id])
            )
            out[cuda.global_thread_id] = total

        from repro.sycl.memory import LocalSpec

        stream.launch_kernel(
            LaunchConfig(2, 32),
            kernel,
            args=(x, out),
            shared_specs=[LocalSpec("reduce_buf", (1,))],
        )
        assert np.all(out == 32.0)


class TestStreamBookkeeping:
    def test_stream_records_events(self):
        stream = Stream(a100_device())

        def kernel(cuda, shared):
            return None

        stream.launch_kernel(LaunchConfig(1, 32), kernel, name="noop")
        assert stream.num_launches == 1
        assert stream.events[0].name == "noop"
        assert stream.events[0].stats.sub_group_size == WARP_SIZE
