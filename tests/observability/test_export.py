"""Exporters: Chrome trace-event schema round-trip, JSONL, ASCII summary."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    Tracer,
    chrome_trace,
    chrome_trace_events,
    format_summary,
    summary_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.export import jsonl_records


def _populated_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("solve.cg", category="solver", solver="cg"):
        with tracer.span("batch_cg_fused", category="kernel") as kspan:
            kspan.set_args(
                num_groups=4096,
                work_group_size=64,
                sub_group_size=16,
                slm_bytes_per_group=2048,
            )
        tracer.counter("convergence.active_systems", active=8, converged=0)
        tracer.instant("solver.breakdown", system=3)
    tracer.metrics.counter("solver.solves").inc()
    tracer.metrics.histogram("solver.iterations_per_system").observe_many([10, 12])
    return tracer


class TestChromeTrace:
    def test_event_phases_and_metadata(self):
        tracer = _populated_tracer()
        events = chrome_trace_events(tracer, process_name="unit")
        phases = [e["ph"] for e in events]
        assert phases == ["M", "X", "X", "C", "i"]
        meta = events[0]
        assert meta["name"] == "process_name"
        assert meta["args"] == {"name": "unit"}

    def test_span_timestamps_are_relative_microseconds(self):
        tracer = _populated_tracer()
        spans = [e for e in chrome_trace_events(tracer) if e["ph"] == "X"]
        for span in spans:
            assert span["ts"] >= 0.0
            assert span["dur"] >= 0.0
        by_name = {s["name"]: s for s in spans}
        outer, inner = by_name["solve.cg"], by_name["batch_cg_fused"]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_instants_carry_scope(self):
        tracer = _populated_tracer()
        instant = next(e for e in chrome_trace_events(tracer) if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["args"] == {"system": 3}

    def test_top_level_object_includes_metrics_snapshot(self):
        payload = chrome_trace(_populated_tracer())
        assert payload["displayTimeUnit"] == "ms"
        metrics = payload["otherData"]["metrics"]
        assert metrics["solver.solves"]["value"] == 1.0
        assert metrics["solver.iterations_per_system"]["count"] == 2

    def test_args_are_json_serializable(self):
        import numpy as np

        tracer = Tracer()
        with tracer.span("s", category="kernel") as span:
            span.set_args(
                num_groups=np.int64(4),
                work_group_size=64,
                sub_group_size=16,
                slm_bytes_per_group=0,
                collectives={"group:reduce": np.int64(7)},
                device=object(),
            )
        text = json.dumps(chrome_trace(tracer))
        args = json.loads(text)["traceEvents"][1]["args"]
        assert args["num_groups"] == 4
        assert args["collectives"]["group:reduce"] == 7
        assert isinstance(args["device"], str)  # repr fallback


class TestRoundTrip:
    def test_write_then_validate(self, tmp_path):
        tracer = _populated_tracer()
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        counts = validate_chrome_trace(path)
        assert counts == {
            "events": 4,
            "spans": 2,
            "kernel_spans": 1,
            "counters": 1,
            "instants": 1,
        }

    def test_validate_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_chrome_trace(path)

    def test_validate_rejects_missing_trace_events(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"other": 1}))
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace(path)

    def test_validate_rejects_kernel_span_without_launch_args(self, tmp_path):
        tracer = Tracer()
        with tracer.span("bare_kernel", category="kernel"):
            tracer.counter("c", value=1)
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        with pytest.raises(ValueError, match="LaunchStats args"):
            validate_chrome_trace(path)

    def test_validate_requirements_can_be_relaxed(self, tmp_path):
        tracer = Tracer()
        with tracer.span("host_only", category="host"):
            pass
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        counts = validate_chrome_trace(
            path, require_kernel_spans=False, require_counters=False
        )
        assert counts["spans"] == 1 and counts["kernel_spans"] == 0
        with pytest.raises(ValueError, match="no kernel-launch spans"):
            validate_chrome_trace(path, require_counters=False)
        with pytest.raises(ValueError, match="no counter events"):
            validate_chrome_trace(path, require_kernel_spans=False)


class TestJsonl:
    def test_record_types_and_counts(self, tmp_path):
        tracer = _populated_tracer()
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_type: dict[str, int] = {}
        for record in records:
            by_type[record["type"]] = by_type.get(record["type"], 0) + 1
        assert by_type == {"span": 2, "counter": 1, "instant": 1, "metric": 2}

    def test_span_records_link_parents(self):
        records = jsonl_records(_populated_tracer())
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["batch_cg_fused"]["parent"] == "solve.cg"
        assert spans["solve.cg"]["parent"] is None
        assert spans["batch_cg_fused"]["dur_ns"] >= 0


class TestSummary:
    def test_rows_aggregate_per_category_and_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("launch", category="kernel"):
                pass
        with tracer.span("solve", category="solver"):
            pass
        rows = summary_rows(tracer)
        assert [(r["category"], r["span"], r["count"]) for r in rows] == [
            ("kernel", "launch", 3),
            ("solver", "solve", 1),
        ]
        launch = rows[0]
        assert launch["total_ms"] >= launch["mean_ms"] >= 0
        assert launch["max_ms"] <= launch["total_ms"]

    def test_format_summary_renders_tables(self):
        text = format_summary(_populated_tracer(), title="unit summary")
        assert "unit summary" in text
        assert "batch_cg_fused" in text
        assert "solver.solves" in text  # metrics table appended
