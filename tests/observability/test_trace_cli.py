"""`repro trace` exit-code propagation and trace-on-failure behaviour."""

import json

import pytest

from repro.__main__ import main as repro_main


class TestExitCodePropagation:
    def test_successful_command_returns_zero(self, tmp_path, capsys):
        out = tmp_path / "ok.json"
        code = repro_main(
            [
                "trace",
                "stencil",
                "--sizes",
                "16",
                "--nb-solve",
                "2",
                "--trace-out",
                str(out),
                "--no-summary",
            ]
        )
        assert code == 0
        assert out.exists()
        events = json.loads(out.read_text())["traceEvents"]
        assert events

    def test_argparse_error_propagates_nonzero(self, tmp_path, capsys):
        out = tmp_path / "fail.json"
        code = repro_main(
            [
                "trace",
                "stencil",
                "--sizes",
                "notanint",
                "--trace-out",
                str(out),
                "--no-summary",
            ]
        )
        assert code == 2  # argparse usage-error code, propagated not swallowed
        captured = capsys.readouterr()
        assert "exited 2" in captured.err

    def test_trace_written_even_when_wrapped_command_fails(self, tmp_path, capsys):
        out = tmp_path / "fail.json"
        code = repro_main(
            [
                "trace",
                "stencil",
                "--sizes",
                "notanint",
                "--trace-out",
                str(out),
                "--no-summary",
            ]
        )
        assert code != 0
        assert out.exists()  # the partial trace survives the failure
        json.loads(out.read_text())  # and is valid JSON

    def test_unknown_wrapped_command_propagates(self, tmp_path, capsys):
        out = tmp_path / "unknown.json"
        code = repro_main(
            ["trace", "no-such-command", "--trace-out", str(out), "--no-summary"]
        )
        assert code == 2
        assert out.exists()


class TestUsage:
    def test_trace_without_command_is_usage_error(self):
        with pytest.raises(SystemExit):
            repro_main(["trace"])

    def test_trace_of_trace_is_usage_error(self):
        with pytest.raises(SystemExit):
            repro_main(["trace", "trace", "stencil"])
