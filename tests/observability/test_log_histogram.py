"""LogHistogram, labelled instruments, and the Prometheus exposition."""

from __future__ import annotations

import math
import random

import pytest

from repro.observability import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    render_prometheus,
)


class TestLogHistogram:
    def test_exact_moments_approximate_quantiles(self):
        h = LogHistogram("t")
        samples = [1.0, 2.0, 3.0, 10.0, 100.0]
        h.observe_many(samples)
        # count/sum/min/max are tracked exactly, outside the buckets
        assert h.count == 5
        assert h.total == pytest.approx(sum(samples))
        assert h.min == 1.0
        assert h.max == 100.0
        assert h.mean == pytest.approx(sum(samples) / 5)

    def test_percentile_relative_error_bound(self):
        """Every quantile is within one growth step of the exact value."""
        rng = random.Random(42)
        samples = [rng.lognormvariate(1.0, 1.5) for _ in range(10_000)]
        h = LogHistogram("lat")
        h.observe_many(samples)
        ordered = sorted(samples)
        for p in (50.0, 90.0, 99.0):
            exact = ordered[math.ceil(p / 100.0 * len(ordered)) - 1]
            estimate = h.percentile(p)
            rel = abs(estimate - exact) / exact
            assert rel < h.growth - 1.0, f"p{p}: {estimate} vs {exact}"

    def test_percentile_clamped_to_observed_range(self):
        h = LogHistogram("t")
        h.observe(5.0)
        assert h.percentile(0.0) == 5.0
        assert h.percentile(100.0) <= h.max
        assert h.percentile(50.0) >= h.min

    def test_empty_and_invalid(self):
        h = LogHistogram("t")
        assert math.isnan(h.percentile(50.0))
        with pytest.raises(ValueError):
            h.percentile(101.0)
        with pytest.raises(ValueError):
            LogHistogram("bad", growth=1.0)

    def test_zero_and_negative_land_in_zero_bucket(self):
        h = LogHistogram("t")
        h.observe_many([0.0, -1.0, 4.0])
        assert h.count == 3
        bounds = h.bucket_bounds()
        assert bounds[0] == (0.0, 2)  # two non-positive samples

    def test_merge_matches_single_stream(self):
        rng = random.Random(7)
        a_samples = [rng.uniform(0.1, 50.0) for _ in range(500)]
        b_samples = [rng.uniform(0.1, 50.0) for _ in range(500)]
        a = LogHistogram("a")
        b = LogHistogram("b")
        whole = LogHistogram("whole")
        a.observe_many(a_samples)
        b.observe_many(b_samples)
        whole.observe_many(a_samples + b_samples)
        a.merge(b)
        assert a.count == whole.count
        assert a.total == pytest.approx(whole.total)
        assert a.min == whole.min and a.max == whole.max
        for p in (50.0, 90.0, 99.0):
            assert a.percentile(p) == pytest.approx(whole.percentile(p))

    def test_merge_growth_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram("a").merge(LogHistogram("b", growth=2.0))

    def test_bucket_bounds_cumulative(self):
        h = LogHistogram("t", growth=2.0)
        h.observe_many([1.5, 3.0, 3.5, 100.0])
        bounds = h.bucket_bounds()
        # cumulative counts are monotone and end at the full count
        counts = [c for _, c in bounds]
        assert counts == sorted(counts)
        assert counts[-1] == h.count
        uppers = [u for u, _ in bounds]
        assert uppers == sorted(uppers)


class TestLabels:
    def test_counter_labels_children(self):
        registry = MetricsRegistry()
        flushes = registry.counter("serve.flushes")
        flushes.labels(backend="sycl").inc()
        flushes.labels(backend="sycl").inc()
        flushes.labels(backend="cuda").inc()
        sycl = flushes.labels(backend="sycl")
        assert sycl.value == 2
        assert sycl.name == 'serve.flushes{backend="sycl"}'
        # children are stable objects, keyed by sorted label set
        assert flushes.labels(backend="sycl") is sycl
        names = [m.name for m in registry.instruments()]
        assert "serve.flushes" in names
        assert 'serve.flushes{backend="cuda"}' in names

    def test_label_key_order_canonical(self):
        counter = Counter("c")
        a = counter.labels(x="1", y="2")
        b = counter.labels(y="2", x="1")
        assert a is b

    def test_labels_require_at_least_one(self):
        with pytest.raises(ValueError):
            Gauge("g").labels()


class TestPrometheusRender:
    def test_all_four_families(self):
        registry = MetricsRegistry()
        registry.counter("solve.count").inc(3)
        registry.gauge("queue.depth").set(7.0)
        registry.histogram("exact_ms").observe_many([1.0, 2.0, 3.0])
        registry.log_histogram("hdr_ms").observe_many([1.0, 2.0, 4.0])
        text = render_prometheus(registry)
        assert "# TYPE solve_count counter" in text
        assert "solve_count 3.0" in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 7.0" in text
        assert "# TYPE exact_ms summary" in text
        assert 'exact_ms{quantile="0.5"}' in text
        assert "exact_ms_sum 6.0" in text
        assert "exact_ms_count 3.0" in text
        assert "# TYPE hdr_ms histogram" in text
        assert 'hdr_ms_bucket{le="+Inf"} 3.0' in text
        assert "hdr_ms_count 3.0" in text

    def test_labelled_children_render_as_family_samples(self):
        registry = MetricsRegistry()
        flushes = registry.counter("serve.flushes")
        flushes.labels(backend="sycl", solver="cg").inc(5)
        text = render_prometheus(registry)
        assert '# TYPE serve_flushes counter' in text
        assert 'serve_flushes{backend="sycl",solver="cg"} 5.0' in text
        # only one TYPE header per family
        assert text.count("# TYPE serve_flushes counter") == 1

    def test_nan_gauge_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("unset")
        text = render_prometheus(registry)
        assert "# TYPE unset gauge" in text
        assert "\nunset " not in text

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("serve.latency-ms.p99").inc()
        text = render_prometheus(registry)
        assert "serve_latency_ms_p99 1.0" in text

    def test_log_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        h = registry.log_histogram("lat")
        h.observe_many([1.0, 2.0, 4.0, 8.0])
        text = render_prometheus(registry)
        bucket_lines = [
            line for line in text.splitlines() if line.startswith("lat_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 4.0
