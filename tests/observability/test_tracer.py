"""Tracer core: span nesting/ordering, thread safety, the no-op path."""

from __future__ import annotations

import threading

import pytest

from repro.observability import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    traced,
    use_tracer,
)


class TestSpans:
    def test_span_records_duration_and_args(self):
        tracer = Tracer()
        with tracer.span("work", category="test", size=4) as span:
            span.set("extra", "yes")
        assert len(tracer.spans) == 1
        recorded = tracer.spans[0]
        assert recorded.name == "work"
        assert recorded.category == "test"
        assert recorded.args == {"size": 4, "extra": "yes"}
        assert recorded.end_ns >= recorded.start_ns
        assert recorded.duration_ns == recorded.end_ns - recorded.start_ns
        assert recorded.duration_seconds == pytest.approx(recorded.duration_ns * 1e-9)

    def test_nesting_sets_parent_and_finish_order(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        # children finish (and are recorded) before their parents
        assert [s.name for s in tracer.spans] == ["inner", "middle", "outer"]
        assert inner.parent is middle
        assert middle.parent is outer
        assert outer.parent is None
        # parents open before and close after their children
        assert outer.start_ns <= middle.start_ns <= inner.start_ns
        assert outer.end_ns >= middle.end_ns >= inner.end_ns

    def test_current_span_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("a") as a:
            assert tracer.current_span() is a
            with tracer.span("b") as b:
                assert tracer.current_span() is b
            assert tracer.current_span() is a
        assert tracer.current_span() is None

    def test_annotate_decorates_innermost_open_span(self):
        tracer = Tracer()
        tracer.annotate(ignored=True)  # no open span: silently dropped
        with tracer.span("target"):
            tracer.annotate(sub_group_size=16)
        assert tracer.spans[0].args["sub_group_size"] == 16
        assert "ignored" not in tracer.spans[0].args

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].args["error"] == "RuntimeError"
        assert tracer.current_span() is None

    def test_instant_and_counter_events(self):
        tracer = Tracer()
        tracer.instant("marker", detail="x")
        tracer.counter("active", value=3)
        kinds = [(e.kind, e.name) for e in tracer.events]
        assert kinds == [("instant", "marker"), ("counter", "active")]
        assert tracer.events[1].args == {"value": 3.0}

    def test_span_event_lands_on_span_lane(self):
        tracer = Tracer()
        with tracer.span("host", tid=42) as span:
            span.event("milestone", step=1)
        assert tracer.events[0].tid == 42

    def test_reset_drops_finished_records(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.instant("i")
        assert tracer.num_records == 2
        tracer.reset()
        assert tracer.num_records == 0


class TestDecorator:
    def test_tracer_bound_decorator(self):
        tracer = Tracer()

        @tracer.trace(category="fn")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert tracer.spans[0].name.endswith("add")
        assert tracer.spans[0].category == "fn"

    def test_module_level_traced_uses_installed_tracer(self):
        calls = []

        @traced("labelled", category="fn")
        def work():
            calls.append(1)
            return 7

        assert work() == 7  # no tracer installed: plain call
        tracer = Tracer()
        with use_tracer(tracer):
            assert work() == 7
        assert len(calls) == 2
        assert [s.name for s in tracer.spans] == ["labelled"]


class TestInstallation:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_none_keeps_current(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with use_tracer(None):
                assert current_tracer() is tracer
            assert current_tracer() is tracer

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert current_tracer() is tracer
        finally:
            set_tracer(previous)
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_noop_span_is_shared_singleton(self):
        null = NullTracer()
        s1 = null.span("a", category="kernel", big_arg=list(range(10)))
        s2 = null.span("b")
        assert s1 is s2  # no allocation on the disabled path
        with s1 as inside:
            inside.set("k", "v").set_args(x=1)
            inside.event("e")
        assert null.spans == [] and null.events == []

    def test_noop_instant_counter_annotate(self):
        null = NULL_TRACER
        null.instant("x")
        null.counter("c", value=1)
        null.annotate(k=2)
        assert null.spans == [] and null.events == []
        assert null.current_span() is None
        assert not null.enabled

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("s"):
            tracer.instant("i")
            tracer.counter("c", v=1)
        assert tracer.spans == [] and tracer.events == []


class TestThreadSafety:
    def test_concurrent_span_stacks_are_independent(self):
        tracer = Tracer()
        errors: list[str] = []
        # keep all workers alive together: thread idents (and so tracer
        # lanes) are only distinct for concurrently-running threads
        gate = threading.Barrier(4)

        def worker(label: str) -> None:
            try:
                gate.wait(timeout=10)
                for i in range(50):
                    with tracer.span(f"{label}.outer{i}") as outer:
                        with tracer.span(f"{label}.inner{i}") as inner:
                            if inner.parent is not outer:
                                errors.append(f"{label}: wrong parent at {i}")
                        if tracer.current_span() is not outer:
                            errors.append(f"{label}: stack corrupted at {i}")
                    tracer.counter(f"{label}.count", i=i)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(f"t{k}",)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(tracer.spans) == 4 * 50 * 2
        assert len(tracer.events) == 4 * 50
        # each thread got its own export lane
        lanes = {s.tid for s in tracer.spans}
        assert len(lanes) == 4
