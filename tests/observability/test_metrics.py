"""Metrics registry: counter/gauge/histogram math and percentile summaries."""

from __future__ import annotations

import math
import threading

import pytest

from repro.observability import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        c = Counter("launches")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.summary() == {"value": 3.5}

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("c").inc(-1)

    def test_thread_safe_increments(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_keeps_latest(self):
        g = Gauge("modeled_ms")
        assert math.isnan(g.value)
        g.set(4.2)
        g.set(1.0)
        assert g.value == 1.0


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("iters")
        h.observe_many([4, 2, 8, 6])
        assert h.count == 4
        assert h.total == 20
        assert h.mean == 5.0
        assert h.min == 2 and h.max == 8

    def test_percentiles_nearest_rank(self):
        h = Histogram("h")
        h.observe_many(range(1, 101))  # 1..100
        assert h.percentile(0) == 1
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100

    def test_percentile_single_value_and_empty(self):
        h = Histogram("h")
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        h.observe(7.0)
        assert h.percentile(1) == 7.0
        assert h.percentile(99) == 7.0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError, match="percentile"):
            Histogram("h").percentile(101)

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe_many([1.0, 2.0, 3.0])
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["p50"] == 2.0
        assert set(summary) == {"count", "mean", "min", "p50", "p90", "p99", "max"}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 2
        assert "a" in reg and "missing" not in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_and_rows(self):
        reg = MetricsRegistry()
        reg.counter("launches").inc(3)
        reg.gauge("modeled_ms").set(1.5)
        reg.histogram("iters").observe_many([1, 3])
        snap = reg.snapshot()
        assert snap["launches"] == {"kind": "counter", "value": 3.0}
        assert snap["modeled_ms"]["value"] == 1.5
        assert snap["iters"]["count"] == 2
        rows = reg.rows()
        assert [r["metric"] for r in rows] == ["iters", "launches", "modeled_ms"]
        assert all(
            set(r) == {"metric", "kind", "count", "value", "p50", "p99", "max"}
            for r in rows
        )
