"""End-to-end tracing through the solver, simulator, hw and multi layers."""

from __future__ import annotations

import pytest

from repro.core.dispatch import BatchSolverFactory, dispatch_solve
from repro.hw.specs import gpu
from repro.hw.timing import estimate_solve
from repro.kernels import run_batch_cg_on_device
from repro.multi.comm import SimWorld
from repro.multi.distributed import solve_distributed
from repro.observability import Tracer, use_tracer, validate_chrome_trace, write_chrome_trace
from repro.sycl.device import pvc_stack_device
from repro.sycl.queue import Queue

_LAUNCH_ARG_KEYS = {
    "num_groups",
    "work_group_size",
    "sub_group_size",
    "slm_bytes_per_group",
}


class TestSolverPath:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab"])
    def test_one_fused_kernel_span_per_solve(self, solver, stencil16, stencil16_rhs):
        tracer = Tracer()
        result = dispatch_solve(
            stencil16, stencil16_rhs, solver=solver, tolerance=1e-10, tracer=tracer
        )
        assert result.converged.all()
        kernel_spans = [s for s in tracer.spans if s.category == "kernel"]
        assert len(kernel_spans) == 1  # Sec 3.4: the whole solve is one launch
        kspan = kernel_spans[0]
        assert kspan.name == f"batch_{solver}_fused"
        assert _LAUNCH_ARG_KEYS <= set(kspan.args)
        assert kspan.args["iterations"] == int(result.iterations.max())
        # the kernel span nests inside the solve span, which nests inside
        # the dispatch span
        assert kspan.parent is not None and kspan.parent.name == f"solve.{solver}"
        assert kspan.parent.parent.name == "dispatch.solve"

    def test_dispatch_span_carries_resolved_tuple(self, stencil16, stencil16_rhs):
        tracer = Tracer()
        dispatch_solve(
            stencil16,
            stencil16_rhs,
            solver="cg",
            preconditioner="jacobi",
            tracer=tracer,
        )
        dspan = next(s for s in tracer.spans if s.name == "dispatch.solve")
        assert dspan.args["solver"] == "cg"
        assert dspan.args["preconditioner"] == "jacobi"
        assert dspan.args["matrix_format"] == "csr"
        assert dspan.args["precision"] == "double"
        key = "dispatch.cg.csr.double"
        assert tracer.metrics.counter(key).value == 1

    def test_per_iteration_convergence_counters(self, stencil16, stencil16_rhs):
        tracer = Tracer()
        result = dispatch_solve(
            stencil16, stencil16_rhs, solver="cg", tolerance=1e-10, tracer=tracer
        )
        active = [e for e in tracer.events if e.name == "convergence.active_systems"]
        residual = [e for e in tracer.events if e.name == "convergence.worst_residual"]
        iterations = int(result.iterations.max())
        # one sample at start plus one per iteration, for both tracks
        assert len(active) == iterations + 1
        assert len(residual) == iterations + 1
        assert active[0].args["active"] == stencil16.num_batch
        assert active[-1].args["converged"] == stencil16.num_batch
        # the residual track decreases overall and samples are time-ordered
        assert residual[-1].args["residual"] < residual[0].args["residual"]
        ts = [e.ts_ns for e in active]
        assert ts == sorted(ts)
        per_system = tracer.metrics.histogram("solver.iterations_per_system")
        assert per_system.count == stencil16.num_batch

    def test_factory_tracer_and_explicit_solve_tracer_agree(
        self, stencil16, stencil16_rhs
    ):
        via_factory = Tracer()
        BatchSolverFactory(solver="cg", tolerance=1e-10, tracer=via_factory).solve(
            stencil16, stencil16_rhs
        )
        via_solve = Tracer()
        factory = BatchSolverFactory(solver="cg", tolerance=1e-10)
        factory.create(stencil16).solve(stencil16_rhs, tracer=via_solve)
        names = lambda t: sorted(s.name for s in t.spans if s.category == "kernel")
        assert names(via_factory) == names(via_solve) == ["batch_cg_fused"]

    def test_no_tracer_leaves_null_tracer_installed(self, stencil16, stencil16_rhs):
        from repro.observability import NULL_TRACER, current_tracer

        result = dispatch_solve(stencil16, stencil16_rhs, solver="cg")  # untraced
        assert result.converged.all()
        assert current_tracer() is NULL_TRACER
        assert NULL_TRACER.num_records == 0


class TestSimulatorPath:
    def test_queue_launch_span_matches_launch_stats(self, stencil16, stencil16_rhs):
        device = pvc_stack_device(1)
        queue = Queue(device)
        tracer = Tracer()
        with use_tracer(tracer):
            _, _, event = run_batch_cg_on_device(
                device, stencil16, stencil16_rhs, tolerance=1e-10, queue=queue
            )
        kernel_spans = [s for s in tracer.spans if s.category == "kernel"]
        assert len(kernel_spans) == 1
        span = kernel_spans[0]
        assert span.args["num_groups"] == event.stats.num_groups
        assert span.args["work_group_size"] == event.stats.local_size
        assert span.args["sub_group_size"] == event.stats.sub_group_size
        assert span.args["slm_bytes_per_group"] == event.stats.slm_bytes_per_group
        assert span.args["collectives"] == dict(event.stats.collective_counts)
        assert tracer.metrics.counter("sycl.launches").value == 1
        assert (
            tracer.metrics.counter("sycl.work_groups").value == event.stats.num_groups
        )

    def test_event_duration_ns_is_integer_nanoseconds(self, stencil16, stencil16_rhs):
        device = pvc_stack_device(1)
        queue = Queue(device)
        _, _, event = run_batch_cg_on_device(
            device, stencil16, stencil16_rhs, tolerance=1e-10, queue=queue
        )
        assert isinstance(event.duration_ns, int)
        assert event.duration_ns == event.end_ns - event.start_ns
        assert event.submit_ns <= event.start_ns <= event.end_ns
        assert event.duration_seconds == pytest.approx(event.duration_ns * 1e-9)

    def test_reset_events_clears_the_submission_log(self, stencil16, stencil16_rhs):
        device = pvc_stack_device(1)
        queue = Queue(device)
        run_batch_cg_on_device(
            device, stencil16, stencil16_rhs, tolerance=1e-10, queue=queue
        )
        assert queue.num_launches == 1
        queue.reset_events()
        assert queue.num_launches == 0
        assert queue.events == []


class TestHwPath:
    def test_estimate_solve_emits_modeled_time(self, stencil16, stencil16_rhs):
        factory = BatchSolverFactory(solver="cg", tolerance=1e-10)
        solver = factory.create(stencil16)
        result = solver.solve(stencil16_rhs)
        tracer = Tracer()
        with use_tracer(tracer):
            timing = estimate_solve(gpu("pvc1"), solver, result)
        span = next(s for s in tracer.spans if s.name == "hw.estimate_solve")
        assert span.args["platform"] == "pvc1"
        assert span.args["modeled_total_s"] == pytest.approx(timing.total_seconds)
        instant = next(
            e for e in tracer.events if e.name == "hw.modeled_device_time"
        )
        assert instant.args["total_ms"] == pytest.approx(timing.total_seconds * 1e3)
        assert tracer.metrics.gauge("hw.modeled_ms.pvc1").value == pytest.approx(
            timing.total_seconds * 1e3
        )


class TestMultiPath:
    def test_lane_spans_one_per_rank(self, stencil16, stencil16_rhs):
        world = SimWorld(2)
        factory = BatchSolverFactory(solver="cg", tolerance=1e-10)
        tracer = Tracer()
        with use_tracer(tracer):
            result = solve_distributed(world, factory, stencil16, stencil16_rhs)
        assert result.all_converged
        lanes = [s for s in tracer.spans if s.category == "multi.lane"]
        assert sorted(s.tid for s in lanes) == [100, 101]
        assert sorted(s.name for s in lanes) == ["rank0.solve", "rank1.solve"]
        assert sum(s.args["batch_items"] for s in lanes) == stencil16.num_batch
        top = next(s for s in tracer.spans if s.name == "multi.solve_distributed")
        assert top.args["comm_bytes"] == result.comm_bytes > 0
        # every rank runs the full dispatch stack: one fused kernel each
        kernel_spans = [s for s in tracer.spans if s.category == "kernel"]
        assert len(kernel_spans) == world.size


class TestExportedSolveTrace:
    def test_real_solve_round_trips_through_the_validator(
        self, tmp_path, stencil16, stencil16_rhs
    ):
        tracer = Tracer()
        dispatch_solve(
            stencil16, stencil16_rhs, solver="bicgstab", tolerance=1e-10, tracer=tracer
        )
        path = write_chrome_trace(tracer, tmp_path / "solve.json")
        counts = validate_chrome_trace(path)
        assert counts["kernel_spans"] == 1
        assert counts["counters"] > 0
