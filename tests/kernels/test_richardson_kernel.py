"""The fused Richardson kernel vs the vectorized BatchRichardson."""

import numpy as np
import pytest

from repro.core import BatchJacobi, BatchRichardson, SolverSettings
from repro.core.stop import RelativeResidual
from repro.kernels import run_batch_richardson_on_device
from repro.sycl.device import pvc_stack_device
from repro.sycl.queue import Queue
from repro.workloads.general import random_diag_dominant_batch


@pytest.fixture
def problem():
    matrix = random_diag_dominant_batch(3, 10, seed=8)
    b = np.random.default_rng(0).standard_normal((3, 10))
    return matrix, b, 1.0 / matrix.diagonal()


class TestFusedRichardson:
    def test_matches_vectorized_exactly(self, problem):
        matrix, b, inv_diag = problem
        device = pvc_stack_device(1)
        x, iters, _ = run_batch_richardson_on_device(
            device, matrix, b, inv_diag=inv_diag, tolerance=1e-9
        )
        ref = BatchRichardson(
            matrix,
            BatchJacobi(matrix),
            settings=SolverSettings(
                max_iterations=1000, criterion=RelativeResidual(1e-9)
            ),
        ).solve(b)
        assert np.array_equal(iters, ref.iterations)
        assert np.allclose(x, ref.x, atol=1e-12)

    def test_relaxation_factor(self, problem):
        matrix, b, inv_diag = problem
        device = pvc_stack_device(1)
        x_full, iters_full, _ = run_batch_richardson_on_device(
            device, matrix, b, inv_diag=inv_diag, omega=1.0
        )
        x_half, iters_half, _ = run_batch_richardson_on_device(
            device, matrix, b, inv_diag=inv_diag, omega=0.5
        )
        # under-relaxation converges but needs more iterations here
        assert np.all(iters_half >= iters_full)
        res = np.linalg.norm(b - matrix.apply(x_half), axis=1)
        assert np.all(res <= 1e-10 * np.linalg.norm(b, axis=1) * 10)

    def test_single_fused_launch_with_slm_budget(self, problem):
        matrix, b, inv_diag = problem
        queue = Queue(pvc_stack_device(1))
        _, _, event = run_batch_richardson_on_device(
            pvc_stack_device(1), matrix, b, inv_diag=inv_diag, queue=queue
        )
        assert queue.num_launches == 1
        # four staged vectors of 10 doubles
        assert event.stats.slm_bytes_per_group == 4 * 10 * 8

    def test_unpreconditioned_diverges_honestly(self):
        # without M, these diagonally dominant systems have rho(I - A) > 1
        matrix = random_diag_dominant_batch(2, 8, seed=2)
        b = np.ones((2, 8))
        x, iters, _ = run_batch_richardson_on_device(
            pvc_stack_device(1), matrix, b, max_iterations=30
        )
        assert np.all(iters == 30)  # never satisfied the criterion
