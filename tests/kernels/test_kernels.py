"""Work-item-level kernels vs the vectorized production solvers."""

import numpy as np
import pytest

from repro.core import BatchBicgstab, BatchCg, BatchJacobi, SolverSettings
from repro.core.stop import RelativeResidual
from repro.kernels import run_batch_bicgstab_on_device, run_batch_cg_on_device
from repro.kernels.blas1 import group_dot, sub_group_dot
from repro.kernels.spmv import (
    spmv_csr_item_rows,
    spmv_csr_subgroup_rows,
    spmv_ell_item_rows,
)
from repro.core.matrix import BatchEll
from repro.cudasim.device import a100_device
from repro.sycl.device import cpu_device, pvc_stack_device
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue
from repro.workloads.general import random_diag_dominant_batch
from repro.workloads.stencil import stencil_rhs, three_point_stencil


@pytest.fixture
def queue():
    return Queue(cpu_device())


class TestReductionSubroutines:
    def test_group_dot_matches_numpy(self, queue, rng):
        a = rng.standard_normal(12)
        b = rng.standard_normal(12)
        out = np.zeros(1)

        def kernel(item, slm, a, b, out):
            total = yield from group_dot(item, a, b, 12)
            if item.local_id == 0:
                out[0] = total

        queue.parallel_for(NDRange(16, 16, 8), kernel, args=(a, b, out))
        assert np.allclose(out[0], a @ b)

    def test_sub_group_dot_every_sub_group_gets_full_result(self, queue, rng):
        a = rng.standard_normal(8)
        out = np.zeros(16)

        def kernel(item, slm, a, out):
            total = yield from sub_group_dot(item, a, a, 8)
            out[item.global_id] = total

        queue.parallel_for(NDRange(16, 16, 8), kernel, args=(a, out))
        assert np.allclose(out, a @ a)


class TestSpmvKernels:
    @pytest.fixture
    def problem(self):
        matrix = random_diag_dominant_batch(2, 10, density=0.4, seed=6)
        x = np.random.default_rng(1).standard_normal(10)
        expected = matrix.item_scipy(0) @ x
        return matrix, x, expected

    def test_item_rows_matches_scipy(self, queue, problem):
        matrix, x, expected = problem
        y = np.zeros(10)

        def kernel(item, slm, m_vals, x, y):
            yield from spmv_csr_item_rows(
                item, matrix.row_ptrs, matrix.col_idxs, m_vals, x, y, 10
            )

        queue.parallel_for(NDRange(8, 8, 4), kernel, args=(matrix.values[0], x, y))
        assert np.allclose(y, expected)

    def test_subgroup_rows_matches_scipy(self, queue, problem):
        matrix, x, expected = problem
        y = np.zeros(10)

        def kernel(item, slm, m_vals, x, y):
            yield from spmv_csr_subgroup_rows(
                item, matrix.row_ptrs, matrix.col_idxs, m_vals, x, y, 10
            )

        # 3 sub-groups of 4: 10 rows do not divide evenly — exercises the
        # uneven sub-group trip counts
        queue.parallel_for(NDRange(12, 12, 4), kernel, args=(matrix.values[0], x, y))
        assert np.allclose(y, expected)

    def test_ell_item_rows_matches_scipy(self, queue, problem):
        matrix, x, expected = problem
        ell = BatchEll.from_batch_csr(matrix)
        y = np.zeros(10)

        def kernel(item, slm, vals, x, y):
            yield from spmv_ell_item_rows(
                item, ell.col_idxs, vals, x, y, 10, ell.ell_width
            )

        queue.parallel_for(NDRange(8, 8, 4), kernel, args=(ell.values[0], x, y))
        assert np.allclose(y, expected)


class TestFusedCgKernel:
    def test_matches_vectorized_solver(self):
        matrix = three_point_stencil(16, 3)
        b = stencil_rhs(16, 3)
        device = pvc_stack_device(1)
        x, iters, event = run_batch_cg_on_device(device, matrix, b, tolerance=1e-10)
        ref = BatchCg(
            matrix,
            settings=SolverSettings(
                max_iterations=200, criterion=RelativeResidual(1e-10)
            ),
        ).solve(b)
        assert np.allclose(x, ref.x, atol=1e-10)
        assert np.array_equal(iters, ref.iterations)

    def test_subgroup_spmv_variant_agrees(self):
        matrix = three_point_stencil(16, 2)
        b = stencil_rhs(16, 2)
        device = pvc_stack_device(1)
        x1, _, _ = run_batch_cg_on_device(device, matrix, b, use_subgroup_spmv=False)
        x2, _, _ = run_batch_cg_on_device(device, matrix, b, use_subgroup_spmv=True)
        assert np.allclose(x1, x2, atol=1e-9)

    def test_jacobi_preconditioned(self):
        matrix = random_diag_dominant_batch(2, 12, seed=9)
        # symmetrize for CG
        dense = matrix.to_batch_dense()
        dense = 0.5 * (dense + dense.transpose(0, 2, 1))
        from repro.core.matrix import BatchCsr

        spd = BatchCsr.from_dense(dense)
        b = np.ones((2, 12))
        inv_diag = 1.0 / spd.diagonal()
        device = pvc_stack_device(1)
        x, iters, _ = run_batch_cg_on_device(device, spd, b, inv_diag=inv_diag)
        res = np.linalg.norm(b - spd.apply(x), axis=1) / np.linalg.norm(b, axis=1)
        assert np.max(res) < 1e-9

    def test_single_fused_launch(self):
        matrix = three_point_stencil(8, 2)
        b = stencil_rhs(8, 2)
        queue = Queue(pvc_stack_device(1))
        run_batch_cg_on_device(pvc_stack_device(1), matrix, b, queue=queue)
        # Section 3.4: the whole batch solve is exactly one kernel launch
        assert queue.num_launches == 1


class TestFusedBicgstabKernel:
    @pytest.fixture
    def problem(self):
        matrix = random_diag_dominant_batch(2, 12, density=0.4, seed=3)
        b = np.random.default_rng(0).standard_normal((2, 12))
        return matrix, b, 1.0 / matrix.diagonal()

    @pytest.mark.parametrize("style,device_fn", [
        ("group", lambda: pvc_stack_device(1)),
        ("cuda", a100_device),
    ])
    def test_solves_to_tolerance(self, problem, style, device_fn):
        matrix, b, inv_diag = problem
        x, iters, _ = run_batch_bicgstab_on_device(
            device_fn(), matrix, b, inv_diag=inv_diag, reduce_style=style
        )
        res = np.linalg.norm(b - matrix.apply(x), axis=1) / np.linalg.norm(b, axis=1)
        assert np.max(res) < 1e-9

    def test_all_reduction_styles_agree(self, problem):
        matrix, b, inv_diag = problem
        device = pvc_stack_device(1)
        results = {}
        for style, dev in [
            ("group", device),
            ("sub_group", device),
            ("cuda", a100_device()),
        ]:
            x, iters, _ = run_batch_bicgstab_on_device(
                dev, matrix, b, inv_diag=inv_diag, reduce_style=style
            )
            results[style] = (x, iters)
        # Section 3.2: backends differ only in reduction mechanism — the
        # numerics must agree
        for style in ("sub_group", "cuda"):
            assert np.allclose(results["group"][0], results[style][0], atol=1e-9)
            assert np.array_equal(results["group"][1], results[style][1])

    def test_matches_vectorized_iterations(self, problem):
        matrix, b, inv_diag = problem
        x, iters, _ = run_batch_bicgstab_on_device(
            pvc_stack_device(1), matrix, b, inv_diag=inv_diag, tolerance=1e-10
        )
        from repro.core import BatchJacobi

        ref = BatchBicgstab(
            matrix,
            BatchJacobi(matrix),
            settings=SolverSettings(
                max_iterations=200, criterion=RelativeResidual(1e-10)
            ),
        ).solve(b)
        res_kernel = np.linalg.norm(b - matrix.apply(x), axis=1)
        res_ref = np.linalg.norm(b - matrix.apply(ref.x), axis=1)
        # same algorithm, same preconditioner: comparable accuracy
        assert np.max(res_kernel) < 10 * max(np.max(res_ref), 1e-12)

    def test_invalid_style_rejected(self, problem):
        matrix, b, inv_diag = problem
        with pytest.raises(ValueError, match="reduce_style"):
            run_batch_bicgstab_on_device(
                pvc_stack_device(1), matrix, b, reduce_style="magic"
            )
