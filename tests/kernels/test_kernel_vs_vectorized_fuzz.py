"""Property test: the fused simulator kernels match the vectorized solvers.

The deep cross-validation of the two execution paths (README: "two
execution paths, one algorithm"): for random well-conditioned batches,
the work-item CG/BiCGSTAB kernels on the SYCL simulator must reproduce
the vectorized solvers' iteration counts and solutions.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import BatchCg, SolverSettings
from repro.core.stop import RelativeResidual
from repro.kernels import run_batch_bicgstab_on_device, run_batch_cg_on_device
from repro.sycl.device import pvc_stack_device
from repro.workloads.general import random_diag_dominant_batch, random_spd_batch

_DEVICE = pvc_stack_device(1)


@settings(max_examples=8, deadline=None)
@given(nb=st.integers(1, 3), n=st.integers(3, 12), seed=st.integers(0, 200))
def test_fused_cg_matches_vectorized(nb, n, seed):
    matrix = random_spd_batch(nb, n, density=0.5, seed=seed)
    rng = np.random.default_rng(seed + 7)
    b = rng.standard_normal((nb, n))

    x_kernel, iters_kernel, _ = run_batch_cg_on_device(
        _DEVICE, matrix, b, tolerance=1e-10, max_iterations=300
    )
    ref = BatchCg(
        matrix,
        settings=SolverSettings(max_iterations=300, criterion=RelativeResidual(1e-10)),
    ).solve(b)

    assert np.array_equal(iters_kernel, ref.iterations)
    assert np.allclose(x_kernel, ref.x, atol=1e-8)


@settings(max_examples=8, deadline=None)
@given(nb=st.integers(1, 3), n=st.integers(3, 12), seed=st.integers(0, 200))
def test_fused_bicgstab_reaches_tolerance(nb, n, seed):
    matrix = random_diag_dominant_batch(nb, n, density=0.5, seed=seed)
    rng = np.random.default_rng(seed + 7)
    b = rng.standard_normal((nb, n))
    inv_diag = 1.0 / matrix.diagonal()

    x_kernel, _, _ = run_batch_bicgstab_on_device(
        _DEVICE, matrix, b, inv_diag=inv_diag, tolerance=1e-9, max_iterations=300
    )
    res = np.linalg.norm(b - matrix.apply(x_kernel), axis=1)
    assert np.all(res <= 1e-9 * np.linalg.norm(b, axis=1) * 1.01)
