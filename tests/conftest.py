"""Shared fixtures: small, well-conditioned batched systems and devices.

Setting ``SANITIZE=1`` in the environment runs every test under an
installed kernel sanitizer (see :mod:`repro.sanitize`), so any simulated
kernel launch the suite performs is checked for races, barrier divergence,
uninitialized/out-of-bounds SLM and collective misuse. Tests that
deliberately execute buggy kernels opt out with ``@pytest.mark.no_sanitize``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.matrix import BatchCsr
from repro.sycl.device import cpu_device, pvc_stack_device
from repro.workloads.general import random_diag_dominant_batch, random_spd_batch
from repro.workloads.stencil import stencil_rhs, three_point_stencil


#: Test directories whose suites form the serving-stack tier-1 gate; the
#: coverage floor (scripts/coverage_gate.py) runs exactly `-m tier1`.
TIER1_DIRS = (
    "tests/serve",
    "tests/fleet",
    "tests/chaos",
    "tests/telemetry",
    "tests/recorder",
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_sanitize: never install the SANITIZE=1 suite-wide sanitizer "
        "for this test (it runs deliberately invalid kernels)",
    )
    config.addinivalue_line(
        "markers",
        "tier1: serving-stack gate tests (auto-applied to tests/serve, "
        "tests/fleet, tests/chaos, tests/telemetry, tests/recorder); the "
        "CI coverage floor runs `pytest -m tier1`",
    )


def pytest_collection_modifyitems(config, items):
    rootdir = str(config.rootpath)
    for item in items:
        rel = os.path.relpath(str(item.fspath), rootdir).replace(os.sep, "/")
        if any(rel.startswith(prefix + "/") for prefix in TIER1_DIRS):
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(autouse=True)
def _suite_sanitizer(request):
    """Opt-in suite-wide sanitizer, controlled by the SANITIZE env toggle."""
    if os.environ.get("SANITIZE") != "1" or request.node.get_closest_marker(
        "no_sanitize"
    ):
        yield None
        return
    from repro.sanitize import Sanitizer, use_sanitizer

    sanitizer = Sanitizer()
    with use_sanitizer(sanitizer):
        yield sanitizer


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def spd_batch() -> BatchCsr:
    """8 SPD systems of size 12 sharing one pattern."""
    return random_spd_batch(num_batch=8, num_rows=12, density=0.3, seed=7)


@pytest.fixture
def dd_batch() -> BatchCsr:
    """8 diagonally dominant nonsymmetric systems of size 12."""
    return random_diag_dominant_batch(num_batch=8, num_rows=12, density=0.3, seed=11)


@pytest.fixture
def stencil16() -> BatchCsr:
    """4 SPD 3-point-stencil systems of size 16."""
    return three_point_stencil(16, 4)


@pytest.fixture
def stencil16_rhs() -> np.ndarray:
    return stencil_rhs(16, 4)


@pytest.fixture
def host_device():
    return cpu_device()


@pytest.fixture
def pvc1_device():
    return pvc_stack_device(1)


def reference_solutions(matrix: BatchCsr, b: np.ndarray) -> np.ndarray:
    """Dense LAPACK reference x for every batch item."""
    return np.linalg.solve(matrix.to_batch_dense(), b[..., None])[..., 0]


def relative_residuals(matrix, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-system ||b - A x|| / ||b||."""
    r = b - matrix.apply(x)
    return np.linalg.norm(r, axis=1) / np.linalg.norm(b, axis=1)
