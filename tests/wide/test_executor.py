"""Unit tests of the lockstep executor (repro.wide.executor / queue)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sycl.group import GROUP, SUB_GROUP, SyncOp, evaluate_collective
from repro.sycl.memory import LocalSpec
from repro.sycl.ndrange import NDRange
from repro.sycl.device import pvc_stack_device
from repro.wide.executor import WideItem, evaluate_wide_collective, wide_launch
from repro.wide.lanes import LaneArray
from repro.wide.queue import WideQueue

pytestmark = pytest.mark.no_sanitize  # these tests target bare lockstep launches

ND = NDRange(32, 32, 16)  # one group, two sub-groups of 16


def _faithful(op: SyncOp, width: int, values: np.ndarray) -> np.ndarray:
    """Per-item reference results, lane by lane through the faithful path."""
    lanes = list(range(width))
    results = evaluate_collective(op.kind, op.params, lanes, list(values))
    return np.asarray(results)


class TestWideItem:
    def test_ids_carry_the_lane_axis(self):
        item = WideItem(ND, 0)
        assert isinstance(item.local_id, LaneArray)
        np.testing.assert_array_equal(np.asarray(item.local_id), np.arange(32))
        np.testing.assert_array_equal(
            np.asarray(item.sub_group_id), np.arange(32) // 16
        )
        np.testing.assert_array_equal(np.asarray(item.lane), np.arange(32) % 16)
        assert item.group_id == 0
        assert item.local_range == 32

    def test_global_ids_offset_by_group(self):
        item = WideItem(NDRange(64, 32, 16), 1)
        np.testing.assert_array_equal(
            np.asarray(item.global_id), 32 + np.arange(32)
        )

    def test_predicate_factories_keep_raw_lane_vectors(self):
        item = WideItem(ND, 0)
        mask = item.local_id == 0
        op = item.any_of_group(mask)
        assert op.value is mask  # not collapsed through bool()


class TestCollectives:
    def test_group_reduce_matches_faithful(self):
        rng = np.random.default_rng(1)
        v = rng.standard_normal(32)
        for red in ("sum", "prod", "max", "min"):
            op = SyncOp("reduce", GROUP, v, (red,))
            wide = evaluate_wide_collective(op, ND)
            faithful = _faithful(op, 32, v)
            assert np.isscalar(wide)
            np.testing.assert_allclose(wide, faithful[0], rtol=1e-12)

    def test_scalar_contribution_counts_once_per_lane(self):
        # a lane-uniform scalar behaves as 32 identical contributions
        op = SyncOp("reduce", GROUP, 2.0, ("sum",))
        assert evaluate_wide_collective(op, ND) == 64.0

    def test_sub_group_reduce_repeats_per_subgroup_result(self):
        v = np.arange(32.0)
        op = SyncOp("reduce", SUB_GROUP, v, ("sum",))
        wide = evaluate_wide_collective(op, ND)
        expected = np.repeat([v[:16].sum(), v[16:].sum()], 16)
        np.testing.assert_allclose(wide, expected)

    def test_single_subgroup_reduce_returns_scalar(self):
        nd = NDRange(16, 16, 16)
        op = SyncOp("reduce", SUB_GROUP, np.arange(16.0), ("sum",))
        wide = evaluate_wide_collective(op, nd)
        assert np.isscalar(wide)
        assert wide == np.arange(16.0).sum()

    def test_broadcasts(self):
        v = np.arange(32.0)
        assert (
            evaluate_wide_collective(SyncOp("broadcast", GROUP, v, (3,)), ND)
            == 3.0
        )
        sg = evaluate_wide_collective(SyncOp("broadcast", SUB_GROUP, v, (2,)), ND)
        np.testing.assert_array_equal(sg, np.repeat([2.0, 18.0], 16))

    def test_scans_match_faithful(self):
        rng = np.random.default_rng(2)
        v = rng.standard_normal(32)
        for kind in ("inclusive_scan", "exclusive_scan"):
            op = SyncOp(kind, GROUP, v, ("sum",))
            np.testing.assert_allclose(
                evaluate_wide_collective(op, ND),
                _faithful(op, 32, v),
                rtol=1e-12,
                atol=1e-15,
            )

    def test_shuffles_match_faithful_per_subgroup(self):
        rng = np.random.default_rng(3)
        v = rng.standard_normal(32)
        for params in [("down", 1), ("down", 4), ("up", 2), ("xor", 5)]:
            op = SyncOp("shuffle", SUB_GROUP, v, params)
            wide = evaluate_wide_collective(op, ND)
            # faithful evaluation runs per sub-group over lane ids 0..15
            expected = np.concatenate(
                [
                    _faithful(SyncOp("shuffle", SUB_GROUP, v[s], params), 16, v[s])
                    for s in (slice(0, 16), slice(16, 32))
                ]
            )
            np.testing.assert_array_equal(wide, expected)

    def test_any_all_over_lane_vectors(self):
        pred = np.zeros(32, dtype=bool)
        assert evaluate_wide_collective(SyncOp("any", GROUP, pred, ()), ND) is False
        pred[5] = True
        assert evaluate_wide_collective(SyncOp("any", GROUP, pred, ()), ND) is True
        assert evaluate_wide_collective(SyncOp("all", GROUP, pred, ()), ND) is False
        assert (
            evaluate_wide_collective(SyncOp("all", GROUP, np.ones(32, bool), ()), ND)
            is True
        )

    def test_barrier_returns_none(self):
        assert evaluate_wide_collective(SyncOp("barrier", GROUP), ND) is None


def _dot_kernel(item, slm, x, out):
    lid, wg = item.local_id, item.local_range
    n = x.shape[1]
    sysid = item.group_id
    partial = 0.0
    for row in range(lid, n, wg):
        v = float(x[sysid, row])
        partial += v * v
    total = yield item.reduce_over_group(partial, "sum")
    if lid == 0:
        out[sysid] = total


class TestWideLaunch:
    def test_simple_kernel_matches_numpy(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((3, 40))
        out = np.zeros(3)
        device = pvc_stack_device(1)
        stats = wide_launch(
            device, NDRange(3 * 32, 32, 16), _dot_kernel, args=(x, out)
        )
        np.testing.assert_allclose(out, np.sum(x * x, axis=1), rtol=1e-12)
        assert stats.num_groups == 3
        assert stats.collective_counts["group:reduce"] == 3

    def test_queue_records_events_and_stats(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 20))
        out = np.zeros(2)
        queue = WideQueue(pvc_stack_device(1))
        event = queue.parallel_for(
            NDRange(2 * 16, 16, 16), _dot_kernel, args=(x, out), name="dot"
        )
        assert queue.num_launches == 1
        assert event.name == "dot"
        assert event.stats.local_size == 16
        np.testing.assert_allclose(out, np.sum(x * x, axis=1), rtol=1e-12)

    def test_slm_capacity_still_validated(self):
        from repro.exceptions import LocalMemoryError

        device = pvc_stack_device(1)
        huge = [LocalSpec("x", (device.slm_bytes_per_cu,))]  # 8x over budget
        with pytest.raises(LocalMemoryError):
            wide_launch(
                device,
                NDRange(16, 16, 16),
                _dot_kernel,
                args=(np.zeros((1, 4)), np.zeros(1)),
                local_specs=huge,
            )

    def test_sanitizer_falls_back_to_faithful_interpreter(self):
        from repro.sanitize import Sanitizer, use_sanitizer

        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 12))
        out = np.zeros(2)
        sanitizer = Sanitizer()
        with use_sanitizer(sanitizer):
            wide_launch(
                pvc_stack_device(1),
                NDRange(2 * 16, 16, 16),
                _dot_kernel,
                args=(x, out),
            )
        # the faithful interpreter ran: the sanitizer saw the launch
        assert sanitizer.stats.launches == 1
        np.testing.assert_allclose(out, np.sum(x * x, axis=1), rtol=1e-12)

    def test_wide_launch_counts_on_tracer_metrics(self):
        from repro.observability.tracer import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            queue = WideQueue(pvc_stack_device(1))
            queue.parallel_for(
                NDRange(16, 16, 16),
                _dot_kernel,
                args=(np.ones((1, 8)), np.zeros(1)),
            )
        assert tracer.metrics.counter("wide.launches").value == 1
        assert tracer.metrics.counter("sycl.launches").value == 1


class TestKernelParity:
    def test_cuda_reduction_style_raises_wide_backend_error(self):
        from repro.core.matrix.batch_csr import BatchCsr
        from repro.exceptions import WideBackendError
        from repro.kernels.bicgstab_kernel import run_batch_bicgstab_on_device

        rng = np.random.default_rng(7)
        dense = np.eye(8)[None] * 4.0 + rng.standard_normal((1, 8, 8)) * 0.1
        matrix = BatchCsr.from_dense(dense)
        b = rng.standard_normal((1, 8))
        device = pvc_stack_device(1)
        with pytest.raises(WideBackendError, match="group"):
            run_batch_bicgstab_on_device(
                device, matrix, b, reduce_style="cuda", queue=WideQueue(device)
            )
