"""Unit tests of the lane-axis data model (repro.wide.lanes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wide.lanes import (
    LaneIndex,
    LaneMask,
    WideArray,
    lane_array,
    wide_float,
    wide_int,
    wide_range,
)


class TestLaneMask:
    def test_lane_comparisons_return_truthy_masks(self):
        lid = lane_array([0, 1, 2, 3])
        mask = lid == 0
        assert isinstance(mask, LaneMask)
        assert bool(mask)  # uniform-guard convention: the block executes
        np.testing.assert_array_equal(
            np.asarray(mask), [True, False, False, False]
        )

    def test_all_comparison_operators_mask(self):
        lid = lane_array([0, 1, 2, 3])
        for op, expected in [
            (lid != 0, [False, True, True, True]),
            (lid < 2, [True, True, False, False]),
            (lid <= 1, [True, True, False, False]),
            (lid > 2, [False, False, False, True]),
            (lid >= 2, [False, False, True, True]),
        ]:
            assert isinstance(op, LaneMask)
            assert bool(op)
            np.testing.assert_array_equal(np.asarray(op), expected)

    def test_arithmetic_stays_plain_ndarray_semantics(self):
        lid = lane_array([0, 1, 2, 3])
        np.testing.assert_array_equal(np.asarray(lid + 4), [4, 5, 6, 7])
        np.testing.assert_array_equal(np.asarray(lid % 2), [0, 1, 0, 1])


class TestWideRange:
    def test_scalar_arguments_fall_through_to_builtin_range(self):
        assert wide_range(5) == range(5)
        assert wide_range(2, 9) == range(2, 9)
        assert wide_range(1, 10, 3) == range(1, 10, 3)

    def test_strided_loop_over_lane_start(self):
        # the kernels' `for row in range(lid, n, wg)` pattern
        lid = lane_array([0, 1, 2, 3])
        rounds = list(wide_range(lid, 10, 4))
        assert len(rounds) == 3
        np.testing.assert_array_equal(rounds[0].rows, [0, 1, 2, 3])
        assert rounds[0].mask.all()
        np.testing.assert_array_equal(rounds[1].rows, [4, 5, 6, 7])
        assert rounds[1].mask.all()
        np.testing.assert_array_equal(rounds[2].rows, [8, 9, 10, 11])
        np.testing.assert_array_equal(rounds[2].mask, [True, True, False, False])

    def test_ragged_csr_style_bounds(self):
        # the kernels' `range(int(row_ptrs[row]), int(row_ptrs[row + 1]))`
        start = np.array([0, 3, 3, 7])
        stop = np.array([3, 3, 7, 9])
        rounds = list(wide_range(start, stop))
        assert len(rounds) == 4  # longest row has 4 nonzeros
        np.testing.assert_array_equal(
            rounds[0].mask, [True, False, True, True]
        )
        np.testing.assert_array_equal(
            rounds[2].mask, [True, False, True, False]
        )
        np.testing.assert_array_equal(rounds[0].rows, [0, 3, 3, 7])

    def test_zero_trip_loop_yields_nothing(self):
        rounds = list(wide_range(np.array([5, 5]), np.array([5, 5])))
        assert rounds == []

    def test_non_positive_step_rejected(self):
        with pytest.raises(ValueError):
            wide_range(np.array([0, 1]), 10, 0)
        with pytest.raises(ValueError):
            wide_range(np.array([0, 1]), 10, -1)


class TestLaneIndex:
    def test_integer_offsets_preserve_mask(self):
        idx = LaneIndex([1, 2, 3], [True, False, True])
        shifted = idx + 1
        np.testing.assert_array_equal(shifted.rows, [2, 3, 4])
        np.testing.assert_array_equal(shifted.mask, idx.mask)
        np.testing.assert_array_equal((1 + idx).rows, [2, 3, 4])
        np.testing.assert_array_equal((idx - 1).rows, [0, 1, 2])


class TestWideArray:
    def test_masked_gather_reads_zero_on_inactive_lanes(self):
        data = WideArray(np.array([10.0, 20.0, 30.0, 40.0]))
        idx = LaneIndex([0, 2, 99, 3], [True, True, False, True])
        np.testing.assert_array_equal(data[idx], [10.0, 30.0, 0.0, 40.0])

    def test_masked_scatter_skips_inactive_lanes(self):
        data = np.zeros(4)
        wide = WideArray(data)
        idx = LaneIndex([0, 1, 2, 3], [True, False, True, False])
        wide[idx] = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(data, [1.0, 0.0, 3.0, 0.0])

    def test_scalar_scatter_to_masked_lanes(self):
        data = np.zeros(4)
        WideArray(data)[LaneIndex([1, 2], [True, False])] = 7.0
        np.testing.assert_array_equal(data, [0.0, 7.0, 0.0, 0.0])

    def test_leading_batch_index_with_trailing_lane_index(self):
        # the kernels' `x_out[sysid, row] = ...` pattern
        data = np.zeros((2, 4))
        wide = WideArray(data)
        idx = LaneIndex([0, 1, 2, 3], [True, True, True, False])
        wide[1, idx] = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(data[1], [1.0, 2.0, 3.0, 0.0])
        np.testing.assert_array_equal(data[0], 0.0)
        np.testing.assert_array_equal(wide[1, idx], [1.0, 2.0, 3.0, 0.0])

    def test_integer_indexing_returns_wrapped_subarrays(self):
        wide = WideArray(np.arange(12.0).reshape(3, 4))
        row = wide[1]
        assert isinstance(row, WideArray)
        np.testing.assert_array_equal(np.asarray(row), [4.0, 5.0, 6.0, 7.0])
        assert wide[1][2] == 6.0

    def test_raw_integer_array_key_is_plain_fancy_indexing(self):
        # the SpMV inner loop's `x[int(col_idxs[pos])]` gather
        wide = WideArray(np.array([5.0, 6.0, 7.0]))
        np.testing.assert_array_equal(
            wide[np.array([2, 0, 1])], [7.0, 5.0, 6.0]
        )

    def test_ndarray_facade(self):
        wide = WideArray(np.zeros((3, 4)))
        assert wide.shape == (3, 4)
        assert wide.ndim == 2
        assert len(wide) == 3
        assert wide.dtype == np.float64
        assert np.asarray(wide).shape == (3, 4)


class TestScalarization:
    def test_wide_float_casts_arrays_and_scalars(self):
        out = wide_float(np.array([1, 2], dtype=np.int64))
        assert out.dtype == np.float64
        single = wide_float(np.array([1.5], dtype=np.float32))
        assert single.dtype == np.float64
        assert wide_float(3) == 3.0
        assert isinstance(wide_float(np.float32(2.5)), float)

    def test_wide_int_casts_arrays_and_scalars(self):
        out = wide_int(np.array([1.9, 2.1]))
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [1, 2])
        assert wide_int(3.7) == 3
