"""Single-writer contract of ``res_history`` across all three backends.

The kernels write per-iteration residual norms from ``lid == 0`` only.
On the wide backend that guard is a truthy lane mask — the store executes
for every lane — so the contract holds only because the stored value
(``res2 ** 0.5`` of a group-reduced scalar) is lane-uniform and the
target cell is one scalar. This regression pins the result: histories
written by the faithful SYCL interpreter, the CUDA-dialect stream and the
lockstep wide backend must have identical NaN masks (exactly one entry
per performed iteration plus the initial residual — no stray writes),
identical iteration counts, and numerically matching values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrix.batch_csr import BatchCsr
from repro.sanitize.diff import BACKENDS, DiffCase, run_backend

from tests.sanitize.generators import gen_stencil


@pytest.mark.parametrize("solver", ["cg", "bicgstab", "richardson"])
def test_res_history_identical_across_backends(solver):
    problem = gen_stencil(99)
    matrix = BatchCsr.from_dense(problem.dense)
    runs = {
        backend: run_backend(
            matrix,
            problem.b,
            DiffCase("stencil", solver, "jacobi", "double", backend),
        )
        for backend in BACKENDS
    }
    assert set(runs) == {"sycl", "cuda", "wide"}
    base = runs["sycl"]
    for backend in ("cuda", "wide"):
        other = runs[backend]
        # same number of history entries written: identical NaN masks
        np.testing.assert_array_equal(
            np.isnan(base.history),
            np.isnan(other.history),
            err_msg=f"{backend} wrote a different set of res_history cells",
        )
        np.testing.assert_array_equal(
            base.iterations,
            other.iterations,
            err_msg=f"{backend} iteration counts diverge",
        )
        np.testing.assert_allclose(
            np.nan_to_num(base.history),
            np.nan_to_num(other.history),
            rtol=1e-9,
            atol=1e-12,
            err_msg=f"{backend} res_history values diverge",
        )


def test_history_rows_match_iteration_counts():
    """Each system's history holds exactly ``iterations + 1`` finite entries."""
    problem = gen_stencil(100)
    matrix = BatchCsr.from_dense(problem.dense)
    run = run_backend(
        matrix, problem.b, DiffCase("stencil", "cg", "identity", "double", "wide")
    )
    finite = np.isfinite(run.history).sum(axis=1)
    np.testing.assert_array_equal(finite, np.asarray(run.iterations) + 1)
