"""Unit tests of the kernel-lowering pass (repro.wide.lower)."""

from __future__ import annotations

import builtins

import numpy as np
import pytest

from repro.exceptions import WideBackendError
from repro.kernels import cg_kernel, spmv
from repro.kernels.blas1 import warp_reduce_sum
from repro.wide.lanes import wide_range
from repro.wide.lower import lower_kernel


def test_lowering_rebinds_range_without_touching_the_original():
    lowered = lower_kernel(cg_kernel.batch_cg_kernel)
    assert lowered is not cg_kernel.batch_cg_kernel
    assert lowered.__code__ is cg_kernel.batch_cg_kernel.__code__
    assert lowered.__globals__["range"] is wide_range
    # the original kernel module still sees the builtin
    assert cg_kernel.batch_cg_kernel.__globals__.get("range", range) is builtins.range


def test_lowering_is_cached_per_function():
    assert lower_kernel(cg_kernel.batch_cg_kernel) is lower_kernel(
        cg_kernel.batch_cg_kernel
    )


def test_helpers_are_recursively_lowered():
    lowered = lower_kernel(cg_kernel.batch_cg_kernel)
    helper = lowered.__globals__["spmv_csr_item_rows"]
    assert helper is not spmv.spmv_csr_item_rows
    assert helper is lower_kernel(spmv.spmv_csr_item_rows)
    assert helper.__globals__["range"] is wide_range


def test_cuda_reduction_structure_raises_on_wide():
    stub = lower_kernel(warp_reduce_sum)
    gen = stub(None, None, 0.0)
    with pytest.raises(WideBackendError, match="group"):
        next(gen)


def test_lowered_kernel_run_per_item_matches_original():
    """Run the *lowered* code object on the faithful interpreter.

    With scalar work-item ids, ``wide_range`` falls back to the builtin
    ``range`` and ``wide_float``/``wide_int`` to the builtin casts, so
    executing the lowered clone per-item must be bitwise identical to the
    original kernel — the property that makes one source serve both
    backends.
    """
    from repro.core.launch import LaunchConfigurator
    from repro.core.matrix.batch_csr import BatchCsr
    from repro.kernels import richardson_kernel
    from repro.sycl.device import pvc_stack_device
    from repro.sycl.executor import launch
    from repro.sycl.memory import LocalSpec

    rng = np.random.default_rng(0)
    dense = np.eye(6)[None] * 3.0 + rng.standard_normal((2, 6, 6)) * 0.05
    matrix = BatchCsr.from_dense(dense)
    b = rng.standard_normal((2, 6))
    device = pvc_stack_device(1)
    x_ref, it_ref, _ = richardson_kernel.run_batch_richardson_on_device(
        device, matrix, b, tolerance=1e-10, max_iterations=50
    )

    lowered = lower_kernel(richardson_kernel.batch_richardson_kernel)
    nb, n = matrix.num_batch, matrix.num_rows
    x_out = np.zeros((nb, n))
    out_iters = np.zeros(nb, dtype=np.int64)
    thresholds = 1e-10 * np.linalg.norm(b, axis=1)
    launch(
        device,
        LaunchConfigurator(device).configure(n, nb).nd_range(),
        lowered,
        args=(
            matrix.row_ptrs,
            matrix.col_idxs,
            matrix.values,
            b,
            x_out,
            np.ones((nb, n)),
            thresholds,
            1.0,
            50,
            out_iters,
            None,
        ),
        local_specs=[LocalSpec(name, (n,)) for name in ("r", "z", "t", "x")],
    )
    np.testing.assert_array_equal(x_out, x_ref)
    np.testing.assert_array_equal(out_iters, it_ref)
