"""Property tests: MicroBatcher conservation under arbitrary interleavings.

The invariant the whole serving layer leans on: across *any* sequence of
offers, clock advances, deadline sweeps, and a final drain, every ticket
offered comes back in exactly one flush — never lost, never duplicated —
and every flush respects the size bound and the bucket compatibility
rule (one (batch key, priority) per flush).
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import MicroBatcher, SolveRequest, SolveTicket

TOLERANCES = (1e-6, 1e-8)
PRIORITIES = ("high", "normal", "low")
TENANTS = ("a", "b", "c")


def _request(tolerance, priority, tenant):
    n = 4
    matrix = sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )
    return SolveRequest(
        matrix,
        np.ones(n),
        solver="cg",
        preconditioner="jacobi",
        tolerance=tolerance,
        priority=priority,
        tenant=tenant,
    )


# one step of the interleaving: an offer (which request flavor) or a
# clock advance followed by a deadline sweep
_offer_step = st.tuples(
    st.just("offer"),
    st.sampled_from(TOLERANCES),
    st.sampled_from(PRIORITIES),
    st.sampled_from(TENANTS),
)
_advance_step = st.tuples(
    st.just("advance"), st.integers(min_value=0, max_value=12), st.just(0), st.just(0)
)
_steps = st.lists(st.one_of(_offer_step, _advance_step), max_size=60)


class _Clock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


@settings(max_examples=60, deadline=None)
@given(
    steps=_steps,
    max_batch_size=st.integers(min_value=1, max_value=5),
    max_wait_ms=st.integers(min_value=0, max_value=8),
    fair_share=st.booleans(),
)
def test_no_ticket_lost_or_double_flushed(
    steps, max_batch_size, max_wait_ms, fair_share
):
    clock = _Clock()
    batcher = MicroBatcher(
        max_batch_size=max_batch_size,
        max_wait_ns=int(max_wait_ms * 1e6),
        clock=clock,
        fair_share=fair_share,
    )
    offered = []
    flushes = []
    for kind, arg, priority, tenant in steps:
        if kind == "offer":
            ticket = SolveTicket(_request(arg, priority, tenant), submitted_ns=clock.now)
            offered.append(ticket)
            flush = batcher.offer(ticket)
            if flush is not None:
                flushes.append(flush)
        else:
            clock.now += int(arg * 1e6)
            flushes.extend(batcher.due())
    flushes.extend(batcher.drain())
    assert batcher.pending == 0
    assert batcher.num_buckets == 0

    released = [t for f in flushes for t in f.tickets]
    # conservation: exactly the offered tickets, each exactly once
    assert len(released) == len(offered)
    assert {id(t) for t in released} == {id(t) for t in offered}

    for flush in flushes:
        assert 1 <= flush.size <= max_batch_size
        # a flush never mixes compatibility classes or priorities
        assert {t.request.batch_key for t in flush.tickets} == {flush.key}
        priorities = {t.request.priority for t in flush.tickets}
        assert priorities == {flush.priority}


@settings(max_examples=40, deadline=None)
@given(steps=_steps)
def test_due_only_releases_expired_buckets(steps):
    """A deadline sweep never flushes a bucket younger than max_wait."""
    clock = _Clock()
    wait_ns = int(5e6)
    batcher = MicroBatcher(max_batch_size=100, max_wait_ns=wait_ns, clock=clock)
    for kind, arg, priority, tenant in steps:
        if kind == "offer":
            batcher.offer(
                SolveTicket(_request(arg, priority, tenant), submitted_ns=clock.now)
            )
        else:
            clock.now += int(arg * 1e6)
        for flush in batcher.due():
            assert clock.now - flush.opened_ns >= wait_ns


@settings(max_examples=40, deadline=None)
@given(steps=_steps, fair_share=st.booleans())
def test_fair_share_never_breaks_priority_rank(steps, fair_share):
    """Within one due() sweep, releases are sorted by priority rank."""
    rank = {"high": 0, "normal": 1, "low": 2}
    clock = _Clock()
    batcher = MicroBatcher(
        max_batch_size=100, max_wait_ns=int(2e6), clock=clock, fair_share=fair_share
    )
    for kind, arg, priority, tenant in steps:
        if kind == "offer":
            batcher.offer(
                SolveTicket(_request(arg, priority, tenant), submitted_ns=clock.now)
            )
        else:
            clock.now += int(arg * 1e6)
        if fair_share:
            ranks = [rank[f.priority] for f in batcher.due()]
            assert ranks == sorted(ranks)
        else:
            batcher.due()
