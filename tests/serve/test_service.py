"""SolverService end-to-end: correctness, backpressure, timeouts, fallback."""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.observability.tracer import Tracer
from repro.serve import ServeConfig, SolveRequest, SolverService
from repro.serve.request import TIMED_OUT


def _tridiag(n, scale=1.0):
    return sp.diags(
        [np.full(n - 1, -scale), np.full(n, 2.0 * scale), np.full(n - 1, -scale)],
        offsets=[-1, 0, 1],
        format="csr",
    )


def _dense_of(request):
    n = request.num_rows
    dense = np.zeros((n, n))
    for row in range(n):
        lo, hi = request.row_ptrs[row], request.row_ptrs[row + 1]
        dense[row, request.col_idxs[lo:hi]] = request.values[lo:hi]
    return dense


def _poisoned(n):
    """A nonsymmetric system on the tridiagonal pattern; CG cannot converge."""
    matrix = _tridiag(n)
    data = matrix.data.copy()
    off = data < 0
    data[off] = np.where(np.arange(off.sum()) % 2 == 0, 100.0, -99.0)
    matrix.data = data
    return matrix


class TestEndToEnd:
    def test_solutions_match_lu_reference(self):
        rng = np.random.default_rng(0)
        config = ServeConfig(max_batch_size=4, max_wait_ms=50.0, num_workers=2)
        with SolverService(config) as service:
            requests = [
                SolveRequest(
                    _tridiag(12, scale=rng.uniform(0.5, 2.0)),
                    rng.standard_normal(12),
                    solver="bicgstab",
                    preconditioner="jacobi",
                    tolerance=1e-10,
                )
                for _ in range(8)
            ]
            tickets = [service.submit(r) for r in requests]
            outcomes = [t.result(timeout=30.0) for t in tickets]
        for request, outcome in zip(requests, outcomes):
            assert outcome.converged
            reference = np.linalg.solve(_dense_of(request), request.b)
            np.testing.assert_allclose(outcome.x, reference, rtol=1e-6, atol=1e-8)
        # two full size-triggered flushes of 4
        assert all(o.batch_size == 4 for o in outcomes)

    def test_incompatible_configs_get_separate_batches(self):
        rng = np.random.default_rng(1)
        config = ServeConfig(max_batch_size=16, max_wait_ms=500.0, num_workers=1)
        with SolverService(config) as service:
            loose = [
                service.submit(
                    SolveRequest(_tridiag(8), rng.standard_normal(8), tolerance=1e-4)
                )
                for _ in range(3)
            ]
            tight = [
                service.submit(
                    SolveRequest(_tridiag(8), rng.standard_normal(8), tolerance=1e-10)
                )
                for _ in range(2)
            ]
            service.flush()
            loose_outcomes = [t.result(timeout=30.0) for t in loose]
            tight_outcomes = [t.result(timeout=30.0) for t in tight]
        assert all(o.batch_size == 3 for o in loose_outcomes)
        assert all(o.batch_size == 2 for o in tight_outcomes)

    def test_deadline_flush_serves_partial_batch(self):
        config = ServeConfig(max_batch_size=64, max_wait_ms=5.0, num_workers=1)
        with SolverService(config) as service:
            ticket = service.submit(SolveRequest(_tridiag(8), np.ones(8)))
            outcome = ticket.result(timeout=30.0)
        assert outcome.converged and outcome.batch_size == 1
        assert service.metrics.counter("serve.flushes.deadline").value >= 1

    def test_plan_cache_accounting_across_flushes(self):
        config = ServeConfig(max_batch_size=2, max_wait_ms=500.0, num_workers=1)
        with SolverService(config) as service:
            tickets = [
                service.submit(SolveRequest(_tridiag(8), np.ones(8)))
                for _ in range(8)  # four size flushes, one compatibility class
            ]
            for ticket in tickets:
                ticket.result(timeout=30.0)
            assert service.plan_cache.misses == 1
            assert service.plan_cache.hits == 3
            assert service.plan_cache.hit_rate == 0.75
            hits = [t.result(timeout=1.0).plan_cache_hit for t in tickets]
        assert sum(1 for h in hits if not h) == 2  # the first flush's requests

    def test_tracer_records_serve_spans(self):
        tracer = Tracer()
        config = ServeConfig(max_batch_size=2, max_wait_ms=500.0, num_workers=1)
        with SolverService(config, tracer=tracer) as service:
            for _ in range(2):
                service.submit(SolveRequest(_tridiag(8), np.ones(8)))
            service.wait_idle(timeout=30.0)
        names = {span.name for span in tracer.spans}
        assert {"serve.flush", "serve.assembly", "serve.solve", "serve.scatter"} <= names


class TestBackpressure:
    def test_submit_past_max_pending_rejected(self):
        config = ServeConfig(
            max_batch_size=64, max_wait_ms=5000.0, max_pending=2, num_workers=1
        )
        service = SolverService(config)
        try:
            for _ in range(2):
                service.submit(SolveRequest(_tridiag(8), np.ones(8)))
            with pytest.raises(ServiceSaturatedError) as excinfo:
                service.submit(SolveRequest(_tridiag(8), np.ones(8)))
            assert excinfo.value.retry_after_s > 0
            assert service.metrics.counter("serve.rejected").value == 1
        finally:
            service.close()

    def test_capacity_frees_up_after_completion(self):
        config = ServeConfig(
            max_batch_size=1, max_wait_ms=5000.0, max_pending=1, num_workers=1
        )
        with SolverService(config) as service:
            service.submit(SolveRequest(_tridiag(8), np.ones(8))).result(timeout=30.0)
            service.wait_idle(timeout=30.0)
            # pending slot released → next submit admitted
            service.submit(SolveRequest(_tridiag(8), np.ones(8))).result(timeout=30.0)

    def test_submit_after_close_rejected(self):
        service = SolverService(ServeConfig(num_workers=1))
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(SolveRequest(_tridiag(8), np.ones(8)))


class TestTimeout:
    def test_expired_request_fails_with_timeout_error(self):
        config = ServeConfig(
            max_batch_size=64,
            max_wait_ms=10_000.0,  # flusher never fires on its own
            num_workers=1,
            request_timeout_ms=1.0,
        )
        service = SolverService(config)
        try:
            ticket = service.submit(SolveRequest(_tridiag(8), np.ones(8)))
            time.sleep(0.02)  # let the 1 ms deadline lapse while queued
            service.flush()
            with pytest.raises(RequestTimeoutError):
                ticket.result(timeout=30.0)
            assert ticket.status == TIMED_OUT
            assert service.metrics.counter("serve.timeouts").value == 1
        finally:
            service.close()


class TestGracefulDegradation:
    def test_nonconvergent_request_falls_back_without_harming_batch(self):
        rng = np.random.default_rng(2)
        n = 12
        config = ServeConfig(max_batch_size=8, max_wait_ms=500.0, num_workers=1)
        with SolverService(config) as service:
            healthy = [
                service.submit(
                    SolveRequest(
                        _tridiag(n),
                        rng.standard_normal(n),
                        solver="cg",
                        preconditioner="jacobi",
                        max_iterations=40,
                    )
                )
                for _ in range(3)
            ]
            bad_request = SolveRequest(
                _poisoned(n),
                rng.standard_normal(n),
                solver="cg",
                preconditioner="jacobi",
                max_iterations=40,
            )
            assert bad_request.batch_key == healthy[0].request.batch_key
            bad = service.submit(bad_request)
            service.flush()
            bad_outcome = bad.result(timeout=30.0)
            healthy_outcomes = [t.result(timeout=30.0) for t in healthy]

        assert bad_outcome.used_fallback
        assert bad_outcome.solver_name == "direct"
        assert bad_outcome.converged
        reference = np.linalg.solve(_dense_of(bad_request), bad_request.b)
        np.testing.assert_allclose(bad_outcome.x, reference, rtol=1e-8)
        assert all(o.converged and not o.used_fallback for o in healthy_outcomes)
        assert all(o.batch_size == 4 for o in healthy_outcomes)
        assert service.metrics.counter("serve.fallbacks").value == 1
        assert service.metrics.counter("serve.failed").value == 0

    def test_fallback_disabled_reports_nonconvergence(self):
        config = ServeConfig(
            max_batch_size=1, max_wait_ms=500.0, num_workers=1, fallback=False
        )
        with SolverService(config) as service:
            outcome = service.solve(
                SolveRequest(
                    _poisoned(12),
                    np.ones(12),
                    solver="cg",
                    preconditioner="jacobi",
                    max_iterations=40,
                ),
                timeout=30.0,
            )
        assert not outcome.converged
        assert not outcome.used_fallback
        assert service.metrics.counter("serve.fallbacks").value == 0


class TestLifecycle:
    def test_close_drains_queued_requests(self):
        config = ServeConfig(max_batch_size=64, max_wait_ms=10_000.0, num_workers=1)
        service = SolverService(config)
        tickets = [
            service.submit(SolveRequest(_tridiag(8), np.ones(8))) for _ in range(3)
        ]
        service.close(drain=True)
        for ticket in tickets:
            assert ticket.result(timeout=1.0).converged
        assert service.pending == 0

    def test_close_is_idempotent(self):
        service = SolverService(ServeConfig(num_workers=1))
        service.close()
        service.close()
