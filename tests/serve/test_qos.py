"""Multi-tenant QoS: quotas, priority classes, and fair-share ordering."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import QuotaExceededError
from repro.serve import (
    MicroBatcher,
    ServeConfig,
    SolveRequest,
    SolverService,
    SolveTicket,
)
from repro.serve.qos import DEFAULT_TENANT, PRIORITY_WEIGHTS, FairShareLedger
from repro.telemetry.events import QUOTA_REJECTED


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now

    def advance_ms(self, ms):
        self.now += int(ms * 1e6)


def _request(n=4, tolerance=1e-8, tenant=DEFAULT_TENANT, priority="normal"):
    matrix = sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )
    return SolveRequest(
        matrix,
        np.ones(n),
        solver="cg",
        preconditioner="jacobi",
        tolerance=tolerance,
        tenant=tenant,
        priority=priority,
    )


def _ticket(clock, **kwargs):
    return SolveTicket(_request(**kwargs), submitted_ns=clock())


class TestFairShareLedger:
    def test_unknown_tenant_joins_at_the_floor(self):
        ledger = FairShareLedger()
        assert ledger.virtual_time("anyone") == 0.0
        ledger.charge("a", 10)
        ledger.charge("b", 4)  # b itself joined at the floor: 10 + 4
        assert ledger.virtual_time("b") == 14.0
        # a newcomer starts at the running minimum (10), not 0 — no
        # history is not an advantage over long-served tenants
        assert ledger.virtual_time("fresh") == 10.0

    def test_charge_is_weighted(self):
        # same service, 4x the weight -> a quarter of the virtual-time cost
        assert FairShareLedger().charge(
            "t", 8, weight=PRIORITY_WEIGHTS["high"]
        ) == 2.0
        assert FairShareLedger().charge(
            "t", 8, weight=PRIORITY_WEIGHTS["low"]
        ) == 8.0

    def test_charge_accumulates(self):
        ledger = FairShareLedger()
        ledger.charge("t", 2)
        assert ledger.charge("t", 3) == 5.0
        assert ledger.snapshot() == {"t": 5.0}

    def test_validation(self):
        ledger = FairShareLedger()
        with pytest.raises(ValueError, match="tickets"):
            ledger.charge("t", -1)
        with pytest.raises(ValueError, match="weight"):
            ledger.charge("t", 1, weight=0.0)


class TestPriorityClasses:
    def test_priorities_never_co_batch(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=int(5e6), clock=clock)
        batcher.offer(_ticket(clock, priority="high"))
        batcher.offer(_ticket(clock, priority="low"))
        # same compatibility key, two buckets: the high request must not
        # wait for low traffic to fill its batch
        assert batcher.num_buckets == 2

    def test_unknown_priority_coerces_to_normal(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=int(5e6), clock=clock)
        batcher.offer(_ticket(clock, priority="normal"))
        with pytest.raises(ValueError):
            _request(priority="urgent")

    def test_due_releases_by_priority_rank(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=int(5e6), clock=clock)
        # arrival order low, normal, high — release order must invert it
        batcher.offer(_ticket(clock, priority="low"))
        batcher.offer(_ticket(clock, priority="normal"))
        batcher.offer(_ticket(clock, priority="high"))
        clock.advance_ms(6.0)
        flushes = batcher.due()
        assert [f.priority for f in flushes] == ["high", "normal", "low"]


class TestFairShareOrdering:
    def test_heavily_served_tenant_yields_within_a_class(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=int(5e6), clock=clock)
        # both tenants have history; "chatty" has consumed far more
        batcher.ledger.charge("quiet", 2)
        batcher.ledger.charge("chatty", 100)
        # distinct compatibility keys (tolerance) -> distinct buckets, one
        # per tenant, same priority class, due at the same instant
        batcher.offer(_ticket(clock, tenant="chatty", tolerance=1e-8))
        batcher.offer(_ticket(clock, tenant="quiet", tolerance=1e-6))
        clock.advance_ms(6.0)
        flushes = batcher.due()
        assert [f.tenants() for f in flushes] == [{"quiet": 1}, {"chatty": 1}]

    def test_release_charges_so_ties_rotate(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=2, max_wait_ns=int(5e6), clock=clock)
        for _ in range(2):
            batcher.offer(_ticket(clock, tenant="a", tolerance=1e-8))
        assert batcher.ledger.snapshot() == {"a": 1.0}  # 2 tickets / weight 2
        for _ in range(2):
            batcher.offer(_ticket(clock, tenant="b", tolerance=1e-8))
        # b joined at the floor (0.0, charged before a existed? no — at
        # charge time the floor was a's 1.0 minus nothing below it): both
        # tenants are on the ledger with positive virtual time
        snapshot = batcher.ledger.snapshot()
        assert set(snapshot) == {"a", "b"}
        assert all(v > 0 for v in snapshot.values())

    def test_fair_share_disabled_restores_arrival_order(self):
        clock = FakeClock()
        batcher = MicroBatcher(
            max_batch_size=8, max_wait_ns=int(5e6), clock=clock, fair_share=False
        )
        batcher.ledger.charge("chatty", 100)
        batcher.offer(_ticket(clock, tenant="chatty", tolerance=1e-8))
        batcher.offer(_ticket(clock, tenant="quiet", tolerance=1e-6))
        clock.advance_ms(6.0)
        flushes = batcher.due()
        assert [f.tenants() for f in flushes] == [{"chatty": 1}, {"quiet": 1}]
        # and nothing was charged
        assert batcher.ledger.snapshot() == {"chatty": 100.0}

    def test_mixed_tenant_flush_rides_its_least_served_member(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=int(5e6), clock=clock)
        batcher.ledger.charge("heavy", 50)
        batcher.ledger.charge("light", 1)
        batcher.ledger.charge("solo", 10)
        # bucket 1 mixes heavy+light; bucket 2 is solo-only. min(50,1) < 10
        # so the mixed bucket releases first despite its heavy member.
        batcher.offer(_ticket(clock, tenant="heavy", tolerance=1e-8))
        batcher.offer(_ticket(clock, tenant="light", tolerance=1e-8))
        batcher.offer(_ticket(clock, tenant="solo", tolerance=1e-6))
        clock.advance_ms(6.0)
        flushes = batcher.due()
        assert flushes[0].tenants() == {"heavy": 1, "light": 1}
        assert flushes[1].tenants() == {"solo": 1}


def _parked_config(**overrides):
    defaults = dict(max_batch_size=4, max_wait_ms=60_000.0, num_workers=1)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestTenantQuotas:
    def test_over_quota_tenant_rejected_with_429(self):
        config = _parked_config(tenant_default_quota=2)
        with SolverService(config) as service:
            service.submit(_request(tenant="greedy"))
            service.submit(_request(tenant="greedy"))
            with pytest.raises(QuotaExceededError) as excinfo:
                service.submit(_request(tenant="greedy"))
            assert excinfo.value.status_code == 429
            assert excinfo.value.error_code == "quota_exceeded"
            assert excinfo.value.tenant == "greedy"
            # the rejection is observable
            counter = service.metrics.counter("serve.quota_rejected")
            assert int(counter.labels(tenant="greedy").value) == 1
            events = [
                e for e in service.events.records() if e["type"] == QUOTA_REJECTED
            ]
            assert len(events) == 1
            assert events[0]["fields"]["tenant"] == "greedy"
            assert events[0]["fields"]["quota"] == 2
            service.close(drain=False)

    def test_other_tenants_unaffected_by_a_full_one(self):
        config = _parked_config(tenant_default_quota=2)
        with SolverService(config) as service:
            service.submit(_request(tenant="greedy"))
            service.submit(_request(tenant="greedy"))
            with pytest.raises(QuotaExceededError):
                service.submit(_request(tenant="greedy"))
            # a different tenant still gets in
            ticket = service.submit(_request(tenant="polite"))
            assert ticket is not None
            service.close(drain=False)

    def test_quota_frees_as_requests_complete(self):
        config = _parked_config(max_batch_size=1, tenant_default_quota=2)
        with SolverService(config) as service:
            first = [service.submit(_request(tenant="t")) for _ in range(2)]
            assert all(t.exception(timeout=30.0) is None for t in first)
            # both completed: the pending count is back under quota
            again = service.submit(_request(tenant="t"))
            assert again.exception(timeout=30.0) is None

    def test_per_tenant_override_beats_the_default(self):
        config = _parked_config(
            max_batch_size=8, tenant_default_quota=1, tenant_quotas=(("vip", 3),)
        )
        assert config.quota_for("vip") == 3
        assert config.quota_for("anyone") == 1
        with SolverService(config) as service:
            for _ in range(3):
                service.submit(_request(tenant="vip"))
            with pytest.raises(QuotaExceededError):
                service.submit(_request(tenant="vip"))
            service.submit(_request(tenant="basic"))
            with pytest.raises(QuotaExceededError):
                service.submit(_request(tenant="basic"))
            service.close(drain=False)

    def test_no_quota_by_default(self):
        config = _parked_config()
        assert config.quota_for("anyone") is None
        with SolverService(config) as service:
            for _ in range(20):
                service.submit(_request(tenant="t"))
            service.close(drain=False)

    def test_quota_validation(self):
        with pytest.raises(ValueError, match="tenant_default_quota"):
            ServeConfig(tenant_default_quota=0)
        with pytest.raises(ValueError, match="tenant_quotas"):
            ServeConfig(tenant_quotas=(("t", 0),))
