"""``SolverService.close`` abort path and ``wait_idle`` timeout semantics.

The fleet's graceful drain is built directly on these: drain =
``flush() + wait_idle() + close(drain=True)``; abort =
``close(drain=False)`` failing queued tickets fast instead of hanging.
"""

import threading
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chaos import ChaosInjector, FaultPlan, FaultSpec
from repro.chaos.plan import DEVICE_DELAY, WORKER_DIE
from repro.exceptions import ReproError, ServiceClosedError
from repro.serve import ServeConfig, SolveRequest, SolverService


def _tridiag(n):
    return sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )


def _request(rng, n=8):
    matrix = _tridiag(n)
    matrix.data = matrix.data * rng.uniform(0.9, 1.1, size=matrix.nnz)
    return SolveRequest(
        matrix, rng.standard_normal(n), solver="cg", preconditioner="jacobi"
    )


def _parked_service():
    """A service whose batcher holds requests indefinitely (no auto-flush)."""
    return SolverService(
        ServeConfig(max_batch_size=64, max_wait_ms=60_000.0, num_workers=1)
    )


class TestAbortClose:
    def test_queued_tickets_fail_fast(self):
        rng = np.random.default_rng(0)
        service = _parked_service()
        tickets = [service.submit(_request(rng)) for _ in range(4)]
        start = time.perf_counter()
        service.close(drain=False)
        for ticket in tickets:
            with pytest.raises(ServiceClosedError, match="closed before flush"):
                ticket.result(timeout=5.0)
        # failing 4 parked tickets must not wait out the batcher window
        assert time.perf_counter() - start < 10.0
        assert int(service.metrics.counter("serve.failed").value) == 4

    def test_in_flight_flushes_still_complete(self):
        # a flush already handed to the worker pool runs out even under
        # an abort close; only *unflushed* batcher contents are failed
        rng = np.random.default_rng(1)
        config = ServeConfig(
            max_batch_size=4, max_wait_ms=60_000.0, num_workers=1,
            device_dwell_ms=50.0,
        )
        with SolverService(config) as service:
            flushed = [service.submit(_request(rng)) for _ in range(4)]
            service.flush()
            time.sleep(0.01)  # let the pool pick the flush up
            parked = service.submit(_request(rng))
            service.close(drain=False)
            assert all(t.result(timeout=30.0).converged for t in flushed)
            with pytest.raises(ServiceClosedError):
                parked.result(timeout=5.0)

    def test_submit_after_close_raises(self):
        rng = np.random.default_rng(2)
        service = _parked_service()
        service.close(drain=False)
        with pytest.raises(ServiceClosedError):
            service.submit(_request(rng))

    def test_double_close_is_noop(self):
        service = _parked_service()
        service.close(drain=False)
        service.close(drain=False)
        service.close(drain=True)

    def test_drain_close_serves_everything(self):
        rng = np.random.default_rng(3)
        service = _parked_service()
        tickets = [service.submit(_request(rng)) for _ in range(4)]
        service.close(drain=True)
        assert all(t.result(timeout=30.0).converged for t in tickets)


class TestCloseUnderChaos:
    """Pins for the close(drain=False) vs in-flight chaos race.

    An abort close must never race an injected fault into a hang or a
    bare exception: whatever the interleaving, every ticket ends in a
    result or a *structured* error within the timeout.
    """

    def test_abort_close_races_worker_death(self):
        rng = np.random.default_rng(10)
        chaos = ChaosInjector(FaultPlan(0, (FaultSpec(WORKER_DIE, every=1),)))
        config = ServeConfig(max_batch_size=4, max_wait_ms=60_000.0, num_workers=1)
        service = SolverService(config, chaos=chaos)
        tickets = [service.submit(_request(rng)) for _ in range(4)]
        # the size-triggered flush is in the pool; close races its rescue
        service.close(drain=False)
        for ticket in tickets:
            error = ticket.exception(timeout=30.0)
            # rescued by the fallback, or failed structured — never lost,
            # never a bare 500
            if error is not None:
                assert isinstance(error, ReproError), error
                assert getattr(error, "status_code", 500) != 500, error

    def test_abort_close_races_device_delay(self):
        # the fault holds the flush on the "device" while close lands:
        # the in-flight flush still completes (abort only fails the
        # unflushed backlog)
        rng = np.random.default_rng(11)
        chaos = ChaosInjector(
            FaultPlan(0, (FaultSpec(DEVICE_DELAY, every=1, delay_ms=50.0),))
        )
        config = ServeConfig(max_batch_size=4, max_wait_ms=60_000.0, num_workers=1)
        service = SolverService(config, chaos=chaos)
        flushed = [service.submit(_request(rng)) for _ in range(4)]
        time.sleep(0.01)  # flush picked up, now dwelling in the fault
        parked = service.submit(_request(rng))
        service.close(drain=False)
        assert all(t.result(timeout=30.0).converged for t in flushed)
        with pytest.raises(ServiceClosedError):
            parked.result(timeout=5.0)

    def test_drain_close_under_battery_loses_nothing(self):
        rng = np.random.default_rng(12)
        chaos = ChaosInjector(FaultPlan.battery(seed=0))
        config = ServeConfig(max_batch_size=4, max_wait_ms=60_000.0, num_workers=1)
        service = SolverService(config, chaos=chaos)
        tickets = [service.submit(_request(rng)) for _ in range(12)]
        service.close(drain=True)
        for ticket in tickets:
            assert ticket.done()
            error = ticket.exception(timeout=1.0)
            if error is not None:
                assert isinstance(error, ReproError)
                assert getattr(error, "status_code", 500) != 500

    def test_submits_racing_abort_close_never_hang(self):
        rng = np.random.default_rng(13)
        chaos = ChaosInjector(FaultPlan(0, (FaultSpec(WORKER_DIE, every=2),)))
        config = ServeConfig(max_batch_size=2, max_wait_ms=60_000.0, num_workers=2)
        service = SolverService(config, chaos=chaos)
        tickets, rejected = [], []
        tickets_lock = threading.Lock()
        stop = threading.Event()

        def submitter():
            local_rng = np.random.default_rng(14)
            while not stop.is_set():
                try:
                    ticket = service.submit(_request(local_rng))
                except ReproError:
                    rejected.append(1)
                    return
                with tickets_lock:
                    tickets.append(ticket)

        threads = [threading.Thread(target=submitter) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        service.close(drain=False)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        # every admitted ticket reaches a terminal state: a result, a
        # structured chaos error, or the abort-close failure — never a hang
        with tickets_lock:
            admitted = list(tickets)
        assert admitted, "the submitters should have gotten work in"
        for ticket in admitted:
            error = ticket.exception(timeout=30.0)
            if error is not None:
                assert isinstance(error, ReproError), error


class TestWaitIdle:
    def test_timeout_returns_false_while_busy(self):
        rng = np.random.default_rng(4)
        config = ServeConfig(
            max_batch_size=4, max_wait_ms=5.0, num_workers=1,
            device_dwell_ms=300.0,
        )
        with SolverService(config) as service:
            tickets = [service.submit(_request(rng)) for _ in range(4)]
            service.flush()
            # the flush is dwelling on the (simulated) device: not idle yet
            assert service.wait_idle(timeout=0.01) is False
            assert service.wait_idle(timeout=30.0) is True
            assert all(t.result(timeout=1.0).converged for t in tickets)

    def test_idle_service_returns_immediately(self):
        with SolverService(
            ServeConfig(max_batch_size=2, max_wait_ms=5.0, num_workers=1)
        ) as service:
            start = time.perf_counter()
            assert service.wait_idle(timeout=10.0) is True
            assert time.perf_counter() - start < 1.0

    def test_wait_idle_none_timeout_blocks_until_done(self):
        rng = np.random.default_rng(5)
        config = ServeConfig(
            max_batch_size=4, max_wait_ms=5.0, num_workers=1,
            device_dwell_ms=20.0,
        )
        with SolverService(config) as service:
            for _ in range(4):
                service.submit(_request(rng))
            service.flush()
            assert service.wait_idle() is True
            assert service.pending == 0
