"""Plan-cache hit/miss/eviction accounting and plan reuse."""

import pytest

from repro.core.solver.cg import BatchCg
from repro.observability.metrics import MetricsRegistry
from repro.serve import BatchKey, PlanCache
from repro.sycl.device import pvc_stack_device


def _key(**overrides) -> BatchKey:
    fields = dict(
        matrix_format="csr",
        num_rows=16,
        pattern_token="abcd",
        solver="cg",
        preconditioner="jacobi",
        criterion="relative",
        precision="double",
        tolerance=1e-8,
        max_iterations=100,
    )
    fields.update(overrides)
    return BatchKey(**fields)


class TestAccounting:
    def test_first_lookup_misses_then_hits(self):
        cache = PlanCache(pvc_stack_device(1))
        plan, hit = cache.plan_for(_key())
        assert not hit and cache.misses == 1 and cache.hits == 0
        plan2, hit2 = cache.plan_for(_key())
        assert hit2 and cache.hits == 1
        assert plan2 is plan
        assert cache.hit_rate == 0.5

    def test_distinct_dispatch_tuples_miss_separately(self):
        cache = PlanCache(pvc_stack_device(1))
        cache.plan_for(_key())
        cache.plan_for(_key(tolerance=1e-4))
        cache.plan_for(_key(solver="bicgstab"))
        cache.plan_for(_key(num_rows=32))
        assert cache.misses == 4 and cache.hits == 0
        assert len(cache) == 4

    def test_pattern_token_not_part_of_plan_key(self):
        # Two compatibility classes that differ only in sparsity pattern
        # share a plan: dispatch + launch geometry don't see the pattern.
        cache = PlanCache(pvc_stack_device(1))
        cache.plan_for(_key(pattern_token="aaaa"))
        _plan, hit = cache.plan_for(_key(pattern_token="bbbb"))
        assert hit

    def test_metrics_land_in_shared_registry(self):
        metrics = MetricsRegistry()
        cache = PlanCache(pvc_stack_device(1), metrics=metrics)
        cache.plan_for(_key())
        cache.plan_for(_key())
        assert metrics.counter("serve.plan_cache.misses").value == 1
        assert metrics.counter("serve.plan_cache.hits").value == 1

    def test_hit_rate_zero_before_lookups(self):
        assert PlanCache(pvc_stack_device(1)).hit_rate == 0.0


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        metrics = MetricsRegistry()
        cache = PlanCache(pvc_stack_device(1), metrics=metrics, capacity=2)
        cache.plan_for(_key(tolerance=1e-4))
        cache.plan_for(_key(tolerance=1e-6))
        cache.plan_for(_key(tolerance=1e-8))  # evicts the 1e-4 plan
        assert len(cache) == 2
        assert metrics.counter("serve.plan_cache.evictions").value == 1
        _plan, hit = cache.plan_for(_key(tolerance=1e-4))
        assert not hit  # evicted → re-resolved

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(pvc_stack_device(1), capacity=0)


class TestPlanContents:
    def test_resolution_matches_factory_dispatch(self):
        cache = PlanCache(pvc_stack_device(1))
        plan, _hit = cache.plan_for(_key())
        assert plan.resolved.solver_cls is BatchCg
        launch = plan.launch_plan(num_batch=64)
        assert launch.num_groups > 0
        assert launch.work_group_size > 0
