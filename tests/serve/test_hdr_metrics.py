"""Streaming (HDR-style) latency metrics wired into the serve path."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.observability import LogHistogram, render_prometheus
from repro.serve import ServeConfig, SolveRequest, SolverService


def _tridiag(n):
    return sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )


@pytest.fixture(scope="module")
def served_metrics():
    config = ServeConfig(max_batch_size=4, max_wait_ms=5.0, num_workers=1)
    with SolverService(config) as service:
        rng = np.random.default_rng(3)
        tickets = [
            service.submit(
                SolveRequest(
                    _tridiag(8),
                    rng.standard_normal(8),
                    solver="cg",
                    preconditioner="jacobi",
                    tolerance=1e-8,
                )
            )
            for _ in range(6)
        ]
        outcomes = [t.result(timeout=60.0) for t in tickets]
        assert all(o.converged for o in outcomes)
        yield service.metrics, service.config


def test_hdr_twins_track_exact_histograms(served_metrics):
    metrics, _ = served_metrics
    exact = metrics.histogram("serve.latency_ms")
    hdr = metrics.log_histogram("serve.latency_hdr_ms")
    assert isinstance(hdr, LogHistogram)
    assert hdr.count == exact.count > 0
    assert hdr.total == pytest.approx(exact.total)
    # streaming estimate within one growth step of the exact quantile
    for p in (50.0, 99.0):
        assert hdr.percentile(p) == pytest.approx(
            exact.percentile(p), rel=hdr.growth - 1.0
        )
    assert metrics.log_histogram("serve.flush_solve_hdr_ms").count > 0


def test_flush_counter_labelled_by_backend_and_solver(served_metrics):
    metrics, config = served_metrics
    flushes = metrics.counter("serve.flush_solves")
    labelled = flushes.labels(backend=config.backend, solver="cg")
    assert labelled.value > 0


def test_prometheus_scrape_exposes_serve_instruments(served_metrics):
    metrics, config = served_metrics
    text = render_prometheus(metrics)
    assert "# TYPE serve_latency_hdr_ms histogram" in text
    assert 'serve_latency_hdr_ms_bucket{le="+Inf"}' in text
    assert "serve_latency_hdr_ms_count" in text
    assert (
        f'serve_flush_solves{{backend="{config.backend}",solver="cg"}}' in text
    )
