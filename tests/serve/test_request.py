"""SolveRequest normalization, BatchKey compatibility, ticket semantics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import (
    BadSparsityPatternError,
    DimensionMismatchError,
    UnsupportedCombinationError,
)
from repro.serve import SolveRequest, SolveTicket, assemble_batch
from repro.serve.request import DONE, FAILED, PENDING, SolveOutcome


def _tridiag(n=6, scale=1.0):
    return sp.diags(
        [np.full(n - 1, -scale), np.full(n, 2.0 * scale), np.full(n - 1, -scale)],
        offsets=[-1, 0, 1],
        format="csr",
    )


class TestBatchKey:
    def test_same_pattern_and_config_share_a_key(self):
        r1 = SolveRequest(_tridiag(), np.ones(6), solver="cg")
        r2 = SolveRequest(_tridiag(scale=3.0), np.zeros(6), solver="cg")
        assert r1.batch_key == r2.batch_key  # values differ, pattern matches

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solver": "bicgstab"},
            {"preconditioner": "jacobi"},
            {"tolerance": 1e-4},
            {"max_iterations": 7},
            {"precision": "single"},
        ],
    )
    def test_config_differences_split_keys(self, kwargs):
        base = SolveRequest(_tridiag(), np.ones(6), solver="cg")
        other = SolveRequest(_tridiag(), np.ones(6), **{"solver": "cg", **kwargs})
        assert base.batch_key != other.batch_key

    def test_pattern_differences_split_keys(self):
        dense_pattern = sp.csr_matrix(np.ones((6, 6)))
        r1 = SolveRequest(_tridiag(), np.ones(6))
        r2 = SolveRequest(dense_pattern, np.ones(6))
        assert r1.batch_key.pattern_token != r2.batch_key.pattern_token

    def test_dense_request_keys_on_shape(self):
        r = SolveRequest(np.eye(5), np.ones(5))
        assert r.matrix_format == "dense"
        assert r.batch_key.pattern_token == "dense:5"


class TestValidation:
    def test_unknown_names_rejected(self):
        with pytest.raises(UnsupportedCombinationError):
            SolveRequest(np.eye(3), np.ones(3), solver="nope")
        with pytest.raises(UnsupportedCombinationError):
            SolveRequest(np.eye(3), np.ones(3), preconditioner="nope")
        with pytest.raises(UnsupportedCombinationError):
            SolveRequest(np.eye(3), np.ones(3), criterion="nope")
        with pytest.raises(UnsupportedCombinationError):
            SolveRequest(np.eye(3), np.ones(3), precision="nope")
        with pytest.raises(UnsupportedCombinationError):
            SolveRequest(np.eye(3), np.ones(3), matrix_format="nope")

    def test_shape_mismatches_rejected(self):
        with pytest.raises(DimensionMismatchError):
            SolveRequest(np.eye(3), np.ones(4))
        with pytest.raises(DimensionMismatchError):
            SolveRequest(np.ones((3, 4)), np.ones(3))
        with pytest.raises(DimensionMismatchError):
            SolveRequest(np.eye(3), np.ones(3), x0=np.ones(4))

    def test_empty_sparse_matrix_rejected(self):
        with pytest.raises(BadSparsityPatternError):
            SolveRequest(sp.csr_matrix((4, 4)), np.ones(4))


class TestAssembleBatch:
    def test_values_and_rhs_stack_in_order(self):
        requests = [
            SolveRequest(_tridiag(scale=s), np.full(6, s), solver="cg")
            for s in (1.0, 2.0, 3.0)
        ]
        matrix, b, x0 = assemble_batch(requests)
        assert matrix.num_batch == 3
        assert b.shape == (3, 6)
        assert x0 is None
        np.testing.assert_allclose(b[2], np.full(6, 3.0))
        np.testing.assert_allclose(matrix.values[1], requests[1].values)

    def test_partial_x0_zero_fills(self):
        with_guess = SolveRequest(_tridiag(), np.ones(6), x0=np.full(6, 7.0))
        without = SolveRequest(_tridiag(), np.ones(6))
        _matrix, _b, x0 = assemble_batch([with_guess, without])
        np.testing.assert_allclose(x0[0], 7.0)
        np.testing.assert_allclose(x0[1], 0.0)

    def test_pattern_mismatch_caught_even_past_digests(self):
        # assemble_batch re-verifies patterns against request 0, so a
        # hypothetical digest collision cannot silently stack mismatched
        # patterns.
        r1 = SolveRequest(_tridiag(), np.ones(6))
        r2 = SolveRequest(sp.csr_matrix(np.eye(6)), np.ones(6))
        with pytest.raises(BadSparsityPatternError):
            assemble_batch([r1, r2])

    def test_dense_requests_assemble_to_batch_dense(self):
        requests = [SolveRequest(np.eye(4) * s, np.ones(4)) for s in (1.0, 2.0)]
        matrix, _b, _x0 = assemble_batch(requests)
        assert matrix.num_batch == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            assemble_batch([])


class TestSolveTicket:
    def _outcome(self):
        return SolveOutcome(
            x=np.zeros(3),
            iterations=1,
            residual_norm=0.0,
            converged=True,
            solver_name="cg",
            used_fallback=False,
            batch_size=1,
            queue_wait_ms=0.0,
            solve_ms=0.0,
            worker="dev",
            plan_cache_hit=False,
        )

    def test_complete_delivers_outcome(self):
        ticket = SolveTicket(SolveRequest(np.eye(3), np.ones(3)), submitted_ns=0)
        assert ticket.status == PENDING and not ticket.done()
        ticket._complete(self._outcome())
        assert ticket.done() and ticket.status == DONE
        assert ticket.result(timeout=0.1).converged
        assert ticket.exception(timeout=0.1) is None

    def test_fail_raises_from_result(self):
        ticket = SolveTicket(SolveRequest(np.eye(3), np.ones(3)), submitted_ns=0)
        ticket._fail(RuntimeError("boom"))
        assert ticket.status == FAILED
        with pytest.raises(RuntimeError, match="boom"):
            ticket.result(timeout=0.1)

    def test_result_times_out_while_pending(self):
        ticket = SolveTicket(SolveRequest(np.eye(3), np.ones(3)), submitted_ns=0)
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)

    def test_expiry_and_queue_wait(self):
        ticket = SolveTicket(
            SolveRequest(np.eye(3), np.ones(3)), submitted_ns=100, deadline_ns=200
        )
        assert not ticket.expired(150)
        assert ticket.expired(201)
        assert ticket.queue_wait_ns is None
        ticket.flushed_ns = 180
        assert ticket.queue_wait_ns == 80
