"""The micro-batcher's flush policy, on a fake clock (no threads)."""

import numpy as np
import pytest

from repro.serve import SIZE, DEADLINE, DRAIN, MicroBatcher, SolveRequest, SolveTicket


class FakeClock:
    """Injectable monotonic nanosecond clock."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += int(ms * 1e6)


def _request(n=4, tolerance=1e-8, solver="cg", pattern_shift=0):
    import scipy.sparse as sp

    diags = sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1 - pattern_shift, 0, 1 + pattern_shift],
        shape=(n, n),
        format="csr",
    )
    return SolveRequest(
        diags, np.ones(n), solver=solver, preconditioner="jacobi", tolerance=tolerance
    )


def _ticket(clock, **kwargs):
    return SolveTicket(_request(**kwargs), submitted_ns=clock())


class TestSizeFlush:
    def test_bucket_flushes_at_max_batch_size(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=3, max_wait_ns=10**9, clock=clock)
        tickets = [_ticket(clock) for _ in range(3)]
        assert batcher.offer(tickets[0]) is None
        assert batcher.offer(tickets[1]) is None
        flush = batcher.offer(tickets[2])
        assert flush is not None
        assert flush.reason == SIZE
        assert flush.tickets == tickets
        assert batcher.pending == 0
        assert batcher.num_buckets == 0

    def test_max_batch_size_one_flushes_every_offer(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=1, max_wait_ns=10**9, clock=clock)
        for _ in range(4):
            flush = batcher.offer(_ticket(clock))
            assert flush is not None and flush.size == 1 and flush.reason == SIZE

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0, max_wait_ns=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=1, max_wait_ns=-1)


class TestDeadlineFlush:
    def test_due_respects_max_wait(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=int(5e6), clock=clock)
        batcher.offer(_ticket(clock))
        batcher.offer(_ticket(clock))
        clock.advance_ms(4.9)
        assert batcher.due() == []
        clock.advance_ms(0.2)
        flushes = batcher.due()
        assert len(flushes) == 1
        assert flushes[0].reason == DEADLINE
        assert flushes[0].size == 2
        assert batcher.pending == 0

    def test_single_request_batch_on_deadline(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=64, max_wait_ns=int(1e6), clock=clock)
        batcher.offer(_ticket(clock))
        clock.advance_ms(1.0)
        flushes = batcher.due()
        assert len(flushes) == 1 and flushes[0].size == 1

    def test_no_empty_flush_after_size_flush(self):
        # A deadline firing against an already-flushed bucket must produce
        # no empty flush.
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=2, max_wait_ns=int(1e6), clock=clock)
        batcher.offer(_ticket(clock))
        assert batcher.offer(_ticket(clock)) is not None  # size flush
        clock.advance_ms(10.0)
        assert batcher.due() == []

    def test_next_deadline_tracks_oldest_bucket(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=int(2e6), clock=clock)
        assert batcher.next_deadline_ns() is None
        batcher.offer(_ticket(clock))
        assert batcher.next_deadline_ns() == int(2e6)
        clock.advance_ms(1.0)
        batcher.offer(_ticket(clock, tolerance=1e-4))  # second, younger bucket
        assert batcher.next_deadline_ns() == int(2e6)  # still the oldest


class TestCompatibility:
    def test_incompatible_configs_never_coalesce(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=10**9, clock=clock)
        variants = [
            _ticket(clock),
            _ticket(clock, tolerance=1e-4),       # different tolerance
            _ticket(clock, solver="bicgstab"),    # different solver
            _ticket(clock, pattern_shift=1),      # different sparsity pattern
            _ticket(clock, n=8),                  # different size
        ]
        for ticket in variants:
            assert batcher.offer(ticket) is None
        assert batcher.num_buckets == len(variants)
        flushes = batcher.drain()
        assert len(flushes) == len(variants)
        for flush in flushes:
            assert flush.size == 1
            assert all(t.request.batch_key == flush.key for t in flush.tickets)

    def test_compatible_requests_share_bucket(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=10**9, clock=clock)
        batcher.offer(_ticket(clock))
        batcher.offer(_ticket(clock))
        assert batcher.num_buckets == 1
        assert batcher.pending == 2


class TestDrain:
    def test_drain_flushes_everything(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=8, max_wait_ns=10**9, clock=clock)
        batcher.offer(_ticket(clock))
        batcher.offer(_ticket(clock, tolerance=1e-4))
        flushes = batcher.drain()
        assert {f.reason for f in flushes} == {DRAIN}
        assert sum(f.size for f in flushes) == 2
        assert batcher.pending == 0
        assert batcher.drain() == []
