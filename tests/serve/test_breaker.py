"""CircuitBreaker transitions (unit) and the service-level fallback storm."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chaos import ChaosInjector, FaultPlan, FaultSpec
from repro.chaos.plan import POISON_BATCH
from repro.exceptions import CircuitOpenError
from repro.serve import ServeConfig, SolveRequest, SolverService
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.telemetry.events import BREAKER_CLOSE, BREAKER_OPEN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _breaker(clock, **kwargs):
    defaults = dict(window=8, min_events=4, threshold=0.5, cooldown_s=10.0)
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, **defaults)


class TestTransitions:
    def test_starts_closed_and_permissive(self):
        breaker = _breaker(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow_degraded()
        assert breaker.bad_fraction() == 0.0

    def test_no_trip_below_min_events(self):
        breaker = _breaker(FakeClock())
        for _ in range(3):
            breaker.record(bad=True)
        assert breaker.state == CLOSED

    def test_trips_at_threshold(self):
        opened = []
        clock = FakeClock()
        breaker = _breaker(clock, on_open=lambda b: opened.append(b.opens))
        for bad in (True, True, False, True):
            breaker.record(bad=bad)
        assert breaker.state == OPEN
        assert not breaker.allow_degraded()
        assert opened == [1]

    def test_cooldown_promotes_to_half_open(self):
        clock = FakeClock()
        breaker = _breaker(clock)
        for _ in range(4):
            breaker.record(bad=True)
        assert breaker.state == OPEN
        clock.now += 9.0
        assert breaker.state == OPEN
        clock.now += 1.5
        assert breaker.state == HALF_OPEN
        assert breaker.allow_degraded()  # the probe is admitted

    def test_half_open_good_probe_closes(self):
        closed = []
        clock = FakeClock()
        breaker = _breaker(clock, on_close=lambda b: closed.append(b.closes))
        for _ in range(4):
            breaker.record(bad=True)
        clock.now += 11.0
        breaker.record(bad=False)
        assert breaker.state == CLOSED
        assert closed == [1]
        # the window was cleared: old storm outcomes cannot re-trip it
        assert breaker.bad_fraction() == 0.0

    def test_half_open_bad_probe_reopens(self):
        clock = FakeClock()
        breaker = _breaker(clock)
        for _ in range(4):
            breaker.record(bad=True)
        clock.now += 11.0
        breaker.record(bad=True)
        assert breaker.state == OPEN
        assert breaker.opens == 2
        # the cooldown restarted from the re-trip
        clock.now += 5.0
        assert breaker.state == OPEN

    def test_window_slides(self):
        clock = FakeClock()
        breaker = _breaker(clock, window=4, min_events=4, threshold=0.75)
        for bad in (True, True, False, False, False, False):
            breaker.record(bad=bad)
        # the two bad outcomes slid out of the window
        assert breaker.bad_fraction() == 0.0
        assert breaker.state == CLOSED

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_events": 0},
            {"min_events": 9},
            {"threshold": 0.0},
            {"threshold": 1.5},
            {"cooldown_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        defaults = dict(window=8, min_events=4, threshold=0.5, cooldown_s=1.0)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            CircuitBreaker(**defaults)


def _tridiag_request(rng, n=8):
    matrix = sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )
    scale = rng.uniform(0.95, 1.05, size=n)
    rows = np.repeat(np.arange(n), np.diff(matrix.indptr))
    matrix.data = matrix.data * scale[rows] * scale[matrix.indices]
    return SolveRequest(
        matrix, rng.standard_normal(n), solver="cg", preconditioner="jacobi"
    )


def _storm_config(**overrides):
    defaults = dict(
        max_batch_size=4,
        max_wait_ms=60_000.0,
        num_workers=1,
        breaker_window=8,
        breaker_min_events=4,
        breaker_threshold=0.5,
        breaker_cooldown_s=0.05,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestServiceStorm:
    def test_storm_opens_then_recovery_closes(self):
        """The full arc: poison storm -> open -> cooldown -> probe -> close."""
        import time

        rng = np.random.default_rng(0)
        # poison the first flush only: its 4 rescued requests all record
        # bad outcomes, tripping the breaker; later traffic is healthy
        chaos = ChaosInjector(
            FaultPlan(0, (FaultSpec(POISON_BATCH, every=1, max_faults=1),))
        )
        with SolverService(_storm_config(), chaos=chaos) as service:
            storm = [service.submit(_tridiag_request(rng)) for _ in range(4)]
            assert all(t.exception(timeout=30.0) is None for t in storm)
            assert all(t.result(timeout=1.0).used_fallback for t in storm)
            assert service.breaker.state == OPEN
            assert int(service.metrics.counter("serve.breaker_opens").value) == 1
            assert int(service.metrics.gauge("serve.breaker_state").value) == 1

            time.sleep(0.1)  # past the cooldown: half-open, probe admitted
            healthy = [service.submit(_tridiag_request(rng)) for _ in range(4)]
            assert all(t.exception(timeout=30.0) is None for t in healthy)
            assert not any(t.result(timeout=1.0).used_fallback for t in healthy)
            assert service.breaker.state == CLOSED
            assert int(service.metrics.counter("serve.breaker_closes").value) == 1
            assert int(service.metrics.gauge("serve.breaker_state").value) == 0

        events = [e["type"] for e in service.events.records()]
        assert BREAKER_OPEN in events
        assert BREAKER_CLOSE in events

    def test_open_breaker_sheds_degraded_work_with_503(self):
        rng = np.random.default_rng(1)
        # an unbounded poison storm: flush 0 trips the breaker via its
        # rescued fallbacks; flush 1's rescue finds it open and sheds
        chaos = ChaosInjector(FaultPlan(0, (FaultSpec(POISON_BATCH, every=1),)))
        with SolverService(
            _storm_config(breaker_cooldown_s=60.0), chaos=chaos
        ) as service:
            first = [service.submit(_tridiag_request(rng)) for _ in range(4)]
            assert all(t.exception(timeout=30.0) is None for t in first)
            assert service.breaker.state == OPEN
            shed = [service.submit(_tridiag_request(rng)) for _ in range(4)]
            errors = [t.exception(timeout=30.0) for t in shed]
            assert all(isinstance(e, CircuitOpenError) for e in errors)
            assert all(e.status_code == 503 and e.error_code == "breaker_open"
                       for e in errors)
            assert all(e.retry_after_s == 60.0 for e in errors)
            assert int(service.metrics.counter("serve.breaker_fast_fails").value) == 4

    def test_breaker_disabled_never_sheds(self):
        rng = np.random.default_rng(2)
        chaos = ChaosInjector(FaultPlan(0, (FaultSpec(POISON_BATCH, every=1),)))
        config = _storm_config(breaker_enabled=False)
        with SolverService(config, chaos=chaos) as service:
            assert service.breaker is None
            tickets = [service.submit(_tridiag_request(rng)) for _ in range(12)]
            assert all(t.exception(timeout=30.0) is None for t in tickets)
            assert all(t.result(timeout=1.0).used_fallback for t in tickets)
