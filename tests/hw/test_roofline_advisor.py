"""Roofline evaluation and the Advisor-style Fig. 8 report."""

import pytest

from repro.core import BatchBicgstab, BatchJacobi, SolverSettings
from repro.core.stop import RelativeResidual
from repro.hw.advisor import analyze_solve
from repro.hw.memmodel import TrafficSplit
from repro.hw.roofline import Roofline
from repro.hw.specs import gpu
from repro.workloads.pele import pele_batch, pele_rhs


@pytest.fixture(scope="module")
def dodecane_solve():
    matrix = pele_batch("dodecane_lu")
    solver = BatchBicgstab(
        matrix,
        BatchJacobi(matrix),
        settings=SolverSettings(max_iterations=200, criterion=RelativeResidual(1e-9)),
    )
    return solver, solver.solve(pele_rhs(matrix))


class TestRoofline:
    def test_attainable_is_min_of_compute_and_bandwidth(self):
        roof = Roofline(gpu("pvc1"))
        low = roof.attainable_gflops("slm", 0.001)
        assert low == pytest.approx(roof.bandwidth_gbs["slm"] * 0.001)
        high = roof.attainable_gflops("slm", 1e9)
        assert high == roof.compute_roof_gflops

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            Roofline(gpu("a100")).attainable_gflops("hbm", -1.0)

    def test_evaluate_requires_positive_runtime(self):
        with pytest.raises(ValueError):
            Roofline(gpu("a100")).evaluate(TrafficSplit(flops=1.0), 0.0)

    def test_point_fields_consistent(self):
        split = TrafficSplit(slm_bytes=1e9, l2_bytes=1e8, hbm_bytes=1e7, flops=1e9)
        point = Roofline(gpu("pvc1")).evaluate(split, 1e-3)
        assert point.achieved_gflops == pytest.approx(1e3)
        for level in ("slm", "l2", "hbm"):
            assert point.intensity_by_level[level] == pytest.approx(
                split.flops / getattr(split, f"{level}_bytes")
            )
        assert point.binding_roof in ("compute", "slm", "l2", "hbm")
        assert point.attainable_gflops <= point.compute_roof_gflops


class TestAdvisorReport:
    def test_fig8_shape_on_pvc1(self, dodecane_solve):
        solver, result = dodecane_solve
        report = analyze_solve(gpu("pvc1"), solver, result, num_batch=2**17)
        # paper: ~50% XVE threading occupancy
        assert report.xve_threading_occupancy == pytest.approx(0.5)
        # paper: the memory subsystem is dominated by SLM traffic
        assert report.total_split.slm_bytes > report.total_split.l2_bytes
        assert report.total_split.slm_bytes > report.total_split.hbm_bytes
        assert report.memory_time_fractions["slm"] > 0.4
        # paper: performance sits below the SLM bandwidth roof
        assert report.roofline_point.achieved_gflops < (
            report.roofline_point.attainable_gflops_by_level["slm"]
        )

    def test_modeled_achieved_respects_roofline_bounds(self, dodecane_solve):
        solver, result = dodecane_solve
        for key in ("a100", "h100", "pvc1", "pvc2"):
            report = analyze_solve(gpu(key), solver, result, num_batch=2**16)
            point = report.roofline_point
            assert point.achieved_gflops <= point.compute_roof_gflops * 1.001

    def test_hbm_traffic_includes_cold_footprint(self, dodecane_solve):
        solver, result = dodecane_solve
        report = analyze_solve(gpu("pvc1"), solver, result, num_batch=2**15)
        assert report.total_split.hbm_bytes > 0
        assert report.total_split.by_object["cold_footprint"][0] == "hbm"

    def test_report_lines_render(self, dodecane_solve):
        solver, result = dodecane_solve
        lines = analyze_solve(gpu("pvc1"), solver, result, num_batch=2**14).lines()
        text = "\n".join(lines)
        assert "XVE threading occupancy" in text
        assert "SLM" in text
        assert "roofline" in text

    def test_total_slm_traffic_magnitude(self, dodecane_solve):
        # paper reports terabytes of SLM traffic at batch 2^17; the model
        # should land in the same order-of-magnitude territory (paper: ~3 TB,
        # tolerance is wide because their run iterates to a different count)
        solver, result = dodecane_solve
        report = analyze_solve(gpu("pvc1"), solver, result, num_batch=2**17)
        assert 1e10 < report.total_split.slm_bytes < 1e13
