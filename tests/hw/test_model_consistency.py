"""Cross-platform invariants of the hardware model.

The calibration constants are fit to two averages (DESIGN.md §5); these
tests pin down the *structural* properties every estimate must satisfy on
every platform, so a recalibration cannot silently break the model's
physics: monotonicity in batch and iterations, bounded achieved rates,
precision ordering, and occupancy sanity.
"""

import numpy as np
import pytest

from repro.core import BatchBicgstab, BatchCg, BatchJacobi, SolverSettings
from repro.core.stop import RelativeResidual
from repro.hw import analyze_solve, estimate_solve, gpu
from repro.hw.specs import GPUS
from repro.workloads.pele import pele_batch, pele_rhs
from repro.workloads.stencil import stencil_rhs, three_point_stencil

_KEYS = sorted(GPUS)


@pytest.fixture(scope="module")
def stencil_solve():
    matrix = three_point_stencil(48, 8)
    solver = BatchCg(
        matrix,
        settings=SolverSettings(max_iterations=2000, criterion=RelativeResidual(1e-8)),
    )
    return solver, solver.solve(stencil_rhs(48, 8))


@pytest.fixture(scope="module")
def pele_solve():
    matrix = pele_batch("gri30")
    solver = BatchBicgstab(
        matrix,
        BatchJacobi(matrix),
        settings=SolverSettings(max_iterations=300, criterion=RelativeResidual(1e-9)),
    )
    return solver, solver.solve(pele_rhs(matrix))


@pytest.mark.parametrize("key", _KEYS)
class TestPerPlatformInvariants:
    def test_batch_monotonicity(self, key, stencil_solve):
        solver, result = stencil_solve
        spec = gpu(key)
        times = [
            estimate_solve(spec, solver, result, num_batch=nb).total_seconds
            for nb in (2**12, 2**14, 2**16)
        ]
        assert times[0] < times[1] < times[2]

    def test_components_non_negative_and_finite(self, key, pele_solve):
        solver, result = pele_solve
        timing = estimate_solve(gpu(key), solver, result, num_batch=2**15)
        for name, seconds in timing.component_seconds.items():
            assert np.isfinite(seconds) and seconds >= 0.0, name
        assert timing.total_seconds > timing.iteration_seconds > 0

    def test_achieved_rate_below_compute_roof(self, key, pele_solve):
        solver, result = pele_solve
        report = analyze_solve(gpu(key), solver, result, num_batch=2**15)
        point = report.roofline_point
        assert point.achieved_gflops <= point.compute_roof_gflops * 1.001

    def test_occupancy_in_unit_interval(self, key, pele_solve):
        solver, result = pele_solve
        timing = estimate_solve(gpu(key), solver, result, num_batch=2**15)
        occ = timing.occupancy
        assert 0.0 < occ.xve_threading_occupancy <= 1.0
        assert occ.waves >= 1
        assert occ.groups_in_flight >= gpu(key).num_cus

    def test_fp32_never_slower(self, key):
        matrix = three_point_stencil(64, 8)
        b = stencil_rhs(64, 8)
        settings = SolverSettings(max_iterations=2000, criterion=RelativeResidual(1e-5))
        spec = gpu(key)
        s64 = BatchCg(matrix, settings=settings)
        r64 = s64.solve(b)
        m32 = matrix.astype(np.float32)
        s32 = BatchCg(m32, settings=settings)
        r32 = s32.solve(b)
        per64 = estimate_solve(spec, s64, r64, num_batch=2**14).total_seconds / max(
            1.0, float(np.mean(r64.iterations))
        )
        per32 = estimate_solve(spec, s32, r32, num_batch=2**14).total_seconds / max(
            1.0, float(np.mean(r32.iterations))
        )
        assert per32 <= per64 * 1.001

    def test_more_iterations_cost_more(self, key, pele_solve):
        solver, result = pele_solve
        spec = gpu(key)
        loose = BatchBicgstab(
            solver.matrix,
            BatchJacobi(solver.matrix),
            settings=SolverSettings(
                max_iterations=300, criterion=RelativeResidual(1e-4)
            ),
        )
        loose_result = loose.solve(pele_rhs(solver.matrix))
        t_loose = estimate_solve(spec, loose, loose_result, num_batch=2**15)
        t_tight = estimate_solve(spec, solver, result, num_batch=2**15)
        assert loose_result.iterations.mean() < result.iterations.mean()
        assert t_loose.total_seconds < t_tight.total_seconds


class TestCrossPlatformOrderings:
    def test_pvc2_always_fastest_on_pele(self, pele_solve):
        solver, result = pele_solve
        times = {
            key: estimate_solve(gpu(key), solver, result, num_batch=2**17).total_seconds
            for key in _KEYS
        }
        assert times["pvc2"] == min(times.values())
        assert times["a100"] == max(times.values())

    def test_workspace_plans_fit_every_device(self, pele_solve):
        solver, result = pele_solve
        for key in _KEYS:
            timing = estimate_solve(gpu(key), solver, result, num_batch=2**14)
            assert (
                timing.workspace_plan.slm_bytes_used
                <= gpu(key).slm_bytes_per_cu
            )

    def test_cuda_devices_launch_at_warp_width(self, pele_solve):
        solver, result = pele_solve
        for key in ("a100", "h100"):
            timing = estimate_solve(gpu(key), solver, result, num_batch=2**14)
            assert timing.launch_plan.sub_group_size == 32
