"""SLM bank-conflict analyzer (the paper's future-work item)."""

import numpy as np
import pytest

from repro.hw.bank_conflicts import (
    ConflictReport,
    analyze_solver_conflicts,
    gather_conflict_factor,
    strided_conflict_factor,
)
from repro.hw.specs import gpu
from repro.workloads.pele import pele_batch


class TestStridedFactors:
    def test_unit_stride_is_conflict_free(self):
        assert strided_conflict_factor(1, 32, 8, 32) == 1.0
        assert strided_conflict_factor(1, 16, 8, 64) == 1.0

    def test_stride_two_doubles(self):
        assert strided_conflict_factor(2, 32, 8, 32) == 2.0

    def test_power_of_two_strides_worst_case(self):
        # the classic shared-memory pathology: stride = banks/words
        assert strided_conflict_factor(16, 32, 8, 32) == 16.0

    def test_padding_resolves_conflicts(self):
        # the standard fix the paper alludes to: pad the leading dimension
        conflicted = strided_conflict_factor(16, 32, 8, 32)
        padded = strided_conflict_factor(17, 32, 8, 32)
        assert conflicted / padded >= 8.0

    def test_fp32_vs_fp64_elements(self):
        # fp32 at stride 1 is also conflict-free, at half the bytes
        assert strided_conflict_factor(1, 32, 4, 32) == 1.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            strided_conflict_factor(0, 32)
        with pytest.raises(ValueError):
            strided_conflict_factor(1, 32, 8, 0)


class TestGatherFactors:
    def test_identity_pattern_gather_is_free(self):
        from repro.core.matrix import BatchCsr

        eye = BatchCsr.from_dense(np.eye(32)[None])
        assert gather_conflict_factor(eye, 32, 8, 32) == 1.0

    def test_pele_gather_factors_reasonable(self):
        matrix = pele_batch("dodecane_lu")
        for lanes, banks in ((16, 64), (32, 32)):
            factor = gather_conflict_factor(matrix, lanes, 8, banks)
            assert 1.0 <= factor < 4.0

    def test_wide_sub_group_on_fewer_banks_conflicts_more(self):
        matrix = pele_batch("isooctane")
        narrow = gather_conflict_factor(matrix, 16, 8, 64)
        wide = gather_conflict_factor(matrix, 32, 8, 32)
        assert wide >= narrow


class TestAnalyzer:
    def test_report_fields(self):
        matrix = pele_batch("gri30")
        report = analyze_solver_conflicts(gpu("pvc1"), matrix)
        assert isinstance(report, ConflictReport)
        assert report.lanes == 16  # PVC small-matrix sub-group
        assert report.num_banks == 64
        assert report.average_factor >= 1.0
        assert report.resolved_slm_gbps_per_cu >= report.achieved_slm_gbps_per_cu
        assert report.projected_speedup == report.average_factor

    def test_nvidia_uses_32_banks_warp_lanes(self):
        matrix = pele_batch("gri30")
        report = analyze_solver_conflicts(gpu("h100"), matrix)
        assert report.lanes == 32
        assert report.num_banks == 32

    def test_gather_share_bounds(self):
        matrix = pele_batch("drm19")
        with pytest.raises(ValueError):
            analyze_solver_conflicts(gpu("pvc1"), matrix, gather_share=1.5)

    def test_average_interpolates(self):
        matrix = pele_batch("isooctane")
        all_stream = analyze_solver_conflicts(gpu("h100"), matrix, gather_share=0.0)
        all_gather = analyze_solver_conflicts(gpu("h100"), matrix, gather_share=1.0)
        mixed = analyze_solver_conflicts(gpu("h100"), matrix, gather_share=0.5)
        assert all_stream.average_factor <= mixed.average_factor <= all_gather.average_factor
