"""GPU specs (Table 5), terminology (Table 1) and the occupancy model."""

import pytest

from repro.core.launch import KernelLaunchPlan, LaunchConfigurator
from repro.hw.occupancy import EXACT, GREEDY, occupancy_report, resident_groups
from repro.hw.specs import GPUS, TERMINOLOGY_MAP, gpu, table5_rows


class TestSpecs:
    def test_table5_values(self):
        rows = {r["gpu"]: r for r in table5_rows()}
        assert rows["A100"]["fp64_peak_tflops"] == 9.7
        assert rows["H100"]["fp64_peak_tflops"] == 26.0
        assert rows["PVC-1S"]["fp64_peak_tflops"] == 22.9
        assert rows["PVC-2S"]["fp64_peak_tflops"] == 45.8
        assert rows["PVC-2S"]["hbm_bw_peak_tbs"] == 3.2
        assert rows["A100"]["slm_kb"] == 192
        assert rows["H100"]["slm_kb"] == 228
        assert rows["PVC-1S"]["slm_kb"] == 128

    def test_terminology_table1(self):
        assert TERMINOLOGY_MAP["CUDA Core"] == "XVE"
        assert TERMINOLOGY_MAP["Streaming Multiprocessor"] == "Xe-Core (XC)"
        assert TERMINOLOGY_MAP["Processor Cluster"] == "Xe-Slice"
        assert TERMINOLOGY_MAP["N/A"] == "Xe-Stack"

    def test_pvc2_doubles_compute_units(self):
        assert gpu("pvc2").num_cus == 2 * gpu("pvc1").num_cus

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            gpu("mi250")

    def test_per_cu_peaks_are_consistent(self):
        for spec in GPUS.values():
            assert spec.fp64_flops_per_cu * spec.num_cus == pytest.approx(
                spec.fp64_peak_tflops * 1e12
            )

    def test_aggregate_slm_bandwidth(self):
        spec = gpu("pvc1")
        assert spec.slm_bw_total_tbs == pytest.approx(
            spec.slm_eff_gbps_per_cu * 64 / 1000
        )


def _plan(wg=64, sg=16, slm=8 * 1024, groups=1000):
    return KernelLaunchPlan(
        num_groups=groups,
        work_group_size=wg,
        sub_group_size=sg,
        reduction_scope="work_group",
        slm_bytes_per_group=slm,
    )


class TestResidency:
    def test_greedy_policy_is_one_group_per_cu(self):
        assert resident_groups(gpu("pvc1"), _plan(), GREEDY) == 1

    def test_exact_policy_slm_limited(self):
        # 128 KB / 8 KB = 16, but thread capacity 1024/64 = 16 too
        assert resident_groups(gpu("pvc1"), _plan(), EXACT) == 16

    def test_exact_policy_thread_limited(self):
        r = resident_groups(gpu("pvc1"), _plan(wg=512, slm=1024), EXACT)
        assert r == 1024 // 512

    def test_exact_policy_zero_slm_uses_thread_limit(self):
        r = resident_groups(gpu("pvc1"), _plan(wg=64, slm=0), EXACT)
        assert r == 1024 // 64

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            resident_groups(gpu("pvc1"), _plan(), "magic")


class TestOccupancyReport:
    def test_dodecane_case_matches_paper_fig8(self):
        # 54 rows -> wg 64, sg 16 -> 4 hardware threads on 8 XVEs = 50%
        cfg = LaunchConfigurator(gpu("pvc1").device)
        plan = cfg.configure(54, 2**17)
        report = occupancy_report(gpu("pvc1"), plan, 2**17, GREEDY)
        assert report.hw_threads_per_group == 4
        assert report.xve_threading_occupancy == pytest.approx(0.5)

    def test_waves_scale_with_batch(self):
        plan = _plan()
        small = occupancy_report(gpu("pvc1"), plan, 2**13)
        large = occupancy_report(gpu("pvc1"), plan, 2**17)
        assert large.waves == 16 * small.waves

    def test_two_stacks_halve_waves(self):
        plan = _plan()
        one = occupancy_report(gpu("pvc1"), plan, 2**17)
        two = occupancy_report(gpu("pvc2"), plan, 2**17)
        assert one.waves == 2 * two.waves

    def test_occupancy_capped_at_one(self):
        plan = _plan(wg=1024, sg=16)  # 64 threads on 8 XVEs
        report = occupancy_report(gpu("pvc1"), plan, 100)
        assert report.xve_threading_occupancy == 1.0

    def test_positive_batch_required(self):
        with pytest.raises(ValueError):
            occupancy_report(gpu("pvc1"), _plan(), 0)

    def test_as_dict_round_trip(self):
        report = occupancy_report(gpu("a100"), _plan(sg=32), 1024)
        d = report.as_dict()
        assert d["waves"] == report.waves
        assert d["resident_groups_per_cu"] == 1
