"""Traffic splitting and the wave-scheduled runtime estimator."""

import numpy as np
import pytest

from repro.core import BatchBicgstab, BatchCg, BatchJacobi, SolverSettings
from repro.core.counters import TrafficLedger
from repro.core.stop import RelativeResidual
from repro.core.workspace import SlmBudget, plan_workspace
from repro.hw.memmodel import split_traffic
from repro.hw.specs import gpu
from repro.hw.timing import estimate_solve
from repro.workloads.pele import pele_batch, pele_rhs
from repro.workloads.stencil import stencil_rhs, three_point_stencil


def _plan_with_slm():
    return plan_workspace(
        [("r", 8), ("z", 8), ("A_cache", 20)], SlmBudget(10**6), precond_doubles=8
    )


class TestTrafficSplit:
    def test_slm_resident_vectors_count_as_slm(self):
        ledger = TrafficLedger()
        ledger.add_bytes("r", 100.0)
        split = split_traffic(ledger, _plan_with_slm())
        assert split.slm_bytes == 100.0

    def test_spilled_vectors_count_as_hbm(self):
        ledger = TrafficLedger()
        ledger.add_bytes("spilled_vector", 64.0)
        split = split_traffic(ledger, _plan_with_slm())
        assert split.hbm_bytes == 64.0

    def test_matrix_values_follow_cache_placement(self):
        ledger = TrafficLedger()
        ledger.add_bytes("A_values", 50.0)
        cached = split_traffic(ledger, _plan_with_slm())
        assert cached.slm_bytes == 50.0
        uncached = split_traffic(
            ledger, plan_workspace([("r", 8)], SlmBudget(100))
        )
        assert uncached.l2_bytes == 50.0

    def test_pattern_and_rhs_are_l2(self):
        ledger = TrafficLedger()
        ledger.add_bytes("A_pattern", 10.0)
        ledger.add_bytes("b", 5.0)
        split = split_traffic(ledger, _plan_with_slm())
        assert split.l2_bytes == 15.0

    def test_cold_bytes_go_to_hbm(self):
        split = split_traffic(TrafficLedger(), _plan_with_slm(), cold_bytes=123.0)
        assert split.hbm_bytes == 123.0
        assert split.by_object["cold_footprint"] == ("hbm", 123.0)

    def test_negative_cold_bytes_rejected(self):
        with pytest.raises(ValueError):
            split_traffic(TrafficLedger(), _plan_with_slm(), cold_bytes=-1.0)

    def test_fractions_sum_to_one(self):
        ledger = TrafficLedger()
        ledger.add_bytes("r", 10.0)
        ledger.add_bytes("b", 30.0)
        ledger.add_bytes("other", 60.0)
        split = split_traffic(ledger, _plan_with_slm())
        total = sum(split.fraction(level) for level in ("slm", "l2", "hbm"))
        assert total == pytest.approx(1.0)

    def test_scaled_preserves_structure(self):
        ledger = TrafficLedger()
        ledger.add_flops(10)
        ledger.add_bytes("r", 4.0)
        split = split_traffic(ledger, _plan_with_slm()).scaled(3.0)
        assert split.flops == 30
        assert split.slm_bytes == 12.0


def _cg_solve(n=32, nb=8, tol=1e-9):
    matrix = three_point_stencil(n, nb)
    solver = BatchCg(
        matrix,
        settings=SolverSettings(max_iterations=2000, criterion=RelativeResidual(tol)),
    )
    return solver, solver.solve(stencil_rhs(n, nb))


class TestEstimateSolve:
    def test_runtime_scales_linearly_with_batch(self):
        solver, result = _cg_solve()
        spec = gpu("pvc1")
        times = [
            estimate_solve(spec, solver, result, num_batch=nb).iteration_seconds
            for nb in (2**13, 2**14, 2**15, 2**16, 2**17)
        ]
        ratios = np.diff(np.log2(times))
        # Fig 4b: linear once saturated -> doubling batch doubles runtime
        assert np.all(np.abs(ratios - 1.0) < 0.05)

    def test_runtime_grows_with_matrix_size(self):
        spec = gpu("pvc1")
        totals = []
        for n in (16, 32, 64, 128):
            solver, result = _cg_solve(n=n)
            totals.append(
                estimate_solve(spec, solver, result, num_batch=2**15).total_seconds
            )
        assert all(b > a for a, b in zip(totals, totals[1:]))

    def test_two_stacks_faster_but_below_2x(self):
        solver, result = _cg_solve(n=64)
        t1 = estimate_solve(gpu("pvc1"), solver, result, num_batch=2**17)
        t2 = estimate_solve(gpu("pvc2"), solver, result, num_batch=2**17)
        speedup = t1.total_seconds / t2.total_seconds
        assert 1.4 < speedup < 2.0

    def test_breakdown_components_positive_and_binding(self):
        solver, result = _cg_solve()
        timing = estimate_solve(gpu("pvc1"), solver, result, num_batch=2**15)
        assert set(timing.component_seconds) == {"compute", "slm", "l2", "hbm"}
        assert timing.binding_component in timing.component_seconds
        assert timing.total_seconds > timing.launch_overhead_seconds

    def test_num_batch_defaults_to_solved_batch(self):
        solver, result = _cg_solve(nb=8)
        timing = estimate_solve(gpu("a100"), solver, result)
        assert timing.occupancy.waves == 1

    def test_invalid_batch_rejected(self):
        solver, result = _cg_solve()
        with pytest.raises(ValueError):
            estimate_solve(gpu("a100"), solver, result, num_batch=0)

    def test_memory_time_fractions_normalized(self):
        solver, result = _cg_solve()
        timing = estimate_solve(gpu("pvc1"), solver, result, num_batch=2**15)
        assert sum(timing.memory_time_fractions().values()) == pytest.approx(1.0)


class TestPaperRatios:
    """The calibrated model reproduces the paper's averaged cross-device
    ratios (Figs. 5 and 7) within a tolerance band. These are *model
    consistency* checks: the calibration constants are fixed in specs.py
    and shared by every experiment."""

    @pytest.fixture(scope="class")
    def pele_results(self):
        out = {}
        for name in ("drm19", "gri30", "dodecane_lu"):
            matrix = pele_batch(name)
            solver = BatchBicgstab(
                matrix,
                BatchJacobi(matrix),
                settings=SolverSettings(
                    max_iterations=200, criterion=RelativeResidual(1e-9)
                ),
            )
            out[name] = (solver, solver.solve(pele_rhs(matrix)))
        return out

    def test_pvc_beats_nvidia_on_pele_average(self, pele_results):
        ratios_a100, ratios_h100 = [], []
        for solver, result in pele_results.values():
            t = {
                key: estimate_solve(gpu(key), solver, result, num_batch=2**17).total_seconds
                for key in ("a100", "h100", "pvc1", "pvc2")
            }
            ratios_a100.append(t["a100"] / t["pvc1"])
            ratios_h100.append(t["h100"] / t["pvc2"])
        # paper: PVC-1S ~1.7x A100; PVC-2S ~2.4x H100 (averages)
        assert 1.4 < np.mean(ratios_a100) < 2.1
        assert 2.0 < np.mean(ratios_h100) < 2.9

    def test_h100_beats_a100(self, pele_results):
        for solver, result in pele_results.values():
            ta = estimate_solve(gpu("a100"), solver, result, num_batch=2**17)
            th = estimate_solve(gpu("h100"), solver, result, num_batch=2**17)
            assert th.total_seconds < ta.total_seconds
