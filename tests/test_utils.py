"""Validation helpers and unit formatting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DimensionMismatchError
from repro.utils import (
    check_positive,
    check_power_of_two,
    ensure_2d_batch,
    format_bytes,
    format_flops,
    format_time,
    round_up,
)


class TestChecks:
    def test_check_positive(self):
        check_positive("x", 1e-300)
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_power_of_two(self):
        check_power_of_two("n", 1)
        check_power_of_two("n", 64)
        for bad in (0, -4, 3, 48):
            with pytest.raises(ValueError):
                check_power_of_two("n", bad)

    def test_round_up(self):
        assert round_up(54, 16) == 64
        assert round_up(64, 16) == 64
        assert round_up(0, 16) == 16
        assert round_up(1, 16) == 16

    @given(value=st.integers(1, 10_000), multiple=st.integers(1, 256))
    def test_round_up_property(self, value, multiple):
        result = round_up(value, multiple)
        assert result % multiple == 0
        assert result >= value
        assert result - value < multiple


class TestEnsure2dBatch:
    def test_broadcast_1d(self):
        out = ensure_2d_batch("b", np.arange(3.0), 4, 3)
        assert out.shape == (4, 3)
        assert np.all(out[2] == [0, 1, 2])

    def test_passthrough_2d(self):
        x = np.ones((2, 3))
        out = ensure_2d_batch("b", x, 2, 3)
        assert out.shape == (2, 3)

    def test_wrong_length_rejected(self):
        with pytest.raises(DimensionMismatchError):
            ensure_2d_batch("b", np.ones(4), 2, 3)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(DimensionMismatchError):
            ensure_2d_batch("b", np.ones((2, 3, 4)), 2, 3)

    def test_output_is_contiguous_float64(self):
        out = ensure_2d_batch("b", np.ones((2, 3), dtype=np.float32), 2, 3)
        assert out.dtype == np.float64
        assert out.flags.c_contiguous


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(1500) == "1.5 KB"
        assert format_bytes(3e12) == "3 TB"

    def test_format_flops(self):
        assert format_flops(22.9e12) == "22.9 TFLOP/s"
        assert format_flops(5) == "5 FLOP/s"

    def test_format_time(self):
        assert format_time(2e-9) == "2 ns"
        assert format_time(1.5e-3) == "1.5 ms"
        assert format_time(12.0) == "12 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
        with pytest.raises(ValueError):
            format_time(-0.1)
