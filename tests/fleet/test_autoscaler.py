"""The autoscaler control loop: pressure signals, hysteresis, cooldown."""

import math
import time

import pytest

from repro.fleet import Autoscaler, FleetConfig, FleetSignals
from repro.fleet.autoscaler import COOLDOWN, HOLD, SCALE_DOWN, SCALE_UP
from repro.observability.metrics import MetricsRegistry
from repro.serve import ServeConfig


class _FakeShardService:
    """Just enough SolverService surface for the autoscaler's signals."""

    def __init__(self, max_pending: int) -> None:
        self.metrics = MetricsRegistry()
        self.pending = 0


class _FakeShard:
    def __init__(self, name: str, max_pending: int) -> None:
        self.name = name
        self.state = "active"
        self.service = _FakeShardService(max_pending)


class _FakeFleet:
    """A scriptable fleet: tests set latencies/pending, count actions."""

    def __init__(self, replicas: int = 2, **config_overrides) -> None:
        config_overrides.setdefault("initial_replicas", replicas)
        config_overrides.setdefault(
            "serve", ServeConfig(max_pending=100)
        )
        self.config = FleetConfig(**config_overrides)
        self._shards = [
            _FakeShard(f"shard-{i}", self.config.serve.max_pending)
            for i in range(replicas)
        ]
        self.metrics = MetricsRegistry()
        self.scale_up_calls = 0
        self.scale_down_calls = 0

    def active_shards(self):
        return list(self._shards)

    @property
    def pending(self) -> int:
        return sum(s.service.pending for s in self._shards)

    def scale_up(self, count: int = 1) -> list:
        self.scale_up_calls += 1
        name = f"shard-{len(self._shards)}"
        self._shards.append(_FakeShard(name, self.config.serve.max_pending))
        return [name]

    def scale_down(self, count: int = 1, timeout=None) -> list:
        self.scale_down_calls += 1
        return [self._shards.pop().name]

    def set_latency(self, shard_index: int, latency_ms: float, samples: int = 32):
        hdr = self._shards[shard_index].service.metrics.log_histogram(
            "serve.latency_hdr_ms"
        )
        for _ in range(samples):
            hdr.observe(latency_ms)

    def set_pending(self, total: int) -> None:
        per_shard, extra = divmod(total, len(self._shards))
        for i, shard in enumerate(self._shards):
            shard.service.pending = per_shard + (1 if i < extra else 0)


def _scaler(fleet: _FakeFleet) -> Autoscaler:
    # frozen fake clock: the SLO monitors' burn windows never advance, so
    # only the latency/utilization signals drive these tests
    return Autoscaler(fleet, clock=lambda: 1000.0)


class TestSignals:
    def test_observe_collects_everything(self):
        fleet = _FakeFleet(replicas=2, target_p99_ms=100.0)
        fleet.set_latency(0, 40.0)
        fleet.set_latency(1, 250.0)
        fleet.set_pending(50)
        signals = _scaler(fleet).observe()
        assert signals.replicas == 2
        assert signals.pending == 50
        assert signals.utilization == pytest.approx(50 / 200)
        assert signals.worst_p99_ms == pytest.approx(250.0, rel=0.2)
        assert not signals.burning
        assert fleet.metrics.gauge("fleet.utilization").value == signals.utilization

    def test_no_latency_samples_is_nan(self):
        signals = _scaler(_FakeFleet()).observe()
        assert math.isnan(signals.worst_p99_ms)

    def test_burning_property(self):
        quiet = FleetSignals(2, 0, 0.0, math.nan)
        hot = FleetSignals(2, 0, 0.0, math.nan, burning_shards=["shard-0"])
        assert not quiet.burning
        assert hot.burning

    def test_burning_shards_are_pressure(self):
        fleet = _FakeFleet(target_p99_ms=100.0)
        scaler = _scaler(fleet)
        hot = FleetSignals(2, 0, 0.0, math.nan, burning_shards=["shard-0"])
        assert scaler._pressured(hot)
        assert not scaler._relaxed(hot)


class TestHysteresis:
    def test_scale_up_needs_patience(self):
        fleet = _FakeFleet(
            replicas=1, target_p99_ms=100.0, scale_up_patience=2, max_replicas=4
        )
        scaler = _scaler(fleet)
        fleet.set_latency(0, 500.0)
        assert scaler.evaluate() == HOLD  # first pressured evaluation: wait
        assert fleet.scale_up_calls == 0
        assert scaler.evaluate() == SCALE_UP
        assert fleet.scale_up_calls == 1

    def test_one_burst_never_scales(self):
        fleet = _FakeFleet(
            replicas=1, target_p99_ms=100.0, scale_up_patience=2, max_replicas=4
        )
        scaler = _scaler(fleet)
        fleet.set_latency(0, 500.0)
        assert scaler.evaluate() == HOLD
        # the burst passes: a calm evaluation resets the streak
        fleet._shards[0].service.metrics = MetricsRegistry()
        assert scaler.evaluate() == HOLD
        fleet.set_latency(0, 500.0)
        assert scaler.evaluate() == HOLD
        assert fleet.scale_up_calls == 0

    def test_scale_down_when_relaxed(self):
        fleet = _FakeFleet(
            replicas=3,
            target_p99_ms=100.0,
            scale_down_patience=3,
            min_replicas=1,
        )
        scaler = _scaler(fleet)
        for i in range(3):
            fleet.set_latency(i, 10.0)  # well under half the target
        verdicts = [scaler.evaluate() for _ in range(3)]
        assert verdicts == [HOLD, HOLD, SCALE_DOWN]
        assert fleet.scale_down_calls == 1

    def test_bounds_respected(self):
        fleet = _FakeFleet(
            replicas=2, target_p99_ms=100.0, scale_up_patience=1,
            max_replicas=2, cooldown_evaluations=0,
        )
        scaler = _scaler(fleet)
        fleet.set_latency(0, 500.0)
        # pressured but already at max_replicas: hold, do not thrash
        assert scaler.evaluate() == HOLD
        assert fleet.scale_up_calls == 0

    def test_cooldown_after_action(self):
        fleet = _FakeFleet(
            replicas=1, target_p99_ms=100.0, scale_up_patience=1,
            cooldown_evaluations=2, max_replicas=8,
        )
        scaler = _scaler(fleet)
        fleet.set_latency(0, 500.0)
        assert scaler.evaluate() == SCALE_UP
        # still pressured, but the new replica set gets to settle first
        assert scaler.evaluate() == COOLDOWN
        assert scaler.evaluate() == COOLDOWN
        assert scaler.evaluate() == SCALE_UP
        assert fleet.scale_up_calls == 2
        assert scaler.decisions == [SCALE_UP, COOLDOWN, COOLDOWN, SCALE_UP]

    def test_monitors_dropped_with_drained_shards(self):
        fleet = _FakeFleet(replicas=2, target_p99_ms=100.0)
        scaler = _scaler(fleet)
        scaler.observe()
        assert set(scaler._monitors) == {"shard-0", "shard-1"}
        fleet._shards.pop()
        scaler.observe()
        assert set(scaler._monitors) == {"shard-0"}


class TestBackgroundLoop:
    def test_start_stop_runs_evaluations(self):
        fleet = _FakeFleet(replicas=1, target_p99_ms=100.0)
        scaler = _scaler(fleet)
        scaler.start(interval_s=0.01)
        with pytest.raises(RuntimeError):
            scaler.start(interval_s=0.01)
        deadline = time.monotonic() + 5.0
        while not scaler.decisions and time.monotonic() < deadline:
            time.sleep(0.01)
        scaler.stop()
        assert scaler.decisions
        scaler.stop()  # idempotent
