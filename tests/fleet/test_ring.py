"""The consistent-hash ring: determinism, remap bounds, occupancy."""

import pytest

from repro.fleet import HashRing, key_position, ring_token
from repro.serve.request import SolveRequest


def _populated(num_nodes: int, virtual_nodes: int = 64) -> HashRing:
    ring = HashRing(virtual_nodes)
    for i in range(num_nodes):
        ring.add(f"shard-{i}")
    return ring


KEYS = [f"key-{i}" for i in range(2000)]


class TestMembership:
    def test_add_remove_len_contains(self):
        ring = HashRing()
        assert len(ring) == 0
        ring.add("a")
        ring.add("b")
        assert len(ring) == 2
        assert "a" in ring and "b" in ring
        assert ring.nodes == ["a", "b"]
        ring.remove("a")
        assert "a" not in ring
        assert ring.nodes == ["b"]

    def test_duplicate_add_raises(self):
        ring = HashRing()
        ring.add("a")
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add("a")

    def test_remove_absent_raises(self):
        ring = HashRing()
        with pytest.raises(KeyError):
            ring.remove("ghost")

    def test_empty_lookup_raises(self):
        with pytest.raises(LookupError, match="empty"):
            HashRing().node_for("anything")

    def test_invalid_virtual_nodes(self):
        with pytest.raises(ValueError):
            HashRing(0)


class TestDeterminism:
    def test_same_key_same_node_across_instances(self):
        # SHA-1 hashing: two independently built rings with the same
        # membership agree on every key (the cross-process contract)
        first = _populated(4)
        second = _populated(4)
        for key in KEYS[:200]:
            assert first.node_for(key) == second.node_for(key)

    def test_key_position_is_stable(self):
        assert key_position("key-0") == key_position("key-0")
        assert key_position("key-0") != key_position("key-1")

    def test_batch_key_routing(self, rng=None):
        import numpy as np
        import scipy.sparse as sp

        matrix = sp.diags(
            [[-1.0] * 7, [2.0] * 8, [-1.0] * 7], offsets=[-1, 0, 1], format="csr"
        )
        a = SolveRequest(matrix, [1.0] * 8, solver="cg").batch_key
        b = SolveRequest(matrix.copy(), list(np.ones(8)), solver="cg").batch_key
        c = SolveRequest(matrix.copy(), [1.0] * 8, solver="bicgstab").batch_key
        ring = _populated(4)
        # equal keys (same pattern/config) route together; a different
        # solver is a different compatibility class with its own token
        assert ring.node_for(a) == ring.node_for(b)
        assert ring_token(a) == ring_token(b)
        assert ring_token(a) != ring_token(c)


class TestRemapBounds:
    def test_add_moves_only_to_newcomer(self):
        ring = _populated(4)
        before = ring.assignments(KEYS)
        ring.add("shard-4")
        after = ring.assignments(KEYS)
        moved = [k for k in before if before[k] != after[k]]
        assert moved, "adding a shard must claim some keys"
        assert all(after[k] == "shard-4" for k in moved)
        # ~1/(N+1) of keys move; gate at 1.5/N like the bench
        assert len(moved) / len(KEYS) <= 1.5 / 5

    def test_remove_restores_and_spares_survivors(self):
        ring = _populated(4)
        before = ring.assignments(KEYS)
        ring.add("shard-4")
        after_add = ring.assignments(KEYS)
        ring.remove("shard-4")
        assert ring.assignments(KEYS) == before
        # every key that moves on removal was owned by the removed shard
        moved = [k for k in after_add if after_add[k] != before[k]]
        assert all(after_add[k] == "shard-4" for k in moved)


class TestOccupancy:
    def test_shares_sum_to_one(self):
        ring = _populated(5)
        occupancy = ring.occupancy()
        assert set(occupancy) == {f"shard-{i}" for i in range(5)}
        assert sum(occupancy.values()) == pytest.approx(1.0)

    def test_more_vnodes_smooth_the_arcs(self):
        coarse = max(_populated(4, virtual_nodes=8).occupancy().values())
        fine = max(_populated(4, virtual_nodes=512).occupancy().values())
        assert fine < coarse
        assert fine < 0.40  # ideal is 0.25; 512 vnodes gets close

    def test_empty_ring_occupancy(self):
        assert HashRing().occupancy() == {}

    def test_single_node_owns_everything(self):
        ring = HashRing(16)
        ring.add("only")
        assert ring.occupancy() == {"only": pytest.approx(1.0)}
        assert ring.node_for("whatever") == "only"
