"""The fleet CLI surfaces: fleet-demo, serve-demo --shards, top --shards."""

import json

from repro.__main__ import main
from repro.telemetry import dashboard_text
from repro.observability.metrics import MetricsRegistry


class TestFleetDemo:
    def test_manual_lifecycle(self, capsys, tmp_path):
        metrics_out = tmp_path / "fleet.prom"
        events_out = tmp_path / "fleet_events.jsonl"
        code = main(
            [
                "fleet-demo",
                "--requests", "12", "--keys", "4", "--size", "8",
                "--batch-size", "2", "--shards", "2",
                "--rate", "10000", "--dwell-ms", "0",
                "--metrics-out", str(metrics_out),
                "--events-out", str(events_out),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-shard counters" in out
        assert "scale-up: started shard-2" in out
        assert "scale-down: drained" in out
        assert "fleet metrics" in out
        assert "fleet_replicas" in metrics_out.read_text()
        events = [
            json.loads(line) for line in events_out.read_text().splitlines()
        ]
        assert any(ev["type"] == "fleet.rebalance" for ev in events)

    def test_autoscale_loop(self, capsys):
        code = main(
            [
                "fleet-demo",
                "--requests", "8", "--keys", "4", "--size", "8",
                "--batch-size", "2", "--shards", "1",
                "--rate", "10000", "--dwell-ms", "0",
                "--autoscale", "--autoscale-interval", "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "autoscaler on" in out


class TestServeDemoShards:
    def test_shards_flag_routes_through_fleet(self, capsys):
        code = main(
            [
                "serve-demo",
                "--requests", "12", "--size", "8", "--batch-size", "2",
                "--shards", "2", "--keys", "4", "--workers", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 shards" in out
        assert "per-shard counters" in out
        assert "fleet metrics" in out

    def test_default_path_unchanged(self, capsys):
        code = main(
            ["serve-demo", "--requests", "4", "--size", "8", "--batch-size", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serve metrics" in out
        assert "per-shard counters" not in out


class TestTopFleetPanel:
    def test_top_shards_renders_panel(self, capsys):
        code = main(
            [
                "top", "--shards", "2", "--frames", "1", "--interval", "0.05",
                "--requests", "8", "--size", "8", "--batch-size", "2",
                "--workers", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet shards" in out
        assert "ring occupancy:" in out

    def test_dashboard_fleet_section_is_duck_typed(self):
        class _StubFleet:
            def shard_stats(self):
                return [
                    {
                        "shard": "shard-0", "state": "active", "pending": 1,
                        "accepted": 5, "served": 4, "rejected": 0,
                        "failed": 0, "flushes": 2, "fallbacks": 0,
                        "p99_ms": 12.5,
                    },
                    {
                        "shard": "shard-1", "state": "draining", "pending": 0,
                        "accepted": 2, "served": 2, "rejected": 0,
                        "failed": 0, "flushes": 1, "fallbacks": 0,
                        "p99_ms": float("nan"),
                    },
                ]

            def ring_occupancy(self):
                return {"shard-0": 0.6, "shard-1": 0.4}

        frame = dashboard_text(MetricsRegistry(), fleet=_StubFleet())
        assert "fleet shards" in frame
        assert "shard-0" in frame and "draining" in frame
        assert "12.5" in frame
        # NaN p99 (no samples yet) renders as a dash, not 'nan'
        assert "nan" not in frame
        assert "ring occupancy: shard-0 60.0%, shard-1 40.0%" in frame
