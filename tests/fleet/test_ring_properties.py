"""Property tests: consistent-hash ring stability under membership churn.

The routing guarantees the fleet's rebalancing story depends on:

* determinism — the same membership always routes a key the same way;
* minimal disruption — adding a node only *steals* keys (every moved key
  moves TO the new node), removing a node only *orphans* its own keys
  (every other key keeps its owner);
* full coverage — occupancy fractions sum to 1 over the live members.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import HashRing

_node_names = st.sampled_from([f"shard-{i}" for i in range(8)])
_keys = st.lists(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=12),
    min_size=1,
    max_size=40,
    unique=True,
)
# a churn script: add/remove node names (applied only when legal)
_churn = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), _node_names),
    min_size=1,
    max_size=20,
)


def _build(nodes):
    ring = HashRing(virtual_nodes=32)
    for node in nodes:
        ring.add(node)
    return ring


@settings(max_examples=60, deadline=None)
@given(keys=_keys, churn=_churn)
def test_churn_moves_only_the_necessary_keys(keys, churn):
    ring = _build(["shard-seed"])
    members = {"shard-seed"}
    owners = {key: ring.node_for(key) for key in keys}
    for op, node in churn:
        if op == "add":
            if node in members:
                continue
            ring.add(node)
            members.add(node)
            for key, old in owners.items():
                new = ring.node_for(key)
                # the new node only steals: a key that moved moved to it
                assert new == old or new == node, (key, old, new, node)
                owners[key] = new
        else:
            if node not in members or len(members) == 1:
                continue
            ring.remove(node)
            members.discard(node)
            for key, old in owners.items():
                new = ring.node_for(key)
                # keys the removed node didn't own keep their owner
                if old != node:
                    assert new == old, (key, old, new, node)
                assert new != node
                owners[key] = new


@settings(max_examples=60, deadline=None)
@given(
    nodes=st.lists(_node_names, min_size=1, max_size=8, unique=True),
    keys=_keys,
)
def test_routing_is_deterministic_in_membership(nodes, keys):
    a = _build(nodes)
    b = _build(list(reversed(nodes)))  # insertion order must not matter
    for key in keys:
        owner = a.node_for(key)
        assert owner in nodes
        assert b.node_for(key) == owner


@settings(max_examples=60, deadline=None)
@given(nodes=st.lists(_node_names, min_size=1, max_size=8, unique=True))
def test_occupancy_covers_the_ring(nodes):
    ring = _build(nodes)
    occupancy = ring.occupancy()
    assert set(occupancy) == set(nodes)
    assert abs(sum(occupancy.values()) - 1.0) < 1e-9
    assert all(fraction > 0.0 for fraction in occupancy.values())


@settings(max_examples=30, deadline=None)
@given(
    nodes=st.lists(_node_names, min_size=2, max_size=8, unique=True),
    keys=_keys,
)
def test_remove_then_readd_restores_routing(nodes, keys):
    ring = _build(nodes)
    before = {key: ring.node_for(key) for key in keys}
    ring.remove(nodes[0])
    ring.add(nodes[0])
    assert {key: ring.node_for(key) for key in keys} == before
