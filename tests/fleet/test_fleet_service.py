"""FleetService end-to-end: routing, admission, scaling, drain, wiring."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ServiceClosedError, ServiceSaturatedError
from repro.fleet import FleetConfig, FleetService
from repro.observability import render_prometheus
from repro.observability.tracer import Tracer
from repro.serve import ServeConfig, SolveRequest


def _tridiag(n):
    return sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )


def _request(rng, n=8, key_salt=0, **kwargs):
    """One well-conditioned request; ``key_salt`` varies only the BatchKey."""
    matrix = _tridiag(n)
    matrix.data = matrix.data * rng.uniform(0.9, 1.1, size=matrix.nnz)
    kwargs.setdefault("solver", "cg")
    kwargs.setdefault("preconditioner", "jacobi")
    kwargs.setdefault("max_iterations", 500 + key_salt)
    return SolveRequest(matrix, rng.standard_normal(n), **kwargs)


def _config(**overrides):
    serve = overrides.pop(
        "serve", ServeConfig(max_batch_size=4, max_wait_ms=5.0, num_workers=1)
    )
    overrides.setdefault("initial_replicas", 2)
    return FleetConfig(serve=serve, **overrides)


class TestRouting:
    def test_key_affinity(self):
        rng = np.random.default_rng(0)
        with FleetService(_config(initial_replicas=3)) as fleet:
            requests = [_request(rng, key_salt=i % 6) for i in range(24)]
            owners = {}
            for request in requests:
                owner = fleet.ring.node_for(request.batch_key)
                token = repr(request.batch_key)
                # every request of one key sees one owner
                assert owners.setdefault(token, owner) == owner
            tickets = [fleet.submit(r) for r in requests]
            fleet.flush()
            assert all(t.result(timeout=60.0).converged for t in tickets)
            # routed counters agree with the ring's assignment
            stats = {row["shard"]: row["served"] for row in fleet.shard_stats()}
            assert sum(stats.values()) == 24

    def test_solve_convenience(self):
        rng = np.random.default_rng(1)
        config = _config(
            serve=ServeConfig(max_batch_size=1, max_wait_ms=1.0, num_workers=1)
        )
        with FleetService(config) as fleet:
            outcome = fleet.solve(_request(rng), timeout=60.0)
            assert outcome.converged

    def test_per_shard_tuning_namespace(self, tmp_path):
        base = tmp_path / "tuning.json"
        with FleetService(_config(tuning_db_path=str(base))) as fleet:
            paths = {
                shard.name: shard.service.config.tuning_db_path
                for shard in fleet.shards()
            }
        assert paths["shard-0"] == str(tmp_path / "tuning.shard-0.json")
        assert paths["shard-1"] == str(tmp_path / "tuning.shard-1.json")
        assert len(set(paths.values())) == 2

    def test_wide_backend_shards(self):
        rng = np.random.default_rng(2)
        config = _config(
            serve=ServeConfig(
                max_batch_size=4, max_wait_ms=5.0, num_workers=1, backend="wide"
            )
        )
        with FleetService(config) as fleet:
            tickets = [fleet.submit(_request(rng, key_salt=i % 4)) for i in range(8)]
            fleet.flush()
            assert all(t.result(timeout=60.0).converged for t in tickets)


class TestAdmission:
    def test_fleet_backpressure_fires_before_shards(self):
        rng = np.random.default_rng(3)
        config = _config(
            serve=ServeConfig(
                max_batch_size=64, max_wait_ms=500.0, max_pending=64, num_workers=1
            ),
            max_pending=3,
        )
        with FleetService(config) as fleet:
            held = [fleet.submit(_request(rng, key_salt=i)) for i in range(3)]
            with pytest.raises(ServiceSaturatedError) as excinfo:
                fleet.submit(_request(rng, key_salt=9))
            assert excinfo.value.retry_after_s > 0
            assert fleet.metrics.counter("fleet.rejected").value == 1
            # no shard saw the rejected request
            assert all(
                row["rejected"] == 0 for row in fleet.shard_stats()
            )
            fleet.flush()
            assert all(t.result(timeout=60.0).converged for t in held)

    def test_submit_after_close_raises(self):
        fleet = FleetService(_config())
        fleet.close()
        rng = np.random.default_rng(4)
        with pytest.raises(ServiceClosedError):
            fleet.submit(_request(rng))

    def test_double_close_is_noop(self):
        fleet = FleetService(_config())
        fleet.close()
        fleet.close()


class TestScaling:
    def test_scale_up_bounded_by_max_replicas(self):
        with FleetService(_config(initial_replicas=2, max_replicas=3)) as fleet:
            assert fleet.scale_up(5) == ["shard-2"]
            assert fleet.num_replicas == 3
            assert fleet.scale_up() == []
            assert fleet.metrics.counter("fleet.scale_ups").value == 1

    def test_scale_down_bounded_by_min_replicas(self):
        with FleetService(_config(initial_replicas=2, min_replicas=2)) as fleet:
            assert fleet.scale_down() == []
            assert fleet.num_replicas == 2

    def test_scale_up_emits_rebalance_and_reroutes(self):
        rng = np.random.default_rng(5)
        with FleetService(_config(initial_replicas=2)) as fleet:
            requests = [_request(rng, key_salt=i) for i in range(24)]
            before = {
                repr(r.batch_key): fleet.ring.node_for(r.batch_key)
                for r in requests
            }
            for request in requests:
                fleet.submit(request)
            fleet.flush()
            fleet.wait_idle(timeout=60.0)

            fleet.scale_up(1)
            after = {
                repr(r.batch_key): fleet.ring.node_for(r.batch_key)
                for r in requests
            }
            moved = sum(1 for token in before if before[token] != after[token])

            # resubmitting the same keys emits one request.rerouted per
            # request whose owner changed (grouped per submission here:
            # one request per key, so counts match exactly)
            for request in requests:
                fleet.submit(request)
            fleet.flush()
            fleet.wait_idle(timeout=60.0)
            assert fleet.metrics.counter("fleet.rerouted").value == moved
            types = [ev.type for ev in fleet.events.events()]
            assert "fleet.rebalance" in types
            if moved:
                assert "request.rerouted" in types

    def test_graceful_drain_loses_nothing(self):
        rng = np.random.default_rng(6)
        config = _config(
            serve=ServeConfig(
                max_batch_size=4,
                max_wait_ms=5.0,
                num_workers=1,
                device_dwell_ms=10.0,
            )
        )
        with FleetService(config) as fleet:
            tickets = [fleet.submit(_request(rng, key_salt=i % 8)) for i in range(24)]
            fleet.flush()
            drained = fleet.scale_down(1)
            assert len(drained) == 1
            assert all(t.result(timeout=60.0).converged for t in tickets)
            assert fleet.num_replicas == 1
            actions = {
                ev.fields.get("action")
                for ev in fleet.events.events()
                if ev.type == "fleet.rebalance"
            }
            assert {"drain_begin", "drain_complete"} <= actions

    def test_drain_unknown_shard_raises(self):
        with FleetService(_config()) as fleet:
            with pytest.raises(KeyError):
                fleet.drain("shard-99")


class TestObservability:
    def test_prometheus_shard_labels(self):
        rng = np.random.default_rng(7)
        with FleetService(_config()) as fleet:
            tickets = [fleet.submit(_request(rng, key_salt=i)) for i in range(8)]
            fleet.flush()
            for ticket in tickets:
                ticket.result(timeout=60.0)
            fleet.refresh_metrics()
            text = render_prometheus(fleet.metrics)
        assert 'shard="shard-0"' in text
        assert "fleet_replicas" in text

    def test_latency_histogram_merges_shards(self):
        rng = np.random.default_rng(8)
        with FleetService(_config()) as fleet:
            tickets = [fleet.submit(_request(rng, key_salt=i)) for i in range(12)]
            fleet.flush()
            for ticket in tickets:
                ticket.result(timeout=60.0)
            rollup = fleet.latency_histogram()
            assert rollup.count == 12
            per_shard = sum(
                shard.service.metrics.log_histogram("serve.latency_hdr_ms").count
                for shard in fleet.shards()
            )
            assert per_shard == 12

    def test_router_span_links_request_trace(self):
        tracer = Tracer()
        rng = np.random.default_rng(9)
        with FleetService(_config(), tracer=tracer) as fleet:
            request = _request(rng)
            fleet.solve(request, timeout=60.0)
        routes = [s for s in tracer.spans if s.name == "fleet.route"]
        assert routes, "the router must record its leg of the journey"
        route = routes[0]
        assert route.args["shard"].startswith("shard-")
        # pinned to the request's trace, like the shard flush span's link
        assert route.trace_id == request.trace_context.trace_id
        flushes = [s for s in tracer.spans if s.name == "serve.flush"]
        assert any(
            link["trace_id"] == request.trace_context.trace_id
            for span in flushes
            for link in span.links
        )

    def test_context_manager_abort_on_error(self):
        rng = np.random.default_rng(10)
        config = _config(
            serve=ServeConfig(max_batch_size=64, max_wait_ms=500.0, num_workers=1)
        )
        with pytest.raises(RuntimeError, match="boom"):
            with FleetService(config) as fleet:
                ticket = fleet.submit(_request(rng))
                raise RuntimeError("boom")
        # abort path: the queued request fails fast instead of hanging
        with pytest.raises(ServiceClosedError):
            ticket.result(timeout=5.0)
