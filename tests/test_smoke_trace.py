"""Tier-1 wiring for ``scripts/smoke_trace.py`` and the ``repro trace`` CLI."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.observability import validate_chrome_trace

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_smoke_trace_script_in_process(tmp_path):
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        import smoke_trace
    finally:
        sys.path.pop(0)
    out = tmp_path / "trace_smoke.json"
    assert smoke_trace.main(["--out", str(out)]) == 0
    counts = validate_chrome_trace(out)
    assert counts["kernel_spans"] >= 1
    assert counts["counters"] >= 1


def test_trace_cli_subprocess(tmp_path):
    """The acceptance command: ``python -m repro trace stencil --trace-out ...``."""
    out = tmp_path / "t.json"
    env_src = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "trace",
            "stencil",
            "--sizes",
            "16",
            "--nb-solve",
            "2",
            "--trace-out",
            str(out),
            "--no-summary",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "trace written to" in proc.stdout
    counts = validate_chrome_trace(out)
    assert counts["kernel_spans"] >= 1
