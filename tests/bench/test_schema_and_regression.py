"""BENCH_*.json schema envelope and the perf-regression gate."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    bench_payload,
    flatten_metrics,
    git_revision,
    load_bench,
    write_bench,
)

REPO = Path(__file__).resolve().parent.parent.parent


def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO / "scripts" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_regression", module)
    spec.loader.exec_module(module)
    return module


class TestSchema:
    def test_payload_round_trip(self, tmp_path):
        payload = bench_payload(
            "demo",
            workload={"rows": 8},
            metrics={"throughput": 12.5, "nested": {"p99": 3.0}},
            notes="hand-made",
            date="2026-08-06",
            git_rev="deadbeef",
        )
        assert payload["schema_version"] == SCHEMA_VERSION
        path = write_bench(tmp_path / "BENCH_demo.json", payload)
        assert load_bench(path) == payload

    def test_defaults_fill_provenance(self):
        payload = bench_payload("demo", workload={}, metrics={})
        assert payload["date"]
        # inside this repo's work tree the rev resolves
        assert payload["git_rev"] == git_revision()

    def test_load_rejects_pre_schema_artifact(self, tmp_path):
        legacy = tmp_path / "BENCH_old.json"
        legacy.write_text(json.dumps({"benchmark": "old", "speed": 1.0}))
        with pytest.raises(ValueError, match="missing"):
            load_bench(legacy)

    def test_load_rejects_future_version(self, tmp_path):
        artifact = tmp_path / "BENCH_future.json"
        artifact.write_text(
            json.dumps(
                {
                    "schema_version": 99,
                    "benchmark": "x",
                    "workload": {},
                    "metrics": {},
                }
            )
        )
        with pytest.raises(ValueError, match="unsupported"):
            load_bench(artifact)

    def test_flatten_metrics_paths(self):
        payload = bench_payload(
            "demo",
            workload={},
            metrics={
                "top": 1,
                "nested": {"a": 2.5, "flag": True},
                "sweep": [{"x": 10}, {"x": 20}],
                "skip_me": "a string",
                "null": None,
            },
        )
        flat = flatten_metrics(payload)
        assert flat == {
            "top": 1.0,
            "nested.a": 2.5,
            "nested.flag": 1.0,
            "sweep.0.x": 10.0,
            "sweep.1.x": 20.0,
        }

    def test_committed_artifacts_conform(self):
        bench_files = sorted(REPO.glob("BENCH_*.json"))
        assert bench_files, "committed BENCH artifacts must exist"
        for path in bench_files:
            payload = load_bench(path)
            assert payload["benchmark"]
            assert flatten_metrics(payload)


class TestRegressionGate:
    def _write_world(self, tmp_path, throughput: float) -> tuple[Path, Path]:
        artifact = bench_payload(
            "serve_throughput",
            workload={"rows": 32},
            metrics={"batching_win": {"speedup": throughput}},
            date="2026-08-06",
            git_rev="cafe",
        )
        write_bench(tmp_path / "BENCH_serve_throughput.json", artifact)
        manifest = {
            "schema_version": 1,
            "benchmarks": {
                "BENCH_serve_throughput.json": {
                    "metrics": {
                        "batching_win.speedup": {
                            "baseline": 4.0,
                            "direction": "higher",
                            "tolerance_pct": 15.0,
                        }
                    }
                }
            },
        }
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(json.dumps(manifest))
        return manifest_path, tmp_path

    def test_baseline_passes(self, tmp_path, capsys):
        gate = _load_check_regression()
        manifest, root = self._write_world(tmp_path, throughput=4.0)
        code = gate.main(["--manifest", str(manifest), "--root", str(root)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_twenty_percent_regression_fails(self, tmp_path, capsys):
        gate = _load_check_regression()
        manifest, root = self._write_world(tmp_path, throughput=4.0 * 0.8)
        code = gate.main(["--manifest", str(manifest), "--root", str(root)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_within_tolerance_passes(self, tmp_path):
        gate = _load_check_regression()
        manifest, root = self._write_world(tmp_path, throughput=4.0 * 0.9)
        code = gate.main(["--manifest", str(manifest), "--root", str(root)])
        assert code == 0

    def test_missing_metric_fails(self, tmp_path):
        gate = _load_check_regression()
        manifest, root = self._write_world(tmp_path, throughput=4.0)
        artifact = load_bench(root / "BENCH_serve_throughput.json")
        artifact["metrics"] = {"something_else": 1.0}
        write_bench(root / "BENCH_serve_throughput.json", artifact)
        code = gate.main(["--manifest", str(manifest), "--root", str(root)])
        assert code == 1

    def test_missing_artifact_fails(self, tmp_path):
        gate = _load_check_regression()
        manifest, root = self._write_world(tmp_path, throughput=4.0)
        (root / "BENCH_serve_throughput.json").unlink()
        code = gate.main(["--manifest", str(manifest), "--root", str(root)])
        assert code == 1

    def test_lower_is_better_direction(self, tmp_path):
        gate = _load_check_regression()
        artifact = bench_payload(
            "overhead",
            workload={},
            metrics={"slowdown_x": 3.0},
            date="2026-08-06",
            git_rev="cafe",
        )
        write_bench(tmp_path / "BENCH_overhead.json", artifact)
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "benchmarks": {
                        "BENCH_overhead.json": {
                            "metrics": {
                                "slowdown_x": {
                                    "baseline": 2.0,
                                    "direction": "lower",
                                    "tolerance_pct": 25.0,
                                }
                            }
                        }
                    },
                }
            )
        )
        code = gate.main(
            ["--manifest", str(manifest_path), "--root", str(tmp_path)]
        )
        assert code == 1  # 3.0 > 2.0 * 1.25

    def test_update_rewrites_baselines(self, tmp_path):
        gate = _load_check_regression()
        manifest, root = self._write_world(tmp_path, throughput=5.5)
        code = gate.main(
            ["--manifest", str(manifest), "--root", str(root), "--update"]
        )
        assert code == 0
        updated = json.loads(manifest.read_text())
        rule = updated["benchmarks"]["BENCH_serve_throughput.json"]["metrics"][
            "batching_win.speedup"
        ]
        assert rule["baseline"] == 5.5
        assert rule["direction"] == "higher"  # directions/tolerances kept
        # and the refreshed manifest now gates cleanly
        code = gate.main(["--manifest", str(manifest), "--root", str(root)])
        assert code == 0

    def test_committed_manifest_gates_committed_artifacts(self):
        """The CI invariant: repo-root artifacts pass the repo manifest."""
        gate = _load_check_regression()
        code = gate.main([])
        assert code == 0
