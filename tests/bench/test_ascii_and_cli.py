"""The ASCII chart helpers and the command-line interface."""

import pytest

from repro.__main__ import build_parser, main
from repro.bench.ascii_chart import bar_chart, series_chart, sparkline


class TestBarChart:
    def test_basic_rendering(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith(" a |")
        assert lines[2].count("#") > lines[1].count("#")

    def test_log_scale_compresses(self):
        text = bar_chart(["x", "y"], [1.0, 1000.0], log_scale=True, width=10)
        small, big = text.splitlines()
        assert big.count("#") <= 10
        assert small.count("#") >= 1

    def test_zero_values_linear(self):
        text = bar_chart(["z", "o"], [0.0, 5.0])
        assert text.splitlines()[0].count("#") == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError, match="log scale"):
            bar_chart(["a"], [0.0], log_scale=True)

    def test_unit_suffix(self):
        assert "3x" in bar_chart(["a"], [3.0], unit="x")


class TestSeriesAndSparkline:
    def test_series_chart_groups(self):
        text = series_chart([1, 2], {"cg": [1.0, 2.0], "bicgstab": [2.0, 4.0]})
        assert "-- cg --" in text
        assert "-- bicgstab --" in text

    def test_series_length_validated(self):
        with pytest.raises(ValueError):
            series_chart([1, 2], {"cg": [1.0]})

    def test_sparkline_trend(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([5, 5, 5]) == "▁▁▁"


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ("tables", "figures", "features", "pele", "stencil", "advisor"):
            args = parser.parse_args(
                [command] if command not in ("pele", "advisor") else [command]
            )
            assert callable(args.fn)

    def test_features_command_runs(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "bicgstab" in out
        assert "(+)" in out

    def test_tables_command_runs(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "PVC-2S" in out

    def test_advisor_command_runs(self, capsys):
        assert main(["advisor", "--mechanism", "drm19", "--batch", "8192"]) == 0
        out = capsys.readouterr().out
        assert "XVE threading occupancy" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
