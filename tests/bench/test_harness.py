"""The experiment harness: table/figure generators and the report renderer."""

import numpy as np
import pytest

from repro.bench.figures import (
    fig4a_matrix_scaling,
    fig4b_batch_scaling,
    fig5_implicit_scaling,
    fig6_pele_runtimes,
    fig7_speedup_summary,
    fig8_roofline,
)
from repro.bench.report import format_table
from repro.bench.tables import (
    PAPER_TABLE3,
    table1_terminology,
    table2_execution_model,
    table3_features,
    table4_datasets,
    table5_gpu_specs,
)


class TestReport:
    def test_format_table_aligns_columns(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": None}]
        text = format_table(rows, "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}  # separator row
        assert lines[4].split()[-1] == "-"  # None rendered as dash

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], "T")

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456789}])
        assert "0.1235" in text


class TestTables:
    def test_table1(self):
        rows = table1_terminology()
        assert {"cuda_capable_gpus": "CUDA Core", "ponte_vecchio_gpus": "XVE"} in rows

    def test_table2(self):
        rows = table2_execution_model()
        assert {"cuda": "warp", "sycl": "sub-group"} in rows

    def test_table3_marks_extensions(self):
        rows = table3_features()
        entries = {str(v) for row in rows for v in row.values() if v is not None}
        for name in ("cg", "bicgstab", "gmres", "trsv"):
            assert name in entries  # paper solvers, unmarked
        for name in ("jacobi", "ilu", "isai"):
            assert name in entries  # paper preconditioners, unmarked
        for marked in ("richardson (+)", "bicg (+)", "cgs (+)", "ic0 (+)"):
            assert marked in entries  # extensions carry the marker
        assert "cg (+)" not in entries

    def test_table3_paper_reference_is_table3(self):
        assert PAPER_TABLE3["stopping_criteria"] == ["absolute", "relative"]

    def test_table4_matches_paper(self):
        rows = {r["input"]: r for r in table4_datasets()}
        assert rows["gri30"]["nnz_per_matrix"] == 2560
        assert rows["isooctane"]["matrix_size"] == "144 x 144"

    def test_table5_has_four_platforms(self):
        assert len(table5_gpu_specs()) == 4


FAST = dict(nb_solve=4, tolerance=1e-6)


class TestFigures:
    """Scaled-down smoke runs; the full-size runs live in benchmarks/."""

    def test_fig4a_rows_and_monotonicity(self):
        rows = fig4a_matrix_scaling(sizes=(16, 32, 64), solvers=("cg",), **FAST)
        runtimes = [r["runtime_ms"] for r in rows]
        assert len(rows) == 3
        assert runtimes == sorted(runtimes)

    def test_fig4b_linear_in_batch(self):
        rows = fig4b_batch_scaling(
            batches=(2**13, 2**14, 2**15), num_rows=32, solvers=("cg",), **FAST
        )
        runtimes = [r["runtime_ms"] for r in rows]
        assert runtimes[1] / runtimes[0] == pytest.approx(2.0, rel=0.1)

    def test_fig5_speedup_band(self):
        rows = fig5_implicit_scaling(sizes=(32, 64), solvers=("cg",), **FAST)
        for row in rows:
            assert 1.3 < row["speedup"] < 2.0

    def test_fig6_has_all_platform_columns(self):
        rows = fig6_pele_runtimes(
            mechanisms=("drm19",), batches=(2**13,), tolerance=1e-6
        )
        assert set(rows[0]) == {
            "mechanism",
            "num_batch",
            "a100_ms",
            "h100_ms",
            "pvc1_ms",
            "pvc2_ms",
        }

    def test_fig7_average_row_present(self):
        rows = fig7_speedup_summary(num_batch=2**15, tolerance=1e-6)
        assert rows[-1]["mechanism"] == "average"
        assert rows[-1]["a100_speedup"] == pytest.approx(1.0)
        assert rows[-1]["pvc2_speedup"] > rows[-1]["pvc1_speedup"] > 1.0

    def test_fig8_report_structure(self):
        report = fig8_roofline(num_batch=2**14, tolerance=1e-6)
        assert report.spec_key == "pvc1"
        assert report.total_split.slm_bytes > 0
        assert len(report.lines()) > 5
