"""CLI surface: ``repro slo``, ``repro top``, serve-demo telemetry dumps."""

import json

import pytest

from repro.__main__ import main as repro_main

_FAST = ["--requests", "6", "--epochs", "2", "--size", "8", "--batch-size", "4"]


class TestSloCheck:
    def test_clean_workload_is_healthy(self, capsys):
        code = repro_main(["slo", "check", *_FAST])
        out = capsys.readouterr().out
        assert code == 0
        assert "slo burn state" in out
        assert "all objectives healthy" in out

    def test_seeded_regression_pages_nonzero(self, capsys):
        code = repro_main(
            [
                "slo",
                "check",
                *_FAST,
                "--inject-latency-ms",
                "5000",
                "--inject-fraction",
                "0.5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "BURNING" in captured.out
        assert "latency_p99" in captured.err

    def test_report_mode_never_gates(self, capsys):
        code = repro_main(
            [
                "slo",
                "report",
                *_FAST,
                "--inject-latency-ms",
                "5000",
                "--inject-fraction",
                "0.5",
            ]
        )
        assert code == 0
        assert "BURNING" in capsys.readouterr().out

    def test_custom_specs_file(self, tmp_path, capsys):
        from repro.telemetry import dump_slos, ratio_slo

        specs = tmp_path / "slos.json"
        dump_slos(
            [ratio_slo("only_fb", bad=("serve.fallbacks",), total="serve.served",
                       objective=0.95)],
            specs,
        )
        code = repro_main(["slo", "check", *_FAST, "--specs", str(specs)])
        out = capsys.readouterr().out
        assert code == 0
        assert "only_fb" in out
        assert "latency_p99" not in out

    def test_usage_error_without_subcommand(self):
        with pytest.raises(SystemExit):
            repro_main(["slo"])


class TestSloOffline:
    def test_report_scores_a_prometheus_dump(self, tmp_path, capsys):
        from repro.observability import render_prometheus
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        hist = registry.log_histogram("serve.latency_hdr_ms")
        for _ in range(50):
            hist.observe(2.0)
        registry.counter("serve.fallbacks").inc(0)
        registry.counter("serve.served").inc(50)
        registry.counter("serve.failed").inc(0)
        registry.counter("serve.accepted").inc(50)
        dump = tmp_path / "metrics.prom"
        dump.write_text(render_prometheus(registry))

        code = repro_main(["slo", "report", "--metrics-in", str(dump)])
        out = capsys.readouterr().out
        assert code == 0
        assert "slo compliance" in out

    def test_check_fails_on_violated_dump(self, tmp_path, capsys):
        from repro.observability import render_prometheus
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        hist = registry.log_histogram("serve.latency_hdr_ms")
        for _ in range(5):
            hist.observe(2.0)
        for _ in range(5):
            hist.observe(50000.0)
        registry.counter("serve.fallbacks").inc(0)
        registry.counter("serve.served").inc(10)
        registry.counter("serve.failed").inc(0)
        registry.counter("serve.accepted").inc(10)
        dump = tmp_path / "metrics.prom"
        dump.write_text(render_prometheus(registry))

        code = repro_main(["slo", "check", "--metrics-in", str(dump)])
        assert code == 1
        assert "latency_p99" in capsys.readouterr().err


class TestSloWrapper:
    def test_wrapped_command_scored_at_exit(self, tmp_path, capsys):
        events_out = tmp_path / "events.jsonl"
        code = repro_main(
            [
                "slo",
                "serve-demo",
                "--requests",
                "8",
                "--size",
                "8",
                "--slo-events-out",
                str(events_out),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "slo compliance (wrapped command)" in out
        assert "all objectives met" in out
        # the hub's shared event log saw the wrapped service's events
        records = [json.loads(l) for l in events_out.read_text().splitlines()]
        assert any(r["type"] == "request.solved" for r in records)

    def test_wrapped_command_without_services(self, capsys):
        code = repro_main(["slo", "tables"])
        assert code == 0
        assert "nothing to score" in capsys.readouterr().out

    def test_wrapped_failure_propagates(self, capsys):
        code = repro_main(["slo", "definitely-not-a-command"])
        assert code != 0


class TestTop:
    def test_one_frame_renders(self, capsys):
        code = repro_main(
            [
                "top",
                "--frames",
                "1",
                "--interval",
                "0.05",
                "--requests",
                "6",
                "--size",
                "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top — frame 1/1" in out
        assert "slo burn state" in out


class TestServeDemoDumps:
    def test_metrics_and_events_files(self, tmp_path, capsys):
        metrics_out = tmp_path / "metrics.prom"
        events_out = tmp_path / "events.jsonl"
        code = repro_main(
            [
                "serve-demo",
                "--requests",
                "8",
                "--size",
                "8",
                "--metrics-out",
                str(metrics_out),
                "--events-out",
                str(events_out),
            ]
        )
        assert code == 0
        text = metrics_out.read_text()
        assert "# TYPE serve_accepted counter" in text
        records = [json.loads(l) for l in events_out.read_text().splitlines()]
        assert records
        assert all(r["schema_version"] == 1 for r in records)
        types = {r["type"] for r in records}
        assert {"request.admitted", "request.flushed", "request.solved"} <= types
        # the dump is scoreable offline
        code = repro_main(["slo", "report", "--metrics-in", str(metrics_out)])
        assert code == 0
