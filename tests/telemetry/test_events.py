"""EventLog: typed schema, head/tail sampling, bounded rings, JSONL export."""

import json

import pytest

from repro.telemetry import (
    REQUEST_ADMITTED,
    REQUEST_FAILED,
    REQUEST_SOLVED,
    SANITIZER_TRIP,
    SCHEMA_VERSION,
    EventLog,
    current_event_log,
    emit_event,
    mint_context,
    use_event_log,
    use_trace_context,
)


def _clock_factory(start=1000):
    state = {"t": start}

    def clock():
        state["t"] += 1
        return state["t"]

    return clock


class TestEmission:
    def test_emit_stamps_context(self):
        log = EventLog()
        ctx = mint_context()
        ev = log.emit(REQUEST_ADMITTED, ctx=ctx, solver="cg")
        assert ev.trace_id == ctx.trace_id
        assert ev.span_id == ctx.span_id
        assert ev.request_id == ctx.request_id
        assert ev.fields == {"solver": "cg"}
        assert ev.keep == "head"

    def test_emit_falls_back_to_ambient_context(self):
        log = EventLog()
        ctx = mint_context()
        with use_trace_context(ctx):
            ev = log.emit(REQUEST_SOLVED, latency_ms=1.0)
        assert ev.trace_id == ctx.trace_id

    def test_emit_without_any_context(self):
        log = EventLog()
        ev = log.emit(REQUEST_ADMITTED)
        assert ev.trace_id is None
        assert ev.request_id is None

    def test_unknown_type_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("request.madeup")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestHeadTailSampling:
    def test_unsampled_routine_event_dropped(self):
        log = EventLog()
        ctx = mint_context(sampled=False)
        assert log.emit(REQUEST_ADMITTED, ctx=ctx) is None
        assert len(log) == 0
        assert log.summary()["dropped_head"] == 1

    def test_unsampled_critical_event_kept_as_tail(self):
        log = EventLog()
        ctx = mint_context(sampled=False)
        ev = log.emit(REQUEST_FAILED, ctx=ctx, critical=True, error="boom")
        assert ev is not None
        assert ev.keep == "tail"
        assert len(log) == 1

    def test_sampled_critical_event_keeps_head_verdict(self):
        log = EventLog()
        ev = log.emit(SANITIZER_TRIP, ctx=mint_context(), critical=True)
        assert ev.keep == "head"


class TestBoundedRings:
    def test_routine_ring_wraps(self):
        log = EventLog(capacity=8, clock=_clock_factory())
        for _ in range(20):
            log.emit(REQUEST_ADMITTED, ctx=mint_context())
        assert len(log) == 8
        assert log.emitted == 20

    def test_criticals_survive_routine_wrap(self):
        log = EventLog(capacity=8, clock=_clock_factory())
        victim = mint_context()
        log.emit(REQUEST_FAILED, ctx=victim, critical=True)
        for _ in range(50):
            log.emit(REQUEST_ADMITTED, ctx=mint_context())
        kinds = [ev.type for ev in log.events()]
        assert REQUEST_FAILED in kinds
        assert log.summary()["pinned"] == 1

    def test_events_are_time_ordered_and_deduped(self):
        log = EventLog(capacity=8, clock=_clock_factory())
        log.emit(REQUEST_FAILED, ctx=mint_context(), critical=True)
        log.emit(REQUEST_ADMITTED, ctx=mint_context())
        times = [ev.ts_ns for ev in log.events()]
        assert times == sorted(times)
        # the critical event sits in both rings but exports once
        assert len(log.events()) == 2


class TestExport:
    def test_records_carry_schema_version(self):
        log = EventLog()
        log.emit(REQUEST_ADMITTED, ctx=mint_context())
        rec = log.records()[0]
        assert rec["schema_version"] == SCHEMA_VERSION
        assert set(rec) == {
            "schema_version",
            "type",
            "ts_ns",
            "trace_id",
            "span_id",
            "request_id",
            "keep",
            "fields",
        }

    def test_records_for_filters_one_trace(self):
        log = EventLog()
        mine, other = mint_context(), mint_context()
        log.emit(REQUEST_ADMITTED, ctx=mine)
        log.emit(REQUEST_ADMITTED, ctx=other)
        log.emit(REQUEST_SOLVED, ctx=mine)
        records = log.records_for(mine.trace_id)
        assert len(records) == 2
        assert {r["trace_id"] for r in records} == {mine.trace_id}

    def test_write_jsonl_round_trips(self, tmp_path):
        log = EventLog()
        log.emit(REQUEST_ADMITTED, ctx=mint_context(), solver="cg")
        path = log.write_jsonl(tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["type"] == REQUEST_ADMITTED
        assert rec["fields"]["solver"] == "cg"


class TestGlobalLog:
    def test_emit_event_without_installed_log_is_noop(self):
        assert current_event_log() is None
        assert emit_event(REQUEST_ADMITTED) is None

    def test_use_event_log_installs_and_restores(self):
        log = EventLog()
        with use_event_log(log):
            assert current_event_log() is log
            emit_event(REQUEST_ADMITTED, ctx=mint_context())
        assert current_event_log() is None
        assert len(log) == 1
