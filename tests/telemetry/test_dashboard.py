"""The ``repro top`` frame renderer: pure function of observability state."""

from repro.observability.metrics import MetricsRegistry
from repro.telemetry import (
    REQUEST_ADMITTED,
    REQUEST_FAILED,
    EventLog,
    SloMonitor,
    dashboard_text,
    mint_context,
    ratio_slo,
    sparkline,
)


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline([], width=24)) == 24
        assert len(sparkline([1, 2, 3], width=10)) == 10
        assert len(sparkline(list(range(100)), width=12)) == 12

    def test_empty_and_zero_are_blank(self):
        assert sparkline([]) == " " * 24
        assert sparkline([0, 0, 0]).strip() == ""

    def test_peak_gets_the_heaviest_glyph(self):
        strip = sparkline([0, 0, 10, 0], width=4)
        assert strip[2] == "@"
        assert strip[0] == " "


class TestFrame:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.accepted").inc(12)
        registry.gauge("serve.pending").set(3.0)
        hist = registry.log_histogram("serve.latency_hdr_ms")
        for v in (1.0, 2.0, 4.0, 8.0, 500.0):
            hist.observe(v)
        return registry

    def test_frame_has_the_sections(self):
        frame = dashboard_text(self._registry(), clock=lambda: 0.0)
        assert "repro top" in frame
        assert "gauges" in frame
        assert "counters" in frame
        assert "serve.latency_hdr_ms" in frame
        assert "p99" in frame

    def test_frame_with_monitor_and_events(self):
        registry = self._registry()
        registry.counter("bad").inc(1)
        registry.counter("total").inc(10)
        spec = ratio_slo("err", bad=("bad",), total="total", objective=0.5)
        state = {"now": 0.0}
        monitor = SloMonitor(registry, specs=[spec], clock=lambda: state["now"])
        monitor.sample()
        state["now"] += 600.0

        events = EventLog()
        ctx = mint_context()
        events.emit(REQUEST_ADMITTED, ctx=ctx, solver="cg")
        events.emit(REQUEST_FAILED, ctx=ctx, critical=True, error="boom")

        frame = dashboard_text(registry, monitor=monitor, events=events, clock=lambda: 0.0)
        assert "slo burn state" in frame
        assert "err" in frame
        assert "recent events" in frame
        assert ctx.request_id in frame
        assert "2 emitted" in frame

    def test_frame_is_deterministic_under_injected_clock(self):
        registry = self._registry()
        a = dashboard_text(registry, clock=lambda: 1234.0)
        b = dashboard_text(registry, clock=lambda: 1234.0)
        assert a == b

    def test_never_set_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("ghost")  # NaN until set
        registry.counter("c").inc()
        frame = dashboard_text(registry, clock=lambda: 0.0)
        assert "ghost" not in frame
