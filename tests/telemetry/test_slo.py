"""SLO specs, count extraction (registry + Prometheus), burn-rate alerts."""

import pytest

from repro.observability import render_prometheus
from repro.observability.metrics import MetricsRegistry
from repro.telemetry import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SloMonitor,
    SloSpec,
    counts_from_prometheus,
    counts_from_registry,
    default_slos,
    dump_slos,
    latency_slo,
    load_slos,
    ratio_slo,
)


class TestSpecs:
    def test_latency_shorthand(self):
        spec = latency_slo("p99", histogram="h", threshold_ms=100.0)
        assert spec.kind == "latency"
        assert spec.error_budget == pytest.approx(0.01)

    def test_ratio_shorthand(self):
        spec = ratio_slo("fb", bad=("fallbacks",), total="served", objective=0.95)
        assert spec.kind == "ratio"
        assert spec.error_budget == pytest.approx(0.05)

    def test_objective_bounds_enforced(self):
        with pytest.raises(ValueError, match="objective"):
            latency_slo("x", histogram="h", threshold_ms=1.0, objective=1.0)

    def test_latency_needs_histogram_and_threshold(self):
        with pytest.raises(ValueError, match="latency"):
            SloSpec(name="x", objective=0.99, kind="latency")

    def test_ratio_needs_counters(self):
        with pytest.raises(ValueError, match="ratio"):
            SloSpec(name="x", objective=0.99, kind="ratio")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec(name="x", objective=0.99, kind="availability")

    def test_window_validation(self):
        with pytest.raises(ValueError, match="short window"):
            BurnWindow("w", short_s=100.0, long_s=50.0, threshold=1.0)

    def test_default_slos_cover_the_serve_instruments(self):
        specs = default_slos(latency_threshold_ms=250.0)
        names = {s.name for s in specs}
        assert names == {"latency_p99", "fallback_rate", "error_rate"}
        latency = next(s for s in specs if s.kind == "latency")
        assert latency.histogram == "serve.latency_hdr_ms"
        assert latency.threshold_ms == 250.0

    def test_dump_load_round_trip(self, tmp_path):
        specs = default_slos()
        path = dump_slos(specs, tmp_path / "slos.json")
        assert load_slos(path) == specs

    def test_from_dict_defaults_windows(self):
        spec = SloSpec.from_dict(
            {"name": "x", "objective": 0.99, "kind": "ratio", "bad": ["b"], "total": "t"}
        )
        assert spec.windows == DEFAULT_WINDOWS


class TestCounts:
    def test_ratio_counts(self):
        registry = MetricsRegistry()
        registry.counter("bad").inc(3)
        registry.counter("total").inc(50)
        spec = ratio_slo("r", bad=("bad",), total="total", objective=0.99)
        assert counts_from_registry(spec, registry) == (3.0, 50.0)

    def test_ratio_counts_sum_multiple_bad_counters(self):
        registry = MetricsRegistry()
        registry.counter("b1").inc(2)
        registry.counter("b2").inc(5)
        registry.counter("total").inc(10)
        spec = ratio_slo("r", bad=("b1", "b2"), total="total", objective=0.99)
        assert counts_from_registry(spec, registry) == (7.0, 10.0)

    def test_latency_counts_split_on_threshold(self):
        registry = MetricsRegistry()
        hist = registry.log_histogram("lat_ms")
        for _ in range(9):
            hist.observe(1.0)
        hist.observe(10000.0)
        spec = latency_slo("p", histogram="lat_ms", threshold_ms=100.0)
        bad, total = counts_from_registry(spec, registry)
        assert total == 10.0
        assert bad == 1.0

    def test_prometheus_twin_agrees_with_registry(self):
        """The offline scraper path reads the same counts as the live one."""
        registry = MetricsRegistry()
        hist = registry.log_histogram("serve.latency_hdr_ms")
        for _ in range(20):
            hist.observe(2.0)
        for _ in range(3):
            hist.observe(5000.0)
        registry.counter("serve.fallbacks").inc(2)
        registry.counter("serve.served").inc(23)
        text = render_prometheus(registry)
        for spec in (
            latency_slo("p", histogram="serve.latency_hdr_ms", threshold_ms=100.0),
            ratio_slo(
                "fb", bad=("serve.fallbacks",), total="serve.served", objective=0.95
            ),
        ):
            assert counts_from_prometheus(spec, text) == counts_from_registry(
                spec, registry
            )


def _ratio_monitor():
    registry = MetricsRegistry()
    spec = ratio_slo("err", bad=("bad",), total="total", objective=0.99)
    state = {"now": 0.0}
    monitor = SloMonitor(registry, specs=[spec], clock=lambda: state["now"])
    return registry, monitor, state


def _advance(registry, monitor, state, epochs, bad_per_epoch, total_per_epoch, dt=600.0):
    for _ in range(epochs):
        registry.counter("bad").inc(bad_per_epoch)
        registry.counter("total").inc(total_per_epoch)
        state["now"] += dt
        monitor.sample()


class TestBurnRateAlerts:
    def test_clean_traffic_never_fires(self):
        registry, monitor, state = _ratio_monitor()
        monitor.sample()
        _advance(registry, monitor, state, epochs=8, bad_per_epoch=0, total_per_epoch=100)
        statuses = monitor.evaluate(now=state["now"])
        assert not any(s.burning for s in statuses)
        assert all(s.compliant for s in statuses)

    def test_regression_fires_fast_and_slow_windows(self):
        registry, monitor, state = _ratio_monitor()
        monitor.sample()
        _advance(registry, monitor, state, epochs=6, bad_per_epoch=0, total_per_epoch=100)
        _advance(registry, monitor, state, epochs=6, bad_per_epoch=30, total_per_epoch=100)
        (status,) = monitor.evaluate(now=state["now"])
        assert status.burning
        firing = {a.window.name for a in status.alerts if a.firing}
        assert firing == {"fast", "slow"}
        # 30% bad against a 1% budget is a 30x burn in the recent windows
        fast = next(a for a in status.alerts if a.window.name == "fast")
        assert fast.short_burn == pytest.approx(30.0, rel=0.01)

    def test_fast_alert_resets_after_recovery(self):
        """The short window exists so the page clears once the burn stops."""
        registry, monitor, state = _ratio_monitor()
        monitor.sample()
        _advance(registry, monitor, state, epochs=6, bad_per_epoch=30, total_per_epoch=100)
        _advance(registry, monitor, state, epochs=3, bad_per_epoch=0, total_per_epoch=100)
        (status,) = monitor.evaluate(now=state["now"])
        fast = next(a for a in status.alerts if a.window.name == "fast")
        assert fast.short_burn == pytest.approx(0.0)
        assert not fast.firing

    def test_single_bad_minute_does_not_page(self):
        """The long window keeps one noisy blip from firing the alert."""
        registry, monitor, state = _ratio_monitor()
        monitor.sample()
        _advance(registry, monitor, state, epochs=30, bad_per_epoch=0, total_per_epoch=100)
        # one 10-minute epoch at 30% bad after five clean hours
        _advance(registry, monitor, state, epochs=1, bad_per_epoch=30, total_per_epoch=100)
        (status,) = monitor.evaluate(now=state["now"])
        fast = next(a for a in status.alerts if a.window.name == "fast")
        assert fast.short_burn > fast.window.threshold  # the blip is visible...
        assert not fast.firing  # ...but the 1 h leg holds the page back

    def test_no_traffic_means_no_verdict(self):
        registry, monitor, state = _ratio_monitor()
        monitor.sample()
        state["now"] += 600.0
        monitor.sample()
        (status,) = monitor.evaluate(now=state["now"])
        assert all(a.short_burn is None for a in status.alerts)
        assert not status.burning
        assert status.good_fraction == 1.0

    def test_cold_start_uses_earliest_sample(self):
        """A service younger than the window can still page (SRE workbook)."""
        registry, monitor, state = _ratio_monitor()
        monitor.sample()
        _advance(registry, monitor, state, epochs=2, bad_per_epoch=50, total_per_epoch=100)
        (status,) = monitor.evaluate(now=state["now"])
        slow = next(a for a in status.alerts if a.window.name == "slow")
        assert slow.long_burn == pytest.approx(50.0, rel=0.01)
        assert slow.firing

    def test_report_rows_states(self):
        registry, monitor, state = _ratio_monitor()
        monitor.sample()
        _advance(registry, monitor, state, epochs=6, bad_per_epoch=30, total_per_epoch=100)
        rows = monitor.report_rows(monitor.evaluate(now=state["now"]))
        assert rows[0]["slo"] == "err"
        assert rows[0]["state"] == "BURNING"
        registry2 = MetricsRegistry()
        registry2.counter("total").inc(100)
        spec = ratio_slo("ok", bad=("bad",), total="total", objective=0.99)
        clean = SloMonitor(registry2, specs=[spec], clock=lambda: 0.0)
        clean.sample(now=0.0)
        rows = clean.report_rows(clean.evaluate(now=1.0))
        assert rows[0]["state"] == "OK"

    def test_sample_ring_is_bounded(self):
        registry, monitor, state = _ratio_monitor()
        monitor2 = SloMonitor(
            registry, specs=monitor.specs, clock=lambda: state["now"], max_samples=16
        )
        for _ in range(100):
            state["now"] += 1.0
            monitor2.sample()
        assert monitor2.num_samples == 16
