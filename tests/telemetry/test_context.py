"""TraceContext minting, wire form, and ambient contextvar propagation."""

import contextvars
import threading

from repro.telemetry import (
    TraceContext,
    current_trace_context,
    mint_context,
    set_trace_context,
    use_trace_context,
)


class TestMinting:
    def test_ids_are_16_hex_chars(self):
        ctx = mint_context()
        assert len(ctx.trace_id) == 16
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)

    def test_request_id_is_req_prefixed(self):
        ctx = mint_context()
        assert ctx.request_id.startswith("req-")
        int(ctx.request_id[4:], 16)

    def test_minted_contexts_are_distinct(self):
        contexts = [mint_context() for _ in range(64)]
        assert len({c.trace_id for c in contexts}) == 64
        assert len({c.span_id for c in contexts}) == 64
        assert len({c.request_id for c in contexts}) == 64

    def test_sampled_default_and_override(self):
        assert mint_context().sampled
        assert not mint_context(sampled=False).sampled

    def test_child_keeps_trace_new_span(self):
        ctx = mint_context()
        kid = ctx.child()
        assert kid.trace_id == ctx.trace_id
        assert kid.span_id != ctx.span_id
        assert kid.request_id == ctx.request_id

    def test_with_sampled_flips_only_the_decision(self):
        ctx = mint_context()
        off = ctx.with_sampled(False)
        assert not off.sampled
        assert (off.trace_id, off.span_id, off.request_id) == (
            ctx.trace_id,
            ctx.span_id,
            ctx.request_id,
        )

    def test_round_trip_wire_form(self):
        ctx = mint_context(sampled=False)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_from_dict_defaults(self):
        ctx = TraceContext.from_dict({"trace_id": "a" * 16, "span_id": "b" * 16})
        assert ctx.sampled
        assert ctx.request_id == ""


class TestAmbientPropagation:
    def test_default_is_none(self):
        assert current_trace_context() is None

    def test_use_scope_installs_and_restores(self):
        ctx = mint_context()
        with use_trace_context(ctx):
            assert current_trace_context() is ctx
        assert current_trace_context() is None

    def test_nested_scopes_restore_outer(self):
        outer, inner = mint_context(), mint_context()
        with use_trace_context(outer):
            with use_trace_context(inner):
                assert current_trace_context() is inner
            assert current_trace_context() is outer

    def test_none_scope_is_a_no_op(self):
        ctx = mint_context()
        with use_trace_context(ctx):
            with use_trace_context(None):
                assert current_trace_context() is ctx
            assert current_trace_context() is ctx

    def test_set_returns_previous_for_manual_restore(self):
        ctx = mint_context()
        previous = set_trace_context(ctx)
        try:
            assert previous is None
            assert current_trace_context() is ctx
        finally:
            set_trace_context(previous)
        assert current_trace_context() is None

    def test_copy_context_carries_into_worker_thread(self):
        """The WorkerPool hand-off: copy_context() at submit time."""
        ctx = mint_context()
        seen = []
        with use_trace_context(ctx):
            snapshot = contextvars.copy_context()
        thread = threading.Thread(
            target=lambda: seen.append(snapshot.run(current_trace_context))
        )
        thread.start()
        thread.join()
        assert seen == [ctx]

    def test_plain_thread_does_not_inherit(self):
        ctx = mint_context()
        seen = []
        with use_trace_context(ctx):
            thread = threading.Thread(target=lambda: seen.append(current_trace_context()))
            thread.start()
            thread.join()
        assert seen == [None]
