"""End-to-end request attribution through the serving layer.

The acceptance test of the telemetry layer: N concurrent requests go
through the micro-batcher, plan cache, worker pool and simulated kernel
launches, and afterwards every span and event that carries a trace id
carries exactly one of the N minted ids — and each request's full path
(batcher fan-in → plan lookup → launch → scatter) is reconstructable
from the flush span's links and span parentage alone.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.observability.tracer import Tracer
from repro.sanitize.report import SLM_RACE, SanitizerReport
from repro.serve import ServeConfig, SolveRequest, SolverService
from repro.telemetry import (
    REQUEST_ADMITTED,
    REQUEST_FALLBACK,
    REQUEST_FLUSHED,
    REQUEST_SOLVED,
    SANITIZER_TRIP,
    mint_context,
    use_trace_context,
)

N = 8


def _tridiag(n, scale=1.0):
    return sp.diags(
        [np.full(n - 1, -scale), np.full(n, 2.0 * scale), np.full(n - 1, -scale)],
        offsets=[-1, 0, 1],
        format="csr",
    )


def _request(rng, n=10):
    return SolveRequest(
        _tridiag(n, rng.uniform(0.5, 2.0)),
        rng.standard_normal(n),
        solver="bicgstab",
        preconditioner="jacobi",
        tolerance=1e-8,
    )


@pytest.fixture(scope="module")
def served():
    """Solve N concurrent requests under a tracer; return the evidence."""
    tracer = Tracer()
    rng = np.random.default_rng(3)
    config = ServeConfig(max_batch_size=4, max_wait_ms=20.0, num_workers=2)
    with SolverService(config, tracer=tracer) as service:
        requests = [_request(rng) for _ in range(N)]
        tickets = [service.submit(r) for r in requests]
        outcomes = [t.result(timeout=30.0) for t in tickets]
        events = service.events
    return requests, outcomes, tracer, events


class TestAttribution:
    def test_outcomes_carry_their_request_identity(self, served):
        requests, outcomes, _tracer, _events = served
        for request, outcome in zip(requests, outcomes):
            assert outcome.trace_id == request.trace_context.trace_id
            assert outcome.request_id == request.request_id
        assert len({o.trace_id for o in outcomes}) == N

    def test_every_attributed_span_names_one_of_the_n_traces(self, served):
        requests, _outcomes, tracer, _events = served
        ids = {r.trace_context.trace_id for r in requests}
        attributed = [s for s in tracer.spans if s.trace_id is not None]
        assert attributed, "no spans carried a trace id"
        for span in attributed:
            assert span.trace_id in ids, f"{span.name} carries foreign id"

    def test_every_attributed_event_names_one_of_the_n_traces(self, served):
        requests, _outcomes, _tracer, events = served
        ids = {r.trace_context.trace_id for r in requests}
        records = events.records()
        assert records
        for rec in records:
            assert rec["trace_id"] in ids

    def test_flush_links_cover_every_request_exactly_once(self, served):
        requests, _outcomes, tracer, _events = served
        flushes = [s for s in tracer.spans if s.name == "serve.flush"]
        assert flushes
        linked = [link["trace_id"] for f in flushes for link in f.links]
        assert sorted(linked) == sorted(r.trace_context.trace_id for r in requests)
        # links point at the request's ROOT span id, the fan-in anchor
        by_trace = {r.trace_context.trace_id: r.trace_context for r in requests}
        for f in flushes:
            for link in f.links:
                assert link["span_id"] == by_trace[link["trace_id"]].span_id


def _ancestors(span):
    chain = []
    node = span.parent
    while node is not None:
        chain.append(node)
        node = node.parent
    return chain


class TestPathReconstruction:
    def test_batcher_plan_launch_scatter_chain(self, served):
        """From one request id alone, walk its whole journey."""
        requests, _outcomes, tracer, events = served
        flushes = [s for s in tracer.spans if s.name == "serve.flush"]
        for request in requests:
            tid = request.trace_context.trace_id

            # batcher fan-in: exactly one flush links this request
            (flush,) = [
                f for f in flushes if any(l["trace_id"] == tid for l in f.links)
            ]

            # plan-cache lookup and launch ran inside that flush
            plan_spans = [
                s
                for s in tracer.spans
                if s.name == "serve.plan" and flush in _ancestors(s)
            ]
            assert len(plan_spans) == 1
            assert "cache_hit" in plan_spans[0].args
            solve_spans = [
                s
                for s in tracer.spans
                if s.name == "serve.solve" and flush in _ancestors(s)
            ]
            assert len(solve_spans) == 1
            kernel_spans = [
                s
                for s in tracer.spans
                if s.category == "kernel" and flush in _ancestors(s)
            ]
            assert kernel_spans, "no simulated kernel launch under the flush"

            # scatter leg: the per-request span is pinned to this trace and
            # its parent_id is the request's ROOT span id
            (leg,) = [s for s in tracer.spans if s.trace_id == tid]
            assert leg.name == "serve.request"
            assert leg.parent_id == request.trace_context.span_id
            assert flush in _ancestors(leg)
            assert leg.args["flush_id"] == flush.args["flush_id"]

            # and the event log tells the same story
            types = [rec["type"] for rec in events.records_for(tid)]
            assert types.count(REQUEST_ADMITTED) == 1
            assert types.count(REQUEST_FLUSHED) == 1
            assert types.count(REQUEST_SOLVED) == 1

    def test_flush_events_name_the_flush(self, served):
        requests, _outcomes, tracer, events = served
        flush_ids = {
            s.args["flush_id"] for s in tracer.spans if s.name == "serve.flush"
        }
        for rec in events.records():
            if rec["type"] == REQUEST_FLUSHED:
                assert rec["fields"]["flush_id"] in flush_ids


class TestHeadSampling:
    def test_unsampled_service_drops_routine_events(self):
        rng = np.random.default_rng(5)
        config = ServeConfig(
            max_batch_size=4, max_wait_ms=20.0, num_workers=1, telemetry_sample_rate=0.0
        )
        with SolverService(config) as service:
            tickets = [service.submit(_request(rng)) for _ in range(4)]
            for t in tickets:
                assert t.result(timeout=30.0).converged
            assert len(service.events) == 0
            assert service.events.summary()["dropped_head"] > 0
            # the sampling decision is stamped back onto the request
            assert all(not t.trace_context.sampled for t in tickets)

    def test_sample_rate_is_deterministic_per_trace_id(self):
        config = ServeConfig(telemetry_sample_rate=0.5)
        with SolverService(config) as service:
            rng = np.random.default_rng(7)
            request = _request(rng)
            before = request.trace_context.trace_id
            service._stamp_sampling(request)
            decided = request.trace_context.sampled
            # re-stamping the same trace id gives the same verdict
            service._stamp_sampling(request)
            assert request.trace_context.sampled == decided
            assert request.trace_context.trace_id == before


class TestSanitizerVictims:
    def test_trip_report_names_every_victim_request(self, monkeypatch):
        """A trip aborting a shared flush stamps whose systems died."""
        rng = np.random.default_rng(9)
        config = ServeConfig(max_batch_size=4, max_wait_ms=50.0, num_workers=1)
        with SolverService(config) as service:
            report = SanitizerReport(
                kind=SLM_RACE,
                kernel="batch_bicgstab_fused",
                group_id=0,
                message="write/write race",
            )

            calls = {"n": 0}
            real_plan_for = service.plan_cache.plan_for

            def tripping_plan_for(key):
                calls["n"] += 1
                if calls["n"] == 1:
                    exc = RuntimeError(report.format())
                    exc.report = report
                    raise exc
                return real_plan_for(key)

            monkeypatch.setattr(service.plan_cache, "plan_for", tripping_plan_for)

            tickets = [service.submit(_request(rng)) for _ in range(4)]
            outcomes = [t.result(timeout=30.0) for t in tickets]
            events = service.events

        # every victim was rescued by the per-request fallback
        assert all(o.converged for o in outcomes)
        assert all(o.used_fallback for o in outcomes)

        # the report names every victim of the shared launch
        victims = {t.trace_context.trace_id for t in tickets}
        assert set(report.trace_ids) == victims
        assert set(report.request_ids) == {t.request.request_id for t in tickets}
        formatted = report.format()
        for request_id in report.request_ids:
            assert request_id in formatted

        # and the trip event is pinned with the same attribution
        trips = [r for r in events.records() if r["type"] == SANITIZER_TRIP]
        assert len(trips) == 1
        assert set(trips[0]["fields"]["trace_ids"]) == victims
        rescues = [r for r in events.records() if r["type"] == REQUEST_FALLBACK]
        assert {r["trace_id"] for r in rescues} == victims


class TestMultiFanIn:
    def test_distributed_solve_links_ambient_request(self):
        from repro.core.dispatch import BatchSolverFactory
        from repro.multi.comm import SimWorld
        from repro.multi.distributed import solve_distributed
        from repro.observability import use_tracer
        from repro.workloads.stencil import stencil_rhs, three_point_stencil

        tracer = Tracer()
        ctx = mint_context()
        matrix = three_point_stencil(16, 4)
        rhs = stencil_rhs(16, 4)
        factory = BatchSolverFactory(
            solver="cg", preconditioner="jacobi", tolerance=1e-9
        )
        with use_tracer(tracer), use_trace_context(ctx):
            result = solve_distributed(SimWorld(2), factory, matrix, rhs)
        assert result.all_converged
        (multi_span,) = [s for s in tracer.spans if s.name == "multi.solve_distributed"]
        assert {"trace_id": ctx.trace_id, "span_id": ctx.span_id} in multi_span.links
        # rank lanes inherit the trace via parentage under the multi span
        lanes = [s for s in tracer.spans if s.category == "multi.lane"]
        assert len(lanes) == 2
        for lane in lanes:
            assert multi_span in _ancestors(lane)
