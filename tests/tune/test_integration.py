"""Tuning integration: launch configurator, plan cache, service, CLI."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.core.launch import LaunchConfigurator, WORK_GROUP_REDUCE
from repro.hw.specs import gpu
from repro.serve import ServeConfig, SolveRequest, SolverService
from repro.serve.plan_cache import PlanCache
from repro.serve.request import BatchKey
from repro.sycl.device import pvc_stack_device
from repro.tune.db import TuningKey, TuningRecord
from repro.tune.space import SLM_PAPER, TuneCandidate, space_signature
from repro.tune import TuningDB
from repro.workloads.stencil import three_point_stencil

DEVICE = pvc_stack_device(1)


def tuned_db(rows: int = 32, solver: str = "cg", wg: int = 32, sg: int = 32) -> TuningDB:
    db = TuningDB()
    db.put(
        TuningRecord(
            key=TuningKey.for_problem(DEVICE.name, solver, "jacobi", rows, "double"),
            candidate=TuneCandidate(sg, wg, WORK_GROUP_REDUCE, SLM_PAPER),
            modeled_seconds=1e-4,
            default_seconds=2e-4,
            strategy="grid",
            evaluations=5,
            seed=0,
            space_signature=space_signature(DEVICE),
        )
    )
    return db


def batch_key(solver: str = "cg", rows: int = 32) -> BatchKey:
    return BatchKey(
        matrix_format="csr",
        num_rows=rows,
        pattern_token="t",
        solver=solver,
        preconditioner="jacobi",
        criterion="relative",
        precision="double",
        tolerance=1e-8,
        max_iterations=100,
    )


class TestLaunchConfiguratorWithDB:
    def test_tuned_geometry_wins_over_heuristic(self):
        cfg = LaunchConfigurator(DEVICE, tuning_db=tuned_db())
        geo = cfg.geometry(32, solver="cg", preconditioner="jacobi", precision="double")
        assert geo.sub_group_size == 32  # heuristic would pick 16 at 32 rows

    def test_heuristic_without_context_match(self):
        cfg = LaunchConfigurator(DEVICE, tuning_db=tuned_db(solver="bicgstab"))
        geo = cfg.geometry(32, solver="cg", preconditioner="jacobi", precision="double")
        assert geo.sub_group_size == 16  # no record for cg -> heuristic

    def test_wildcard_record_serves_contextless_lookups(self):
        db = TuningDB()
        record = TuningRecord(
            key=TuningKey.for_problem(
                DEVICE.name, "cg", "jacobi", 32, "double"
            ).generalized(),
            candidate=TuneCandidate(32, 32, WORK_GROUP_REDUCE, SLM_PAPER),
            modeled_seconds=1e-4,
            default_seconds=2e-4,
            strategy="grid",
            evaluations=5,
            seed=0,
            space_signature=space_signature(DEVICE),
        )
        db.put(record)
        cfg = LaunchConfigurator(DEVICE, tuning_db=db)
        assert cfg.geometry(32).sub_group_size == 32  # no context at all

    def test_no_db_keeps_heuristic(self):
        assert LaunchConfigurator(DEVICE).geometry(32).sub_group_size == 16


class TestPlanCacheInvalidation:
    def test_resolution_consults_tuning_db(self):
        cache = PlanCache(DEVICE, tuning_db=tuned_db())
        plan, hit = cache.plan_for(batch_key())
        assert not hit
        assert plan.geometry.sub_group_size == 32

    def test_generation_change_invalidates(self):
        db = tuned_db()
        cache = PlanCache(DEVICE, tuning_db=db)
        cache.plan_for(batch_key())
        _, hit = cache.plan_for(batch_key())
        assert hit
        db.clear()
        plan, hit = cache.plan_for(batch_key())
        assert not hit
        assert plan.geometry.sub_group_size == 16  # back to the heuristic
        assert cache.metrics.counter("serve.plan_cache.invalidations").value == 1

    def test_no_db_never_invalidates(self):
        cache = PlanCache(DEVICE)
        cache.plan_for(batch_key())
        _, hit = cache.plan_for(batch_key())
        assert hit
        assert cache.metrics.counter("serve.plan_cache.invalidations").value == 0


class TestServiceIntegration:
    def test_service_serves_tuned_geometry(self):
        pattern = three_point_stencil(32, 1).item_scipy(0)
        rng = np.random.default_rng(0)
        config = ServeConfig(max_batch_size=4, max_wait_ms=1.0, num_workers=1)
        db = tuned_db()
        with SolverService(config, tuning_db=db) as service:
            outcome = service.solve(
                SolveRequest(
                    pattern,
                    rng.standard_normal(32),
                    solver="cg",
                    preconditioner="jacobi",
                    tolerance=1e-8,
                ),
                timeout=30.0,
            )
            assert outcome.converged
            assert db.metrics.counter("tune.db.hits").value >= 1

    def test_config_path_opens_db(self, tmp_path):
        path = tmp_path / "db.json"
        TuningDB(path).put(
            TuningRecord(
                key=TuningKey.for_problem(DEVICE.name, "cg", "jacobi", 32, "double"),
                candidate=TuneCandidate(32, 32, WORK_GROUP_REDUCE, SLM_PAPER),
                modeled_seconds=1e-4,
                default_seconds=2e-4,
                strategy="grid",
                evaluations=5,
                seed=0,
                space_signature=space_signature(DEVICE),
            )
        )
        config = ServeConfig(num_workers=1, tuning_db_path=str(path))
        with SolverService(config) as service:
            assert service.tuning_db is not None
            assert len(service.tuning_db) == 1


class TestCli:
    def test_tune_show_clear_flow(self, tmp_path, capsys):
        db = str(tmp_path / "db.json")
        code = cli_main(
            [
                "tune",
                "tune",
                "--platform",
                "pvc1",
                "--rows",
                "16",
                "--nb-solve",
                "4",
                "--db",
                db,
                "--strategy",
                "random",
                "--budget",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "searched" in out and "speedup" in out

        assert cli_main(["tune", "show", "--db", db]) == 0
        assert "tuning DB" in capsys.readouterr().out

        assert cli_main(["tune", "clear", "--db", db, "--platform", "pvc1"]) == 0
        assert "removed 1 record" in capsys.readouterr().out

        assert cli_main(["tune", "show", "--db", db]) == 0
        assert "no records" in capsys.readouterr().out

    def test_tune_requires_platform(self):
        with pytest.raises(SystemExit):
            cli_main(["tune", "tune", "--rows", "16"])
