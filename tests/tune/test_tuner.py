"""Autotuner end-to-end: evaluation, caching, thresholds."""

import pytest

from repro.core.launch import SUB_GROUP_REDUCE, WORK_GROUP_REDUCE
from repro.hw.specs import gpu
from repro.tune import (
    Autotuner,
    CandidateEvaluator,
    TuningDB,
    derive_threshold,
    pele_workload,
    stencil_workload,
)
from repro.tune.db import TuningKey, TuningRecord
from repro.tune.space import SLM_OFF, SLM_PAPER, TuneCandidate

SPEC = gpu("pvc1")


@pytest.fixture(scope="module")
def small_outcome():
    """One real tuning run shared by the cheap assertions below."""
    tuner = Autotuner(SPEC, db=TuningDB())
    return tuner, tuner.tune(stencil_workload(16, nb_solve=4))


class TestEvaluator:
    def test_measured_solve_shared_across_candidates(self):
        evaluator = CandidateEvaluator(SPEC, stencil_workload(16, nb_solve=4))
        for candidate in evaluator.space.candidates()[:4]:
            assert evaluator.measured_seconds(candidate) > 0
        assert evaluator.metrics.counter("tune.workload_solves").value == 1

    def test_work_group_reduction_costs_more_than_sub_group(self):
        evaluator = CandidateEvaluator(SPEC, stencil_workload(16, nb_solve=4))
        sub = TuneCandidate(16, 16, SUB_GROUP_REDUCE, SLM_PAPER)
        work = TuneCandidate(16, 16, WORK_GROUP_REDUCE, SLM_PAPER)
        assert evaluator.measured_seconds(sub) < evaluator.measured_seconds(work)

    def test_slm_off_is_slower_for_bandwidth_bound_solves(self):
        evaluator = CandidateEvaluator(SPEC, stencil_workload(64, nb_solve=4))
        space = evaluator.space
        on = evaluator.measured_seconds(space.default_candidate())
        off_candidate = TuneCandidate(16, 64, WORK_GROUP_REDUCE, SLM_OFF)
        assert evaluator.measured_seconds(off_candidate) > on

    def test_cost_model_runs_without_solving(self):
        evaluator = CandidateEvaluator(SPEC, stencil_workload(16, nb_solve=4))
        assert evaluator.cost_model_seconds(evaluator.space.default_candidate()) > 0
        assert evaluator.metrics.counter("tune.workload_solves").value == 0


class TestAutotuner:
    def test_first_run_searches_and_stores(self, small_outcome):
        tuner, outcome = small_outcome
        assert not outcome.from_cache
        assert outcome.search is not None
        assert len(tuner.db) == 1
        assert outcome.record.speedup >= 1.0

    def test_second_run_is_cache_hit_without_measurement(self, small_outcome):
        tuner, _ = small_outcome
        before = tuner.db.metrics.counter("tune.measurements").value
        again = tuner.tune(stencil_workload(16, nb_solve=4))
        assert again.from_cache
        assert tuner.db.metrics.counter("tune.measurements").value == before

    def test_force_researches(self, small_outcome):
        tuner, _ = small_outcome
        forced = tuner.tune(stencil_workload(16, nb_solve=4), force=True)
        assert not forced.from_cache

    def test_store_generic_adds_wildcard_record(self):
        tuner = Autotuner(SPEC, db=TuningDB())
        tuner.tune(stencil_workload(16, nb_solve=4), store_generic=True)
        key = tuner.key_for(stencil_workload(16, nb_solve=4))
        assert key in tuner.db
        assert key.generalized() in tuner.db

    def test_tuned_beats_default_on_small_system(self):
        # the paper's Section-3.6 claim: below the threshold the sub-group
        # fast path (sg 32, sub-group reductions) beats the heuristic
        outcome = Autotuner(SPEC, db=TuningDB()).tune(stencil_workload(32))
        assert outcome.record.speedup > 1.0
        assert outcome.record.candidate.reduction_scope == SUB_GROUP_REDUCE

    def test_pele_workload_tunes(self):
        outcome = Autotuner(SPEC, db=TuningDB()).tune(
            pele_workload("drm19", nb_solve=4)
        )
        assert outcome.record.key.solver == "bicgstab"
        assert outcome.record.speedup >= 1.0


class TestDeriveThreshold:
    @staticmethod
    def record_for(bucket: int, sg: int) -> TuningRecord:
        return TuningRecord(
            key=TuningKey("dev", "cg", "jacobi", bucket, "double"),
            candidate=TuneCandidate(sg, bucket, WORK_GROUP_REDUCE, SLM_PAPER),
            modeled_seconds=1e-4,
            default_seconds=2e-4,
            strategy="grid",
            evaluations=1,
            seed=0,
            space_signature="sig",
        )

    def test_crossover_found(self):
        db = TuningDB()
        db.put(self.record_for(32, 16))
        db.put(self.record_for(64, 16))
        db.put(self.record_for(128, 32))
        assert derive_threshold(db, "dev") == 64

    def test_needs_two_widths(self):
        db = TuningDB()
        db.put(self.record_for(32, 16))
        db.put(self.record_for(64, 16))
        assert derive_threshold(db, "dev") is None

    def test_unknown_device(self):
        assert derive_threshold(TuningDB(), "nope") is None
