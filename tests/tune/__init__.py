"""Tests of the repro.tune autotuning subsystem."""
