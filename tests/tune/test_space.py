"""Parameter-space model: legality, enumeration, signatures."""

from dataclasses import replace

import pytest

from repro.core.launch import SUB_GROUP_REDUCE, WORK_GROUP_REDUCE
from repro.sycl.device import cpu_device, pvc_stack_device
from repro.tune.space import (
    SLM_PAPER,
    SLM_STRATEGIES,
    ParameterSpace,
    TuneCandidate,
    space_signature,
)


class TestEnumeration:
    def test_sub_group_sizes_sorted(self):
        space = ParameterSpace(pvc_stack_device(1), 32)
        assert space.sub_group_sizes() == [16, 32]

    def test_work_group_sizes_are_aligned_and_bounded(self):
        space = ParameterSpace(pvc_stack_device(1), 100)
        for sg in space.sub_group_sizes():
            sizes = space.work_group_sizes(sg)
            assert sizes, "at least one work-group size per sub-group width"
            for wg in sizes:
                assert wg % sg == 0
                assert wg <= space.device.max_work_group_size
            # the largest size covers every row
            assert sizes[-1] >= min(100, space.device.max_work_group_size)

    def test_sub_group_scope_only_when_one_sub_group_covers(self):
        space = ParameterSpace(pvc_stack_device(1), 32)
        assert space.reduction_scopes(32) == [SUB_GROUP_REDUCE, WORK_GROUP_REDUCE]
        assert space.reduction_scopes(16) == [WORK_GROUP_REDUCE]

    def test_candidates_all_legal_and_deterministic(self):
        space = ParameterSpace(pvc_stack_device(1), 48)
        candidates = space.candidates()
        assert candidates == space.candidates()  # deterministic order
        assert len(set(candidates)) == len(candidates)  # no duplicates
        for candidate in candidates:
            assert space.is_legal(candidate)

    def test_invalid_num_rows_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace(pvc_stack_device(1), 0)


class TestLegality:
    def test_unsupported_sub_group_size_illegal(self):
        space = ParameterSpace(pvc_stack_device(1), 32)
        bad = TuneCandidate(8, 32, WORK_GROUP_REDUCE, SLM_PAPER)
        assert not space.is_legal(bad)

    def test_misaligned_work_group_illegal(self):
        space = ParameterSpace(pvc_stack_device(1), 64)
        assert not space.is_legal(TuneCandidate(32, 48, WORK_GROUP_REDUCE, SLM_PAPER))

    def test_sub_group_scope_illegal_for_large_rows(self):
        space = ParameterSpace(pvc_stack_device(1), 64)
        assert not space.is_legal(TuneCandidate(32, 64, SUB_GROUP_REDUCE, SLM_PAPER))

    def test_unknown_slm_strategy_illegal(self):
        space = ParameterSpace(pvc_stack_device(1), 32)
        assert not space.is_legal(TuneCandidate(32, 32, WORK_GROUP_REDUCE, "bogus"))

    def test_oversized_work_group_illegal(self):
        space = ParameterSpace(pvc_stack_device(1), 16)
        # work-group beyond the rounded row coverage is wasted residency
        assert not space.is_legal(TuneCandidate(16, 64, WORK_GROUP_REDUCE, SLM_PAPER))


class TestDefaultAndRoundtrip:
    def test_default_candidate_matches_heuristic(self):
        space = ParameterSpace(pvc_stack_device(1), 32)
        default = space.default_candidate()
        assert default.sub_group_size == 16  # below the default threshold
        assert default.work_group_size == 32
        assert default.reduction_scope == WORK_GROUP_REDUCE
        assert default.slm_strategy == SLM_PAPER
        assert space.is_legal(default)

    def test_candidate_dict_roundtrip(self):
        candidate = TuneCandidate(32, 64, WORK_GROUP_REDUCE, SLM_STRATEGIES[2])
        assert TuneCandidate.from_dict(candidate.as_dict()) == candidate

    def test_geometry_carries_device_name(self):
        geo = TuneCandidate(16, 32, WORK_GROUP_REDUCE, SLM_PAPER).geometry("dev")
        assert geo.device_name == "dev"
        assert geo.work_group_size == 32


class TestSignature:
    def test_signature_stable_for_same_device(self):
        assert space_signature(pvc_stack_device(1)) == space_signature(
            pvc_stack_device(1)
        )

    def test_signature_changes_with_capabilities(self):
        base = pvc_stack_device(1)
        assert space_signature(base) != space_signature(
            replace(base, max_work_group_size=512)
        )
        assert space_signature(base) != space_signature(
            replace(base, slm_bytes_per_cu=base.slm_bytes_per_cu // 2)
        )
        assert space_signature(base) != space_signature(cpu_device())
