"""Search strategies: correctness, determinism, budgets, pruning."""

import pytest

from repro.sycl.device import pvc_stack_device
from repro.tune.search import (
    GRID,
    RANDOM,
    coordinate_descent,
    grid_search,
    prune_candidates,
    random_search,
    run_search,
)
from repro.tune.space import ParameterSpace, TuneCandidate


class FakeEvaluator:
    """Deterministic synthetic landscape over a real parameter space.

    Scores prefer large sub-groups, small work-groups and the
    ``half_capacity`` SLM strategy — far from the heuristic default, so a
    working search must move on every dimension.
    """

    def __init__(self, num_rows: int = 64):
        self.space = ParameterSpace(pvc_stack_device(1), num_rows)
        self.measured_calls = 0

    def score(self, c: TuneCandidate) -> float:
        penalty = 0.0
        penalty += 0.0 if c.sub_group_size == 32 else 1.0
        penalty += c.work_group_size / 64.0
        penalty += 0.0 if c.slm_strategy == "half_capacity" else 0.5
        penalty += 0.0 if c.reduction_scope == "work_group" else 0.25
        return 1.0 + penalty

    def measured_seconds(self, c: TuneCandidate) -> float:
        self.measured_calls += 1
        return self.score(c)

    def cost_model_seconds(self, c: TuneCandidate) -> float:
        return self.score(c)


def best_of(space: ParameterSpace, score) -> TuneCandidate:
    return min(space.candidates(), key=score)


class TestGrid:
    def test_grid_finds_global_optimum(self):
        ev = FakeEvaluator()
        result = grid_search(ev)
        assert result.best == best_of(ev.space, ev.score)
        assert result.best_seconds == pytest.approx(ev.score(result.best))
        assert result.speedup >= 1.0

    def test_grid_prunes_before_measuring(self):
        full = FakeEvaluator()
        grid_search(full)
        pruned = FakeEvaluator()
        result = grid_search(pruned, prune_fraction=0.25)
        assert pruned.measured_calls < full.measured_calls
        assert result.pruned_from == len(pruned.space.candidates())
        # cost model == measurement here, so pruning keeps the optimum
        assert result.best == best_of(pruned.space, pruned.score)

    def test_default_always_measured(self):
        ev = FakeEvaluator()
        result = grid_search(ev)
        assert result.default == ev.space.default_candidate()
        assert result.default_seconds == pytest.approx(ev.score(result.default))


class TestCoordinateDescent:
    def test_improves_every_dimension(self):
        ev = FakeEvaluator()
        result = coordinate_descent(ev)
        assert result.best == best_of(ev.space, ev.score)
        assert result.evaluations <= len(ev.space.candidates())

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            coordinate_descent(FakeEvaluator(), max_rounds=0)


class TestRandom:
    def test_seeded_search_is_deterministic(self):
        r1 = random_search(FakeEvaluator(), budget=8, seed=42)
        r2 = random_search(FakeEvaluator(), budget=8, seed=42)
        assert r1.best == r2.best
        assert [c for c, _ in r1.history] == [c for c, _ in r2.history]

    def test_different_seeds_explore_differently(self):
        r1 = random_search(FakeEvaluator(), budget=8, seed=1, prune_fraction=1.0)
        r2 = random_search(FakeEvaluator(), budget=8, seed=2, prune_fraction=1.0)
        assert [c for c, _ in r1.history] != [c for c, _ in r2.history]

    def test_budget_respected(self):
        ev = FakeEvaluator()
        result = random_search(ev, budget=5, seed=0, prune_fraction=1.0)
        # budget draws + the guaranteed default measurement
        assert result.evaluations <= 5 + 1
        assert result.seed == 0

    def test_early_stopping(self):
        ev = FakeEvaluator()
        result = random_search(ev, budget=10**6, patience=3, seed=0)
        assert result.evaluations < len(ev.space.candidates())

    def test_never_worse_than_default(self):
        result = random_search(FakeEvaluator(), budget=2, seed=9)
        assert result.best_seconds <= result.default_seconds

    def test_invalid_budget_and_patience(self):
        with pytest.raises(ValueError):
            random_search(FakeEvaluator(), budget=0)
        with pytest.raises(ValueError):
            random_search(FakeEvaluator(), patience=0)


class TestPruning:
    def test_keeps_best_fraction(self):
        ev = FakeEvaluator()
        pool = ev.space.candidates()
        kept = prune_candidates(pool, ev.cost_model_seconds, keep_fraction=0.25)
        assert len(kept) == max(4, int(len(pool) * 0.25))
        assert best_of(ev.space, ev.score) in kept

    def test_small_pools_pass_through(self):
        ev = FakeEvaluator()
        pool = ev.space.candidates()[:3]
        assert prune_candidates(pool, ev.cost_model_seconds, 0.1) == pool

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            prune_candidates([], lambda c: 0.0, keep_fraction=0.0)


class TestDispatch:
    def test_run_search_dispatches(self):
        assert run_search(FakeEvaluator(), strategy=GRID).strategy == GRID
        assert run_search(FakeEvaluator(), strategy=RANDOM, budget=4).strategy == RANDOM

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            run_search(FakeEvaluator(), strategy="annealing")
