"""TuningDB: keys, validation, persistence, staleness, generations."""

import json
from dataclasses import replace

import pytest

from repro.core.launch import WORK_GROUP_REDUCE
from repro.exceptions import TuningDBError, TuningError
from repro.sycl.device import pvc_stack_device
from repro.tune.db import (
    ANY,
    SCHEMA_VERSION,
    TuningDB,
    TuningKey,
    TuningRecord,
    bucket_rows,
)
from repro.tune.space import SLM_PAPER, TuneCandidate, space_signature

DEVICE = pvc_stack_device(1)


def make_record(
    device=DEVICE.name,
    solver="cg",
    rows=32,
    signature=None,
    candidate=None,
    modeled=1e-4,
    default=2e-4,
):
    return TuningRecord(
        key=TuningKey.for_problem(device, solver, "jacobi", rows, "double"),
        candidate=candidate
        if candidate is not None
        else TuneCandidate(32, 32, WORK_GROUP_REDUCE, SLM_PAPER),
        modeled_seconds=modeled,
        default_seconds=default,
        strategy="grid",
        evaluations=10,
        seed=0,
        space_signature=signature
        if signature is not None
        else space_signature(DEVICE),
    )


class TestKeys:
    def test_bucket_rounds_up_to_power_of_two(self):
        assert bucket_rows(1) == 4
        assert bucket_rows(5) == 8
        assert bucket_rows(32) == 32
        assert bucket_rows(33) == 64

    def test_bucket_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bucket_rows(0)

    def test_key_string_roundtrip(self):
        key = TuningKey.for_problem("dev", "cg", "jacobi", 60, "double")
        assert key.rows_bucket == 64
        assert TuningKey.from_str(key.as_str()) == key

    def test_malformed_key_raises(self):
        with pytest.raises(TuningDBError):
            TuningKey.from_str("too|few|parts")
        with pytest.raises(TuningDBError):
            TuningKey.from_str("a|b|c|not-int|e")

    def test_generalized_key_wildcards_dispatch_fields(self):
        key = TuningKey.for_problem("dev", "cg", "jacobi", 32, "double")
        generic = key.generalized()
        assert generic.device == "dev" and generic.rows_bucket == 32
        assert (generic.solver, generic.preconditioner, generic.precision) == (
            ANY,
            ANY,
            ANY,
        )


class TestRecordValidation:
    def test_record_json_roundtrip(self):
        record = make_record()
        rebuilt = TuningRecord.from_json(record.key, record.as_json())
        assert rebuilt == record

    def test_missing_fields_raise(self):
        record = make_record()
        payload = record.as_json()
        del payload["parameters"]
        with pytest.raises(TuningDBError, match="missing"):
            TuningRecord.from_json(record.key, payload)

    def test_non_positive_times_raise(self):
        record = make_record()
        payload = record.as_json()
        payload["modeled_seconds"] = 0.0
        with pytest.raises(TuningDBError):
            TuningRecord.from_json(record.key, payload)

    def test_tuning_db_error_is_tuning_error_and_value_error(self):
        assert issubclass(TuningDBError, TuningError)
        assert issubclass(TuningDBError, ValueError)

    def test_speedup(self):
        assert make_record(modeled=1e-4, default=2e-4).speedup == pytest.approx(2.0)


class TestPersistence:
    def test_put_and_reload(self, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDB(path)
        record = make_record()
        db.put(record)
        reloaded = TuningDB(path)
        assert reloaded.records() == [record]
        assert reloaded.generation == db.generation

    def test_file_is_versioned_json(self, tmp_path):
        path = tmp_path / "db.json"
        TuningDB(path).put(make_record())
        raw = json.loads(path.read_text())
        assert raw["version"] == SCHEMA_VERSION
        assert raw["generation"] == 1
        assert len(raw["entries"]) == 1

    def test_schema_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({"version": SCHEMA_VERSION + 1, "entries": {}}))
        with pytest.raises(TuningDBError, match="schema version"):
            TuningDB(path)

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{not json")
        with pytest.raises(TuningDBError):
            TuningDB(path)
        path.write_text(json.dumps({"version": SCHEMA_VERSION}))
        with pytest.raises(TuningDBError, match="entries"):
            TuningDB(path)

    def test_memory_only_db_never_writes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        db = TuningDB()
        db.put(make_record())
        assert list(tmp_path.iterdir()) == []


class TestLookup:
    def test_exact_hit(self):
        db = TuningDB()
        record = make_record()
        db.put(record)
        assert db.lookup(record.key) == record
        assert db.metrics.counter("tune.db.hits").value == 1

    def test_wildcard_fallback(self):
        db = TuningDB()
        generic = replace(make_record(), key=make_record().key.generalized())
        db.put(generic)
        probe = TuningKey.for_problem(DEVICE.name, "bicgstab", "ilu0", 32, "single")
        assert db.lookup(probe) == generic

    def test_stale_signature_misses(self):
        db = TuningDB()
        db.put(make_record(signature="stale-sig"))
        assert db.lookup(make_record().key, signature="live-sig") is None
        assert db.metrics.counter("tune.db.stale").value == 1
        assert db.metrics.counter("tune.db.misses").value == 1

    def test_lookup_geometry_validates_against_device(self):
        db = TuningDB()
        db.put(make_record())
        geo = db.lookup_geometry(DEVICE, "cg", "jacobi", 32, "double")
        assert geo is not None and geo.sub_group_size == 32

        # a record whose geometry the live device cannot run is ignored
        small = replace(DEVICE, max_work_group_size=16)
        db2 = TuningDB()
        db2.put(make_record(signature=space_signature(small)))
        assert db2.lookup_geometry(small, "cg", "jacobi", 32, "double") is None

    def test_lookup_geometry_miss_returns_none(self):
        assert TuningDB().lookup_geometry(DEVICE, "cg", "jacobi", 32, "double") is None


class TestMutation:
    def test_generation_bumps_on_put_and_clear(self):
        db = TuningDB()
        assert db.generation == 0
        db.put(make_record())
        assert db.generation == 1
        db.put(make_record(solver="bicgstab"))
        assert db.generation == 2
        assert db.clear(solver="cg") == 1
        assert db.generation == 3
        assert db.clear(solver="cg") == 0  # nothing removed -> no bump
        assert db.generation == 3

    def test_clear_filters(self):
        db = TuningDB()
        db.put(make_record(device="a"))
        db.put(make_record(device="b"))
        db.put(make_record(device="b", solver="bicgstab"))
        assert db.clear(device="b", solver="bicgstab") == 1
        assert db.clear(device="a") == 1
        assert len(db) == 1
