"""Tuned launch geometries never trade correctness.

The autotuner searches over sub-group/work-group geometry; this test runs
the winning geometry through a real fused-kernel launch under the kernel
sanitizer, so a tuning that introduced a race, divergent barrier or
collective-width mismatch would fail here rather than silently corrupt.
"""

from __future__ import annotations

import numpy as np

from repro.core.launch import LaunchConfigurator
from repro.hw.specs import gpu
from repro.kernels.cg_kernel import batch_cg_kernel
from repro.sanitize import Sanitizer, use_sanitizer
from repro.sycl.memory import LocalSpec
from repro.sycl.queue import Queue
from repro.tune import RANDOM, Autotuner, TuningDB, stencil_workload
from repro.workloads.stencil import stencil_rhs, three_point_stencil

ROWS, NB = 16, 3


def _launch_cg_at(geometry, matrix, b, tolerance=1e-8, max_iterations=200):
    """One fused-CG launch pinned to an explicit geometry (no heuristic)."""
    nb, n = matrix.num_batch, matrix.num_rows
    inv_diag = 1.0 / matrix.diagonal()
    x_out = np.zeros((nb, n))
    out_iters = np.zeros(nb, dtype=np.int64)
    thresholds = tolerance * np.linalg.norm(b, axis=1)
    plan = geometry.plan(nb)
    queue = Queue()
    queue.parallel_for(
        plan.nd_range(),
        batch_cg_kernel,
        args=(
            matrix.row_ptrs,
            matrix.col_idxs,
            matrix.values,
            b,
            x_out,
            inv_diag,
            thresholds,
            max_iterations,
            out_iters,
            False,
            None,
        ),
        local_specs=[LocalSpec(name, (n,)) for name in ("r", "z", "p", "t", "x")],
        name="batch_cg_fused_tuned",
    )
    return x_out, out_iters


def test_tuned_geometry_is_sanitizer_clean_and_correct():
    spec = gpu("pvc1")
    db = TuningDB()
    tuner = Autotuner(spec, db=db, strategy=RANDOM, budget=6, seed=3)
    result = tuner.tune(stencil_workload(ROWS, nb_solve=4))
    winner = result.record.candidate

    # the tuned record is what a configurator with this DB would launch
    cfg = LaunchConfigurator(spec.device, tuning_db=db)
    geometry = cfg.geometry(ROWS, solver="cg", preconditioner="jacobi", precision="double")
    assert geometry.sub_group_size == winner.sub_group_size
    assert geometry.work_group_size == winner.work_group_size

    matrix = three_point_stencil(ROWS, NB)
    b = stencil_rhs(ROWS, NB, seed=7)

    sanitizer = Sanitizer()
    with use_sanitizer(sanitizer):
        x, iters = _launch_cg_at(geometry, matrix, b)

    # clean under every detector...
    assert sanitizer.clean
    summary = sanitizer.summary()
    assert summary["launches"] == 1
    assert summary["work_groups"] == NB
    assert summary["slm_accesses"] > 0
    assert summary["violations"] == {}

    # ...and numerically correct at the tuned geometry
    assert (iters < 200).all()
    dense = matrix.to_batch_dense()
    expected = np.stack([np.linalg.solve(dense[k], b[k]) for k in range(NB)])
    np.testing.assert_allclose(x, expected, rtol=1e-6, atol=1e-8)


def test_heuristic_and_tuned_geometries_agree_under_sanitizer():
    """The heuristic fallback and a differing tuned geometry both stay clean
    and produce the same solution (geometry is a performance knob only)."""
    spec = gpu("pvc1")
    matrix = three_point_stencil(ROWS, NB)
    b = stencil_rhs(ROWS, NB, seed=11)

    cfg = LaunchConfigurator(spec.device)
    heuristic = cfg.geometry(ROWS)
    solutions = []
    for sg in spec.device.sub_group_sizes:
        geo = heuristic.__class__(
            work_group_size=max(sg, heuristic.work_group_size),
            sub_group_size=sg,
            reduction_scope=heuristic.reduction_scope,
            device_name=spec.device.name,
        )
        sanitizer = Sanitizer()
        with use_sanitizer(sanitizer):
            x, _ = _launch_cg_at(geo, matrix, b)
        assert sanitizer.clean, f"violations at sub-group size {sg}"
        solutions.append(x)
    for x in solutions[1:]:
        np.testing.assert_allclose(x, solutions[0], rtol=1e-9, atol=1e-12)
