"""Cross-shard postmortem: attribution, timeline merge, and bundle diff.

Bundles here are synthesized directly through ``write_bundle`` so every
join (flush -> victims, trace -> convergence class, failure ->
attribution) is exercised with known ground truth.
"""

import pytest

from repro.recorder.bundle import write_bundle
from repro.recorder.postmortem import (
    ATTR_CONVERGENCE,
    ATTR_INFRASTRUCTURE,
    ATTR_UNATTRIBUTED,
    analyze_bundles,
    diff_bundles,
    load_bundles,
    render_analysis,
    render_diff,
    render_timeline,
    timeline_rows,
)


def _event(type, trace_id, ts_ns, **fields):
    return {
        "schema_version": 1,
        "type": type,
        "ts_ns": ts_ns,
        "trace_id": trace_id,
        "span_id": None,
        "request_id": trace_id,
        "keep": "tail",
        "fields": fields,
    }


def _chaos_bundle(tmp_path, name="shard-a"):
    """A shard that lost flush f1 to an injected worker death."""
    events = [
        _event("request.flushed", "t1", 100, flush_id="f1", batch_size=2),
        _event("request.flushed", "t2", 110, flush_id="f1", batch_size=2),
        _event("chaos.injected", None, 120, kind="worker_die", flush_id="f1", flush_index=0),
        _event("request.failed", "t1", 200, error="WorkerDiedError", status_code=503),
        _event("request.failed", "t2", 210, error="WorkerDiedError", status_code=503),
    ]
    triggers = [
        {
            "ts": 1.0,
            "reason": "chaos_fault",
            "trace_id": "t1",
            "kind": "worker_die",
            "flush_id": "f1",
            "trace_ids": ["t1", "t2"],
        }
    ]
    return write_bundle(
        tmp_path / name,
        {"events": events, "triggers": triggers},
        reason="chaos_fault",
        trace_id="t1",
        shard=name,
    )


def _divergence_bundle(tmp_path, name="shard-b"):
    """A shard whose flush f2 failed on its own numerics (divergence)."""
    events = [
        _event("request.flushed", "t3", 300, flush_id="f2", batch_size=1),
        _event("request.failed", "t3", 400, error="SolveFailedError", status_code=500),
    ]
    solves = [
        {
            "ts": 2.0,
            "flush_id": "f2",
            "solver": "bicgstab",
            "classes": ["divergence"],
            "class_counts": {"divergence": 1},
            "trace_ids": ["t3"],
            "worst_index": 0,
            "worst_class": "divergence",
            "worst_curve": [1.0, 100.0],
        }
    ]
    return write_bundle(
        tmp_path / name,
        {"events": events, "solves": solves},
        reason="error_5xx",
        trace_id="t3",
        shard=name,
    )


class TestAnalyze:
    def test_infrastructure_attribution_via_trace_join(self, tmp_path):
        _chaos_bundle(tmp_path)
        analysis = analyze_bundles(load_bundles([tmp_path]))
        assert len(analysis["incidents"]) == 1
        incident = analysis["incidents"][0]
        assert incident["source"] == ATTR_INFRASTRUCTURE
        assert incident["fault_class"] == "worker_die"
        assert incident["trace_ids"] == ["t1", "t2"]
        assert incident["trace_id"] == "t1"  # the pinned victim
        # both co-batched failures blamed on the injected fault
        assert analysis["attribution_counts"][ATTR_INFRASTRUCTURE] == 2
        assert analysis["attributed_fraction"] == 1.0

    def test_convergence_attribution(self, tmp_path):
        _divergence_bundle(tmp_path)
        analysis = analyze_bundles(load_bundles([tmp_path]))
        assert analysis["class_counts"] == {"divergence": 1}
        [incident] = analysis["incidents"]
        assert incident["source"] == ATTR_CONVERGENCE
        assert incident["fault_class"] == "divergence"
        assert incident["trace_id"] == "t3"
        [failure] = analysis["failures"]
        assert failure["attribution"] == ATTR_CONVERGENCE
        assert failure["fault_class"] == "divergence"

    def test_cross_shard_merge_keeps_both_stories(self, tmp_path):
        _chaos_bundle(tmp_path, "shard-a")
        _divergence_bundle(tmp_path, "shard-b")
        analysis = analyze_bundles(load_bundles([tmp_path]))
        assert len(analysis["bundles"]) == 2
        assert {inc["source"] for inc in analysis["incidents"]} == {
            ATTR_INFRASTRUCTURE,
            ATTR_CONVERGENCE,
        }
        counts = analysis["attribution_counts"]
        assert counts[ATTR_INFRASTRUCTURE] == 2
        assert counts[ATTR_CONVERGENCE] == 1
        assert counts[ATTR_UNATTRIBUTED] == 0
        assert analysis["attributed_fraction"] == 1.0

    def test_overlapping_dumps_deduplicate(self, tmp_path):
        # two dumps of the same ring: same events, same trigger
        _chaos_bundle(tmp_path, "dump-1")
        _chaos_bundle(tmp_path, "dump-2")
        analysis = analyze_bundles(load_bundles([tmp_path]))
        assert len(analysis["incidents"]) == 1
        assert len(analysis["failures"]) == 2  # t1 and t2, once each

    def test_unattributed_failure_counted_honestly(self, tmp_path):
        events = [_event("request.timed_out", "t9", 500, error="RequestTimeoutError")]
        write_bundle(tmp_path / "b", {"events": events}, reason="manual", shard="s")
        analysis = analyze_bundles(load_bundles([tmp_path]))
        assert analysis["attribution_counts"][ATTR_UNATTRIBUTED] == 1
        assert analysis["attributed_fraction"] == 0.0

    def test_no_failures_is_fully_attributed(self, tmp_path):
        write_bundle(tmp_path / "b", {}, reason="manual", shard="s")
        analysis = analyze_bundles(load_bundles([tmp_path]))
        assert analysis["failures"] == []
        assert analysis["attributed_fraction"] == 1.0

    def test_load_bundles_rejects_empty_path(self, tmp_path):
        with pytest.raises(ValueError):
            load_bundles([tmp_path / "nothing-here"])

    def test_render_analysis_mentions_the_verdict(self, tmp_path):
        _chaos_bundle(tmp_path)
        text = render_analysis(analyze_bundles(load_bundles([tmp_path])))
        assert "worker_die" in text
        assert "Failure attribution" in text
        assert "100.0" in text


class TestTimeline:
    def test_merged_ordering_and_dedup(self, tmp_path):
        _chaos_bundle(tmp_path, "shard-a")
        _divergence_bundle(tmp_path, "shard-b")
        rows = timeline_rows(load_bundles([tmp_path]))
        assert len(rows) == 7  # 5 + 2, no overlap
        assert [r["shard"] for r in rows[:3]] == ["shard-a"] * 3
        assert rows[0]["t_ms"] == "+0.000"
        assert rows[-1]["type"] == "request.failed"
        # same bundles loaded twice: no duplicate rows
        twice = timeline_rows(load_bundles([tmp_path, tmp_path]))
        assert len(twice) == 7

    def test_limit_keeps_the_tail(self, tmp_path):
        _chaos_bundle(tmp_path)
        rows = timeline_rows(load_bundles([tmp_path]), limit=2)
        assert len(rows) == 2
        assert all(r["type"] == "request.failed" for r in rows)

    def test_render_timeline_empty_bundle(self, tmp_path):
        write_bundle(tmp_path / "b", {}, reason="manual", shard="s")
        text = render_timeline(load_bundles([tmp_path]))
        assert "(no events)" in text


class TestDiff:
    def test_diff_surfaces_what_changed(self, tmp_path):
        a = _chaos_bundle(tmp_path, "before")
        b = _divergence_bundle(tmp_path, "after")
        from repro.recorder.bundle import load_bundle

        diff = diff_bundles(load_bundle(a), load_bundle(b))
        events = {row["key"]: row for row in diff["events"]}
        assert events["chaos.injected"]["delta"] == -1
        assert events["request.failed"]["delta"] == -1  # 2 -> 1
        classes = {row["key"]: row for row in diff["classes"]}
        assert classes["divergence"]["delta"] == 1
        triggers = {row["key"]: row for row in diff["triggers"]}
        assert triggers["chaos_fault"]["delta"] == -1
        text = render_diff(diff)
        assert "chaos.injected" in text and "divergence" in text

    def test_identical_bundles_diff_empty(self, tmp_path):
        from repro.recorder.bundle import load_bundle

        path = _chaos_bundle(tmp_path)
        diff = diff_bundles(load_bundle(path), load_bundle(path))
        assert diff["events"] == [] and diff["classes"] == []
        assert "(no differences)" in render_diff(diff)
