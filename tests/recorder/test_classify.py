"""Convergence-forensics classification: the edge cases that matter.

The vocabulary exists to separate "the numerics went bad" from "the
infrastructure went bad" — so the classifier must get the pathological
trajectories right: immediate breakdown, NaN residuals, max-iteration
stagnation, and restart-free divergence.
"""

import math

import numpy as np
import pytest

from repro.recorder.classify import (
    BREAKDOWN,
    CLASSES,
    CONVERGED,
    DIVERGENCE,
    NAN_RESIDUAL,
    SEVERITY,
    STAGNATION,
    classify_curve,
    classify_history,
    downsample_curve,
    solve_summary,
)


class TestClassifyCurve:
    def test_converged_curve(self):
        curve = [1.0, 0.1, 1e-9]
        assert classify_curve(curve, converged=True, iterations=2, max_iterations=100) == CONVERGED

    def test_immediate_breakdown_single_point(self):
        # the recurrence died on iteration 0: one recorded residual,
        # unconverged, budget untouched
        assert (
            classify_curve([1.0], converged=False, iterations=0, max_iterations=100)
            == BREAKDOWN
        )

    def test_frozen_system_is_breakdown_even_mid_budget(self):
        curve = [1.0, 0.5, 0.5]
        assert (
            classify_curve(
                curve, converged=False, frozen=True, iterations=2, max_iterations=100
            )
            == BREAKDOWN
        )

    def test_nan_residual_wins_over_everything(self):
        curve = [1.0, float("nan"), 0.0]
        for converged in (True, False):
            assert (
                classify_curve(curve, converged=converged, iterations=2, max_iterations=2)
                == NAN_RESIDUAL
            )

    def test_inf_residual_is_nan_class(self):
        assert (
            classify_curve(
                [1.0, float("inf")], converged=False, iterations=1, max_iterations=1
            )
            == NAN_RESIDUAL
        )

    def test_max_iter_stagnation(self):
        # budget exhausted, residual roughly where it started: stagnation
        curve = [1.0] + [0.9] * 49
        assert (
            classify_curve(curve, converged=False, iterations=50, max_iterations=50)
            == STAGNATION
        )

    def test_restart_free_divergence(self):
        # residual grows monotonically past 10x initial with the budget spent
        curve = [1.0, 5.0, 25.0, 125.0]
        assert (
            classify_curve(curve, converged=False, iterations=3, max_iterations=3)
            == DIVERGENCE
        )

    def test_growth_below_factor_is_stagnation_not_divergence(self):
        curve = [1.0, 2.0, 9.0]
        assert (
            classify_curve(curve, converged=False, iterations=2, max_iterations=2)
            == STAGNATION
        )

    def test_divergence_factor_is_tunable(self):
        curve = [1.0, 5.0]
        assert (
            classify_curve(
                curve,
                converged=False,
                iterations=1,
                max_iterations=1,
                divergence_factor=2.0,
            )
            == DIVERGENCE
        )

    def test_early_stop_unconverged_is_breakdown(self):
        curve = [1.0, 0.5]
        assert (
            classify_curve(curve, converged=False, iterations=1, max_iterations=100)
            == BREAKDOWN
        )

    def test_unknown_budget_unconverged_is_breakdown(self):
        assert classify_curve([1.0, 0.5], converged=False) == BREAKDOWN

    def test_severity_is_total_order_over_classes(self):
        assert set(SEVERITY) == set(CLASSES)
        assert len(set(SEVERITY.values())) == len(CLASSES)
        assert SEVERITY[CONVERGED] == min(SEVERITY.values())
        assert SEVERITY[NAN_RESIDUAL] == max(SEVERITY.values())


class TestDownsample:
    def test_short_curve_unchanged(self):
        curve = [1.0, 0.5, 0.25]
        assert downsample_curve(curve, points=32) == curve

    def test_long_curve_keeps_endpoints_and_bound(self):
        curve = list(np.geomspace(1.0, 1e-12, 500))
        down = downsample_curve(curve, points=32)
        assert len(down) <= 32
        assert down[0] == curve[0]
        assert down[-1] == curve[-1]
        # shape survives: still monotone decreasing
        assert all(b <= a for a, b in zip(down, down[1:]))

    def test_points_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            downsample_curve([1.0, 0.5], points=1)


class TestClassifyHistory:
    def test_nan_padding_is_not_a_nan_residual(self):
        # the kernel path's dense layout: NaN past each system's
        # recorded iterations must not read as numerics escaping
        history = np.full((2, 6), np.nan)
        history[0, :3] = [1.0, 0.1, 1e-9]
        history[1, :6] = [1.0, 0.9, 0.8, 0.85, 0.9, 0.88]
        classes = classify_history(
            history,
            converged=np.array([True, False]),
            iterations=np.array([2, 5]),
            max_iterations=5,
        )
        assert classes == [CONVERGED, STAGNATION]

    def test_real_nan_inside_budget_detected(self):
        history = np.full((1, 4), np.nan)
        history[0, :3] = [1.0, float("nan"), 2.0]
        classes = classify_history(
            history,
            converged=np.array([False]),
            iterations=np.array([2]),
            max_iterations=10,
        )
        assert classes == [NAN_RESIDUAL]

    def test_frozen_mask_forwarded(self):
        history = np.array([[1.0, 0.5, 0.4]])
        classes = classify_history(
            history,
            converged=np.array([False]),
            iterations=np.array([2]),
            max_iterations=50,
            frozen=np.array([True]),
        )
        assert classes == [BREAKDOWN]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            classify_history(
                np.ones(4),
                converged=np.array([False]),
                iterations=np.array([1]),
                max_iterations=2,
            )


class TestSolveSummary:
    def test_mixed_batch_counts_and_worst(self):
        curves = [
            [1.0, 1e-9],  # converged
            [1.0] + [0.9] * 20,  # stagnation at budget
            [1.0, 50.0, 2500.0],  # divergence (budget spent at iter 2... see below)
            [1.0, float("nan")],  # nan escape
        ]
        summary = solve_summary(
            curves,
            converged=np.array([True, False, False, False]),
            iterations=np.array([1, 20, 20, 1]),
            max_iterations=20,
            solver="cg",
            backend="sycl",
        )
        assert summary["num_systems"] == 4
        assert summary["num_converged"] == 1
        assert summary["classes"][0] == CONVERGED
        assert summary["classes"][1] == STAGNATION
        assert summary["classes"][2] == DIVERGENCE
        assert summary["classes"][3] == NAN_RESIDUAL
        assert summary["class_counts"][CONVERGED] == 1
        # the worst system (NaN) owns the kept curve
        assert summary["worst_index"] == 3
        assert summary["worst_class"] == NAN_RESIDUAL
        assert summary["solver"] == "cg" and summary["backend"] == "sycl"

    def test_worst_curve_is_json_safe(self):
        # NaN samples become None so json.dumps(allow_nan=False) never chokes
        summary = solve_summary(
            [[1.0, float("nan"), float("inf")]],
            converged=np.array([False]),
            iterations=np.array([2]),
            max_iterations=10,
        )
        assert summary["worst_curve"][0] == 1.0
        assert summary["worst_curve"][1] is None
        assert summary["worst_curve"][2] is None
        assert summary["worst_final_residual"] is None

    def test_iteration_statistics(self):
        summary = solve_summary(
            [[1.0, 1e-9], [1.0, 1e-9]],
            converged=np.array([True, True]),
            iterations=np.array([4, 8]),
            max_iterations=50,
        )
        assert summary["iterations_max"] == 8
        assert math.isclose(summary["iterations_mean"], 6.0)

    def test_vectorized_path_matches_scalar_rules(self):
        # uniform-length ndarray curves take the stacked fast path; it
        # must agree with classify_curve on every rule, precedence included
        curves = [
            np.array([1.0, 0.5, 1e-9]),  # converged
            np.array([1.0, 0.9, 0.8]),  # stagnation at budget
            np.array([1.0, 20.0, 300.0]),  # divergence at budget
            np.array([1.0, float("nan"), 0.0]),  # nan beats converged
            np.array([1.0, 0.5, 0.4]),  # frozen -> breakdown mid-budget
            np.array([1.0, 0.5, 0.4]),  # early stop -> breakdown
        ]
        converged = np.array([True, False, False, True, False, False])
        frozen = np.array([False, False, False, False, True, False])
        iterations = np.array([2, 10, 10, 2, 2, 2])
        summary = solve_summary(
            curves, converged=converged, iterations=iterations, max_iterations=10,
            frozen=frozen,
        )
        expected = [
            classify_curve(
                curves[i],
                converged=bool(converged[i]),
                frozen=bool(frozen[i]),
                iterations=int(iterations[i]),
                max_iterations=10,
            )
            for i in range(len(curves))
        ]
        assert summary["classes"] == expected
        assert expected == [
            CONVERGED, STAGNATION, DIVERGENCE, NAN_RESIDUAL, BREAKDOWN, BREAKDOWN,
        ]

    def test_long_curve_downsampled_in_record(self):
        curves = [list(np.geomspace(1.0, 10.0, 400))]
        summary = solve_summary(
            curves,
            converged=np.array([False]),
            iterations=np.array([399]),
            max_iterations=399,
            curve_points=16,
        )
        assert len(summary["worst_curve"]) <= 16
