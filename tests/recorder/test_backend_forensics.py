"""Forensic solve records through the live serving stack, per backend.

The classification edge cases are unit-tested in test_classify; here the
same vocabulary is asserted end to end — submit through SolverService
under an ambient recorder and check what the black box recorded — across
the faithful (sycl), wide-lockstep, and cudasim backends.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.recorder.classify import CONVERGED, SEVERITY
from repro.recorder.recorder import FlightRecorder, use_recorder
from repro.serve import ServeConfig, SolveRequest, SolverService

#: faithful / cudasim / wide, in the serve config's spelling.
BACKENDS = ("sycl", "cuda", "wide")


def _tridiag(n, scale=1.0):
    return sp.diags(
        [np.full(n - 1, -scale), np.full(n, 2.0 * scale), np.full(n - 1, -scale)],
        offsets=[-1, 0, 1],
        format="csr",
    )


def _poisoned(n):
    """Nonsymmetric on the tridiagonal pattern; CG cannot converge on it."""
    matrix = _tridiag(n)
    data = matrix.data.copy()
    off = data < 0
    data[off] = np.where(np.arange(off.sum()) % 2 == 0, 100.0, -99.0)
    matrix.data = data
    return matrix


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolveRecordsPerBackend:
    def _run(self, backend, requests):
        recorder = FlightRecorder(shard=f"test-{backend}")
        config = ServeConfig(
            max_batch_size=len(requests), max_wait_ms=1000.0, num_workers=1,
            backend=backend,
        )
        with use_recorder(recorder):
            with SolverService(config) as service:
                tickets = [service.submit(r) for r in requests]
                service.flush()
                outcomes = [t.result(timeout=30.0) for t in tickets]
        return recorder, outcomes

    def test_converged_batch_recorded_as_converged(self, backend):
        requests = [
            SolveRequest(
                _tridiag(12), np.ones(12), solver="cg",
                preconditioner="jacobi", tolerance=1e-10,
            )
            for _ in range(4)
        ]
        recorder, outcomes = self._run(backend, requests)
        assert all(o.converged for o in outcomes)
        solves = recorder.snapshot()["solves"]
        assert len(solves) == 1
        record = solves[0]
        assert record["backend"] == backend
        assert record["class_counts"] == {CONVERGED: 4}
        assert record["worst_class"] == CONVERGED
        assert record["num_converged"] == 4
        # the trace join is intact: one trace id per co-batched system
        assert len(record["trace_ids"]) == 4
        assert record["flush_id"]
        # the kept curve is a real trajectory ending near the tolerance
        assert record["worst_curve"][0] > record["worst_curve"][-1]

    def test_unconverged_system_gets_a_bad_class(self, backend):
        # one poisoned system co-batched with a healthy one: the batched
        # solve cannot converge it, and the forensic record must say so
        # even though the LU fallback rescues the request afterwards
        requests = [
            SolveRequest(
                _tridiag(12), np.ones(12), solver="cg",
                preconditioner="jacobi", tolerance=1e-10, max_iterations=40,
            ),
            SolveRequest(
                _poisoned(12), np.ones(12), solver="cg",
                preconditioner="jacobi", tolerance=1e-10, max_iterations=40,
            ),
        ]
        recorder, outcomes = self._run(backend, requests)
        assert all(o.converged for o in outcomes)  # fallback saved it
        [record] = recorder.snapshot()["solves"]
        assert record["num_systems"] == 2
        assert record["worst_class"] != CONVERGED
        assert SEVERITY[record["worst_class"]] > SEVERITY[CONVERGED]
        # exactly the poisoned system carries the bad class
        assert record["class_counts"].get(CONVERGED, 0) == 1
        assert record["worst_index"] == 1
        # its curve was retained for the postmortem
        assert len(record["worst_curve"]) >= 2

    def test_every_solve_is_recorded(self, backend):
        requests = [
            SolveRequest(_tridiag(8), np.ones(8), tolerance=1e-8) for _ in range(6)
        ]
        recorder = FlightRecorder(shard=f"test-{backend}")
        config = ServeConfig(
            max_batch_size=2, max_wait_ms=1000.0, num_workers=1, backend=backend
        )
        with use_recorder(recorder):
            with SolverService(config) as service:
                tickets = [service.submit(r) for r in requests]
                for t in tickets:
                    t.result(timeout=30.0)
        assert recorder.solves_seen == 3  # three size-triggered flushes of 2
        assert recorder.flushes_seen == 3
        assert recorder.summary()["events_seen"] > 0
