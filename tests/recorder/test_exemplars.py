"""LogHistogram exemplars: the percentile-to-trace join."""

import math

from repro.observability.metrics import LogHistogram


class TestExemplars:
    def test_observe_records_latest_per_bucket(self):
        hist = LogHistogram("latency")
        hist.observe(10.0, trace_id="old")
        hist.observe(10.1, trace_id="new")  # same bucket, replaces
        rows = hist.exemplars()
        assert len(rows) == 1
        assert rows[0]["trace_id"] == "new"
        assert rows[0]["value"] == 10.1
        assert rows[0]["upper_bound"] > 10.1

    def test_observe_without_trace_id_keeps_existing(self):
        hist = LogHistogram("latency")
        hist.observe(10.0, trace_id="keeper")
        hist.observe(10.1)
        assert hist.exemplar_for(50) == ("keeper", 10.0)

    def test_exemplar_for_tail_percentile(self):
        hist = LogHistogram("latency")
        for i in range(99):
            hist.observe(1.0, trace_id=f"fast-{i}")
        hist.observe(1000.0, trace_id="the-slow-one")
        exemplar = hist.exemplar_for(99.9)
        assert exemplar is not None
        assert exemplar[0] == "the-slow-one"
        # and the body of the distribution resolves to a fast trace
        trace_id, value = hist.exemplar_for(50)
        assert trace_id.startswith("fast-")
        assert value == 1.0

    def test_empty_histogram_has_no_exemplar(self):
        hist = LogHistogram("latency")
        assert hist.exemplar_for(99) is None
        assert hist.exemplars() == []

    def test_no_trace_ids_means_no_exemplar(self):
        hist = LogHistogram("latency")
        hist.observe_many([1.0, 2.0, 3.0])
        assert hist.exemplar_for(99) is None

    def test_underflow_bucket_has_no_exemplar(self):
        hist = LogHistogram("latency")
        for _ in range(10):
            hist.observe(0.0)
        hist.observe(5.0, trace_id="positive")
        # p50 sits in the underflow bucket (reported 0.0, no exemplar)
        assert hist.percentile(50) == 0.0
        assert hist.exemplar_for(50) is None
        assert hist.exemplar_for(99) == ("positive", 5.0)

    def test_gap_falls_back_to_nearest_lower_bucket(self):
        hist = LogHistogram("latency")
        hist.observe(1.0, trace_id="low")
        hist.observe(1000.0)  # tail bucket observed but exemplar-less
        exemplar = hist.exemplar_for(99)
        assert exemplar == ("low", 1.0)

    def test_merge_keeps_own_and_fills_missing(self):
        a = LogHistogram("latency")
        b = LogHistogram("latency")
        a.observe(10.0, trace_id="mine")
        b.observe(10.0, trace_id="theirs")  # same bucket: a's survives
        b.observe(1000.0, trace_id="tail")  # new bucket: adopted
        a.merge(b)
        assert a.exemplar_for(40) == ("mine", 10.0)
        assert a.exemplar_for(99.9) == ("tail", 1000.0)
        assert a.count == 3
        assert math.isclose(a.total, 1020.0)
