"""FlightRecorder rings, triggers, dump bounds, and ambient installation."""

import json

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.recorder.bundle import (
    BUNDLE_KIND,
    find_bundles,
    is_bundle,
    load_bundle,
    write_bundle,
)
from repro.recorder.recorder import (
    TRIGGER_CHAOS_FAULT,
    TRIGGER_MANUAL,
    TRIGGER_SLO_BURN,
    FlightRecorder,
    current_recorder,
    set_recorder,
    use_recorder,
)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


class TestRings:
    def test_rings_are_bounded(self):
        rec = FlightRecorder(capacity=8, solve_capacity=4)
        for i in range(50):
            rec.record_event({"type": "request.solved", "i": i})
            rec.record_flush(flush_id=f"f{i}")
            rec.record_solve({"flush_id": f"f{i}"})
        snap = rec.snapshot()
        assert len(snap["events"]) == 8
        assert len(snap["flushes"]) == 8
        assert len(snap["solves"]) == 4
        # newest survive, oldest evicted
        assert snap["events"][-1]["i"] == 49
        assert rec.events_seen == 50 and rec.solves_seen == 50

    def test_invalid_capacities_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(solve_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(metric_interval=0)

    def test_metric_snapshots_are_rate_limited_deltas(self):
        rec = FlightRecorder(metric_interval=4)
        reg = MetricsRegistry()
        counter = reg.counter("serve.flushes")
        reg.gauge("serve.queue_depth").set(3)
        for i in range(8):
            counter.inc()
            rec.observe_registry(reg)
        snaps = rec.snapshot()["metrics"]
        # 8 calls / interval 4 = 2 snapshots
        assert len(snaps) == 2
        # first snapshot carries both instruments; second only what moved
        assert snaps[0]["deltas"]["serve.flushes"] == 4.0
        assert snaps[0]["deltas"]["serve.queue_depth"] == 3.0
        assert snaps[1]["deltas"] == {"serve.flushes": 8.0}

    def test_never_set_nan_gauge_skipped(self):
        rec = FlightRecorder(metric_interval=1)
        reg = MetricsRegistry()
        reg.gauge("serve.breaker_state")  # value is NaN until set
        reg.counter("serve.flushes").inc()
        rec.observe_registry(reg)
        deltas = rec.snapshot()["metrics"][0]["deltas"]
        assert "serve.breaker_state" not in deltas
        assert deltas["serve.flushes"] == 1.0


class TestTriggersAndDumps:
    def test_trigger_without_dump_dir_records_only(self):
        rec = FlightRecorder()
        assert rec.trigger(TRIGGER_SLO_BURN, slos=["p99"]) is None
        assert rec.triggers_fired == {TRIGGER_SLO_BURN: 1}
        assert rec.snapshot()["triggers"][0]["reason"] == TRIGGER_SLO_BURN

    def test_trigger_auto_dumps_into_dump_dir(self, tmp_path):
        rec = FlightRecorder(dump_dir=tmp_path, shard="s0")
        rec.record_event({"type": "request.failed"})
        bundle = rec.trigger(TRIGGER_CHAOS_FAULT, trace_id="t-123", kind="worker_die")
        assert bundle is not None and is_bundle(bundle)
        loaded = load_bundle(bundle)
        assert loaded["manifest"]["reason"] == TRIGGER_CHAOS_FAULT
        assert loaded["manifest"]["trace_id"] == "t-123"
        assert loaded["manifest"]["shard"] == "s0"
        assert loaded["events"] == [{"type": "request.failed"}]
        # the trigger itself is in the bundle's trigger stream
        assert loaded["triggers"][0]["kind"] == "worker_die"

    def test_same_reason_redump_rate_limited(self, tmp_path):
        clock = FakeClock()
        rec = FlightRecorder(dump_dir=tmp_path, redump_interval_s=60.0, clock=clock)
        assert rec.trigger(TRIGGER_SLO_BURN) is not None
        clock.t += 10.0
        assert rec.trigger(TRIGGER_SLO_BURN) is None  # within the interval
        clock.t += 60.0
        assert rec.trigger(TRIGGER_SLO_BURN) is not None
        # a different reason is not throttled by slo_burn's window
        assert rec.trigger(TRIGGER_CHAOS_FAULT) is not None

    def test_max_dumps_cap(self, tmp_path):
        clock = FakeClock()
        rec = FlightRecorder(
            dump_dir=tmp_path, max_dumps=2, redump_interval_s=0.0, clock=clock
        )
        paths = []
        for _ in range(5):
            clock.t += 1.0
            path = rec.trigger(TRIGGER_CHAOS_FAULT)
            if path is not None:
                paths.append(path)
        assert len(paths) == 2
        assert rec.dumps_written == 2
        assert len(find_bundles(tmp_path)) == 2

    def test_explicit_dump_requires_a_directory(self):
        rec = FlightRecorder()
        with pytest.raises(ValueError):
            rec.dump()

    def test_dump_names_are_sequenced_and_sanitized(self, tmp_path):
        rec = FlightRecorder()
        first = rec.dump(tmp_path, reason="weird/reason name")
        second = rec.dump(tmp_path)
        assert first.name == "bundle-000-weird_reason_name"
        assert second.name == f"bundle-001-{TRIGGER_MANUAL}"

    def test_bundle_is_json_clean(self, tmp_path):
        rec = FlightRecorder()
        rec.record_solve({"classes": ["converged"], "worst_curve": [1.0, None]})
        bundle = rec.dump(tmp_path)
        for line in (bundle / "solves.jsonl").read_text().splitlines():
            json.loads(line)


class TestBundleFormat:
    def test_load_rejects_foreign_kind(self, tmp_path):
        path = tmp_path / "foreign"
        path.mkdir()
        (path / "manifest.json").write_text(json.dumps({"kind": "something.else"}))
        assert not is_bundle(path)
        with pytest.raises(ValueError):
            load_bundle(path)

    def test_load_rejects_newer_schema(self, tmp_path):
        path = write_bundle(tmp_path / "b", {}, reason="manual")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema_version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_bundle(path)

    def test_missing_streams_written_empty(self, tmp_path):
        path = write_bundle(tmp_path / "b", {"events": [{"a": 1}]}, reason="manual")
        loaded = load_bundle(path)
        assert loaded["events"] == [{"a": 1}]
        assert loaded["solves"] == [] and loaded["metrics"] == []
        assert loaded["manifest"]["counts"]["triggers"] == 0
        assert loaded["manifest"]["kind"] == BUNDLE_KIND

    def test_find_bundles_root_or_children(self, tmp_path):
        a = write_bundle(tmp_path / "a", {}, reason="manual")
        write_bundle(tmp_path / "b", {}, reason="manual")
        (tmp_path / "noise").mkdir()
        assert find_bundles(a) == [a]
        assert [p.name for p in find_bundles(tmp_path)] == ["a", "b"]
        assert find_bundles(tmp_path / "missing") == []


class TestAmbientInstall:
    def test_use_recorder_scopes_and_restores(self):
        outer = FlightRecorder()
        inner = FlightRecorder()
        previous = set_recorder(outer)
        try:
            with use_recorder(inner) as active:
                assert active is inner
                assert current_recorder() is inner
                # None means "no change", like use_tracer(None)
                with use_recorder(None) as unchanged:
                    assert unchanged is inner
            assert current_recorder() is outer
        finally:
            set_recorder(previous)

    def test_event_log_taps_ambient_recorder(self):
        from repro.telemetry.events import REQUEST_SOLVED, EventLog

        rec = FlightRecorder()
        log = EventLog()
        with use_recorder(rec):
            log.emit(REQUEST_SOLVED, latency_ms=1.5)
        assert rec.events_seen == 1
        record = rec.snapshot()["events"][0]
        assert record["type"] == REQUEST_SOLVED
        assert record["fields"]["latency_ms"] == 1.5
