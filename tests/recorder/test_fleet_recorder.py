"""Per-shard black boxes: the fleet's cross-shard postmortem story.

An ambient recorder installed around a fleet becomes one sibling
recorder per replica (same limits, shard name stamped), each shard's
private event log taps its own recorder, and ``dump_recorders`` writes
one bundle per shard that the postmortem analyzer merges.
"""

import numpy as np
import scipy.sparse as sp

from repro.fleet.config import FleetConfig
from repro.fleet.service import FleetService
from repro.recorder.recorder import FlightRecorder, use_recorder
from repro.recorder.postmortem import analyze_bundles, load_bundles
from repro.serve import ServeConfig, SolveRequest


def _tridiag(n):
    return sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )


def _fleet_config(replicas=2):
    return FleetConfig(
        initial_replicas=replicas,
        serve=ServeConfig(max_batch_size=4, max_wait_ms=50.0, num_workers=1),
    )


def _requests(count, sizes=(8, 9)):
    # distinct sizes -> distinct BatchKeys -> both shards see traffic
    return [
        SolveRequest(
            _tridiag(sizes[i % len(sizes)]),
            np.ones(sizes[i % len(sizes)]),
            solver="cg",
            preconditioner="jacobi",
            tolerance=1e-8,
        )
        for i in range(count)
    ]


class TestFleetRecorders:
    def test_each_shard_gets_its_own_recorder(self):
        ambient = FlightRecorder(capacity=512, solve_capacity=128, shard="fleet")
        with use_recorder(ambient):
            with FleetService(_fleet_config()) as fleet:
                shards = fleet.shards()
                names = {s.name for s in shards}
                for shard in shards:
                    recorder = shard.service.recorder
                    assert recorder is not None
                    assert recorder is not ambient
                    assert recorder.shard == shard.name
                    assert recorder.capacity == 512
                    assert recorder.solve_capacity == 128
                    # the shard's private event log taps its own box
                    assert shard.service.events.recorder is recorder
                assert len(names) == len(shards)

    def test_no_ambient_recorder_means_none(self):
        with FleetService(_fleet_config()) as fleet:
            assert all(s.service.recorder is None for s in fleet.shards())

    def test_solves_and_events_land_in_the_owning_shard(self):
        ambient = FlightRecorder(shard="fleet")
        with use_recorder(ambient):
            with FleetService(_fleet_config()) as fleet:
                tickets = [fleet.submit(r) for r in _requests(8)]
                fleet.flush()
                for t in tickets:
                    assert t.result(timeout=30.0).converged
                busy = [
                    s for s in fleet.shards() if s.service.recorder.solves_seen
                ]
                assert busy, "no shard recorded a solve"
                for shard in busy:
                    snapshot = shard.service.recorder.snapshot()
                    assert snapshot["solves"]
                    assert snapshot["events"]
        # the fleet-wide ambient box never saw the per-shard solves
        assert ambient.solves_seen == 0

    def test_dump_recorders_feeds_cross_shard_postmortem(self, tmp_path):
        ambient = FlightRecorder(shard="fleet")
        with use_recorder(ambient):
            with FleetService(_fleet_config()) as fleet:
                tickets = [fleet.submit(r) for r in _requests(6)]
                fleet.flush()
                for t in tickets:
                    t.result(timeout=30.0)
                bundles = fleet.dump_recorders(tmp_path, reason="manual")
                assert len(bundles) == len(fleet.shards())
        analysis = analyze_bundles(load_bundles([tmp_path]))
        shard_names = {b["shard"] for b in analysis["bundles"]}
        assert len(shard_names) == len(bundles)
        assert analysis["attributed_fraction"] == 1.0  # nothing failed
