"""Unit tests for the SLM shadow state (ShadowArray / GroupCheck).

These bypass the executor: a GroupCheck is driven directly with fake
work-items, which pins the epoch-based happens-before rules — the heart of
the race detector — at the level of individual accesses.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.exceptions import (
    SlmOutOfBoundsError,
    SlmRaceError,
    UninitializedSlmReadError,
)
from repro.sanitize.sanitizer import Sanitizer, SanitizerConfig
from repro.sanitize.shadow import ShadowArray, wrap_local

_WG, _SG, _NSG = 8, 4, 2


def _check(config=None):
    sanitizer = Sanitizer(config)
    return sanitizer, sanitizer.begin_group("unit", 0, _WG, _SG, _NSG)


def _item(local_id: int, sub_group_id: int = 0):
    return SimpleNamespace(local_id=local_id, sub_group_id=sub_group_id)


def _group_barrier():
    return SimpleNamespace(kind="barrier", scope="group", params=None)


def _sub_barrier():
    return SimpleNamespace(kind="barrier", scope="sub_group", params=None)


def _shadow(shape=(_WG,), config=None):
    sanitizer, check = _check(config)
    arr = ShadowArray(np.zeros(shape), "buf", check)
    check.track_array(arr)
    return sanitizer, check, arr


# -- init bits ---------------------------------------------------------------


def test_read_before_any_write_is_uninitialized():
    _, check, arr = _shadow()
    check.set_current(_item(0))
    with pytest.raises(UninitializedSlmReadError):
        arr[0]


def test_write_then_read_by_same_item_is_clean():
    _, check, arr = _shadow()
    check.set_current(_item(0))
    arr[3] = 7.0
    assert arr[3] == 7.0


def test_fill_is_poisoning_not_initialization():
    _, check, arr = _shadow()
    arr.fill(float("nan"))
    check.set_current(_item(0))
    with pytest.raises(UninitializedSlmReadError):
        arr[0]


def test_host_side_access_is_unchecked():
    """check.current is None between work-items: host pokes stay permissive."""
    _, check, arr = _shadow()
    assert arr[0] == 0.0  # would be uninit inside a kernel


def test_whole_array_read_checks_every_cell():
    _, check, arr = _shadow(shape=(4,))
    check.set_current(_item(0))
    for i in range(3):
        arr[i] = 1.0
    with pytest.raises(UninitializedSlmReadError):
        np.asarray(arr)  # cell 3 never written
    arr[3] = 1.0
    assert np.asarray(arr).sum() == 4.0


# -- bounds ------------------------------------------------------------------


@pytest.mark.parametrize("idx", [-1, _WG, _WG + 5])
def test_integer_index_out_of_declared_shape(idx):
    _, check, arr = _shadow()
    check.set_current(_item(0))
    with pytest.raises(SlmOutOfBoundsError):
        arr[idx] = 1.0


def test_negative_index_rejected_even_where_numpy_would_wrap():
    _, check, arr = _shadow()
    check.set_current(_item(0))
    arr[2] = 5.0
    with pytest.raises(SlmOutOfBoundsError):
        arr[-6]  # NumPy alias of cell 2 on an 8-cell array


def test_tuple_index_bounds_per_axis():
    _, check, arr = _shadow(shape=(4, 3))
    check.set_current(_item(0))
    arr[1, 2] = 1.0
    with pytest.raises(SlmOutOfBoundsError):
        arr[1, 3] = 1.0
    with pytest.raises(SlmOutOfBoundsError):
        arr[1, -1] = 1.0


def test_fancy_index_oob_goes_through_the_generic_path():
    _, check, arr = _shadow(shape=(4,))
    check.set_current(_item(0))
    with pytest.raises(SlmOutOfBoundsError):
        arr[[0, 9]] = 1.0


def test_bounds_violation_still_stops_access_when_detector_is_off():
    """check_bounds=False skips the report, never the stop (no corruption)."""
    _, check, arr = _shadow(config=SanitizerConfig(check_bounds=False))
    check.set_current(_item(0))
    with pytest.raises(SlmOutOfBoundsError):
        arr[-1] = 1.0


# -- multi-dimensional and slice tracking ------------------------------------


def test_row_write_initializes_the_whole_row():
    _, check, arr = _shadow(shape=(3, 4))
    check.set_current(_item(0))
    arr[1] = 2.0
    assert arr[1, 0] == 2.0 and arr[1, 3] == 2.0
    with pytest.raises(UninitializedSlmReadError):
        arr[0, 0]


def test_slice_write_tracks_selected_cells_only():
    _, check, arr = _shadow()
    check.set_current(_item(0))
    arr[2:5] = 1.0
    assert float(np.sum(arr[2:5])) == 3.0
    with pytest.raises(UninitializedSlmReadError):
        arr[5]


# -- the epoch happens-before rules ------------------------------------------


def test_write_write_conflict_between_items_is_a_race():
    _, check, arr = _shadow()
    check.set_current(_item(0))
    arr[0] = 1.0
    check.set_current(_item(1))
    with pytest.raises(SlmRaceError) as err:
        arr[0] = 2.0
    assert set(err.value.report.items) == {0, 1}


def test_read_write_conflict_is_a_race():
    _, check, arr = _shadow()
    check.set_current(_item(0))
    arr[1] = 1.0
    check.on_sync_complete(_group_barrier(), range(_WG), None)
    check.set_current(_item(2))
    arr[1]  # read after the barrier: clean
    check.set_current(_item(3, sub_group_id=0))
    with pytest.raises(SlmRaceError):
        arr[1] = 9.0  # write conflicting with item 2's un-fenced read


def test_group_barrier_orders_everything():
    _, check, arr = _shadow()
    check.set_current(_item(0, sub_group_id=0))
    arr[0] = 1.0
    check.on_sync_complete(_group_barrier(), range(_WG), None)
    check.set_current(_item(5, sub_group_id=1))
    arr[0] = 2.0  # no race: the group barrier fenced the first write
    assert arr.data[0] == 2.0


def test_sub_group_barrier_orders_only_that_sub_group():
    _, check, arr = _shadow()
    check.set_current(_item(0, sub_group_id=0))
    arr[0] = 1.0
    check.on_sync_complete(_sub_barrier(), range(_SG), 0)
    # same sub-group: ordered by its barrier
    check.set_current(_item(1, sub_group_id=0))
    arr[0] = 2.0
    # other sub-group: only a *group* barrier would order it
    check.set_current(_item(5, sub_group_id=1))
    with pytest.raises(SlmRaceError):
        arr[0] = 3.0


def test_same_item_repeated_writes_never_race():
    _, check, arr = _shadow()
    check.set_current(_item(4))
    for _ in range(5):
        arr[2] = 1.0
        arr[2]


def test_collective_does_not_fence_by_default_but_config_relaxes():
    reduce_op = SimpleNamespace(kind="reduce", scope="group", params=("sum",))

    _, check, arr = _shadow()
    check.set_current(_item(0))
    arr[0] = 1.0
    check.on_sync_complete(reduce_op, range(_WG), None)
    check.set_current(_item(1))
    with pytest.raises(SlmRaceError):
        arr[0] = 2.0

    _, check, arr = _shadow(config=SanitizerConfig(collectives_fence=True))
    check.set_current(_item(0))
    arr[0] = 1.0
    check.on_sync_complete(reduce_op, range(_WG), None)
    check.set_current(_item(1))
    arr[0] = 2.0  # fenced under the relaxed model


# -- namespace wrapping ------------------------------------------------------


def test_wrap_local_shares_storage_and_tracks_arrays():
    _, check = _check()
    local = SimpleNamespace(x=np.zeros(4), y=np.zeros((2, 3)))
    wrapped = wrap_local(local, check)
    assert isinstance(wrapped.x, ShadowArray) and isinstance(wrapped.y, ShadowArray)
    assert wrapped.x.data is local.x and wrapped.y.data is local.y
    assert wrapped.x.shape == (4,) and wrapped.y.ndim == 2
    assert len(wrapped.x) == 4 and wrapped.y.size == 6
    check.set_current(_item(0))
    wrapped.x[1] = 3.0
    assert local.x[1] == 3.0  # kernel results land in the original buffer


def test_accesses_are_counted_in_stats():
    sanitizer, check, arr = _shadow()
    check.set_current(_item(0))
    arr[0] = 1.0
    arr[0]
    arr[1] = 2.0
    assert sanitizer.stats.slm_accesses == 3
