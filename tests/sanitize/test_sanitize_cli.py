"""CLI surface of the sanitizer: selftest / check / diff / wrapped commands,
and the interaction with the ``trace`` wrapper (trace still written, exit
code propagated, violation landing on the trace as an instant event).
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


def test_selftest_command_passes(capsys):
    assert main(["sanitize", "selftest"]) == 0
    out = capsys.readouterr().out
    assert "14/14 cases passed" in out


def test_check_command_flags_a_mutant(capsys):
    assert main(["sanitize", "check", "racy-write"]) == 1
    out = capsys.readouterr().out
    assert "slm-race" in out and "buf" in out


def test_check_command_passes_a_clean_kernel(capsys):
    assert main(["sanitize", "check", "clean-reduce"]) == 0
    assert "no violation" in capsys.readouterr().out


def test_check_command_rejects_unknown_case():
    with pytest.raises(SystemExit, match="unknown selftest case"):
        main(["sanitize", "check", "no-such-case"])


def test_sanitize_without_arguments_prints_usage():
    with pytest.raises(SystemExit, match="usage: repro sanitize"):
        main(["sanitize"])


def test_wrapped_command_runs_under_sanitizer_and_summarizes(capsys):
    assert main(["sanitize", "features"]) == 0
    out = capsys.readouterr().out
    assert "sanitizer:" in out
    assert "no violations" in out


def test_diff_command_small_grid_agrees(capsys):
    assert main(["sanitize", "diff", "--batch", "1", "--rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "0 disagreement(s)" in out
    assert "DISAGREE" not in out


def test_trace_of_failing_sanitize_run_still_writes_trace(tmp_path, capsys):
    """Satellite contract: a violation inside ``repro trace`` propagates the
    exit code *and* the trace (with the violation event) reaches disk."""
    trace_file = tmp_path / "san_trace.json"
    code = main(
        ["trace", "sanitize", "check", "racy-write", "--trace-out", str(trace_file)]
    )
    assert code == 1
    captured = capsys.readouterr()
    assert "trace written to" in captured.out
    assert trace_file.exists()
    payload = json.loads(trace_file.read_text())
    names = {event.get("name") for event in payload["traceEvents"]}
    assert "sanitizer.violation" in names


def test_trace_of_clean_sanitized_command_exits_zero(tmp_path, capsys):
    trace_file = tmp_path / "ok_trace.json"
    code = main(["trace", "sanitize", "features", "--trace-out", str(trace_file)])
    assert code == 0
    assert trace_file.exists()
    payload = json.loads(trace_file.read_text())
    names = {event.get("name") for event in payload["traceEvents"]}
    assert "sanitizer.violation" not in names
