"""Differential grid: device kernels vs. the NumPy reference path.

Every case runs one generated batch through the vectorized NumPy solver
(dispatch path, residual history on) and through the fused device kernel
on a simulated backend — under an installed sanitizer — and asserts that
convergence histories, iteration counts and solutions agree. A failing
cell is shrunk to the minimal failing sub-batch before the assertion
fires, so the report names a single reproducible system.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sanitize.diff import DiffCase, run_backend, run_differential

from tests.sanitize.generators import (
    default_problems,
    gen_diag_dominant,
    gen_near_identity_spd,
    gen_pele,
    gen_stencil,
)

SEED = 2023


def _grid() -> list[tuple]:
    """(problem-factory, DiffCase) cells, sized to stay test-suite friendly."""
    cells: list[tuple] = []

    # Full double-precision kernel grid on the stencil battery.
    stencil = ("stencil", lambda: gen_stencil(SEED))
    for solver in ("cg", "bicgstab", "richardson"):
        for precond in ("identity", "jacobi"):
            for backend in ("sycl", "cuda", "wide"):
                cells.append(
                    (
                        stencil,
                        DiffCase(
                            "stencil", solver, precond, "double", backend
                        ),
                    )
                )

    # Single precision: one SPD and one solver per backend keeps runtime low.
    spd = ("near-identity", lambda: gen_near_identity_spd(SEED + 1))
    for backend in ("sycl", "cuda", "wide"):
        cells.append((spd, DiffCase("near-identity", "cg", "jacobi", "single", backend)))
        cells.append(
            (spd, DiffCase("near-identity", "bicgstab", "identity", "single", backend))
        )

    # General (nonsymmetric) systems: the non-CG solvers with Jacobi.
    dd = ("diag-dominant", lambda: gen_diag_dominant(SEED + 2))
    for backend in ("sycl", "cuda", "wide"):
        cells.append((dd, DiffCase("diag-dominant", "bicgstab", "jacobi", "double", backend)))

    # Pele-shaped chemistry Jacobians.
    pele = ("pele", lambda: gen_pele(SEED + 3))
    for backend in ("sycl", "cuda", "wide"):
        cells.append((pele, DiffCase("pele", "bicgstab", "jacobi", "double", backend)))

    return cells


_CELLS = _grid()


def _shrink(problem, case: DiffCase) -> str:
    """Minimal failing sub-batch of a disagreeing cell (single systems first)."""
    for sysid in range(problem.num_batch):
        sub = problem.subset([sysid])
        outcome = run_differential(sub.dense, sub.b, case)
        if not outcome.agree:
            return f"minimal failing sub-batch: system {sysid} of {problem.name}\n" + (
                outcome.describe()
            )
    return "failure does not reproduce on any single-system sub-batch"


@pytest.mark.parametrize(
    "cell", _CELLS, ids=[f"{name}-{case.label()}" for (name, _), case in _CELLS]
)
def test_backend_agrees_with_reference(cell):
    (_, make_problem), case = cell
    problem = make_problem()
    outcome = run_differential(problem.dense, problem.b, case)
    assert outcome.agree, outcome.describe() + "\n" + _shrink(problem, case)
    # fully converged cells really solve the system; slow cells (Richardson
    # on the stencil contracts at ~0.985/iter) only need path agreement
    if (np.asarray(outcome.iterations_dev) < case.max_iterations).all():
        assert outcome.max_residual < 1e-2


def test_all_problem_generators_are_deterministic():
    first = default_problems(5)
    second = default_problems(5)
    for a, b in zip(first, second):
        assert a.name == b.name
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.b, b.b)


def test_same_kernel_same_input_is_bitwise_reproducible():
    """The simulator is deterministic: re-running a cell is bitwise equal.

    This is the strongest comparability claim the harness makes — across
    *runs*, not across backends (whose reduction orders legitimately
    differ; see repro.sanitize.diff's module docstring).
    """
    problem = gen_stencil(SEED)
    from repro.core.matrix.batch_csr import BatchCsr

    matrix = BatchCsr.from_dense(problem.dense)
    case = DiffCase("stencil", "bicgstab", "jacobi", "double", "sycl")
    first = run_backend(matrix, problem.b, case)
    second = run_backend(matrix, problem.b, case)
    np.testing.assert_array_equal(first.x, second.x)
    np.testing.assert_array_equal(first.iterations, second.iterations)
    np.testing.assert_array_equal(first.history, second.history)


def test_wide_backend_is_bitwise_reproducible():
    """Lockstep execution is deterministic too: re-running is bitwise equal."""
    problem = gen_stencil(SEED)
    from repro.core.matrix.batch_csr import BatchCsr

    matrix = BatchCsr.from_dense(problem.dense)
    case = DiffCase("stencil", "bicgstab", "jacobi", "double", "wide")
    first = run_backend(matrix, problem.b, case)
    second = run_backend(matrix, problem.b, case)
    np.testing.assert_array_equal(first.x, second.x)
    np.testing.assert_array_equal(first.iterations, second.iterations)
    np.testing.assert_array_equal(first.history, second.history)


def test_sanitizer_was_actually_installed_for_backend_runs():
    problem = gen_near_identity_spd(SEED)
    from repro.core.matrix.batch_csr import BatchCsr

    matrix = BatchCsr.from_dense(problem.dense)
    run = run_backend(matrix, problem.b, DiffCase("p", "cg"))
    assert run.sanitizer_summary["launches"] == 1
    assert run.sanitizer_summary["slm_accesses"] > 0
    assert run.sanitizer_summary["violations"] == {}
