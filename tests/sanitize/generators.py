"""Seeded problem generators for the differential harness.

Property-based in spirit but deliberately dependency-free (no hypothesis):
every generator is a pure function of an integer seed, so a failing grid
cell is reproducible from its test id alone, and the shrinking helper can
re-run sub-batches deterministically.

Generators cover the shapes the paper's batched workloads take: 3-point
stencils (the scaling study), random shared-pattern SPD and diagonally
dominant general systems (the CSR/ELL/dense dispatch paths), and
Pele-shaped chemistry Jacobians (``A = I - gamma J`` with a mechanism
sparsity pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.general import random_diag_dominant_batch, random_spd_batch
from repro.workloads.pele import pele_batch, pele_rhs
from repro.workloads.stencil import stencil_rhs, three_point_stencil


@dataclass(frozen=True)
class Problem:
    """One generated batched system: dense operator batch plus rhs.

    ``spd`` gates which solvers the differential grid may run (CG needs
    symmetric positive definite items); ``richardson_safe`` marks batches
    whose spectrum keeps the *unpreconditioned* relaxed Richardson
    iteration contractive.
    """

    name: str
    dense: np.ndarray
    b: np.ndarray
    spd: bool
    richardson_safe: bool = False

    @property
    def num_batch(self) -> int:
        return self.dense.shape[0]

    def subset(self, indices) -> "Problem":
        """The sub-batch holding only ``indices`` (used for shrinking)."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        return Problem(
            f"{self.name}[{idx.tolist()}]",
            self.dense[idx],
            self.b[idx],
            self.spd,
            self.richardson_safe,
        )


def gen_stencil(seed: int, num_batch: int = 3, num_rows: int = 16) -> Problem:
    """SPD 3-point-stencil batch — the paper's scaling-study operator."""
    matrix = three_point_stencil(num_rows, num_batch)
    b = stencil_rhs(num_rows, num_batch, seed=seed)
    # stencil diagonals ~2: scale to keep unpreconditioned Richardson stable
    dense = matrix.to_batch_dense()
    return Problem(f"stencil{num_rows}", dense / 4.0, b, spd=True, richardson_safe=True)


def gen_near_identity_spd(seed: int, num_batch: int = 3, num_rows: int = 12) -> Problem:
    """SPD batch with spectrum close to 1 (every solver converges fast)."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((num_batch, num_rows, num_rows))
    for k in range(num_batch):
        a = rng.standard_normal((num_rows, num_rows)) / num_rows
        dense[k] = np.eye(num_rows) + a @ a.T
    b = rng.standard_normal((num_batch, num_rows))
    return Problem("near-identity-spd", dense, b, spd=True, richardson_safe=True)


def gen_random_spd(seed: int, num_batch: int = 3, num_rows: int = 12) -> Problem:
    """Random shared-pattern SPD batch via the library's workload generator."""
    matrix = random_spd_batch(num_batch=num_batch, num_rows=num_rows, density=0.3, seed=seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal((num_batch, num_rows))
    return Problem("random-spd", matrix.to_batch_dense(), b, spd=True)


def gen_diag_dominant(seed: int, num_batch: int = 3, num_rows: int = 12) -> Problem:
    """Nonsymmetric diagonally dominant batch (the general-solver path)."""
    matrix = random_diag_dominant_batch(
        num_batch=num_batch, num_rows=num_rows, density=0.3, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal((num_batch, num_rows))
    return Problem("diag-dominant", matrix.to_batch_dense(), b, spd=False)


def gen_pele(seed: int, num_batch: int = 2) -> Problem:
    """Pele-shaped chemistry Jacobians (drm19, the smallest mechanism)."""
    matrix = pele_batch("drm19", num_batch=num_batch, seed=seed)
    b = pele_rhs(matrix, seed=seed + 1)
    return Problem("pele-drm19", matrix.to_batch_dense(), b, spd=False)


def default_problems(seed: int = 0) -> list[Problem]:
    """The problem battery the backend-agreement grid runs over."""
    return [
        gen_stencil(seed),
        gen_near_identity_spd(seed + 10),
        gen_random_spd(seed + 20),
        gen_diag_dominant(seed + 30),
        gen_pele(seed + 40),
    ]
