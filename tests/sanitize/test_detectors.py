"""Mutation tests: every seeded kernel bug is flagged with the right
diagnostic, every clean counterpart passes, and the sanitizer stays
strictly opt-in.

The positive battery comes from :mod:`repro.sanitize.selftest` (the same
cases ``python -m repro sanitize selftest`` runs); this module adds the
negative checks pytest is better at: exception classes, structured report
fields, configuration toggles, and the opt-in contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    BarrierDivergenceError,
    CollectiveMisuseError,
    KernelFaultError,
    SanitizerError,
    SlmOutOfBoundsError,
    SlmRaceError,
    UninitializedSlmReadError,
)
from repro.sanitize.context import current_sanitizer, use_sanitizer
from repro.sanitize.report import (
    BARRIER_DIVERGENCE,
    COLLECTIVE_MISUSE,
    OOB_ACCESS,
    SLM_RACE,
    UNINIT_READ,
)
from repro.sanitize.sanitizer import Sanitizer, SanitizerConfig
from repro.sanitize.selftest import (
    _GROUPS,
    _SG,
    _WG,
    CLEAN_CASES,
    MUTANT_CASES,
    case_by_name,
    run_case,
    run_selftest,
)
from repro.sycl.memory import LocalSpec
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue


def _launch(kernel, sanitizer=None, specs=(("buf", (_WG,)),), name="detector_test"):
    """Run one self-test-shaped kernel, optionally under a sanitizer."""
    queue = Queue()
    out = np.zeros(_WG * _GROUPS)
    local_specs = [LocalSpec(n, shape) for n, shape in specs]
    if sanitizer is None:
        queue.parallel_for(
            NDRange(_WG * _GROUPS, _WG, _SG),
            kernel,
            args=(out,),
            local_specs=local_specs,
            name=name,
        )
    else:
        with use_sanitizer(sanitizer):
            queue.parallel_for(
                NDRange(_WG * _GROUPS, _WG, _SG),
                kernel,
                args=(out,),
                local_specs=local_specs,
                name=name,
            )
    return out


# -- the mutation battery ----------------------------------------------------


@pytest.mark.parametrize("case", MUTANT_CASES, ids=[c.name for c in MUTANT_CASES])
def test_every_mutant_is_flagged_with_the_right_kind(case):
    result = run_case(case)
    assert result.got == case.expect, (
        f"{case.name}: expected kind {case.expect!r}, sanitizer said "
        f"{result.got!r} ({result.message})"
    )
    assert result.passed


@pytest.mark.parametrize("case", CLEAN_CASES, ids=[c.name for c in CLEAN_CASES])
def test_clean_counterparts_pass_without_report(case):
    result = run_case(case)
    assert result.got is None, f"false positive on {case.name}: {result.message}"
    assert result.passed


def test_run_selftest_covers_all_kinds():
    results = run_selftest()
    kinds = {r.got for r in results if r.got is not None}
    assert kinds == {
        SLM_RACE,
        UNINIT_READ,
        OOB_ACCESS,
        BARRIER_DIVERGENCE,
        COLLECTIVE_MISUSE,
    }
    assert all(r.passed for r in results)


def test_case_lookup_rejects_unknown_names():
    with pytest.raises(KeyError, match="unknown selftest case"):
        case_by_name("no-such-mutant")


# -- exception classes and report structure ----------------------------------


def test_race_report_names_both_items_and_sites():
    sanitizer = Sanitizer()
    case = case_by_name("racy-write")
    with pytest.raises(SlmRaceError) as err:
        _launch(case.kernel, sanitizer)
    rep = err.value.report
    assert rep.kind == SLM_RACE
    assert rep.array == "buf"
    assert rep.index == 0
    assert len(rep.items) == 2 and rep.items[0] != rep.items[1]
    assert len(rep.sites) == 2
    assert all("selftest" in site for site in rep.sites)
    assert not sanitizer.clean
    assert sanitizer.stats.violations == {SLM_RACE: 1}


def test_uninit_report_names_the_untouched_array():
    case = case_by_name("uninit-read")
    with pytest.raises(UninitializedSlmReadError) as err:
        _launch(case.kernel, Sanitizer(), specs=case.specs)
    rep = err.value.report
    assert rep.kind == UNINIT_READ
    assert rep.array == "extra"
    assert rep.index == 0
    assert "before any work-item wrote it" in rep.message


def test_oob_is_also_a_kernel_fault():
    case = case_by_name("oob-index")
    with pytest.raises(SlmOutOfBoundsError) as err:
        _launch(case.kernel, Sanitizer())
    assert isinstance(err.value, KernelFaultError)
    assert isinstance(err.value, SanitizerError)
    assert err.value.report.kind == OOB_ACCESS
    assert err.value.report.index == _WG


def test_negative_index_is_caught_before_numpy_wraps():
    case = case_by_name("negative-index")
    with pytest.raises(SlmOutOfBoundsError) as err:
        _launch(case.kernel, Sanitizer())
    assert err.value.report.index == -_WG


def test_partial_collective_reports_finished_and_waiting_items():
    case = case_by_name("partial-reduce")
    with pytest.raises(CollectiveMisuseError) as err:
        _launch(case.kernel, Sanitizer())
    rep = err.value.report
    assert rep.kind == COLLECTIVE_MISUSE
    assert "non-uniform participation" in rep.message
    # lanes 0 of both sub-groups returned early; everyone else waits
    assert 0 in rep.details["finished_items"]
    assert rep.details["waiting"]


def test_divergent_barrier_counts_report_per_item_sync_counts():
    case = case_by_name("divergent-barrier-count")
    with pytest.raises(BarrierDivergenceError) as err:
        _launch(case.kernel, Sanitizer())
    rep = err.value.report
    assert rep.kind == BARRIER_DIVERGENCE
    assert len(rep.details["completed_syncs_per_item"]) == _WG
    # half the group waits at the extra barrier, half already finished
    finished = set(rep.details["finished_items"])
    waiting = set(rep.details["waiting"])
    assert finished and waiting
    assert finished | waiting == set(range(_WG))
    assert not finished & waiting


def test_split_site_barrier_report_lists_both_sites():
    case = case_by_name("split-site-barrier")
    with pytest.raises(BarrierDivergenceError) as err:
        _launch(case.kernel, Sanitizer())
    rep = err.value.report
    assert rep.kind == BARRIER_DIVERGENCE
    assert len(rep.sites) == 2


def test_wide_shuffle_report_carries_the_offending_params():
    case = case_by_name("wide-shuffle")
    with pytest.raises(CollectiveMisuseError) as err:
        _launch(case.kernel, Sanitizer())
    rep = err.value.report
    assert rep.details["op"] == "shuffle"
    assert rep.details["scope_size"] == _SG


# -- configuration toggles ---------------------------------------------------


def _collective_separated_kernel(item, slm, out):
    """Conflicting phases separated only by a group collective (no barrier)."""
    slm.buf[item.local_id] = float(item.local_id)
    total = yield item.reduce_over_group(0.0, "sum")
    out[item.global_id] = slm.buf[(item.local_id + 1) % item.local_range] + total


def test_collectives_do_not_fence_by_default():
    """SYCL 2020 group algorithms carry no local-memory fence semantics."""
    with pytest.raises(SlmRaceError):
        _launch(_collective_separated_kernel, Sanitizer())


def test_collectives_fence_config_relaxes_the_race():
    sanitizer = Sanitizer(SanitizerConfig(collectives_fence=True))
    _launch(_collective_separated_kernel, sanitizer)
    assert sanitizer.clean


@pytest.mark.parametrize(
    "case_name, config",
    [
        ("racy-write", SanitizerConfig(check_races=False)),
        ("uninit-read", SanitizerConfig(check_uninit=False)),
        ("split-site-barrier", SanitizerConfig(check_barrier_sites=False)),
    ],
)
def test_disabled_detectors_stay_silent(case_name, config):
    result = run_case(case_by_name(case_name), config)
    assert result.got is None, result.message


def test_sites_can_be_disabled_for_speed():
    case = case_by_name("racy-write")
    with pytest.raises(SlmRaceError) as err:
        _launch(case.kernel, Sanitizer(SanitizerConfig(record_sites=False)))
    assert err.value.report.sites == ()


# -- the opt-in contract -----------------------------------------------------


@pytest.mark.no_sanitize
def test_without_sanitizer_buggy_kernels_run_unchecked():
    """No sanitizer installed: the simulator stays permissive (opt-in)."""
    assert current_sanitizer() is None
    racy = case_by_name("racy-write").kernel
    out = _launch(racy, sanitizer=None)
    assert np.all(out == out[0])  # last write wins deterministically


def test_clean_run_accumulates_stats_without_reports():
    sanitizer = Sanitizer()
    _launch(case_by_name("clean-staged").kernel, sanitizer)
    summary = sanitizer.summary()
    assert sanitizer.clean
    assert summary["launches"] == 1
    assert summary["work_groups"] == _GROUPS
    assert summary["slm_accesses"] > 0
    assert summary["syncs"] > 0
    assert summary["violations"] == {}
