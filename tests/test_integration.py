"""End-to-end scenarios crossing subsystem boundaries."""

import numpy as np

from repro.core import BatchBicgstab, BatchJacobi, SolverSettings
from repro.core.dispatch import BatchSolverFactory
from repro.core.stop import RelativeResidual
from repro.core.workspace import SlmBudget, plan_workspace
from repro.hw import analyze_solve, estimate_solve, gpu
from repro.kernels import run_batch_bicgstab_on_device
from repro.sycl.device import pvc_stack_device
from repro.workloads.pele import pele_batch, pele_rhs
from repro.workloads.stencil import three_point_stencil
from repro.workloads.sundials import BdfIntegrator, robertson_batch


class TestPaperPipelinePele:
    """The Fig. 6/7 pipeline: workload -> solve -> model, end to end."""

    def test_full_pele_pipeline(self):
        matrix = pele_batch("drm19")
        b = pele_rhs(matrix)
        factory = BatchSolverFactory(
            solver="bicgstab", preconditioner="jacobi", tolerance=1e-9
        )
        solver = factory.create(matrix)
        result = solver.solve(b)
        assert result.all_converged

        # solutions actually solve the systems
        residual = np.linalg.norm(b - matrix.apply(result.x), axis=1)
        assert np.all(residual <= 1e-9 * np.linalg.norm(b, axis=1) * 1.01)

        # hardware model consumes the result for all four platforms
        times = {
            key: estimate_solve(gpu(key), solver, result, num_batch=2**17).total_seconds
            for key in ("a100", "h100", "pvc1", "pvc2")
        }
        assert times["pvc2"] < times["pvc1"] < times["a100"]
        assert times["h100"] < times["a100"]

    def test_kernel_and_vectorized_paths_agree_on_pele(self):
        # the simulator kernel (the actual "port") against the production path
        matrix = pele_batch("drm19", num_batch=2)
        b = pele_rhs(matrix)
        inv_diag = 1.0 / matrix.diagonal()
        x_kernel, iters_kernel, _ = run_batch_bicgstab_on_device(
            pvc_stack_device(1), matrix, b, inv_diag=inv_diag, tolerance=1e-9
        )
        res = np.linalg.norm(b - matrix.apply(x_kernel), axis=1)
        assert np.all(res <= 1e-9 * np.linalg.norm(b, axis=1) * 1.01)


class TestWorkspaceOnRealSolvers:
    def test_pele_workspace_fits_pvc_slm(self):
        # Section 3.5: for the Pele sizes everything fits in 128 KB
        matrix = pele_batch("dodecane_lu")
        solver = BatchBicgstab(matrix, BatchJacobi(matrix))
        plan = plan_workspace(
            solver.workspace_vectors(),
            SlmBudget(gpu("pvc1").slm_bytes_per_cu),
            precond_doubles=solver.preconditioner.workspace_doubles_per_system(),
        )
        assert plan.level_of("r") == "slm"
        assert plan.level_of("A_cache") == "slm"
        assert plan.level_of("precond") == "slm"

    def test_large_stencil_spills_by_priority(self):
        # a big system: low-priority objects spill first
        matrix = three_point_stencil(1500, 1)
        solver = BatchBicgstab(matrix)
        plan = plan_workspace(
            solver.workspace_vectors(),
            SlmBudget(gpu("pvc1").slm_bytes_per_cu),
            precond_doubles=0,
        )
        assert plan.level_of("r") == "slm"  # top priority always resident
        spilled = [n for n, _ in solver.workspace_vectors() if plan.level_of(n) != "slm"]
        assert spilled, "a 1500-row BiCGSTAB workspace cannot fully fit 128 KB"


class TestBdfDrivenSolves:
    def test_robertson_through_batched_stack(self):
        ode = robertson_batch(num_batch=8, seed=0)
        factory = BatchSolverFactory(
            solver="gmres", preconditioner="jacobi", tolerance=1e-12
        )
        integrator = BdfIntegrator(factory=factory, order=2)
        result = integrator.integrate(ode, t_end=0.05, num_steps=50)
        assert np.allclose(result.states.sum(axis=2), 1.0, atol=1e-7)
        assert result.linear_solves > 0


class TestAdvisorEndToEnd:
    def test_fig8_report_all_platforms(self):
        matrix = pele_batch("gri12")
        solver = BatchBicgstab(
            matrix,
            BatchJacobi(matrix),
            settings=SolverSettings(
                max_iterations=200, criterion=RelativeResidual(1e-9)
            ),
        )
        result = solver.solve(pele_rhs(matrix))
        for key in ("a100", "h100", "pvc1", "pvc2"):
            report = analyze_solve(gpu(key), solver, result, num_batch=2**15)
            assert report.timing.total_seconds > 0
            assert report.total_split.total_bytes > 0
