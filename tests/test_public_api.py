"""Public-API surface: importability and documentation coverage.

Deliverable guard: every public module, class, function and method in the
library carries a docstring, and the documented top-level entry points
exist. Walks the real package rather than a hand-maintained list, so new
code cannot silently ship undocumented.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro",
    "repro.core",
    "repro.sycl",
    "repro.cudasim",
    "repro.kernels",
    "repro.hw",
    "repro.workloads",
    "repro.multi",
    "repro.bench",
    "repro.utils",
]


def _walk_modules():
    names = set()
    for pkg_name in _PACKAGES:
        pkg = importlib.import_module(pkg_name)
        names.add(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.walk_packages(pkg.__path__, prefix=pkg_name + "."):
                names.add(info.name)
    return sorted(names)


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            undocumented.append(name)
        elif inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"


class TestTopLevelSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_documented_entry_points_exist(self):
        from repro.core import BatchCsr, BatchSolveResult  # noqa: F401
        from repro.core.dispatch import BatchSolverFactory, dispatch_solve  # noqa: F401
        from repro.hw import analyze_solve, estimate_solve, gpu  # noqa: F401
        from repro.multi import SimWorld, solve_distributed  # noqa: F401
        from repro.workloads import pele_batch, three_point_stencil  # noqa: F401

    def test_all_exports_resolve(self):
        for pkg_name in _PACKAGES:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"
