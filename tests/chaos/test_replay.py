"""Trace building, the replay format, and SLO-scored replay runs."""

import json

import numpy as np
import pytest

from repro.chaos import ChaosInjector, FaultPlan
from repro.chaos.replay import (
    DEFAULT_TENANTS,
    ReplayItem,
    TenantSpec,
    build_trace,
    load_trace,
    run_replay,
    save_trace,
    trace_requests,
)
from repro.serve import ServeConfig, SolverService
from repro.workloads.arrivals import diurnal_offsets


class TestDiurnalOffsets:
    def test_offsets_are_sorted_and_anchored(self):
        rng = np.random.default_rng(0)
        offsets = diurnal_offsets(100.0, 200, rng, period_s=2.0)
        assert offsets.shape == (200,)
        assert offsets[0] == 0.0
        assert np.all(np.diff(offsets) >= 0)

    def test_rate_modulation_is_visible(self):
        # the first half-period runs above the base rate, the second below:
        # more arrivals land in the peak half-cycle than in the trough
        rng = np.random.default_rng(1)
        period = 4.0
        offsets = diurnal_offsets(200.0, 800, rng, period_s=period, depth=0.9)
        phase = (offsets % period) / period
        peak = np.sum(phase < 0.5)
        trough = np.sum(phase >= 0.5)
        assert peak > 1.5 * trough

    def test_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="depth"):
            diurnal_offsets(10.0, 4, rng, depth=1.0)
        with pytest.raises(ValueError, match="period_s"):
            diurnal_offsets(10.0, 4, rng, period_s=0.0)


class TestBuildTrace:
    def test_deterministic_in_the_seed(self):
        a = build_trace(seed=5, num_requests=50, rate_rps=100.0)
        b = build_trace(seed=5, num_requests=50, rate_rps=100.0)
        assert a == b
        c = build_trace(seed=6, num_requests=50, rate_rps=100.0)
        assert a != c

    def test_tenant_mix_follows_weights(self):
        trace = build_trace(seed=0, num_requests=600, rate_rps=100.0)
        counts = {t.name: 0 for t in DEFAULT_TENANTS}
        for item in trace:
            counts[item.tenant] += 1
        # weights 5:3:2 over 600 draws — free must dominate enterprise
        assert counts["free"] > counts["pro"] > counts["enterprise"]

    def test_priority_inherited_from_tenant(self):
        trace = build_trace(seed=0, num_requests=100, rate_rps=100.0)
        priority_of = {t.name: t.priority for t in DEFAULT_TENANTS}
        assert all(item.priority == priority_of[item.tenant] for item in trace)

    def test_mechanisms_and_keys_mix(self):
        trace = build_trace(seed=0, num_requests=200, rate_rps=100.0, num_keys=4)
        assert {item.solver for item in trace} == {"cg", "bicgstab"}
        assert {item.key for item in trace} == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError, match="pattern"):
            build_trace(seed=0, num_requests=4, rate_rps=10.0, pattern="square-wave")
        with pytest.raises(ValueError, match="tenant"):
            build_trace(seed=0, num_requests=4, rate_rps=10.0, tenants=())
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("t", weight=0.0)


class TestTraceFormat:
    def test_round_trip(self, tmp_path):
        trace = build_trace(seed=3, num_requests=40, rate_rps=100.0, pattern="bursty")
        path = save_trace(trace, tmp_path / "trace.jsonl")
        assert load_trace(path) == trace

    def test_header_validates_kind_and_count(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "something_else", "schema_version": 1}) + "\n")
        with pytest.raises(ValueError, match="not a replay trace"):
            load_trace(path)
        trace = build_trace(seed=0, num_requests=4, rate_rps=10.0)
        good = save_trace(trace, tmp_path / "good.jsonl")
        lines = good.read_text().splitlines()
        (tmp_path / "truncated.jsonl").write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            load_trace(tmp_path / "truncated.jsonl")

    def test_item_round_trip(self):
        item = ReplayItem(offset_s=1.5, tenant="pro", priority="normal",
                          solver="cg", key=2)
        assert ReplayItem.from_dict(item.to_dict()) == item


class TestTraceRequests:
    def test_requests_match_items(self):
        trace = build_trace(seed=1, num_requests=30, rate_rps=100.0, num_keys=3)
        requests = trace_requests(trace, seed=1, size=16)
        for item, request in zip(trace, requests):
            assert request.tenant == item.tenant
            assert request.priority == item.priority
            assert request.solver == item.solver
            assert request.max_iterations == 500 + item.key

    def test_cg_systems_stay_symmetric(self):
        # the per-request perturbation is a congruence D A D: symmetry
        # (hence SPD for the stencil) must survive, or cg replays would
        # report phantom fallbacks
        trace = build_trace(seed=1, num_requests=5, rate_rps=100.0)
        for request in trace_requests(trace, seed=1, size=12):
            import scipy.sparse as sp

            matrix = sp.csr_matrix(
                (request.values, request.col_idxs, request.row_ptrs), shape=(12, 12)
            )
            assert abs(matrix - matrix.T).max() < 1e-12


class TestRunReplay:
    def _factory(self, chaos=None):
        config = ServeConfig(max_batch_size=8, max_wait_ms=2.0, num_workers=2)
        return lambda: SolverService(config, chaos=chaos)

    def test_clean_replay_is_compliant(self):
        trace = build_trace(seed=7, num_requests=40, rate_rps=400.0)
        report = run_replay(trace, self._factory(), seed=7, result_timeout_s=30.0)
        assert report.total == 40
        assert report.completed == 40
        assert report.lost == 0
        assert report.fallbacks == 0
        assert report.slo_compliant, report.to_metrics()
        assert report.latency_p99_ms > 0.0
        assert sum(b["completed"] for b in report.per_tenant.values()) == 40

    def test_battery_replay_loses_nothing(self):
        trace = build_trace(seed=7, num_requests=40, rate_rps=400.0)
        chaos = ChaosInjector(FaultPlan.battery(seed=0))
        report = run_replay(trace, self._factory(chaos), seed=7, result_timeout_s=30.0)
        assert report.lost == 0
        assert report.completed + report.failed + report.rejected == report.total
        assert report.injected_total > 0
        assert report.injected == chaos.injected_by_kind()
        # structured failures only: nothing lands in the 500 bucket
        assert report.statuses.get(500, 0) == 0

    def test_to_metrics_is_flat_and_bench_ready(self):
        trace = build_trace(seed=7, num_requests=16, rate_rps=400.0)
        report = run_replay(trace, self._factory(), seed=7)
        metrics = report.to_metrics()
        assert metrics["lost_requests"] == 0
        assert metrics["slo_compliant"] is True
        assert all(
            isinstance(v, (int, float, bool)) for v in metrics.values()
        ), metrics
