"""End-to-end chaos regression: a 4-shard fleet under the seeded battery.

The gate the chaos harness exists for: worker deaths mid-flush and
poisoned batches against a real fleet must produce **zero lost tickets**
— every request ends in an outcome or a structured error — and the
shared telemetry must stay walkable: every request's trace reconstructs
from admission to a terminal event, and every injection is on the log.
"""

import numpy as np
import scipy.sparse as sp

from repro.chaos import ChaosInjector, FaultPlan, FaultSpec
from repro.chaos.plan import POISON_BATCH, WORKER_DIE
from repro.exceptions import ReproError
from repro.fleet import FleetConfig, FleetService
from repro.serve import ServeConfig, SolveRequest
from repro.telemetry.events import (
    CHAOS_INJECTED,
    REQUEST_ADMITTED,
    REQUEST_FAILED,
    REQUEST_FALLBACK,
    REQUEST_SOLVED,
)
from repro.telemetry.hub import TelemetryHub, use_hub

TERMINAL = {REQUEST_SOLVED, REQUEST_FALLBACK, REQUEST_FAILED}


def _request(rng, key, n=8):
    matrix = sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )
    scale = rng.uniform(0.95, 1.05, size=n)
    rows = np.repeat(np.arange(n), np.diff(matrix.indptr))
    matrix.data = matrix.data * scale[rows] * scale[matrix.indices]
    return SolveRequest(
        matrix,
        rng.standard_normal(n),
        solver="cg",
        preconditioner="jacobi",
        max_iterations=500 + key,  # key diversity -> shard diversity
    )


def _run_fleet(plan, num_requests=64, num_keys=8, fallback=True):
    injector = ChaosInjector(plan)
    hub = TelemetryHub(event_log_capacity=16384)
    config = FleetConfig(
        serve=ServeConfig(
            max_batch_size=4, max_wait_ms=60_000.0, num_workers=1, fallback=fallback
        ),
        initial_replicas=4,
        max_replicas=8,
    )
    rng = np.random.default_rng(0)
    with use_hub(hub):
        fleet = FleetService(config, chaos=injector)
    requests = [_request(rng, key=i % num_keys) for i in range(num_requests)]
    with fleet:
        tickets = [fleet.submit(r) for r in requests]
        fleet.flush()
        errors = [t.exception(timeout=60.0) for t in tickets]
    return injector, hub, fleet, requests, tickets, errors


class TestFourShardBattery:
    def test_zero_lost_tickets_under_battery(self):
        injector, hub, fleet, requests, tickets, errors = _run_fleet(
            FaultPlan.battery(seed=0)
        )
        # every ticket reached a terminal state within the wait budget —
        # the zero-lost invariant (success is NOT required: a sustained
        # fault storm may trip a shard's breaker, which sheds with a
        # structured 503 rather than amplifying the storm)
        assert all(t.done() for t in tickets)
        for error in errors:
            if error is not None:
                assert isinstance(error, ReproError), error
                assert getattr(error, "status_code", 500) != 500, error
        assert injector.total_injected > 0
        by_kind = injector.injected_by_kind()
        assert by_kind.get(WORKER_DIE, 0) >= 1
        assert by_kind.get(POISON_BATCH, 0) >= 1

    def test_structured_failures_without_fallback(self):
        injector, hub, fleet, requests, tickets, errors = _run_fleet(
            FaultPlan(0, (FaultSpec(WORKER_DIE, every=3),)), fallback=False
        )
        assert all(t.done() for t in tickets)
        failures = [e for e in errors if e is not None]
        assert failures, "the every-3 cadence must hit at least one flush"
        for error in failures:
            assert isinstance(error, ReproError)
            assert error.status_code == 503
            assert error.error_code == "worker_died"

    def test_load_spreads_over_shards(self):
        injector, hub, fleet, requests, tickets, errors = _run_fleet(
            FaultPlan.battery(seed=0)
        )
        accepted = [
            int(s.service.metrics.counter("serve.accepted").value)
            for s in fleet.shards()
        ]
        assert len(accepted) == 4
        assert sum(1 for a in accepted if a > 0) >= 2, accepted

    def test_shard_stats_surface_breaker_state(self):
        injector, hub, fleet, requests, tickets, errors = _run_fleet(
            FaultPlan.battery(seed=0)
        )
        for row in fleet.shard_stats():
            assert row["breaker"] in ("closed", "open", "half_open")


class TestWalkableTraces:
    def test_every_request_reconstructs_admission_to_terminal(self):
        injector, hub, fleet, requests, tickets, errors = _run_fleet(
            FaultPlan.battery(seed=0)
        )
        log = hub.event_log
        for request in requests:
            journey = log.records_for(request.trace_context.trace_id)
            types = [e["type"] for e in journey]
            assert REQUEST_ADMITTED in types, request.request_id
            assert TERMINAL & set(types), (request.request_id, types)
            # admission precedes the terminal event in retained order
            first_terminal = next(i for i, t in enumerate(types) if t in TERMINAL)
            assert types.index(REQUEST_ADMITTED) < first_terminal

    def test_injections_appear_on_the_shared_log(self):
        injector, hub, fleet, requests, tickets, errors = _run_fleet(
            FaultPlan.battery(seed=0)
        )
        records = [e for e in hub.event_log.records() if e["type"] == CHAOS_INJECTED]
        assert len(records) == injector.total_injected
        # each injection record names its flush and kind — enough to
        # replay the exact firing from the seed
        for record in records:
            assert record["fields"]["kind"] in injector.injected_by_kind()
            assert record["fields"]["flush_id"].startswith("flush-")
