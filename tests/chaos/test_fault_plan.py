"""FaultPlan/FaultSpec: determinism, trigger semantics, serialization."""

import pytest

from repro.chaos.plan import (
    DEVICE_DELAY,
    FAULT_KINDS,
    POISON_BATCH,
    SANITIZER_TRIP_FAULT,
    SINGULAR_BATCH,
    WORKER_DIE,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike", at=(0,))

    def test_never_firing_spec_rejected(self):
        with pytest.raises(ValueError, match="can never fire"):
            FaultSpec(WORKER_DIE)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"every": 0},
            {"every": -3},
            {"probability": 1.5},
            {"probability": -0.1},
            {"at": (0,), "delay_ms": -1.0},
            {"at": (0,), "max_faults": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(DEVICE_DELAY, **kwargs)

    def test_plan_needs_specs(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultPlan(0, ())


class TestTriggerSemantics:
    def test_at_fires_exactly_on_listed_indices(self):
        spec = FaultSpec(WORKER_DIE, at=(2, 5))
        fired = [i for i in range(10) if spec.fires_at(0, 0, i)]
        assert fired == [2, 5]

    def test_every_fires_on_cadence(self):
        spec = FaultSpec(POISON_BATCH, every=3)
        fired = [i for i in range(12) if spec.fires_at(0, 0, i)]
        assert fired == [2, 5, 8, 11]

    def test_at_takes_precedence_over_every(self):
        # exactly one trigger is consulted, in at > every > probability order
        spec = FaultSpec(WORKER_DIE, at=(1,), every=2)
        fired = [i for i in range(8) if spec.fires_at(0, 0, i)]
        assert fired == [1]

    def test_probability_extremes(self):
        always = FaultSpec(DEVICE_DELAY, probability=1.0)
        assert all(always.fires_at(0, 0, i) for i in range(50))

    def test_probability_rate_roughly_matches(self):
        spec = FaultSpec(DEVICE_DELAY, probability=0.25)
        fired = sum(spec.fires_at(7, 3, i) for i in range(2000))
        assert 0.18 < fired / 2000 < 0.32


class TestDeterminism:
    def test_draws_are_pure_functions_of_the_key(self):
        spec = FaultSpec(DEVICE_DELAY, probability=0.5)
        first = [spec.fires_at(11, 2, i) for i in range(100)]
        second = [spec.fires_at(11, 2, i) for i in range(100)]
        assert first == second

    def test_different_seeds_give_different_schedules(self):
        spec = FaultSpec(DEVICE_DELAY, probability=0.5)
        a = [spec.fires_at(1, 0, i) for i in range(200)]
        b = [spec.fires_at(2, 0, i) for i in range(200)]
        assert a != b

    def test_different_spec_indices_decorrelate(self):
        # two identical probabilistic specs in one plan must not fire in
        # lockstep: the draw is keyed on the spec index too
        spec = FaultSpec(DEVICE_DELAY, probability=0.5)
        a = [spec.fires_at(0, 0, i) for i in range(200)]
        b = [spec.fires_at(0, 1, i) for i in range(200)]
        assert a != b

    def test_plan_firings_reproduce(self):
        plan = FaultPlan.battery(seed=3)
        assert list(plan.firings(64)) == list(plan.firings(64))


class TestBattery:
    def test_covers_every_kind(self):
        plan = FaultPlan.battery(seed=0)
        kinds = {spec.kind for spec in plan.specs}
        assert kinds == set(FAULT_KINDS)

    def test_known_schedule_prefix(self):
        # the exact schedule the CI gate replays: pin it so a battery
        # change is a conscious decision, not drift
        plan = FaultPlan.battery(seed=0)
        cadenced = [
            (i, spec.kind)
            for i, spec in plan.firings(12)
            if spec.kind != DEVICE_DELAY
        ]
        assert cadenced == [
            (3, SANITIZER_TRIP_FAULT),
            (4, POISON_BATCH),
            (6, WORKER_DIE),
            (9, POISON_BATCH),
            (10, SINGULAR_BATCH),
        ]


class TestSerialization:
    def test_spec_round_trip(self):
        spec = FaultSpec(SINGULAR_BATCH, every=4, delay_ms=1.5, max_faults=3)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_plan_round_trip(self):
        plan = FaultPlan.battery(seed=9)
        back = FaultPlan.from_dict(plan.to_dict())
        assert back.seed == plan.seed
        assert back.specs == plan.specs
        assert list(back.firings(32)) == list(plan.firings(32))
