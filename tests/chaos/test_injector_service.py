"""ChaosInjector against a live SolverService: every fault kind realized.

The contract under test is the tentpole invariant: an injected fault is
*never* a crash and *never* a lost ticket — it is either rescued (the
per-request fallback path completes the ticket) or surfaced as a
structured HTTP-style error on the ticket.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chaos import ChaosInjector, FaultPlan, FaultSpec, use_chaos
from repro.chaos.plan import (
    DEVICE_DELAY,
    POISON_BATCH,
    SANITIZER_TRIP_FAULT,
    SINGULAR_BATCH,
    WORKER_DIE,
)
from repro.exceptions import (
    InjectedFaultError,
    PoisonedBatchError,
    ReproError,
    WorkerDiedError,
)
from repro.serve import ServeConfig, SolveRequest, SolverService
from repro.telemetry.events import CHAOS_INJECTED


def _tridiag(n):
    return sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )


def _request(rng, n=8, **kwargs):
    matrix = _tridiag(n)
    scale = rng.uniform(0.95, 1.05, size=n)
    rows = np.repeat(np.arange(n), np.diff(matrix.indptr))
    matrix.data = matrix.data * scale[rows] * scale[matrix.indices]
    return SolveRequest(
        matrix, rng.standard_normal(n), solver="cg", preconditioner="jacobi", **kwargs
    )


def _run_with_fault(spec, fallback=True, requests=4):
    rng = np.random.default_rng(0)
    injector = ChaosInjector(FaultPlan(0, (spec,)))
    config = ServeConfig(
        max_batch_size=requests, max_wait_ms=60_000.0, num_workers=1, fallback=fallback
    )
    with SolverService(config, chaos=injector) as service:
        tickets = [service.submit(_request(rng)) for _ in range(requests)]
        errors = [t.exception(timeout=30.0) for t in tickets]
    return injector, service, tickets, errors


class TestFaultRealization:
    @pytest.mark.parametrize(
        "kind", [WORKER_DIE, POISON_BATCH, SINGULAR_BATCH, SANITIZER_TRIP_FAULT]
    )
    def test_fault_rescued_by_fallback(self, kind):
        injector, service, tickets, errors = _run_with_fault(
            FaultSpec(kind, at=(0,)), fallback=True
        )
        assert injector.injected_by_kind() == {kind: 1}
        assert errors == [None] * 4
        # the whole-flush failure path re-solved every request individually
        assert all(t.result(timeout=1.0).used_fallback for t in tickets)
        # poison/singular corrupt the *assembled* arrays only: the rescue
        # re-assembles from pristine payloads, so solutions stay finite
        assert all(np.isfinite(t.result(timeout=1.0).x).all() for t in tickets)

    def test_worker_die_without_fallback_is_structured_503(self):
        injector, service, tickets, errors = _run_with_fault(
            FaultSpec(WORKER_DIE, at=(0,)), fallback=False
        )
        assert all(isinstance(e, WorkerDiedError) for e in errors)
        assert all(e.status_code == 503 and e.error_code == "worker_died" for e in errors)
        assert all(e.fault == WORKER_DIE for e in errors)

    def test_poison_without_fallback_is_structured_422(self):
        injector, service, tickets, errors = _run_with_fault(
            FaultSpec(POISON_BATCH, at=(0,)), fallback=False
        )
        assert all(isinstance(e, PoisonedBatchError) for e in errors)
        assert all(e.status_code == 422 and e.error_code == "poisoned_batch" for e in errors)

    def test_device_delay_lets_the_flush_succeed(self):
        injector, service, tickets, errors = _run_with_fault(
            FaultSpec(DEVICE_DELAY, at=(0,), delay_ms=1.0)
        )
        assert injector.injected_by_kind() == {DEVICE_DELAY: 1}
        assert errors == [None] * 4
        assert not any(t.result(timeout=1.0).used_fallback for t in tickets)

    def test_every_failure_is_a_structured_repro_error(self):
        # across all fault kinds with fallback disabled, no ticket ever
        # fails with a bare exception (the 500 class)
        for kind in (WORKER_DIE, POISON_BATCH, SINGULAR_BATCH, SANITIZER_TRIP_FAULT):
            _, _, _, errors = _run_with_fault(FaultSpec(kind, at=(0,)), fallback=False)
            for error in errors:
                assert isinstance(error, ReproError)
                assert getattr(error, "status_code", 500) != 500, (kind, error)


class TestTelemetry:
    def test_injection_metric_and_event(self):
        injector, service, _, _ = _run_with_fault(FaultSpec(WORKER_DIE, at=(0,)))
        counter = service.metrics.counter("chaos.injected").labels(kind=WORKER_DIE)
        assert int(counter.value) == 1
        events = [e for e in service.events.records() if e["type"] == CHAOS_INJECTED]
        assert len(events) == 1
        assert events[0]["fields"]["kind"] == WORKER_DIE
        assert events[0]["fields"]["flush_index"] == 0
        assert events[0]["fields"]["batch_size"] == 4

    def test_chaos_event_survives_head_sampling(self):
        # chaos.injected is critical: even with routine telemetry sampled
        # out entirely, the injection record must be retained (it is the
        # event an incident review greps for first)
        rng = np.random.default_rng(5)
        injector = ChaosInjector(FaultPlan(0, (FaultSpec(POISON_BATCH, at=(0,)),)))
        config = ServeConfig(
            max_batch_size=4, max_wait_ms=60_000.0, num_workers=1,
            telemetry_sample_rate=0.0,
        )
        with SolverService(config, chaos=injector) as service:
            tickets = [service.submit(_request(rng)) for _ in range(4)]
            assert all(t.exception(timeout=30.0) is None for t in tickets)
        kept = [e for e in service.events.records() if e["type"] == CHAOS_INJECTED]
        assert len(kept) == 1


class TestInjectorBookkeeping:
    def test_max_faults_budget(self):
        rng = np.random.default_rng(1)
        injector = ChaosInjector(
            FaultPlan(0, (FaultSpec(DEVICE_DELAY, every=1, max_faults=2),))
        )
        config = ServeConfig(max_batch_size=2, max_wait_ms=60_000.0, num_workers=1)
        with SolverService(config, chaos=injector) as service:
            tickets = [service.submit(_request(rng)) for _ in range(10)]
            assert all(t.exception(timeout=30.0) is None for t in tickets)
        assert injector.flushes_seen == 5
        assert injector.total_injected == 2

    def test_flush_sequence_is_monotone(self):
        injector, _, _, _ = _run_with_fault(FaultSpec(DEVICE_DELAY, at=(0,)))
        assert injector.flushes_seen == 1

    def test_injected_fault_error_carries_fault_kind(self):
        error = WorkerDiedError("boom", fault=WORKER_DIE)
        assert isinstance(error, InjectedFaultError)
        assert error.fault == WORKER_DIE


class TestAmbientInstallation:
    def test_use_chaos_scopes_pickup(self):
        rng = np.random.default_rng(2)
        injector = ChaosInjector(FaultPlan(0, (FaultSpec(DEVICE_DELAY, at=(0,)),)))
        config = ServeConfig(max_batch_size=2, max_wait_ms=60_000.0, num_workers=1)
        with use_chaos(injector):
            service = SolverService(config)
        assert service.chaos is injector
        with service:
            tickets = [service.submit(_request(rng)) for _ in range(2)]
            assert all(t.exception(timeout=30.0) is None for t in tickets)
        assert injector.total_injected == 1
        # outside the scope, new services see no injector
        outside = SolverService(config)
        assert outside.chaos is None
        outside.close(drain=False)

    def test_explicit_chaos_wins_over_ambient(self):
        ambient = ChaosInjector(FaultPlan(0, (FaultSpec(DEVICE_DELAY, at=(0,)),)))
        explicit = ChaosInjector(FaultPlan(1, (FaultSpec(DEVICE_DELAY, at=(0,)),)))
        config = ServeConfig(max_batch_size=2, max_wait_ms=60_000.0, num_workers=1)
        with use_chaos(ambient):
            service = SolverService(config, chaos=explicit)
        assert service.chaos is explicit
        service.close(drain=False)
