"""The ``repro chaos`` CLI: replay gate, battery gate, wrapper form."""

from repro.__main__ import main

COMMON = ["--requests", "40", "--rate", "400", "--size", "16"]


class TestChaosReplay:
    def test_clean_replay_passes(self, capsys):
        assert main(["chaos", "replay", *COMMON]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "SLO verdicts" in out
        assert "per-tenant outcomes" in out

    def test_fault_replay_passes_and_reports_injections(self, capsys):
        assert main(["chaos", "replay", *COMMON, "--faults"]) == 0
        out = capsys.readouterr().out
        assert "injected faults:" in out

    def test_trace_out_then_in_round_trips(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        assert main(["chaos", "replay", *COMMON, "--trace-out", trace_path]) == 0
        assert main(["chaos", "replay", "--trace-in", trace_path, "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "40 requests" in out


class TestChaosBattery:
    def test_battery_gate_passes(self, capsys):
        # 40 requests / batch 8 = 5+ flushes: every cadenced kind fires
        # except the every=7 and every=11 ones need more flushes — use a
        # smaller batch so the battery covers all kinds
        code = main(
            ["chaos", "battery", "--requests", "60", "--rate", "400",
             "--size", "16", "--batch-size", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "zero lost" in out

    def test_battery_runs_against_a_fleet(self, capsys):
        code = main(
            ["chaos", "battery", "--requests", "60", "--rate", "400",
             "--size", "16", "--batch-size", "4", "--shards", "2"]
        )
        assert code == 0


class TestChaosWrapper:
    def test_wraps_serve_demo(self, capsys):
        code = main(
            ["chaos", "serve-demo", "--requests", "16", "--size", "16",
             "--fault-seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault battery (seed 3)" in out
        assert "chaos:" in out

    def test_no_command_is_usage_error(self, capsys):
        assert main(["chaos"]) == 2

    def test_bad_fault_seed_is_usage_error(self):
        # --fault-seed rides inside the wrapped argv (argparse REMAINDER
        # only captures flags after the wrapped command name)
        assert main(["chaos", "serve-demo", "--fault-seed", "nope"]) == 2
        assert main(["chaos", "serve-demo", "--fault-seed"]) == 2
