"""Failure injection: hostile inputs must fail loudly or report honestly.

A production solver library is judged by its worst inputs: NaN/Inf data,
singular systems, breakdown-inducing right-hand sides, and defective
patterns. The contract tested here: constructors validate, solvers never
silently report convergence on garbage, and breakdown freezes are honest.
"""

import numpy as np
import pytest

# NaN/Inf propagation through vectorized arithmetic is the *point* of
# these tests; the numpy warnings it triggers are expected noise.
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

from repro.core import (
    BatchBicgstab,
    BatchCg,
    BatchCgs,
    BatchGmres,
    BatchJacobi,
    SolverSettings,
)
from repro.core.matrix import BatchCsr
from repro.core.stop import RelativeResidual
from repro.exceptions import SingularMatrixError
from repro.workloads.general import random_diag_dominant_batch


def _settings(tol=1e-10, iters=200):
    return SolverSettings(max_iterations=iters, criterion=RelativeResidual(tol))


class TestNanInfInputs:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    @pytest.mark.parametrize("solver_cls", [BatchCg, BatchBicgstab, BatchCgs])
    def test_poisoned_rhs_never_reports_converged(
        self, spd_batch, dd_batch, bad, solver_cls
    ):
        matrix = spd_batch if solver_cls is BatchCg else dd_batch
        b = np.ones((8, 12))
        b[3, 5] = bad
        result = solver_cls(matrix, settings=_settings()).solve(b)
        # the poisoned system must not claim success...
        assert not result.converged[3]
        # ...and the healthy systems are unaffected
        healthy = np.delete(np.arange(8), 3)
        assert result.converged[healthy].all()

    def test_nan_matrix_values_never_converge(self):
        m = random_diag_dominant_batch(3, 6, seed=1)
        values = m.values.copy()
        values[1, 0] = np.nan
        poisoned = BatchCsr(m.row_ptrs, m.col_idxs, values)
        result = BatchBicgstab(poisoned, settings=_settings()).solve(np.ones((3, 6)))
        assert not result.converged[1]
        assert result.converged[[0, 2]].all()


class TestSingularSystems:
    def test_singular_item_freezes_not_crashes(self):
        # item 1 is singular (a zero row); CG breaks down there but must
        # still solve the others
        dense = np.stack(
            [
                np.eye(5) * 2.0,
                np.diag([1.0, 1.0, 0.0, 1.0, 1.0]),
                np.eye(5) * 3.0,
            ]
        )
        dense[1, 2, 4] = 1.0  # keep the pattern row non-empty
        m = BatchCsr.from_dense(dense)
        b = np.ones((3, 5))
        b[1, 2] = 2.0  # rows 2 and 4 of item 1 demand b2 == b4: inconsistent
        result = BatchCg(m, settings=_settings()).solve(b)
        assert result.converged[0] and result.converged[2]
        assert not result.converged[1]
        assert np.isfinite(result.x[[0, 2]]).all()

    def test_jacobi_on_singular_diagonal_raises(self):
        dense = np.eye(4)[None].copy()
        dense[0, 2, 2] = 0.0
        dense[0, 2, 3] = 1.0
        m = BatchCsr.from_dense(dense)
        with pytest.raises(SingularMatrixError):
            BatchJacobi(m)


class TestBreakdownPaths:
    def test_bicgstab_zero_shadow_residual(self):
        # b in the kernel of r_hat-orthogonality: engineered breakdown —
        # x0 chosen so r is orthogonal to r_hat after one step is hard to
        # construct exactly; instead verify the guarded divide freezes when
        # rho vanishes (r = 0 via exact initial guess is the trivial case)
        m = random_diag_dominant_batch(2, 6, seed=3)
        b = np.ones((2, 6))
        exact = np.linalg.solve(m.to_batch_dense(), b[..., None])[..., 0]
        result = BatchBicgstab(m, settings=_settings()).solve(b, x0=exact)
        assert result.all_converged
        assert result.max_iterations_used == 0

    def test_gmres_on_identity_converges_in_one(self):
        m = BatchCsr.from_dense(np.eye(8)[None].repeat(2, axis=0))
        b = np.random.default_rng(0).standard_normal((2, 8))
        result = BatchGmres(m, settings=_settings()).solve(b)
        assert result.all_converged
        assert result.max_iterations_used <= 2
        assert np.allclose(result.x, b)

    def test_all_systems_frozen_terminates_early(self):
        # every item singular in the same way: the solver must terminate
        # without exhausting max_iterations
        dense = np.zeros((2, 4, 4))
        dense[:, np.arange(4), np.arange(4)] = [1.0, 1.0, 0.0, 1.0]
        dense[:, 2, 3] = 1.0
        m = BatchCsr.from_dense(dense)
        settings = SolverSettings(
            max_iterations=10_000, criterion=RelativeResidual(1e-12)
        )
        b = np.ones((2, 4))
        b[:, 2] = 2.0  # inconsistent with row 3 (both fix x3): no solution
        result = BatchCg(m, settings=settings).solve(b)
        assert not result.converged.any()
        assert result.max_iterations_used < 100


class TestHostilePatterns:
    def test_from_dense_handles_fully_dense_and_diagonal(self):
        rng = np.random.default_rng(0)
        full = rng.standard_normal((2, 5, 5))
        m = BatchCsr.from_dense(full)
        assert m.nnz_per_item == 25
        diag_only = np.zeros((2, 5, 5))
        diag_only[:, np.arange(5), np.arange(5)] = 1.0
        m2 = BatchCsr.from_dense(diag_only)
        assert m2.nnz_per_item == 5

    def test_single_item_single_row(self):
        m = BatchCsr(np.array([0, 1]), np.array([0]), np.array([[2.0]]))
        result = BatchCg(m, settings=_settings()).solve(np.array([[4.0]]))
        assert result.all_converged
        assert np.allclose(result.x, 2.0)

    def test_broadcast_rhs_across_batch(self, spd_batch):
        b = np.ones(12)  # 1-D: broadcast to all 8 systems
        result = BatchCg(spd_batch, settings=_settings()).solve(b)
        assert result.all_converged
        assert result.x.shape == (8, 12)
