"""Batched solvers: convergence, accuracy, masks, initial guesses, breakdowns."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BatchBicgstab,
    BatchCg,
    BatchDirect,
    BatchGmres,
    BatchJacobi,
    BatchRichardson,
    BatchTrsv,
    SolverSettings,
)
from repro.core.matrix import BatchCsr
from repro.core.stop import AbsoluteResidual, RelativeResidual
from repro.exceptions import DimensionMismatchError
from repro.workloads.general import (
    random_diag_dominant_batch,
    random_spd_batch,
    random_triangular_batch,
)
from tests.conftest import reference_solutions, relative_residuals


def _settings(tol=1e-10, iters=500, history=False):
    return SolverSettings(
        max_iterations=iters, criterion=RelativeResidual(tol), keep_history=history
    )


class TestBatchCg:
    def test_solves_spd_batch(self, spd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchCg(spd_batch, settings=_settings()).solve(b)
        assert result.all_converged
        assert np.allclose(result.x, reference_solutions(spd_batch, b), atol=1e-7)

    def test_jacobi_preconditioning_reduces_iterations(self, rng):
        # badly scaled SPD systems: Jacobi should help a lot
        m = random_spd_batch(4, 20, density=0.2, seed=3)
        scale = np.geomspace(1.0, 1e4, 20)
        dense = m.to_batch_dense() * scale[None, :, None] * scale[None, None, :]
        m = BatchCsr.from_dense(dense)
        b = rng.standard_normal((4, 20))
        plain = BatchCg(m, settings=_settings(1e-8, 3000)).solve(b)
        pre = BatchCg(m, BatchJacobi(m), settings=_settings(1e-8, 3000)).solve(b)
        assert pre.all_converged
        assert pre.iterations.mean() < plain.iterations.mean()

    def test_exact_initial_guess_needs_zero_iterations(self, spd_batch, rng):
        b = rng.standard_normal((8, 12))
        x_exact = reference_solutions(spd_batch, b)
        result = BatchCg(spd_batch, settings=_settings(1e-8)).solve(b, x0=x_exact)
        assert result.all_converged
        assert result.max_iterations_used == 0

    def test_warm_start_accelerates(self, spd_batch, rng):
        b = rng.standard_normal((8, 12))
        x_exact = reference_solutions(spd_batch, b)
        cold = BatchCg(spd_batch, settings=_settings()).solve(b)
        warm = BatchCg(spd_batch, settings=_settings()).solve(
            b, x0=x_exact + 1e-6 * rng.standard_normal((8, 12))
        )
        assert warm.iterations.mean() < cold.iterations.mean()

    def test_residual_history_tracks_convergence(self, spd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchCg(spd_batch, settings=_settings(history=True)).solve(b)
        hist = result.logger.history
        assert hist.shape[1] == 8
        assert np.all(hist[-1] <= hist[0])

    def test_iteration_counts_are_per_system(self):
        # mix a trivially-easy system (identity) with a harder one
        dense = np.zeros((2, 6, 6))
        dense[0] = np.eye(6)
        rng = np.random.default_rng(0)
        hard = random_spd_batch(1, 6, density=0.6, seed=9).to_batch_dense()[0]
        dense[1] = hard
        m = BatchCsr.from_dense(dense)
        b = rng.standard_normal((2, 6))
        result = BatchCg(m, settings=_settings()).solve(b)
        assert result.all_converged
        assert result.iterations[0] < result.iterations[1]


class TestBatchBicgstab:
    def test_solves_nonsymmetric_batch(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchBicgstab(dd_batch, settings=_settings()).solve(b)
        assert result.all_converged
        assert np.max(relative_residuals(dd_batch, result.x, b)) < 1e-9

    def test_with_jacobi(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchBicgstab(
            dd_batch, BatchJacobi(dd_batch), settings=_settings()
        ).solve(b)
        assert result.all_converged

    def test_absolute_criterion(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        settings = SolverSettings(max_iterations=500, criterion=AbsoluteResidual(1e-8))
        result = BatchBicgstab(dd_batch, settings=settings).solve(b)
        assert result.all_converged
        assert np.all(result.residual_norms <= 1e-8)

    def test_max_iterations_respected(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        settings = SolverSettings(max_iterations=2, criterion=RelativeResidual(1e-14))
        result = BatchBicgstab(dd_batch, settings=settings).solve(b)
        assert result.max_iterations_used <= 2

    def test_zero_rhs_converges_immediately(self, dd_batch):
        result = BatchBicgstab(dd_batch, settings=_settings()).solve(np.zeros((8, 12)))
        assert result.all_converged
        assert result.max_iterations_used == 0
        assert np.allclose(result.x, 0.0)


class TestBatchGmres:
    def test_solves_nonsymmetric_batch(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchGmres(dd_batch, settings=_settings(1e-9)).solve(b)
        assert result.all_converged
        assert np.max(relative_residuals(dd_batch, result.x, b)) < 1e-8

    def test_full_subspace_is_exact(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchGmres(dd_batch, settings=_settings(1e-12), restart=12).solve(b)
        assert np.allclose(result.x, reference_solutions(dd_batch, b), atol=1e-6)

    def test_restart_bounds_workspace(self, dd_batch):
        solver = BatchGmres(dd_batch, restart=5)
        names = dict(solver.workspace_vectors())
        assert names["V"] == 6 * 12

    def test_restarted_still_converges(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchGmres(dd_batch, settings=_settings(1e-9, 2000), restart=4).solve(b)
        assert result.all_converged

    def test_invalid_restart_rejected(self, dd_batch):
        with pytest.raises(ValueError):
            BatchGmres(dd_batch, restart=0)


class TestBatchRichardson:
    def test_converges_with_jacobi_on_dd(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchRichardson(
            dd_batch, BatchJacobi(dd_batch), settings=_settings(1e-8, 2000)
        ).solve(b)
        assert result.all_converged
        assert np.max(relative_residuals(dd_batch, result.x, b)) < 1e-7

    def test_invalid_omega_rejected(self, dd_batch):
        with pytest.raises(ValueError):
            BatchRichardson(dd_batch, omega=2.5)


class TestBatchTrsv:
    def test_lower_matches_reference(self, rng):
        m = random_triangular_batch(4, 9, uplo="lower", seed=1)
        b = rng.standard_normal((4, 9))
        result = BatchTrsv(m, uplo="lower").solve(b)
        assert result.all_converged
        assert np.allclose(result.x, reference_solutions(m, b), atol=1e-10)

    def test_upper_matches_reference(self, rng):
        m = random_triangular_batch(4, 9, uplo="upper", seed=2)
        b = rng.standard_normal((4, 9))
        result = BatchTrsv(m, uplo="upper").solve(b)
        assert np.allclose(result.x, reference_solutions(m, b), atol=1e-10)

    def test_structure_violation_rejected(self, dd_batch):
        from repro.exceptions import BadSparsityPatternError

        with pytest.raises(BadSparsityPatternError):
            BatchTrsv(dd_batch, uplo="lower")

    def test_reports_single_iteration(self, rng):
        m = random_triangular_batch(4, 9, uplo="lower", seed=1)
        result = BatchTrsv(m, uplo="lower").solve(rng.standard_normal((4, 9)))
        assert result.max_iterations_used == 1


class TestBatchDirect:
    def test_exact_solve(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchDirect(dd_batch).solve(b)
        assert result.all_converged
        assert np.allclose(result.x, reference_solutions(dd_batch, b))

    def test_singular_batch_item_raises(self):
        from repro.exceptions import SingularMatrixError

        dense = np.eye(4)[None].repeat(2, axis=0)
        dense[1, 2, 2] = 0.0
        dense[1, 2, 3] = 1.0
        dense[1, 3, 2] = 0.0
        dense[1, 3, 3] = 0.0
        m = BatchCsr.from_dense(dense)
        with pytest.raises(SingularMatrixError):
            BatchDirect(m).solve(np.ones((2, 4)))


class TestCommonBehaviour:
    @pytest.mark.parametrize("solver_cls", [BatchCg, BatchBicgstab, BatchGmres])
    def test_non_square_rejected(self, solver_cls):
        m = BatchCsr(
            np.array([0, 1, 2]), np.array([0, 1]), np.ones((1, 2)), num_cols=5
        )
        with pytest.raises(DimensionMismatchError):
            solver_cls(m)

    @pytest.mark.parametrize("solver_cls", [BatchCg, BatchBicgstab, BatchGmres])
    def test_rhs_shape_validated(self, solver_cls, spd_batch):
        with pytest.raises(DimensionMismatchError):
            solver_cls(spd_batch).solve(np.ones((8, 5)))

    def test_ledger_populated(self, spd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchCg(spd_batch, settings=_settings()).solve(b)
        assert result.ledger.flops > 0
        assert result.ledger.calls["spmv"] >= 8
        assert "r" in result.ledger.bytes_by_object

    def test_result_repr(self, spd_batch, rng):
        result = BatchCg(spd_batch, settings=_settings()).solve(
            rng.standard_normal((8, 12))
        )
        assert "cg" in repr(result)

    def test_solver_settings_validation(self):
        with pytest.raises(ValueError):
            SolverSettings(max_iterations=0)
        with pytest.raises(TypeError):
            SolverSettings(criterion="relative")


@settings(max_examples=10, deadline=None)
@given(nb=st.integers(1, 4), n=st.integers(2, 10), seed=st.integers(0, 300))
def test_cg_property_spd_convergence(nb, n, seed):
    m = random_spd_batch(nb, n, density=0.5, seed=seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal((nb, n))
    result = BatchCg(m, settings=_settings(1e-9, 10 * n + 20)).solve(b)
    assert result.all_converged
    assert np.max(relative_residuals(m, result.x, b)) < 1e-8


@settings(max_examples=10, deadline=None)
@given(nb=st.integers(1, 4), n=st.integers(2, 10), seed=st.integers(0, 300))
def test_bicgstab_property_dd_convergence(nb, n, seed):
    m = random_diag_dominant_batch(nb, n, density=0.5, seed=seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal((nb, n))
    result = BatchBicgstab(m, settings=_settings(1e-9, 40 * n + 40)).solve(b)
    assert np.max(relative_residuals(m, result.x, b)) < 1e-6
