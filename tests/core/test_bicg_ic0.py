"""BatchBicg (two-sided, uses A^T) and BatchIc0 (incomplete Cholesky)."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.core import (
    BatchBicg,
    BatchCg,
    BatchIc0,
    BatchJacobi,
    SolverSettings,
)
from repro.core.dispatch import BatchSolverFactory
from repro.core.matrix import BatchCsr, BatchDense
from repro.core.stop import RelativeResidual
from repro.exceptions import (
    BadSparsityPatternError,
    SingularMatrixError,
    UnsupportedCombinationError,
)
from repro.workloads.general import random_diag_dominant_batch, random_spd_batch
from tests.conftest import relative_residuals


def _settings(tol=1e-10, iters=400):
    return SolverSettings(max_iterations=iters, criterion=RelativeResidual(tol))


class TestTranspose:
    def test_matches_dense_transpose(self, dd_batch):
        t = dd_batch.transpose()
        assert np.allclose(
            t.to_batch_dense(), dd_batch.to_batch_dense().transpose(0, 2, 1)
        )

    def test_double_transpose_round_trip(self, dd_batch):
        tt = dd_batch.transpose().transpose()
        assert np.allclose(tt.to_batch_dense(), dd_batch.to_batch_dense())

    def test_rectangular_transpose(self):
        m = BatchCsr(
            np.array([0, 2, 3]),
            np.array([0, 3, 1]),
            np.array([[1.0, 2.0, 3.0]]),
            num_cols=4,
        )
        t = m.transpose()
        assert t.shape == (1, 4, 2)
        assert np.allclose(t.to_batch_dense()[0], m.to_batch_dense()[0].T)

    def test_preserves_dtype(self, dd_batch):
        assert dd_batch.astype(np.float32).transpose().dtype == np.float32


class TestBatchBicg:
    def test_solves_nonsymmetric_batch(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchBicg(dd_batch, settings=_settings()).solve(b)
        assert result.all_converged
        assert np.max(relative_residuals(dd_batch, result.x, b)) < 1e-9

    def test_with_jacobi(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchBicg(dd_batch, BatchJacobi(dd_batch), settings=_settings()).solve(b)
        assert result.all_converged

    def test_reduces_to_cg_on_spd(self, rng):
        # on SPD systems BiCG's two recurrences coincide with CG
        spd = random_spd_batch(3, 10, seed=4)
        b = rng.standard_normal((3, 10))
        bicg = BatchBicg(spd, settings=_settings()).solve(b)
        cg = BatchCg(spd, settings=_settings()).solve(b)
        assert np.array_equal(bicg.iterations, cg.iterations)
        assert np.allclose(bicg.x, cg.x, atol=1e-8)

    def test_requires_csr(self, dd_batch):
        with pytest.raises(UnsupportedCombinationError, match="BatchCsr"):
            BatchBicg(BatchDense(dd_batch.to_batch_dense()))

    def test_registered_in_dispatch(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchSolverFactory(solver="bicg", tolerance=1e-9).solve(dd_batch, b)
        assert result.all_converged

    @hsettings(max_examples=8, deadline=None)
    @given(nb=st.integers(1, 3), n=st.integers(2, 9), seed=st.integers(0, 200))
    def test_property_dd_convergence(self, nb, n, seed):
        m = random_diag_dominant_batch(nb, n, density=0.5, seed=seed)
        rng = np.random.default_rng(seed + 1)
        b = rng.standard_normal((nb, n))
        result = BatchBicg(m, settings=_settings(1e-9, 40 * n + 40)).solve(b)
        assert np.max(relative_residuals(m, result.x, b)) < 1e-6


class TestBatchIc0:
    def test_factor_reproduces_pattern_entries(self, rng):
        spd = random_spd_batch(4, 10, seed=7)
        lower = BatchIc0(spd).factor_dense()
        product = np.einsum("bij,bkj->bik", lower, lower)
        dense = spd.to_batch_dense()
        mask = dense != 0.0
        assert np.allclose(product[mask], dense[mask], atol=1e-9)

    def test_lower_triangular_positive_diagonal(self):
        spd = random_spd_batch(3, 8, seed=8)
        lower = BatchIc0(spd).factor_dense()
        assert np.allclose(np.triu(lower, k=1), 0.0)
        n = spd.num_rows
        assert np.all(lower[:, np.arange(n), np.arange(n)] > 0)

    def test_apply_solves_llt(self, rng):
        spd = random_spd_batch(3, 8, seed=9)
        ic = BatchIc0(spd)
        lower = ic.factor_dense()
        r = rng.standard_normal((3, 8))
        expected = np.linalg.solve(
            np.einsum("bij,bkj->bik", lower, lower), r[..., None]
        )[..., 0]
        assert np.allclose(ic.apply(r), expected, atol=1e-9)

    def test_accelerates_cg(self, rng):
        spd = random_spd_batch(4, 16, density=0.3, seed=10)
        b = rng.standard_normal((4, 16))
        plain = BatchCg(spd, settings=_settings()).solve(b)
        pre = BatchCg(spd, BatchIc0(spd), settings=_settings()).solve(b)
        assert pre.all_converged
        assert pre.iterations.mean() < plain.iterations.mean()

    def test_non_spd_values_rejected(self):
        m = BatchCsr.from_dense(-np.eye(4)[None])
        with pytest.raises(SingularMatrixError, match="SPD"):
            BatchIc0(m)

    def test_asymmetric_pattern_rejected(self):
        dense = np.eye(4)[None].copy()
        dense[0, 0, 3] = 1.0  # (0,3) present, (3,0) absent
        with pytest.raises(BadSparsityPatternError, match="symmetric"):
            BatchIc0(BatchCsr.from_dense(dense))

    def test_registered_in_dispatch(self, rng):
        spd = random_spd_batch(3, 8, seed=11)
        b = rng.standard_normal((3, 8))
        factory = BatchSolverFactory(solver="cg", preconditioner="ic0", tolerance=1e-9)
        assert factory.solve(spd, b).all_converged
