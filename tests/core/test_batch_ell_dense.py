"""BatchEll and BatchDense: construction, SpMV, conversions, storage."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matrix import BatchCsr, BatchDense, BatchEll
from repro.core.matrix.batch_ell import PADDING
from repro.exceptions import BadSparsityPatternError, DimensionMismatchError


def _tridiag_dense(nb=3, n=6, seed=0):
    rng = np.random.default_rng(seed)
    dense = np.zeros((nb, n, n))
    i = np.arange(n)
    dense[:, i, i] = 2.0 + rng.random((nb, n))
    dense[:, i[1:], i[:-1]] = -1.0
    dense[:, i[:-1], i[1:]] = -1.0
    return dense


class TestBatchDense:
    def test_apply_matches_einsum(self):
        dense = _tridiag_dense()
        m = BatchDense(dense)
        x = np.ones((3, 6))
        assert np.allclose(m.apply(x), dense.sum(axis=2))

    def test_from_item_replicates(self):
        item = np.eye(3)
        m = BatchDense.from_item(item, 5)
        assert m.num_batch == 5
        assert np.allclose(m.to_batch_dense()[4], item)

    def test_diagonal_and_transpose(self):
        dense = _tridiag_dense()
        m = BatchDense(dense)
        assert np.allclose(m.diagonal(), dense[:, np.arange(6), np.arange(6)])
        assert np.allclose(m.transpose().values, dense.transpose(0, 2, 1))

    def test_storage_formula(self):
        m = BatchDense(np.zeros((4, 5, 6)))
        assert m.storage_bytes == 8 * 4 * 5 * 6

    def test_rejects_2d(self):
        with pytest.raises(DimensionMismatchError):
            BatchDense(np.zeros((5, 6)))

    def test_item_dense_bounds(self):
        m = BatchDense(np.zeros((2, 3, 3)))
        with pytest.raises(IndexError):
            m.item_dense(2)


class TestBatchEllConstruction:
    def test_from_csr_round_trip(self):
        dense = _tridiag_dense()
        csr = BatchCsr.from_dense(dense)
        ell = BatchEll.from_batch_csr(csr)
        assert ell.ell_width == 3
        assert np.allclose(ell.to_batch_dense(), dense)

    def test_padding_slots_must_hold_zeros(self):
        cols = np.array([[0], [PADDING]], dtype=np.int32)
        vals = np.ones((1, 2, 1))  # nonzero in padding slot
        with pytest.raises(BadSparsityPatternError, match="padding"):
            BatchEll(cols, vals, num_cols=1)

    def test_out_of_range_column_rejected(self):
        cols = np.array([[7]], dtype=np.int32)
        with pytest.raises(BadSparsityPatternError):
            BatchEll(cols, np.ones((1, 1, 1)), num_cols=2)

    def test_nnz_counts_padding(self):
        dense = np.zeros((1, 3, 3))
        dense[0, 0] = [1.0, 1.0, 1.0]  # one long row forces width 3
        dense[0, 1, 1] = 1.0
        dense[0, 2, 2] = 1.0
        ell = BatchEll.from_dense(dense)
        assert ell.ell_width == 3
        assert ell.nnz_per_item == 9  # padded
        assert ell.nnz_unpadded == 5


class TestBatchEllSpMV:
    def test_matches_dense(self):
        dense = _tridiag_dense()
        ell = BatchEll.from_dense(dense)
        x = np.random.default_rng(1).standard_normal((3, 6))
        assert np.allclose(ell.apply(x), np.einsum("bij,bj->bi", dense, x))

    def test_agrees_with_csr(self):
        dense = _tridiag_dense()
        csr = BatchCsr.from_dense(dense)
        ell = BatchEll.from_batch_csr(csr)
        x = np.random.default_rng(2).standard_normal((3, 6))
        assert np.allclose(ell.apply(x), csr.apply(x))

    def test_diagonal(self):
        dense = _tridiag_dense()
        ell = BatchEll.from_dense(dense)
        assert np.allclose(ell.diagonal(), dense[:, np.arange(6), np.arange(6)])

    def test_scaled_copy(self):
        ell = BatchEll.from_dense(_tridiag_dense())
        scaled = ell.scaled_copy(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(scaled.values[2], 3.0 * ell.values[2])


class TestStorageComparison:
    def test_fig2_ell_formula(self):
        ell = BatchEll.from_dense(_tridiag_dense(nb=4))
        expected = 8 * 4 * ell.nnz_per_item + 4 * ell.ell_width * ell.num_rows
        assert ell.storage_bytes == expected

    def test_sparse_formats_beat_dense_for_large_batches(self):
        # Fig. 2's point: the pattern cost amortizes over the batch
        dense_batch = _tridiag_dense(nb=64, n=32)
        dense = BatchDense(dense_batch)
        csr = BatchCsr.from_dense(dense_batch)
        ell = BatchEll.from_dense(dense_batch)
        assert csr.storage_bytes < dense.storage_bytes
        assert ell.storage_bytes < dense.storage_bytes


@settings(max_examples=20, deadline=None)
@given(
    nb=st.integers(1, 3),
    n=st.integers(2, 8),
    density=st.floats(0.2, 0.9),
    seed=st.integers(0, 999),
)
def test_ell_csr_dense_agree_property(nb, n, density, seed):
    rng = np.random.default_rng(seed)
    batch = rng.standard_normal((nb, n, n)) * (rng.random((n, n)) < density)
    csr = BatchCsr.from_dense(batch)
    ell = BatchEll.from_batch_csr(csr)
    x = rng.standard_normal((nb, n))
    reference = np.einsum("bij,bj->bi", batch, x)
    assert np.allclose(csr.apply(x), reference)
    assert np.allclose(ell.apply(x), reference)
    assert np.allclose(ell.to_batch_dense(), batch)
