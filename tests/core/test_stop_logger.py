"""Stopping criteria and the per-system convergence logger."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.logger import ConvergenceLogger
from repro.core.stop import AbsoluteResidual, RelativeResidual


class TestAbsoluteResidual:
    def test_threshold_ignores_rhs_norm(self):
        crit = AbsoluteResidual(1e-6)
        thr = crit.thresholds(np.array([1.0, 100.0, 0.0]))
        assert np.all(thr == 1e-6)

    def test_check_mask(self):
        crit = AbsoluteResidual(1e-3)
        res = np.array([1e-4, 1e-2])
        assert list(crit.check(res, np.ones(2))) == [True, False]

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError):
            AbsoluteResidual(0.0)


class TestRelativeResidual:
    def test_threshold_scales_with_rhs(self):
        crit = RelativeResidual(1e-3)
        thr = crit.thresholds(np.array([1.0, 10.0]))
        assert np.allclose(thr, [1e-3, 1e-2])

    def test_zero_rhs_falls_back_to_absolute(self):
        crit = RelativeResidual(1e-3)
        thr = crit.thresholds(np.array([0.0]))
        assert thr[0] == 1e-3

    @settings(max_examples=30, deadline=None)
    @given(
        tol=st.floats(1e-12, 1e-2),
        # zero norms excluded: they take the absolute-fallback branch,
        # which intentionally sits above tol * (a tiny positive norm)
        norms=st.lists(
            st.floats(1e-12, 1e6, allow_nan=False), min_size=1, max_size=8
        ),
    )
    def test_thresholds_monotone_in_rhs_norm(self, tol, norms):
        crit = RelativeResidual(tol)
        thr = crit.thresholds(np.asarray(norms))
        order = np.argsort(norms)
        assert np.all(np.diff(thr[order]) >= -1e-300)


class TestConvergenceLogger:
    def test_initial_and_iterations(self):
        log = ConvergenceLogger(3)
        log.log_initial(np.array([1.0, 2.0, 3.0]))
        active = np.array([True, True, False])
        log.log_iteration(1, np.array([0.5, 1.5, 99.0]), active)
        assert list(log.iterations) == [1, 1, 0]
        assert list(log.final_residuals) == [0.5, 1.5, 3.0]

    def test_history_requires_opt_in(self):
        log = ConvergenceLogger(2)
        log.log_initial(np.ones(2))
        with pytest.raises(RuntimeError, match="keep_history"):
            _ = log.history

    def test_history_shape_and_frozen_entries(self):
        log = ConvergenceLogger(2, keep_history=True)
        log.log_initial(np.array([4.0, 4.0]))
        log.log_iteration(1, np.array([2.0, 1.0]), np.array([True, True]))
        log.log_iteration(2, np.array([1.0, 0.1]), np.array([True, False]))
        hist = log.history
        assert hist.shape == (3, 2)
        assert hist[2, 1] == 1.0  # frozen at its converged value

    def test_mark_converged_is_sticky(self):
        log = ConvergenceLogger(2)
        log.mark_converged(np.array([True, False]))
        log.mark_converged(np.array([False, False]))
        assert list(log.converged) == [True, False]

    def test_summary(self):
        log = ConvergenceLogger(2)
        log.log_initial(np.array([1.0, 1.0]))
        log.log_iteration(1, np.array([0.1, 0.5]), np.array([True, True]))
        log.mark_converged(np.array([True, False]))
        s = log.summary()
        assert s["num_systems"] == 2
        assert s["num_converged"] == 1
        assert s["max_iterations"] == 1

    def test_positive_batch_required(self):
        with pytest.raises(ValueError):
            ConvergenceLogger(0)
