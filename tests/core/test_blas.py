"""Batched BLAS-1: numerics against NumPy, in-place semantics, ledger."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.exceptions import DimensionMismatchError


@pytest.fixture
def xy(rng):
    return rng.standard_normal((4, 9)), rng.standard_normal((4, 9))


class TestDotNorm:
    def test_dot_matches_numpy(self, xy):
        x, y = xy
        assert np.allclose(blas.dot(x, y), np.sum(x * y, axis=1))

    def test_norm2_matches_numpy(self, xy):
        x, _ = xy
        assert np.allclose(blas.norm2(x), np.linalg.norm(x, axis=1))

    def test_shape_mismatch_rejected(self, xy):
        x, _ = xy
        with pytest.raises(DimensionMismatchError):
            blas.dot(x, x[:, :5])


class TestAxpyFamily:
    def test_axpy_scalar_alpha(self, xy):
        x, y = xy
        expected = y + 2.5 * x
        out = blas.axpy(2.5, x, y)
        assert out is y
        assert np.allclose(y, expected)

    def test_axpy_per_system_alpha(self, xy):
        x, y = xy
        alpha = np.arange(4.0)
        expected = y + alpha[:, None] * x
        blas.axpy(alpha, x, y)
        assert np.allclose(y, expected)

    def test_axpby(self, xy):
        x, y = xy
        expected = 2.0 * x - 3.0 * y
        blas.axpby(2.0, x, -3.0, y)
        assert np.allclose(y, expected)

    def test_scal(self, xy):
        x, _ = xy
        expected = 0.5 * x
        blas.scal(0.5, x)
        assert np.allclose(x, expected)

    def test_copy(self, xy):
        x, y = xy
        blas.copy(x, y)
        assert np.array_equal(x, y)
        x[0, 0] = 999.0
        assert y[0, 0] != 999.0  # deep copy

    def test_bad_alpha_shape_rejected(self, xy):
        x, y = xy
        with pytest.raises(DimensionMismatchError):
            blas.axpy(np.ones(3), x, y)

    def test_elementwise_mul(self, xy):
        x, y = xy
        out = np.empty_like(x)
        blas.elementwise_mul(x, y, out)
        assert np.allclose(out, x * y)


class TestLedgerAccounting:
    def test_dot_tally(self, xy):
        x, y = xy
        ledger = TrafficLedger()
        blas.dot(x, y, ledger, ("r", "z"))
        assert ledger.flops == 2 * 4 * 9
        assert ledger.bytes_by_object == {"r": 8.0 * 36, "z": 8.0 * 36}
        assert ledger.calls["dot"] == 4

    def test_axpy_counts_read_modify_write(self, xy):
        x, y = xy
        ledger = TrafficLedger()
        blas.axpy(1.0, x, y, ledger, ("p", "x"))
        assert ledger.bytes_by_object["p"] == 8.0 * 36
        assert ledger.bytes_by_object["x"] == 16.0 * 36

    def test_ledger_merge(self):
        a, b = TrafficLedger(), TrafficLedger()
        a.add_flops(5)
        a.add_bytes("r", 10)
        a.add_call("dot")
        b.add_flops(7)
        b.add_bytes("r", 2)
        b.add_bytes("z", 3)
        merged = a.merged(b)
        assert merged.flops == 12
        assert merged.bytes_by_object == {"r": 12, "z": 3}
        assert merged.calls == {"dot": 1}

    def test_arithmetic_intensity(self):
        ledger = TrafficLedger()
        ledger.add_flops(100)
        ledger.add_bytes("x", 50)
        assert ledger.arithmetic_intensity() == 2.0
        assert TrafficLedger().arithmetic_intensity() == 0.0


@settings(max_examples=30, deadline=None)
@given(
    nb=st.integers(1, 5),
    n=st.integers(1, 16),
    seed=st.integers(0, 10_000),
    alpha=st.floats(-10, 10, allow_nan=False),
)
def test_axpy_property(nb, n, seed, alpha):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((nb, n))
    y = rng.standard_normal((nb, n))
    expected = y + alpha * x
    blas.axpy(alpha, x, y)
    assert np.allclose(y, expected)


@settings(max_examples=30, deadline=None)
@given(nb=st.integers(1, 5), n=st.integers(1, 16), seed=st.integers(0, 10_000))
def test_norm_dot_consistency_property(nb, n, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((nb, n))
    assert np.allclose(blas.norm2(x) ** 2, blas.dot(x, x))
