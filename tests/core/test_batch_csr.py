"""BatchCsr: construction, validation, SpMV, diagonal, storage formula."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core.counters import TrafficLedger
from repro.core.matrix import BatchCsr
from repro.exceptions import BadSparsityPatternError, DimensionMismatchError


def _small_batch():
    # 2x: [[2, -1, 0], [0, 3, 1], [-1, 0, 4]] with per-item scaling
    row_ptrs = np.array([0, 2, 4, 6], dtype=np.int32)
    col_idxs = np.array([0, 1, 1, 2, 0, 2], dtype=np.int32)
    values = np.array(
        [[2.0, -1.0, 3.0, 1.0, -1.0, 4.0], [4.0, -2.0, 6.0, 2.0, -2.0, 8.0]]
    )
    return BatchCsr(row_ptrs, col_idxs, values)


class TestConstruction:
    def test_shape_and_nnz(self):
        m = _small_batch()
        assert m.shape == (2, 3, 3)
        assert m.nnz_per_item == 6
        assert m.format_name == "csr"

    def test_columns_are_normalized_sorted(self):
        # give row 0 columns out of order; values must follow the permutation
        m = BatchCsr(
            np.array([0, 2]), np.array([1, 0]), np.array([[10.0, 20.0]]), num_cols=2
        )
        assert list(m.col_idxs) == [0, 1]
        assert list(m.values[0]) == [20.0, 10.0]

    def test_bad_row_ptrs_rejected(self):
        with pytest.raises(BadSparsityPatternError):
            BatchCsr(np.array([1, 2]), np.array([0]), np.ones((1, 1)))

    def test_decreasing_row_ptrs_rejected(self):
        with pytest.raises(BadSparsityPatternError):
            BatchCsr(np.array([0, 2, 1, 3]), np.arange(3), np.ones((1, 3)), num_cols=3)

    def test_out_of_range_column_rejected(self):
        with pytest.raises(BadSparsityPatternError):
            BatchCsr(np.array([0, 1]), np.array([5]), np.ones((1, 1)), num_cols=3)

    def test_duplicate_column_in_row_rejected(self):
        with pytest.raises(BadSparsityPatternError):
            BatchCsr(np.array([0, 2]), np.array([1, 1]), np.ones((1, 2)), num_cols=3)

    def test_values_must_be_2d(self):
        with pytest.raises(DimensionMismatchError):
            BatchCsr(np.array([0, 1]), np.array([0]), np.ones(1))


class TestFromDense:
    def test_union_pattern_shared(self):
        batch = np.zeros((2, 2, 2))
        batch[0, 0, 0] = 1.0
        batch[1, 1, 1] = 2.0
        m = BatchCsr.from_dense(batch)
        # union pattern has both entries; missing ones stored as explicit 0
        assert m.nnz_per_item == 2
        assert np.allclose(m.to_batch_dense(), batch)

    def test_first_pattern_drops_other_entries(self):
        batch = np.zeros((2, 2, 2))
        batch[0, 0, 0] = 1.0
        batch[1, 1, 1] = 2.0
        m = BatchCsr.from_dense(batch, keep_pattern_of="first")
        assert m.nnz_per_item == 1
        assert m.to_batch_dense()[1, 1, 1] == 0.0

    def test_all_zero_batch_keeps_diagonal(self):
        m = BatchCsr.from_dense(np.zeros((1, 3, 3)))
        assert m.nnz_per_item == 3
        assert np.all(m.diagonal() == 0.0)


class TestFromScipy:
    def test_round_trip(self):
        a = sp.random(6, 6, density=0.4, random_state=0, format="csr")
        a.setdiag(5.0)
        b = a.copy()
        b.data = b.data * 2.0
        m = BatchCsr.from_scipy_batch([a, b])
        assert m.num_batch == 2
        assert np.allclose(m.item_scipy(0).toarray(), a.toarray())
        assert np.allclose(m.item_scipy(1).toarray(), b.toarray())

    def test_mismatched_patterns_rejected(self):
        a = sp.eye(4, format="csr")
        b = sp.csr_matrix(np.triu(np.ones((4, 4))))
        with pytest.raises(BadSparsityPatternError, match="share"):
            BatchCsr.from_scipy_batch([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(DimensionMismatchError):
            BatchCsr.from_scipy_batch([])


class TestSpMV:
    def test_matches_dense_reference(self):
        m = _small_batch()
        x = np.array([[1.0, 2.0, 3.0], [1.0, 1.0, 1.0]])
        expected = np.einsum("bij,bj->bi", m.to_batch_dense(), x)
        assert np.allclose(m.apply(x), expected)

    def test_broadcast_1d_input(self):
        m = _small_batch()
        x = np.array([1.0, 2.0, 3.0])
        y = m.apply(x)
        expected = np.einsum("bij,j->bi", m.to_batch_dense(), x)
        assert np.allclose(y, expected)

    def test_out_parameter(self):
        m = _small_batch()
        x = np.ones((2, 3))
        out = np.empty((2, 3))
        y = m.apply(x, out=out)
        assert y is out

    def test_empty_rows_handled(self):
        # row 1 has no entries
        m = BatchCsr(
            np.array([0, 1, 1, 2]),
            np.array([0, 2]),
            np.array([[3.0, 5.0]]),
            num_cols=3,
        )
        y = m.apply(np.array([[1.0, 1.0, 1.0]]))
        assert list(y[0]) == [3.0, 0.0, 5.0]

    def test_ledger_tally(self):
        m = _small_batch()
        ledger = TrafficLedger()
        m.apply(np.ones((2, 3)), ledger=ledger, x_name="p", y_name="t")
        assert ledger.flops == 2 * 2 * 6
        assert ledger.calls["spmv"] == 2
        assert "A_values" in ledger.bytes_by_object
        assert "A_pattern" in ledger.bytes_by_object
        assert ledger.bytes_by_object["p"] == 8.0 * 2 * 6

    def test_wrong_shape_rejected(self):
        with pytest.raises(DimensionMismatchError):
            _small_batch().apply(np.ones((2, 4)))


class TestDiagonalAndScaling:
    def test_diagonal_extraction(self):
        m = _small_batch()
        assert np.allclose(m.diagonal(), [[2.0, 3.0, 4.0], [4.0, 6.0, 8.0]])

    def test_diagonal_missing_entry_is_zero(self):
        m = BatchCsr(np.array([0, 1, 2]), np.array([1, 0]), np.ones((1, 2)), num_cols=2)
        assert np.all(m.diagonal() == 0.0)

    def test_scaled_copy(self):
        m = _small_batch()
        scaled = m.scaled_copy(np.array([2.0, 0.5]))
        assert np.allclose(scaled.values[0], 2.0 * m.values[0])
        assert np.allclose(scaled.values[1], 0.5 * m.values[1])

    def test_scaled_copy_shape_checked(self):
        with pytest.raises(DimensionMismatchError):
            _small_batch().scaled_copy(np.ones(3))


class TestStorageFormula:
    def test_matches_fig2(self):
        m = _small_batch()
        # [nb x nnz] fp64 + [(rows+1) + nnz] int32
        expected = 8 * 2 * 6 + 4 * (3 + 1) + 4 * 6
        assert m.storage_bytes == expected

    def test_pattern_amortized_across_batch(self):
        one = _small_batch()
        row_ptrs, cols = one.row_ptrs, one.col_idxs
        big = BatchCsr(row_ptrs, cols, np.ones((100, 6)))
        assert big.storage_bytes - 100 * 8 * 6 == one.storage_bytes - 2 * 8 * 6


@settings(max_examples=25, deadline=None)
@given(
    nb=st.integers(1, 4),
    n=st.integers(1, 10),
    density=st.floats(0.1, 0.9),
    seed=st.integers(0, 1000),
)
def test_dense_round_trip_property(nb, n, density, seed):
    rng = np.random.default_rng(seed)
    batch = rng.standard_normal((nb, n, n)) * (rng.random((n, n)) < density)
    m = BatchCsr.from_dense(batch)
    assert np.allclose(m.to_batch_dense(), batch)


@settings(max_examples=25, deadline=None)
@given(
    nb=st.integers(1, 4),
    n=st.integers(2, 10),
    density=st.floats(0.2, 0.9),
    seed=st.integers(0, 1000),
)
def test_spmv_matches_dense_property(nb, n, density, seed):
    rng = np.random.default_rng(seed)
    batch = rng.standard_normal((nb, n, n)) * (rng.random((n, n)) < density)
    m = BatchCsr.from_dense(batch)
    x = rng.standard_normal((nb, n))
    assert np.allclose(m.apply(x), np.einsum("bij,bj->bi", batch, x))
