"""Preconditioners: generation correctness and apply semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matrix import BatchCsr, BatchDense, BatchEll
from repro.core.preconditioner import (
    BatchBlockJacobi,
    BatchIdentity,
    BatchIlu,
    BatchIsai,
    BatchJacobi,
)
from repro.exceptions import SingularMatrixError, UnsupportedCombinationError
from repro.workloads.general import random_diag_dominant_batch, random_spd_batch


@pytest.fixture
def batch():
    return random_diag_dominant_batch(num_batch=5, num_rows=10, density=0.4, seed=2)


class TestIdentity:
    def test_apply_is_copy(self, batch, rng):
        r = rng.standard_normal((5, 10))
        z = BatchIdentity(batch).apply(r)
        assert np.array_equal(z, r)
        assert z is not r

    def test_zero_workspace(self, batch):
        assert BatchIdentity(batch).workspace_doubles_per_system() == 0


class TestScalarJacobi:
    def test_apply_divides_by_diagonal(self, batch, rng):
        precond = BatchJacobi(batch)
        r = rng.standard_normal((5, 10))
        assert np.allclose(precond.apply(r), r / batch.diagonal())

    def test_zero_diagonal_rejected(self):
        dense = np.eye(3)[None].copy()
        dense[0, 1, 1] = 0.0
        dense[0, 1, 0] = 1.0  # keep the row structurally non-empty
        with pytest.raises(SingularMatrixError, match="diagonal"):
            BatchJacobi(BatchCsr.from_dense(dense))

    def test_works_for_all_formats(self, rng):
        dense = np.eye(4)[None] * 2.0 + 0.1 * rng.random((3, 4, 4))
        r = rng.standard_normal((3, 4))
        results = [
            BatchJacobi(fmt).apply(r)
            for fmt in (
                BatchDense(dense),
                BatchCsr.from_dense(dense),
                BatchEll.from_dense(dense),
            )
        ]
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], results[2])

    def test_out_and_ledger(self, batch, rng):
        from repro.core.counters import TrafficLedger

        precond = BatchJacobi(batch)
        r = rng.standard_normal((5, 10))
        out = np.empty_like(r)
        ledger = TrafficLedger()
        z = precond.apply(r, out=out, ledger=ledger)
        assert z is out
        assert ledger.calls["precond"] == 5


class TestBlockJacobi:
    def test_block_size_n_is_exact_inverse(self, batch, rng):
        precond = BatchBlockJacobi(batch, block_size=10)
        r = rng.standard_normal((5, 10))
        expected = np.linalg.solve(batch.to_batch_dense(), r[..., None])[..., 0]
        assert np.allclose(precond.apply(r), expected)

    def test_block_size_one_equals_scalar_jacobi(self, batch, rng):
        block = BatchBlockJacobi(batch, block_size=1)
        scalar = BatchJacobi(batch)
        r = rng.standard_normal((5, 10))
        assert np.allclose(block.apply(r), scalar.apply(r))

    def test_ragged_final_block(self, rng):
        m = random_diag_dominant_batch(num_batch=2, num_rows=7, density=0.5, seed=5)
        precond = BatchBlockJacobi(m, block_size=3)
        assert precond.num_blocks == 3
        r = rng.standard_normal((2, 7))
        z = precond.apply(r)
        # each block solves its own diagonal sub-system
        dense = m.to_batch_dense()
        for blk, (lo, hi) in enumerate([(0, 3), (3, 6), (6, 7)]):
            expected = np.linalg.solve(dense[:, lo:hi, lo:hi], r[:, lo:hi, None])[..., 0]
            assert np.allclose(z[:, lo:hi], expected), blk

    def test_bad_block_size_rejected(self, batch):
        with pytest.raises(ValueError):
            BatchBlockJacobi(batch, block_size=0)


class TestIlu:
    def test_factors_match_pattern_product(self, batch):
        ilu = BatchIlu(batch)
        lower, upper = ilu.factor_dense()
        product = np.einsum("bij,bjk->bik", lower, upper)
        dense = batch.to_batch_dense()
        mask = dense != 0.0
        # ILU(0) reproduces A exactly on the pattern
        assert np.allclose(product[mask], dense[mask], atol=1e-10)

    def test_l_unit_lower_u_upper(self, batch):
        lower, upper = BatchIlu(batch).factor_dense()
        n = batch.num_rows
        assert np.allclose(lower[:, np.arange(n), np.arange(n)], 1.0)
        assert np.allclose(np.triu(lower, k=1), 0.0)
        assert np.allclose(np.tril(upper, k=-1), 0.0)

    def test_apply_is_exact_for_triangular_pattern_free_fill(self):
        # tridiagonal: ILU(0) == full LU, so M r solves exactly
        from repro.workloads.stencil import three_point_stencil

        m = three_point_stencil(8, 3)
        csr = BatchCsr.from_dense(m.to_batch_dense())
        ilu = BatchIlu(csr)
        rng = np.random.default_rng(0)
        r = rng.standard_normal((3, 8))
        expected = np.linalg.solve(csr.to_batch_dense(), r[..., None])[..., 0]
        assert np.allclose(ilu.apply(r), expected, atol=1e-10)

    def test_missing_diagonal_rejected(self):
        dense = np.zeros((1, 2, 2))
        dense[0, 0, 1] = 1.0
        dense[0, 1, 0] = 1.0
        with pytest.raises(SingularMatrixError, match="diagonal"):
            BatchIlu(BatchCsr.from_dense(dense))

    def test_accepts_dense_format_via_conversion(self, rng):
        spd = random_spd_batch(2, 6, seed=8)
        ilu = BatchIlu(BatchDense(spd.to_batch_dense()))
        r = rng.standard_normal((2, 6))
        assert ilu.apply(r).shape == (2, 6)


class TestIsai:
    def test_requires_csr(self, batch):
        with pytest.raises(UnsupportedCombinationError, match="BatchCsr"):
            BatchIsai(BatchDense(batch.to_batch_dense()))

    def test_inverse_rows_satisfy_local_systems(self, batch):
        isai = BatchIsai(batch)
        m = isai.approximate_inverse
        dense_a = batch.to_batch_dense()
        dense_m = m.to_batch_dense()
        # (M A)[i, i] == 1 restricted to the row pattern equations
        product = np.einsum("bij,bjk->bik", dense_m, dense_a)
        n = batch.num_rows
        for row in range(n):
            cols = m.col_idxs[m.row_ptrs[row] : m.row_ptrs[row + 1]]
            target = np.zeros(len(cols))
            target[cols == row] = 1.0
            assert np.allclose(product[:, row, cols], target[None, :], atol=1e-8)

    def test_isai_preserves_pattern(self, batch):
        isai = BatchIsai(batch)
        m = isai.approximate_inverse
        assert np.array_equal(m.row_ptrs, batch.row_ptrs)
        assert np.array_equal(m.col_idxs, batch.col_idxs)

    def test_apply_is_one_spmv(self, batch, rng):
        isai = BatchIsai(batch)
        r = rng.standard_normal((5, 10))
        assert np.allclose(isai.apply(r), isai.approximate_inverse.apply(r))


@settings(max_examples=10, deadline=None)
@given(nb=st.integers(1, 3), n=st.integers(2, 8), seed=st.integers(0, 500))
def test_ilu_pattern_identity_property(nb, n, seed):
    batch = random_diag_dominant_batch(nb, n, density=0.5, seed=seed)
    lower, upper = BatchIlu(batch).factor_dense()
    dense = batch.to_batch_dense()
    product = np.einsum("bij,bjk->bik", lower, upper)
    mask = dense != 0.0
    assert np.allclose(product[mask], dense[mask], atol=1e-8)
