"""The precision-format dispatch level (Section 3.4): FP32 end to end."""

import numpy as np
import pytest

from repro.core import BatchBicgstab, BatchCg, BatchJacobi, SolverSettings
from repro.core.dispatch import BatchSolverFactory, PRECISIONS
from repro.core.matrix import BatchDense, BatchEll
from repro.core.stop import RelativeResidual
from repro.core.workspace import SlmBudget, plan_workspace
from repro.exceptions import UnsupportedCombinationError
from repro.hw import estimate_solve, gpu
from repro.workloads.general import random_diag_dominant_batch, random_spd_batch
from repro.workloads.stencil import stencil_rhs, three_point_stencil


class TestMatrixDtype:
    def test_default_is_fp64(self, dd_batch):
        assert dd_batch.dtype == np.float64
        assert dd_batch.value_bytes == 8

    def test_astype_round_trip_all_formats(self, dd_batch):
        dense = BatchDense(dd_batch.to_batch_dense())
        ell = BatchEll.from_batch_csr(dd_batch)
        for matrix in (dd_batch, dense, ell):
            single = matrix.astype(np.float32)
            assert single.dtype == np.float32
            assert single.value_bytes == 4
            assert np.allclose(
                single.to_batch_dense(), matrix.to_batch_dense(), atol=1e-5
            )
            back = single.astype(np.float64)
            assert back.dtype == np.float64

    def test_fp32_halves_value_storage(self, dd_batch):
        single = dd_batch.astype(np.float32)
        value_bytes64 = 8 * dd_batch.num_batch * dd_batch.nnz_per_item
        value_bytes32 = 4 * dd_batch.num_batch * dd_batch.nnz_per_item
        assert dd_batch.storage_bytes - value_bytes64 == single.storage_bytes - value_bytes32

    def test_spmv_output_dtype_follows_matrix(self, dd_batch):
        single = dd_batch.astype(np.float32)
        y = single.apply(np.ones((8, 12)))
        assert y.dtype == np.float32

    def test_integer_dtype_rejected(self):
        with pytest.raises(ValueError, match="floating"):
            BatchDense(np.ones((1, 2, 2)), dtype=np.int32)


class TestFp32Solves:
    def test_cg_converges_in_single_precision(self):
        matrix = random_spd_batch(4, 10, seed=3).astype(np.float32)
        b = np.random.default_rng(0).standard_normal((4, 10))
        settings = SolverSettings(max_iterations=300, criterion=RelativeResidual(1e-5))
        result = BatchCg(matrix, settings=settings).solve(b)
        assert result.all_converged
        assert result.x.dtype == np.float32

    def test_bicgstab_fp32_matches_fp64_loosely(self):
        matrix64 = random_diag_dominant_batch(4, 10, seed=5)
        matrix32 = matrix64.astype(np.float32)
        b = np.random.default_rng(1).standard_normal((4, 10))
        settings = SolverSettings(max_iterations=300, criterion=RelativeResidual(1e-5))
        x64 = BatchBicgstab(matrix64, BatchJacobi(matrix64), settings=settings).solve(b).x
        x32 = BatchBicgstab(matrix32, BatchJacobi(matrix32), settings=settings).solve(b).x
        assert np.allclose(x32, x64, atol=1e-3)

    def test_fp32_true_residual_stagnates_at_single_epsilon(self):
        # the accuracy/precision trade-off the dispatch level exists for:
        # the recursive residual may keep shrinking, but the *true*
        # residual stalls around single-precision round-off
        matrix = three_point_stencil(32, 4).astype(np.float32)
        b = stencil_rhs(32, 4)
        settings = SolverSettings(max_iterations=500, criterion=RelativeResidual(1e-12))
        result = BatchCg(matrix, settings=settings).solve(b)
        true_res = np.linalg.norm(
            b - matrix.apply(result.x).astype(np.float64), axis=1
        ) / np.linalg.norm(b, axis=1)
        assert np.all(true_res > 1e-9)  # far above the requested 1e-12
        assert np.all(true_res < 1e-4)  # but still a single-precision solve

    def test_ledger_counts_fp32_bytes(self):
        matrix = random_diag_dominant_batch(2, 8, seed=2).astype(np.float32)
        b = np.ones((2, 8))
        result = BatchBicgstab(
            matrix,
            settings=SolverSettings(max_iterations=50, criterion=RelativeResidual(1e-5)),
        ).solve(b)
        assert result.ledger.fp_bytes == 4


class TestFactoryPrecision:
    def test_factory_converts_matrix(self, dd_batch):
        factory = BatchSolverFactory(precision="single", tolerance=1e-4)
        solver = factory.create(dd_batch)
        assert solver.matrix.dtype == np.float32

    def test_unknown_precision_rejected(self):
        with pytest.raises(UnsupportedCombinationError, match="precision"):
            BatchSolverFactory(precision="half")

    def test_precision_registry(self):
        assert PRECISIONS == {"double": np.float64, "single": np.float32}


class TestPrecisionInTheModel:
    def test_fp32_fits_more_vectors_in_slm(self):
        vectors = [(f"v{i}", 1000) for i in range(10)]
        budget = SlmBudget(32 * 1024)
        fp64 = plan_workspace(vectors, budget, bytes_per_value=8)
        fp32 = plan_workspace(vectors, budget, bytes_per_value=4)
        assert len(fp32.slm_resident) > len(fp64.slm_resident)
        assert fp32.slm_bytes_used <= budget.capacity_bytes

    def test_fp32_models_faster_than_fp64(self):
        matrix = three_point_stencil(64, 8)
        b = stencil_rhs(64, 8)
        settings = SolverSettings(max_iterations=2000, criterion=RelativeResidual(1e-5))
        spec = gpu("pvc1")

        r64 = BatchCg(matrix, settings=settings).solve(b)
        t64 = estimate_solve(spec, BatchCg(matrix, settings=settings), r64, num_batch=2**15)

        m32 = matrix.astype(np.float32)
        s32 = BatchCg(m32, settings=settings)
        r32 = s32.solve(b)
        t32 = estimate_solve(spec, s32, r32, num_batch=2**15)

        # same iteration counts at this loose tolerance, half the traffic
        per64 = t64.total_seconds / max(1.0, t64.iterations)
        per32 = t32.total_seconds / max(1.0, t32.iterations)
        assert per32 < per64
        assert t32.split_per_group_iter.slm_bytes < t64.split_per_group_iter.slm_bytes
