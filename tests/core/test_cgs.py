"""BatchCgs: the transpose-free CGS extension solver."""

import numpy as np
from hypothesis import given, settings as hsettings, strategies as st

from repro.core import BatchBicgstab, BatchCgs, BatchJacobi, SolverSettings
from repro.core.dispatch import BatchSolverFactory, SOLVERS
from repro.core.stop import RelativeResidual
from repro.workloads.general import random_diag_dominant_batch
from tests.conftest import relative_residuals


def _settings(tol=1e-10, iters=500):
    return SolverSettings(max_iterations=iters, criterion=RelativeResidual(tol))


class TestBatchCgs:
    def test_solves_nonsymmetric_batch(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchCgs(dd_batch, settings=_settings()).solve(b)
        assert result.all_converged
        assert np.max(relative_residuals(dd_batch, result.x, b)) < 1e-9

    def test_with_jacobi_preconditioner(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchCgs(dd_batch, BatchJacobi(dd_batch), settings=_settings()).solve(b)
        assert result.all_converged

    def test_initial_guess_short_circuits(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        x_exact = np.linalg.solve(dd_batch.to_batch_dense(), b[..., None])[..., 0]
        result = BatchCgs(dd_batch, settings=_settings(1e-8)).solve(b, x0=x_exact)
        assert result.max_iterations_used == 0

    def test_comparable_to_bicgstab(self, dd_batch, rng):
        # CGS squares the Bi-CG polynomial: similar iteration counts on
        # well-conditioned systems
        b = rng.standard_normal((8, 12))
        cgs = BatchCgs(dd_batch, settings=_settings()).solve(b)
        bicg = BatchBicgstab(dd_batch, settings=_settings()).solve(b)
        assert cgs.iterations.mean() <= 2 * bicg.iterations.mean() + 2

    def test_registered_in_dispatch(self, dd_batch, rng):
        assert "cgs" in SOLVERS
        b = rng.standard_normal((8, 12))
        result = BatchSolverFactory(solver="cgs", tolerance=1e-9).solve(dd_batch, b)
        assert result.all_converged

    def test_workspace_includes_matrix_cache(self, dd_batch):
        names = dict(BatchCgs(dd_batch).workspace_vectors())
        assert names["A_cache"] == dd_batch.nnz_per_item
        assert names["r"] == dd_batch.num_rows

    def test_max_iterations_respected(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchCgs(dd_batch, settings=_settings(1e-15, 3)).solve(b)
        assert result.max_iterations_used <= 3


@hsettings(max_examples=10, deadline=None)
@given(nb=st.integers(1, 4), n=st.integers(2, 10), seed=st.integers(0, 300))
def test_cgs_property_dd_convergence(nb, n, seed):
    m = random_diag_dominant_batch(nb, n, density=0.5, seed=seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal((nb, n))
    result = BatchCgs(m, settings=_settings(1e-9, 60 * n + 60)).solve(b)
    assert np.max(relative_residuals(m, result.x, b)) < 1e-6
