"""Dispatch mechanism, launch configuration and SLM workspace planning."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.core.dispatch import (
    BatchSolverFactory,
    CRITERIA,
    FORMATS,
    PRECONDITIONERS,
    SOLVERS,
    dispatch_solve,
    feature_matrix,
)
from repro.core.launch import (
    DEFAULT_SUB_GROUP_THRESHOLD_ROWS,
    LaunchConfigurator,
    SUB_GROUP_REDUCE,
    WORK_GROUP_REDUCE,
)
from repro.core.workspace import GLOBAL, SLM, SlmBudget, plan_workspace
from repro.cudasim.device import a100_device
from repro.exceptions import DeviceCapabilityError, UnsupportedCombinationError
from repro.sycl.device import pvc_stack_device
from repro.workloads.general import random_diag_dominant_batch, random_spd_batch
from tests.conftest import relative_residuals


class TestFeatureMatrix:
    def test_contains_paper_table3_entries(self):
        fm = feature_matrix()
        for fmt in ("dense", "csr", "ell"):
            assert fmt in fm["matrix_formats"]
        for solver in ("cg", "bicgstab", "gmres", "trsv"):
            assert solver in fm["solvers"]
        for precond in ("jacobi", "ilu", "isai"):
            assert precond in fm["preconditioners"]
        assert fm["stopping_criteria"] == ["absolute", "relative"]


class TestFactoryValidation:
    def test_unknown_solver_rejected(self):
        with pytest.raises(UnsupportedCombinationError):
            BatchSolverFactory(solver="qmr")

    def test_unknown_preconditioner_rejected(self):
        with pytest.raises(UnsupportedCombinationError):
            BatchSolverFactory(preconditioner="amg")

    def test_unknown_criterion_rejected(self):
        with pytest.raises(UnsupportedCombinationError):
            BatchSolverFactory(criterion="energy")

    def test_isai_requires_csr(self):
        from repro.core.matrix import BatchDense

        factory = BatchSolverFactory(solver="bicgstab", preconditioner="isai")
        dense = BatchDense(np.eye(4)[None] * 2.0)
        with pytest.raises(UnsupportedCombinationError, match="csr"):
            factory.create(dense)

    def test_direct_solvers_refuse_preconditioners(self, dd_batch):
        factory = BatchSolverFactory(solver="direct", preconditioner="jacobi")
        with pytest.raises(UnsupportedCombinationError, match="direct"):
            factory.create(dd_batch)


class TestDispatchCombinations:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab", "gmres", "richardson"])
    @pytest.mark.parametrize("precond", ["identity", "jacobi", "ilu", "isai"])
    def test_every_iterative_combination_solves(self, solver, precond):
        # the Table 3 claim: any column can combine with any other
        matrix = (
            random_spd_batch(3, 8, seed=4)
            if solver == "cg"
            else random_diag_dominant_batch(3, 8, seed=4)
        )
        b = np.random.default_rng(0).standard_normal((3, 8))
        factory = BatchSolverFactory(
            solver=solver,
            preconditioner=precond,
            tolerance=1e-8,
            max_iterations=3000,
        )
        if solver == "richardson" and precond == "identity":
            # unpreconditioned Richardson has spectral radius > 1 on these
            # systems; the combination must dispatch and report honestly
            settings_factory = BatchSolverFactory(
                solver=solver, preconditioner=precond, max_iterations=5
            )
            result = settings_factory.solve(matrix, b)
            assert result.x.shape == b.shape
            assert not result.all_converged
            return
        result = factory.solve(matrix, b)
        assert np.max(relative_residuals(matrix, result.x, b)) < 1e-6

    @pytest.mark.parametrize("fmt", ["csr", "ell", "dense"])
    def test_every_format_dispatches(self, fmt):
        from repro.core.matrix import BatchDense, BatchEll

        csr = random_diag_dominant_batch(3, 8, seed=5)
        matrix = {
            "csr": csr,
            "ell": BatchEll.from_batch_csr(csr),
            "dense": BatchDense(csr.to_batch_dense()),
        }[fmt]
        b = np.ones((3, 8))
        result = dispatch_solve(matrix, b, solver="bicgstab", tolerance=1e-9)
        assert result.all_converged

    def test_dispatch_solve_passes_solver_options(self, dd_batch):
        b = np.ones((8, 12))
        result = dispatch_solve(
            dd_batch, b, solver="gmres", tolerance=1e-9, restart=4
        )
        assert result.all_converged

    def test_registries_are_consistent(self):
        assert set(SOLVERS) == set(feature_matrix()["solvers"])
        assert set(PRECONDITIONERS) == set(feature_matrix()["preconditioners"])
        assert set(FORMATS) == set(feature_matrix()["matrix_formats"])
        assert set(CRITERIA) == set(feature_matrix()["stopping_criteria"])


class TestLaunchConfigurator:
    def test_work_group_rounds_up_to_sub_group(self):
        cfg = LaunchConfigurator(pvc_stack_device(1))
        assert cfg.pick_work_group_size(54, 16) == 64
        assert cfg.pick_work_group_size(64, 16) == 64
        assert cfg.pick_work_group_size(65, 32) == 96

    def test_sub_group_16_small_32_large_on_pvc(self):
        cfg = LaunchConfigurator(pvc_stack_device(1))
        assert cfg.pick_sub_group_size(22) == 16
        assert cfg.pick_sub_group_size(DEFAULT_SUB_GROUP_THRESHOLD_ROWS) == 16
        assert cfg.pick_sub_group_size(144) == 32

    def test_cuda_devices_fixed_at_warp(self):
        cfg = LaunchConfigurator(a100_device())
        assert cfg.pick_sub_group_size(8) == 32
        assert cfg.pick_sub_group_size(500) == 32

    def test_reduction_scope_selection(self):
        cfg = LaunchConfigurator(pvc_stack_device(1))
        assert cfg.pick_reduction_scope(16, 16) == SUB_GROUP_REDUCE
        assert cfg.pick_reduction_scope(17, 16) == WORK_GROUP_REDUCE

    def test_oversized_system_clamps_to_device_max(self):
        dev = pvc_stack_device(1)
        cfg = LaunchConfigurator(dev)
        wg = cfg.pick_work_group_size(5000, 32)
        assert wg == dev.max_work_group_size

    def test_configure_builds_valid_nd_range(self):
        cfg = LaunchConfigurator(pvc_stack_device(1))
        plan = cfg.configure(54, 100)
        nd = plan.nd_range()
        assert nd.num_groups == 100
        assert plan.work_group_size % plan.sub_group_size == 0

    def test_threshold_override(self):
        cfg = LaunchConfigurator(pvc_stack_device(1), sub_group_threshold_rows=10)
        assert cfg.pick_sub_group_size(22) == 32

    def test_invalid_inputs(self):
        cfg = LaunchConfigurator(pvc_stack_device(1))
        with pytest.raises(ValueError):
            cfg.configure(0, 10)
        with pytest.raises(ValueError):
            LaunchConfigurator(pvc_stack_device(1), sub_group_threshold_rows=0)

    def test_threshold_from_device_extra(self):
        dev = replace(pvc_stack_device(1), extra={"sub_group_threshold_rows": 10})
        cfg = LaunchConfigurator(dev)
        assert cfg.sub_group_threshold_rows == 10
        assert cfg.pick_sub_group_size(22) == 32  # above the tuned threshold

    def test_explicit_threshold_beats_device_extra(self):
        dev = replace(pvc_stack_device(1), extra={"sub_group_threshold_rows": 10})
        cfg = LaunchConfigurator(dev, sub_group_threshold_rows=100)
        assert cfg.sub_group_threshold_rows == 100

    @pytest.mark.parametrize("bad", ["not-a-number", object(), None, [64]])
    def test_non_integer_extra_threshold_rejected_at_construction(self, bad):
        dev = replace(pvc_stack_device(1), extra={"sub_group_threshold_rows": bad})
        with pytest.raises(ValueError, match="sub_group_threshold_rows"):
            LaunchConfigurator(dev)

    def test_non_positive_extra_threshold_rejected(self):
        dev = replace(pvc_stack_device(1), extra={"sub_group_threshold_rows": "-5"})
        with pytest.raises(ValueError, match="positive"):
            LaunchConfigurator(dev)

    def test_work_group_clamp_stays_sub_group_aligned(self):
        # a capability-limited device whose max is not a sub-group multiple
        dev = replace(pvc_stack_device(1), max_work_group_size=100)
        cfg = LaunchConfigurator(dev)
        assert cfg.pick_work_group_size(5000, 32) == 96  # 100 // 32 * 32

    def test_device_too_small_for_sub_group_raises(self):
        dev = replace(pvc_stack_device(1), max_work_group_size=8)
        cfg = LaunchConfigurator(dev)
        with pytest.raises(DeviceCapabilityError):
            cfg.pick_work_group_size(100, 16)


class TestWorkspacePlanning:
    def test_cg_priority_order_fills_slm_first(self):
        # capacity for exactly three vectors: r, z, p stay, t/x spill
        vectors = [("r", 10), ("z", 10), ("p", 10), ("t", 10), ("x", 10)]
        plan = plan_workspace(vectors, SlmBudget(3 * 10 * 8))
        assert plan.level_of("r") == SLM
        assert plan.level_of("z") == SLM
        assert plan.level_of("p") == SLM
        assert plan.level_of("t") == GLOBAL
        assert plan.level_of("x") == GLOBAL

    def test_greedy_with_skip_places_smaller_later_objects(self):
        vectors = [("big", 100), ("small", 2)]
        plan = plan_workspace(vectors, SlmBudget(5 * 8))
        assert plan.level_of("big") == GLOBAL
        assert plan.level_of("small") == SLM

    def test_precond_workspace_comes_last(self):
        vectors = [("r", 8), ("z", 8)]
        plan = plan_workspace(vectors, SlmBudget(17 * 8), precond_doubles=8)
        assert plan.level_of("precond") == GLOBAL  # only 1 double left

    def test_matrix_and_rhs_always_global(self):
        plan = plan_workspace([("r", 1)], SlmBudget(10**6))
        assert plan.level_of("A") == GLOBAL
        assert plan.level_of("b") == GLOBAL

    def test_slm_bytes_accounting(self):
        plan = plan_workspace([("r", 4), ("z", 4)], SlmBudget(64))
        assert plan.slm_bytes_used == 64
        assert plan.slm_resident == frozenset({"r", "z"})

    def test_unknown_object_defaults_to_global(self):
        plan = plan_workspace([], SlmBudget(100))
        assert plan.level_of("whatever") == GLOBAL

    @hsettings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(st.integers(0, 50), min_size=1, max_size=8),
        capacity=st.integers(0, 2000),
    )
    def test_never_exceeds_budget_property(self, sizes, capacity):
        vectors = [(f"v{i}", s) for i, s in enumerate(sizes)]
        plan = plan_workspace(vectors, SlmBudget(capacity))
        assert plan.slm_bytes_used <= capacity
        # everything got a placement
        for name, _ in vectors:
            assert plan.level_of(name) in (SLM, GLOBAL)
