"""Batched dense GEMM / LU / TRSM against NumPy-LAPACK references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blas3 import (
    batched_gemm,
    batched_lu_factor,
    batched_lu_solve,
    batched_trsm,
)
from repro.exceptions import DimensionMismatchError, SingularMatrixError


@pytest.fixture
def stacks(rng):
    a = rng.standard_normal((4, 6, 5))
    b = rng.standard_normal((4, 5, 7))
    return a, b


class TestGemm:
    def test_matches_matmul(self, stacks):
        a, b = stacks
        assert np.allclose(batched_gemm(a, b), np.matmul(a, b))

    def test_alpha_beta_accumulate(self, stacks, rng):
        a, b = stacks
        c = rng.standard_normal((4, 6, 7))
        expected = 2.0 * np.matmul(a, b) - 0.5 * c
        out = c.copy()
        batched_gemm(a, b, out=out, alpha=2.0, beta=-0.5)
        assert np.allclose(out, expected)

    def test_shape_mismatch_rejected(self, stacks):
        a, b = stacks
        with pytest.raises(DimensionMismatchError):
            batched_gemm(a, a)

    def test_2d_rejected(self):
        with pytest.raises(DimensionMismatchError):
            batched_gemm(np.eye(3), np.eye(3)[None])


class TestLu:
    def test_reconstructs_pa(self, rng):
        a = rng.standard_normal((5, 8, 8)) + 4.0 * np.eye(8)
        lu, piv = batched_lu_factor(a)
        n = 8
        lower = np.tril(lu, -1) + np.eye(n)
        upper = np.triu(lu)
        product = np.matmul(lower, upper)
        # apply the recorded swaps to A and compare
        permuted = a.copy()
        batch = np.arange(5)
        for k in range(n):
            rows_k = permuted[batch, k, :].copy()
            permuted[batch, k, :] = permuted[batch, piv[:, k], :]
            permuted[batch, piv[:, k], :] = rows_k
        assert np.allclose(product, permuted, atol=1e-10)

    def test_solve_matches_lapack(self, rng):
        a = rng.standard_normal((6, 10, 10)) + 5.0 * np.eye(10)
        b = rng.standard_normal((6, 10))
        lu, piv = batched_lu_factor(a)
        x = batched_lu_solve(lu, piv, b)
        assert np.allclose(x, np.linalg.solve(a, b[..., None])[..., 0], atol=1e-9)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[[0.0, 1.0], [1.0, 0.0]]])
        lu, piv = batched_lu_factor(a)
        x = batched_lu_solve(lu, piv, np.array([[2.0, 3.0]]))
        assert np.allclose(x, [[3.0, 2.0]])

    def test_singular_detected(self):
        a = np.zeros((1, 3, 3))
        a[0] = np.outer([1.0, 2.0, 3.0], [1.0, 0.0, 1.0])  # rank 1
        with pytest.raises(SingularMatrixError):
            batched_lu_factor(a)

    def test_non_square_rejected(self):
        with pytest.raises(DimensionMismatchError):
            batched_lu_factor(np.ones((2, 3, 4)))

    @settings(max_examples=20, deadline=None)
    @given(nb=st.integers(1, 4), n=st.integers(1, 9), seed=st.integers(0, 500))
    def test_lu_solve_property(self, nb, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((nb, n, n)) + (n + 1.0) * np.eye(n)
        b = rng.standard_normal((nb, n))
        lu, piv = batched_lu_factor(a)
        x = batched_lu_solve(lu, piv, b)
        assert np.allclose(np.einsum("bij,bj->bi", a, x), b, atol=1e-8)


class TestTrsm:
    def test_lower_solve(self, rng):
        a = np.tril(rng.standard_normal((3, 6, 6))) + 3.0 * np.eye(6)
        b = rng.standard_normal((3, 6))
        x = batched_trsm(a, b, lower=True)
        assert np.allclose(np.einsum("bij,bj->bi", np.tril(a), x), b, atol=1e-10)

    def test_upper_solve_multi_rhs(self, rng):
        a = np.triu(rng.standard_normal((2, 5, 5))) + 3.0 * np.eye(5)
        b = rng.standard_normal((2, 5, 4))
        x = batched_trsm(a, b, lower=False)
        assert np.allclose(np.matmul(np.triu(a), x), b, atol=1e-10)

    def test_unit_diagonal_ignores_diag_values(self, rng):
        a = np.tril(rng.standard_normal((2, 4, 4)), -1)
        a[:, np.arange(4), np.arange(4)] = 99.0  # must be ignored
        b = rng.standard_normal((2, 4))
        x = batched_trsm(a, b, lower=True, unit_diagonal=True)
        strict = np.tril(a, -1) + np.eye(4)
        assert np.allclose(np.einsum("bij,bj->bi", strict, x), b, atol=1e-10)

    def test_zero_diagonal_detected(self):
        a = np.eye(3)[None].copy()
        a[0, 1, 1] = 0.0
        with pytest.raises(SingularMatrixError):
            batched_trsm(a, np.ones((1, 3)))


class TestDirectSolverIntegration:
    def test_batch_direct_uses_from_scratch_lu(self, dd_batch, rng):
        from repro.core import BatchDirect

        b = rng.standard_normal((8, 12))
        result = BatchDirect(dd_batch).solve(b)
        assert result.all_converged
        expected = np.linalg.solve(dd_batch.to_batch_dense(), b[..., None])[..., 0]
        assert np.allclose(result.x, expected, atol=1e-9)
