"""Workload generators: the 3-pt stencil and the Pele surrogates (Table 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matrix import BatchCsr, BatchEll
from repro.workloads.general import (
    random_diag_dominant_batch,
    random_spd_batch,
    random_triangular_batch,
)
from repro.workloads.pele import MECHANISMS, pele_batch, pele_rhs, table4_rows
from repro.workloads.stencil import stencil_rhs, three_point_stencil


class TestStencil:
    def test_nnz_is_3n(self):
        for n in (3, 8, 64, 100):
            m = three_point_stencil(n, 2)
            assert m.nnz_per_item == 3 * n

    def test_spd(self):
        m = three_point_stencil(16, 4)
        dense = m.to_batch_dense()
        assert np.allclose(dense, dense.transpose(0, 2, 1))
        eigs = np.linalg.eigvalsh(dense)
        assert np.all(eigs > 0)

    def test_tridiagonal_structure(self):
        dense = three_point_stencil(10, 1).to_batch_dense()[0]
        assert np.allclose(np.triu(dense, k=2), 0.0)
        assert np.allclose(np.tril(dense, k=-2), 0.0)
        off = np.diag(dense, k=1)
        assert np.all(off == -1.0)

    def test_jitter_makes_items_distinct(self):
        m = three_point_stencil(8, 4, jitter=0.1, seed=1)
        diags = m.diagonal()
        assert not np.allclose(diags[0], diags[1])

    def test_zero_jitter_replicates(self):
        m = three_point_stencil(8, 4, jitter=0.0)
        assert np.allclose(m.values[0], m.values[3])

    def test_ell_format_agrees_with_csr(self):
        csr = three_point_stencil(12, 3, fmt="csr")
        ell = three_point_stencil(12, 3, fmt="ell")
        assert isinstance(csr, BatchCsr)
        assert isinstance(ell, BatchEll)
        assert np.allclose(csr.to_batch_dense(), ell.to_batch_dense())

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            three_point_stencil(2, 1)

    def test_rhs_shape(self):
        assert stencil_rhs(16, 5).shape == (5, 16)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(3, 40), nb=st.integers(1, 6), seed=st.integers(0, 99))
    def test_spd_property(self, n, nb, seed):
        m = three_point_stencil(n, nb, seed=seed)
        dense = m.to_batch_dense()
        assert np.all(np.linalg.eigvalsh(dense) > -1e-12)
        assert m.nnz_per_item == 3 * n


class TestPeleSurrogates:
    @pytest.mark.parametrize("name", sorted(MECHANISMS))
    def test_table4_exact_match(self, name):
        mech = MECHANISMS[name]
        m = pele_batch(name)
        assert m.num_rows == mech.num_rows
        assert m.num_cols == mech.num_rows
        assert m.nnz_per_item == mech.nnz
        assert m.num_batch == mech.num_unique

    @pytest.mark.parametrize("name", sorted(MECHANISMS))
    def test_non_spd_but_diagonally_dominant(self, name):
        m = pele_batch(name)
        dense = m.to_batch_dense()
        # nonsymmetric values (why only BatchBicgstab applies - Sec 4.3)
        assert not np.allclose(dense, dense.transpose(0, 2, 1))
        diag = np.abs(m.diagonal())
        off = np.abs(dense).sum(axis=2) - diag
        assert np.all(diag > off)

    def test_replication_emulates_larger_mesh(self):
        m = pele_batch("drm19", num_batch=200)
        assert m.num_batch == 200
        # replicated values cycle through the unique set
        assert np.allclose(m.values[0], m.values[67])

    def test_pattern_deterministic_per_mechanism(self):
        a = pele_batch("gri12", seed=0)
        b = pele_batch("gri12", seed=0)
        assert np.array_equal(a.col_idxs, b.col_idxs)
        assert np.allclose(a.values, b.values)

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(KeyError):
            pele_batch("methane99")

    def test_gamma_validated(self):
        with pytest.raises(ValueError):
            pele_batch("drm19", gamma=1.5)

    def test_ell_format(self):
        m = pele_batch("drm19", fmt="ell")
        assert isinstance(m, BatchEll)
        assert m.num_rows == 22

    def test_rhs_positive_and_shaped(self):
        m = pele_batch("drm19")
        b = pele_rhs(m)
        assert b.shape == (67, 22)
        assert np.all(b > 0)

    def test_table4_rows_structure(self):
        rows = table4_rows()
        assert rows[0]["input"] == "3pt stencil"
        assert rows[0]["nnz_per_matrix"] == "3 x n_rows"
        names = [r["input"] for r in rows[1:]]
        assert names == ["drm19", "gri12", "gri30", "dodecane_lu", "isooctane"]


class TestGeneralGenerators:
    def test_diag_dominant_property(self):
        m = random_diag_dominant_batch(4, 10, seed=0)
        dense = m.to_batch_dense()
        diag = np.abs(m.diagonal())
        off = np.abs(dense).sum(axis=2) - diag
        assert np.all(diag > off)

    def test_spd_generator(self):
        m = random_spd_batch(3, 8, seed=1)
        dense = m.to_batch_dense()
        assert np.allclose(dense, dense.transpose(0, 2, 1))
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_triangular_generators(self):
        lower = random_triangular_batch(2, 8, uplo="lower", seed=2)
        upper = random_triangular_batch(2, 8, uplo="upper", seed=2)
        assert np.allclose(np.triu(lower.to_batch_dense(), k=1), 0.0)
        assert np.allclose(np.tril(upper.to_batch_dense(), k=-1), 0.0)

    def test_shared_pattern_across_batch(self):
        m = random_diag_dominant_batch(6, 12, seed=3)
        # one pattern, many value sets — the defining batched property
        assert m.values.shape == (6, m.nnz_per_item)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            random_diag_dominant_batch(2, 4, dominance=0.5)
        with pytest.raises(ValueError):
            random_triangular_batch(2, 4, uplo="diag")
