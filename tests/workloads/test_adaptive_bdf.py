"""Adaptive (error-controlled) BDF integration."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.workloads.sundials import BatchedOde, BdfIntegrator, robertson_batch


def _linear_decay(num_batch=4, n=3, seed=0):
    rng = np.random.default_rng(seed)
    rates = 0.5 + rng.random((num_batch, n))

    def rhs(t, y):
        return -rates * y

    def jacobian(t, y):
        jac = np.zeros((num_batch, n, n))
        jac[:, np.arange(n), np.arange(n)] = -rates
        return jac

    return BatchedOde(num_batch, n, rhs, jacobian, np.ones((num_batch, n))), rates


class TestAdaptiveAccuracy:
    def test_meets_tolerance_on_linear_decay(self):
        ode, rates = _linear_decay()
        result = BdfIntegrator(order=1).integrate_adaptive(
            ode, t_end=0.3, rtol=1e-5, atol=1e-8
        )
        exact = np.exp(-0.3 * rates)
        # global error within a couple orders of the local tolerance
        assert np.max(np.abs(result.final_state - exact)) < 1e-3
        assert result.steps_accepted > 10

    def test_tighter_tolerance_means_more_steps(self):
        ode_a, _ = _linear_decay(seed=1)
        ode_b, _ = _linear_decay(seed=1)
        loose = BdfIntegrator(order=1).integrate_adaptive(
            ode_a, 0.3, rtol=1e-3, atol=1e-6
        )
        tight = BdfIntegrator(order=1).integrate_adaptive(
            ode_b, 0.3, rtol=1e-6, atol=1e-9
        )
        assert tight.steps_accepted > loose.steps_accepted
        err_loose = np.max(np.abs(loose.final_state - tight.final_state))
        assert err_loose < 1e-2

    def test_trajectory_times_monotone_and_reach_end(self):
        ode, _ = _linear_decay()
        result = BdfIntegrator(order=1).integrate_adaptive(ode, 0.5, rtol=1e-4)
        assert np.all(np.diff(result.times) > 0)
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(0.5, rel=1e-12)
        assert result.states.shape[0] == result.times.shape[0]


class TestStepControllerBehaviour:
    def test_steps_grow_after_stiff_transient(self):
        # the signature adaptive behaviour on Robertson kinetics: tiny
        # steps through the initial layer, then rapid growth
        ode = robertson_batch(num_batch=4, seed=1)
        result = BdfIntegrator(order=1).integrate_adaptive(
            ode, t_end=0.4, h0=1e-4, rtol=1e-4, atol=1e-9
        )
        sizes = result.step_sizes
        assert sizes[-1] > 50 * sizes[0]
        assert np.allclose(result.states.sum(axis=2), 1.0, atol=1e-8)

    def test_rejections_are_counted(self):
        # start with an absurdly large h: the controller must reject it
        ode, _ = _linear_decay()
        result = BdfIntegrator(order=1).integrate_adaptive(
            ode, t_end=0.3, h0=0.3, rtol=1e-8, atol=1e-10
        )
        assert result.steps_rejected >= 1
        assert result.steps_accepted >= 1

    def test_step_budget_enforced(self):
        ode, _ = _linear_decay()
        with pytest.raises(ConvergenceError, match="adaptive BDF"):
            BdfIntegrator(order=1).integrate_adaptive(
                ode, t_end=1.0, rtol=1e-10, atol=1e-13, max_steps=5
            )

    def test_parameter_validation(self):
        ode, _ = _linear_decay()
        integ = BdfIntegrator(order=1)
        with pytest.raises(ValueError):
            integ.integrate_adaptive(ode, t_end=0.0)
        with pytest.raises(ValueError):
            integ.integrate_adaptive(ode, t_end=1.0, rtol=-1.0)

    def test_linear_solver_statistics_accumulate(self):
        ode, _ = _linear_decay()
        result = BdfIntegrator(order=1).integrate_adaptive(ode, 0.2, rtol=1e-4)
        assert result.linear_solves > 0
        assert result.newton_iterations >= result.linear_solves
