"""The shared arrival-process generators and request synthesis."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    bursty_offsets,
    keyed_requests,
    make_request,
    pace,
    poisson_offsets,
    stencil_pattern,
    uniform_offsets,
)


class TestUniform:
    def test_constant_spacing(self):
        offsets = uniform_offsets(100.0, 5)
        assert np.allclose(offsets, [0.0, 0.01, 0.02, 0.03, 0.04])

    def test_empty(self):
        assert uniform_offsets(10.0, 0).size == 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            uniform_offsets(0.0, 4)
        with pytest.raises(ValueError, match="num_requests"):
            uniform_offsets(10.0, -1)


class TestPoisson:
    def test_seeded_reproducible(self):
        a = poisson_offsets(200.0, 64, np.random.default_rng(9))
        b = poisson_offsets(200.0, 64, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_starts_at_zero_and_is_monotonic(self):
        offsets = poisson_offsets(200.0, 64, np.random.default_rng(9))
        assert offsets[0] == 0.0
        assert np.all(np.diff(offsets) >= 0.0)

    def test_long_run_rate(self):
        n = 4000
        offsets = poisson_offsets(500.0, n, np.random.default_rng(1))
        realized = (n - 1) / offsets[-1]
        assert realized == pytest.approx(500.0, rel=0.15)

    def test_empty(self):
        assert poisson_offsets(10.0, 0, np.random.default_rng(0)).size == 0


class TestBursty:
    def test_seeded_reproducible(self):
        a = bursty_offsets(200.0, 128, np.random.default_rng(3))
        b = bursty_offsets(200.0, 128, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_long_run_rate_holds(self):
        n = 8000
        offsets = bursty_offsets(500.0, n, np.random.default_rng(2))
        realized = (n - 1) / offsets[-1]
        assert realized == pytest.approx(500.0, rel=0.25)

    def test_burstier_than_poisson(self):
        # the modulated process must show heavier interarrival dispersion
        # (CoV > 1) than the plain Poisson process (CoV ~ 1)
        rng = np.random.default_rng(4)
        gaps = np.diff(bursty_offsets(200.0, 8000, rng, burst_factor=16.0))
        cov = gaps.std() / gaps.mean()
        assert cov > 1.1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="burst_factor"):
            bursty_offsets(10.0, 4, rng, burst_factor=1.0)
        with pytest.raises(ValueError, match="burst_fraction"):
            bursty_offsets(10.0, 4, rng, burst_fraction=1.5)
        with pytest.raises(ValueError, match="mean_phase_requests"):
            bursty_offsets(10.0, 4, rng, mean_phase_requests=0)


class TestPace:
    def test_fires_in_order_with_fake_clock(self):
        now = [0.0]
        slept = []

        def clock():
            return now[0]

        def sleep(seconds):
            slept.append(seconds)
            now[0] += seconds

        fired = []
        results = pace(
            [0.0, 0.5, 1.0], lambda i: fired.append(i) or i * 10,
            clock=clock, sleep=sleep,
        )
        assert fired == [0, 1, 2]
        assert results == [0, 10, 20]
        assert slept == pytest.approx([0.5, 0.5])

    def test_late_submissions_fire_immediately(self):
        # a slow submit pushes the clock past later offsets: open-loop
        # pacing fires them immediately instead of sleeping
        now = [0.0]

        def slow_submit(i):
            now[0] += 10.0
            return i

        sleeps = []
        results = pace(
            [0.0, 0.001, 0.002], slow_submit,
            clock=lambda: now[0], sleep=sleeps.append,
        )
        assert results == [0, 1, 2]
        assert sleeps == []


class TestRequestSynthesis:
    def test_make_request_defaults(self):
        pattern = stencil_pattern(8)
        request = make_request(pattern, np.random.default_rng(0), 8)
        assert request.solver == "bicgstab"
        assert request.preconditioner == "jacobi"
        assert request.num_rows == 8

    def test_keyed_requests_key_diversity(self):
        pattern = stencil_pattern(8)
        requests = keyed_requests(
            pattern, np.random.default_rng(0), 8, 24, 6, solver="cg"
        )
        keys = {repr(r.batch_key) for r in requests}
        assert len(keys) == 6
        assert all(r.solver == "cg" for r in requests)

    def test_grouped_layout_keeps_keys_adjacent(self):
        pattern = stencil_pattern(8)
        requests = keyed_requests(
            pattern, np.random.default_rng(0), 8, 16, 4, layout="grouped"
        )
        tokens = [repr(r.batch_key) for r in requests]
        # one contiguous run per key: a key never reappears after changing
        seen, previous = set(), None
        for token in tokens:
            if token != previous:
                assert token not in seen
                seen.add(token)
            previous = token
        assert len(seen) == 4

    def test_interleaved_layout_round_robins(self):
        pattern = stencil_pattern(8)
        requests = keyed_requests(
            pattern, np.random.default_rng(0), 8, 8, 4, layout="interleaved"
        )
        tokens = [repr(r.batch_key) for r in requests]
        assert tokens[:4] == tokens[4:]

    def test_validation(self):
        pattern = stencil_pattern(8)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="num_keys"):
            keyed_requests(pattern, rng, 8, 4, 0)
        with pytest.raises(ValueError, match="layout"):
            keyed_requests(pattern, rng, 8, 4, 2, layout="shuffled")
