"""The mini-SUNDIALS BDF integrator and the Robertson batch."""

import numpy as np
import pytest

from repro.core.dispatch import BatchSolverFactory
from repro.exceptions import ConvergenceError
from repro.workloads.sundials import (
    BatchedOde,
    BdfIntegrator,
    robertson_batch,
)


def _linear_decay(num_batch=4, n=3, seed=0):
    """y' = -K y with per-item positive diagonal K: exact solution known."""
    rng = np.random.default_rng(seed)
    rates = 0.5 + rng.random((num_batch, n))

    def rhs(t, y):
        return -rates * y

    def jacobian(t, y):
        jac = np.zeros((num_batch, n, n))
        jac[:, np.arange(n), np.arange(n)] = -rates
        return jac

    y0 = np.ones((num_batch, n))
    return BatchedOde(num_batch, n, rhs, jacobian, y0), rates


class TestBdfOnLinearDecay:
    def test_bdf1_matches_exact_solution(self):
        ode, rates = _linear_decay()
        result = BdfIntegrator(order=1).integrate(ode, t_end=1.0, num_steps=200)
        exact = np.exp(-rates * 1.0)
        assert np.allclose(result.final_state, exact, atol=5e-3)

    def test_bdf2_is_more_accurate_than_bdf1(self):
        ode, rates = _linear_decay()
        exact = np.exp(-rates * 1.0)
        e1 = np.max(
            np.abs(
                BdfIntegrator(order=1).integrate(ode, 1.0, 50).final_state - exact
            )
        )
        ode2, _ = _linear_decay()
        e2 = np.max(
            np.abs(
                BdfIntegrator(order=2).integrate(ode2, 1.0, 50).final_state - exact
            )
        )
        assert e2 < e1

    def test_convergence_order_two(self):
        ode, rates = _linear_decay()
        exact = np.exp(-rates * 1.0)
        errors = []
        for steps in (25, 50, 100):
            r = BdfIntegrator(order=2).integrate(ode, 1.0, steps)
            errors.append(np.max(np.abs(r.final_state - exact)))
        rate = np.log2(errors[0] / errors[1])
        assert 1.5 < rate < 2.6

    def test_trajectory_shapes(self):
        ode, _ = _linear_decay()
        result = BdfIntegrator().integrate(ode, 1.0, 10)
        assert result.times.shape == (11,)
        assert result.states.shape == (11, 4, 3)
        assert result.linear_solves > 0


class TestRobertson:
    def test_mass_conservation(self):
        ode = robertson_batch(num_batch=6, seed=1)
        result = BdfIntegrator(order=1, newton_tol=1e-12).integrate(
            ode, t_end=0.1, num_steps=100
        )
        totals = result.states.sum(axis=2)
        assert np.allclose(totals, 1.0, atol=1e-8)

    def test_stiff_dynamics_direction(self):
        ode = robertson_batch(num_batch=4, seed=2)
        result = BdfIntegrator(order=1).integrate(ode, t_end=1.0, num_steps=200)
        y = result.final_state
        # y1 decays, y3 accumulates, y2 stays tiny (classic Robertson)
        assert np.all(y[:, 0] < 1.0)
        assert np.all(y[:, 2] > 0.0)
        assert np.all(y[:, 1] < 1e-3)

    def test_batch_items_differ(self):
        ode = robertson_batch(num_batch=4, seed=3, spread=0.3)
        result = BdfIntegrator(order=1).integrate(ode, t_end=1.0, num_steps=50)
        y = result.final_state
        assert not np.allclose(y[0], y[1])


class TestWarmStart:
    def test_warm_start_reduces_linear_iterations(self):
        # the paper's core argument for iterative batched solvers in
        # nonlinear outer loops (Section 2.1)
        ode_w, _ = _linear_decay(num_batch=8, n=3, seed=5)
        ode_c, _ = _linear_decay(num_batch=8, n=3, seed=5)
        factory = BatchSolverFactory(
            solver="bicgstab", preconditioner="jacobi", tolerance=1e-13
        )
        warm = BdfIntegrator(factory=factory, warm_start=True, newton_tol=1e-12)
        cold = BdfIntegrator(factory=factory, warm_start=False, newton_tol=1e-12)
        rw = warm.integrate(ode_w, 1.0, 30)
        rc = cold.integrate(ode_c, 1.0, 30)
        assert rw.mean_linear_iterations <= rc.mean_linear_iterations


class TestValidation:
    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            BdfIntegrator(order=3)

    def test_bad_time_interval_rejected(self):
        ode, _ = _linear_decay()
        with pytest.raises(ValueError):
            BdfIntegrator().integrate(ode, t_end=0.0, num_steps=10)
        with pytest.raises(ValueError):
            BdfIntegrator().integrate(ode, t_end=1.0, num_steps=0)

    def test_y0_shape_validated(self):
        with pytest.raises(ValueError):
            BatchedOde(2, 3, lambda t, y: y, lambda t, y: y, np.ones((2, 4)))

    def test_newton_divergence_raises(self):
        # an exploding ODE with a huge step defeats Newton
        def rhs(t, y):
            return y**3 * 1e6

        def jacobian(t, y):
            jac = np.zeros((1, 2, 2))
            jac[:, np.arange(2), np.arange(2)] = 3e6 * y**2
            return jac

        ode = BatchedOde(1, 2, rhs, jacobian, np.ones((1, 2)))
        with pytest.raises(ConvergenceError):
            BdfIntegrator(order=1, max_newton=3).integrate(ode, 10.0, 1)
