"""Batch file I/O (MatrixMarket directories) and format conversions."""

import numpy as np
import pytest

from repro.core.dispatch import BatchSolverFactory
from repro.core.matrix import BatchDense
from repro.core.matrix.conversions import convert
from repro.exceptions import BadSparsityPatternError, UnsupportedCombinationError
from repro.workloads.general import random_diag_dominant_batch
from repro.workloads.io import load_batch_dir, save_batch_dir
from repro.workloads.pele import pele_batch, pele_rhs


class TestBatchDirIo:
    def test_round_trip(self, tmp_path):
        matrix = random_diag_dominant_batch(5, 9, seed=6)
        rhs = np.random.default_rng(0).standard_normal((5, 9))
        paths = save_batch_dir(tmp_path, matrix, rhs=rhs)
        assert len(paths) == 5
        loaded, loaded_rhs = load_batch_dir(tmp_path)
        assert loaded.num_batch == 5
        assert np.allclose(loaded.to_batch_dense(), matrix.to_batch_dense())
        assert np.allclose(loaded_rhs, rhs)

    def test_round_trip_pele(self, tmp_path):
        matrix = pele_batch("drm19", num_batch=4)
        save_batch_dir(tmp_path, matrix, rhs=pele_rhs(matrix))
        loaded, rhs = load_batch_dir(tmp_path)
        assert loaded.num_rows == 22
        assert np.allclose(loaded.to_batch_dense(), matrix.to_batch_dense())
        # and the loaded batch solves like the original
        factory = BatchSolverFactory(
            solver="bicgstab", preconditioner="jacobi", tolerance=1e-9
        )
        assert factory.solve(loaded, rhs).all_converged

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_batch_dir(tmp_path / "nothing")

    def test_mismatched_patterns_rejected(self, tmp_path):
        import scipy.io
        import scipy.sparse as sp

        scipy.io.mmwrite(tmp_path / "item_0.mtx", sp.eye(3, format="csr"))
        scipy.io.mmwrite(
            tmp_path / "item_1.mtx", sp.csr_matrix(np.triu(np.ones((3, 3))))
        )
        with pytest.raises(BadSparsityPatternError, match="share"):
            load_batch_dir(tmp_path)

    def test_no_rhs_returns_none(self, tmp_path):
        save_batch_dir(tmp_path, random_diag_dominant_batch(2, 4, seed=1))
        _, rhs = load_batch_dir(tmp_path)
        assert rhs is None

    def test_files_sorted_by_index(self, tmp_path):
        matrix = random_diag_dominant_batch(12, 4, seed=2)
        save_batch_dir(tmp_path, matrix)
        loaded, _ = load_batch_dir(tmp_path)
        # order preserved: item 10 must not sort before item 2
        assert np.allclose(loaded.values, matrix.values)


class TestConvert:
    @pytest.fixture
    def csr(self):
        return random_diag_dominant_batch(3, 7, seed=9)

    def test_all_pairwise_conversions(self, csr):
        reference = csr.to_batch_dense()
        formats = {
            "csr": csr,
            "ell": convert(csr, "ell"),
            "dense": convert(csr, "dense"),
        }
        for src in formats.values():
            for fmt in ("dense", "csr", "ell"):
                converted = convert(src, fmt)
                assert converted.format_name == fmt
                assert np.allclose(converted.to_batch_dense(), reference)

    def test_identity_conversion_is_noop(self, csr):
        assert convert(csr, "csr") is csr

    def test_preserves_precision(self, csr):
        single = csr.astype(np.float32)
        for fmt in ("dense", "ell"):
            assert convert(single, fmt).dtype == np.float32

    def test_unknown_format_rejected(self, csr):
        with pytest.raises(UnsupportedCombinationError):
            convert(csr, "coo")

    def test_factory_converts_format(self, csr):
        dense = BatchDense(csr.to_batch_dense())
        factory = BatchSolverFactory(
            solver="bicgstab", preconditioner="isai", matrix_format="csr",
            tolerance=1e-8,
        )
        # ISAI requires CSR; the factory's format level makes it legal
        solver = factory.create(dense)
        assert solver.matrix.format_name == "csr"
        result = solver.solve(np.ones((3, 7)))
        assert result.all_converged

    def test_factory_rejects_unknown_format(self):
        with pytest.raises(UnsupportedCombinationError):
            BatchSolverFactory(matrix_format="hyb")
