"""Cross-cutting coverage: option plumbing, model edges, generator knobs."""

import numpy as np
import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.core import (
    BatchBicgstab,
    BatchCg,
    BatchGmres,
    BatchJacobi,
    SolverSettings,
)
from repro.core.dispatch import BatchSolverFactory, dispatch_solve
from repro.core.launch import KernelLaunchPlan
from repro.core.stop import AbsoluteResidual, RelativeResidual
from repro.core.workspace import SlmBudget, plan_workspace
from repro.hw.memmodel import split_traffic
from repro.hw.occupancy import EXACT, occupancy_report
from repro.hw.specs import gpu
from repro.hw.timing import estimate_runtime, estimate_solve
from repro.multi.comm import SimWorld, _payload_bytes
from repro.utils.units import format_bytes, format_flops, format_time
from repro.workloads.pele import pele_batch, pele_rhs
from repro.workloads.stencil import three_point_stencil


class TestDispatchOptionPlumbing:
    def test_gmres_restart_option(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = dispatch_solve(dd_batch, b, solver="gmres", restart=4, tolerance=1e-8)
        assert result.all_converged

    def test_richardson_omega_option(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        factory = BatchSolverFactory(
            solver="richardson",
            preconditioner="jacobi",
            tolerance=1e-8,
            max_iterations=3000,
            solver_options={"omega": 0.9},
        )
        solver = factory.create(dd_batch)
        assert solver.omega == 0.9
        assert solver.solve(b).all_converged

    def test_trsv_uplo_option(self, rng):
        from repro.workloads.general import random_triangular_batch

        upper = random_triangular_batch(3, 8, uplo="upper", seed=4)
        b = rng.standard_normal((3, 8))
        result = dispatch_solve(upper, b, solver="trsv", uplo="upper")
        assert result.all_converged

    def test_block_jacobi_block_size_option(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        factory = BatchSolverFactory(
            solver="bicgstab",
            preconditioner="block_jacobi",
            preconditioner_options={"block_size": 3},
            tolerance=1e-9,
        )
        solver = factory.create(dd_batch)
        assert solver.preconditioner.block_size == 3
        assert solver.solve(b).all_converged

    def test_keep_history_plumbed(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        factory = BatchSolverFactory(
            solver="bicgstab", tolerance=1e-8, keep_history=True
        )
        result = factory.solve(dd_batch, b)
        assert result.logger.history.shape[1] == 8


class TestSolverEdges:
    def test_gmres_restart_equal_to_n(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        solver = BatchGmres(dd_batch, restart=100)  # clamps to n
        assert solver.restart == 12
        assert solver.solve(b).x.shape == (8, 12)

    def test_absolute_criterion_cg(self, spd_batch, rng):
        b = rng.standard_normal((8, 12))
        settings = SolverSettings(max_iterations=400, criterion=AbsoluteResidual(1e-6))
        result = BatchCg(spd_batch, settings=settings).solve(b)
        assert result.all_converged
        assert np.all(result.residual_norms <= 1e-6)

    def test_history_available_for_bicgstab(self, dd_batch, rng):
        b = rng.standard_normal((8, 12))
        settings = SolverSettings(
            max_iterations=400, criterion=RelativeResidual(1e-9), keep_history=True
        )
        result = BatchBicgstab(dd_batch, settings=settings).solve(b)
        hist = result.logger.history
        assert np.all(hist[-1] <= hist[0] + 1e-12)

    def test_x0_broadcast_1d(self, spd_batch, rng):
        b = rng.standard_normal((8, 12))
        result = BatchCg(spd_batch).solve(b, x0=np.zeros(12))
        assert result.all_converged


class TestHwModelEdges:
    @pytest.fixture
    def solved(self):
        matrix = three_point_stencil(32, 4)
        solver = BatchCg(
            matrix,
            settings=SolverSettings(
                max_iterations=500, criterion=RelativeResidual(1e-8)
            ),
        )
        from repro.workloads.stencil import stencil_rhs

        return solver, solver.solve(stencil_rhs(32, 4))

    def test_exact_policy_faster_than_greedy_for_small_workspaces(self, solved):
        solver, result = solved
        spec = gpu("pvc1")
        greedy = estimate_solve(spec, solver, result, num_batch=2**15, policy="greedy")
        exact = estimate_solve(spec, solver, result, num_batch=2**15, policy=EXACT)
        # more resident groups -> fewer waves -> never slower
        assert exact.occupancy.resident_groups_per_cu >= 1
        assert exact.total_seconds <= greedy.total_seconds * 1.001

    def test_estimate_runtime_validates(self, solved):
        solver, result = solved
        spec = gpu("a100")
        timing = estimate_solve(spec, solver, result)
        with pytest.raises(ValueError):
            estimate_runtime(
                spec,
                timing.split_per_group_iter,
                iterations=0,
                num_batch=8,
                plan=timing.launch_plan,
                workspace=timing.workspace_plan,
            )
        with pytest.raises(ValueError):
            estimate_runtime(
                spec,
                timing.split_per_group_iter,
                iterations=1,
                num_batch=8,
                plan=timing.launch_plan,
                workspace=timing.workspace_plan,
                flop_rate_scale=0.0,
            )

    def test_sub_group_threshold_override_plumbed(self, solved):
        solver, result = solved
        spec = gpu("pvc1")
        small = estimate_solve(
            spec, solver, result, num_batch=64, sub_group_threshold_rows=8
        )
        assert small.launch_plan.sub_group_size == 32  # 32 rows > threshold 8

    def test_precond_traffic_follows_plan(self):
        from repro.core.counters import TrafficLedger

        ledger = TrafficLedger()
        ledger.add_bytes("precond", 10.0)
        in_slm = plan_workspace([("r", 1)], SlmBudget(10**6), precond_doubles=4)
        spilled = plan_workspace([("r", 1)], SlmBudget(8), precond_doubles=4)
        assert split_traffic(ledger, in_slm).slm_bytes == 10.0
        assert split_traffic(ledger, spilled).l2_bytes == 10.0

    def test_occupancy_exact_policy_respects_wg_size(self):
        plan = KernelLaunchPlan(
            num_groups=100,
            work_group_size=256,
            sub_group_size=32,
            reduction_scope="work_group",
            slm_bytes_per_group=1024,
        )
        report = occupancy_report(gpu("pvc1"), plan, 100, EXACT)
        assert report.resident_groups_per_cu == 1024 // 256


class TestWorkloadKnobs:
    def test_pele_gamma_controls_difficulty(self):
        # larger gamma -> weaker dominance -> more iterations
        settings = SolverSettings(max_iterations=300, criterion=RelativeResidual(1e-9))
        iters = []
        for gamma in (0.1, 0.5, 0.9):
            m = pele_batch("drm19", num_batch=8, gamma=gamma)
            solver = BatchBicgstab(m, BatchJacobi(m), settings=settings)
            iters.append(solver.solve(pele_rhs(m)).iterations.mean())
        assert iters[0] < iters[-1]

    def test_stencil_deterministic_per_seed(self):
        a = three_point_stencil(16, 4, seed=3)
        b = three_point_stencil(16, 4, seed=3)
        c = three_point_stencil(16, 4, seed=4)
        assert np.allclose(a.values, b.values)
        assert not np.allclose(a.values, c.values)

    def test_pele_unique_count_override(self):
        m = pele_batch("gri30", num_batch=10)
        assert m.num_batch == 10


class TestSimWorldPayloads:
    def test_scalar_and_nested_payloads(self):
        assert _payload_bytes(None) == 0.0
        assert _payload_bytes(3.14) == 8.0
        assert _payload_bytes([np.ones(2), np.ones(3)]) == 40.0

    def test_unknown_payload_rejected(self):
        with pytest.raises(TypeError):
            _payload_bytes(object())

    def test_bad_rank_transfer_rejected(self):
        world = SimWorld(2)
        with pytest.raises(ValueError):
            world.record_transfer(0, 5, 10.0)
        with pytest.raises(ValueError):
            world.record_transfer(0, 1, -1.0)


class TestUnitsProperties:
    @hsettings(max_examples=40, deadline=None)
    @given(value=st.floats(0.0, 1e18, allow_nan=False))
    def test_format_bytes_never_crashes_and_scales(self, value):
        text = format_bytes(value)
        magnitude = float(text.split()[0])
        assert 0.0 <= magnitude < 1000.0 or text.endswith("PB")

    def test_flops_and_time_units(self):
        assert format_flops(1e12).endswith("TFLOP/s")
        assert format_time(1e-6) == "1 us"
