"""Executor semantics: barriers, divergence detection, SLM, launch stats."""

import numpy as np
import pytest

from repro.exceptions import (
    BarrierDivergenceError,
    KernelFaultError,
    LocalMemoryError,
    SubGroupSizeError,
)
from repro.sycl.device import cpu_device, pvc_stack_device
from repro.sycl.memory import LocalSpec
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue


@pytest.fixture
def queue():
    return Queue(cpu_device())


class TestBarriers:
    def test_barrier_orders_slm_writes(self, queue):
        out = np.zeros(8)

        def kernel(item, slm, out):
            # reversal through SLM requires the barrier to be correct
            slm.buf[item.local_id] = float(item.local_id)
            yield item.barrier()
            out[item.global_id] = slm.buf[item.local_range - 1 - item.local_id]

        queue.parallel_for(
            NDRange(8, 8, 8), kernel, args=(out,), local_specs=[LocalSpec("buf", (8,))]
        )
        assert list(out) == list(range(7, -1, -1))

    @pytest.mark.no_sanitize  # asserts the bare executor's diagnostic
    def test_divergent_barrier_raises(self, queue):
        def kernel(item, slm):
            if item.local_id == 0:
                yield item.barrier()

        with pytest.raises(BarrierDivergenceError, match="finished work-items"):
            queue.parallel_for(NDRange(8, 8, 8), kernel)

    @pytest.mark.no_sanitize  # asserts the bare executor's diagnostic
    def test_mismatched_collectives_raise(self, queue):
        def kernel(item, slm):
            if item.local_id < 4:
                yield item.reduce_over_group(1.0, "sum")
            else:
                yield item.reduce_over_group(1.0, "max")

        with pytest.raises(BarrierDivergenceError, match="different synchronization"):
            queue.parallel_for(NDRange(8, 8, 8), kernel)

    @pytest.mark.no_sanitize  # asserts the bare executor's diagnostic
    def test_group_vs_sub_group_deadlock_detected(self, queue):
        # one lane of sub-group 1 goes to the group barrier while its
        # siblings sit in a sub-group barrier: neither scope can assemble
        def kernel(item, slm):
            if item.sub_group_id == 1 and item.lane != 0:
                yield item.sub_group_barrier()
            yield item.barrier()

        with pytest.raises(BarrierDivergenceError, match="deadlocked"):
            queue.parallel_for(NDRange(8, 8, 4), kernel)

    def test_mixed_scope_kernel_that_reconverges_is_legal(self, queue):
        # sub-group 1 synchronizes privately, then everyone meets at the
        # group barrier — legal and must complete
        out = np.zeros(8)

        def kernel(item, slm, out):
            if item.sub_group_id == 1:
                yield item.sub_group_barrier()
            yield item.barrier()
            out[item.global_id] = 1.0

        queue.parallel_for(NDRange(8, 8, 4), kernel, args=(out,))
        assert np.all(out == 1.0)

    def test_different_barrier_counts_per_sub_group_are_legal(self, queue):
        # sub-group scoped synchronization does not require other
        # sub-groups to participate
        out = np.zeros(8)

        def kernel(item, slm, out):
            reps = item.sub_group_id + 1
            total = 0.0
            for _ in range(reps):
                total = yield item.reduce_over_sub_group(1.0, "sum")
            out[item.global_id] = total
            yield item.barrier()

        queue.parallel_for(NDRange(8, 8, 4), kernel, args=(out,))
        assert np.all(out == 4.0)


class TestKernelForms:
    def test_plain_function_kernel(self, queue):
        out = np.zeros(8)

        def kernel(item, slm, out):
            out[item.global_id] = item.group_id * 100 + item.local_id

        queue.parallel_for(NDRange(8, 4, 4), kernel, args=(out,))
        assert list(out) == [0, 1, 2, 3, 100, 101, 102, 103]

    def test_yielding_non_syncop_raises(self, queue):
        def kernel(item, slm):
            yield 42

        with pytest.raises(KernelFaultError, match="SyncOp"):
            queue.parallel_for(NDRange(4, 4, 4), kernel)


class TestLaunchValidation:
    def test_slm_overflow_rejected(self):
        queue = Queue(pvc_stack_device(1))

        def kernel(item, slm):
            yield item.barrier()

        with pytest.raises(LocalMemoryError):
            queue.parallel_for(
                NDRange(16, 16, 16),
                kernel,
                local_specs=[LocalSpec("huge", (128 * 1024,))],  # 1 MB > 128 KB
            )

    def test_unsupported_sub_group_size_rejected(self):
        queue = Queue(pvc_stack_device(1))

        def kernel(item, slm):
            yield item.barrier()

        with pytest.raises(SubGroupSizeError):
            queue.parallel_for(NDRange(8, 8, 8), kernel)  # PVC: only 16/32


class TestLaunchStats:
    def test_stats_record_geometry_and_collectives(self, queue):
        def kernel(item, slm):
            yield item.barrier()
            yield item.reduce_over_group(1.0, "sum")
            yield item.reduce_over_sub_group(1.0, "sum")

        event = queue.parallel_for(
            NDRange(32, 16, 8), kernel, local_specs=[LocalSpec("b", (4,))]
        )
        stats = event.stats
        assert stats.num_groups == 2
        assert stats.local_size == 16
        assert stats.sub_group_size == 8
        assert stats.slm_bytes_per_group == 32
        assert stats.collective_counts["group:barrier"] == 2
        assert stats.collective_counts["group:reduce"] == 2
        assert stats.collective_counts["sub_group:reduce"] == 4

    def test_queue_counts_launches(self, queue):
        def kernel(item, slm):
            return None

        assert queue.num_launches == 0
        queue.parallel_for(NDRange(4, 4, 4), kernel)
        queue.parallel_for(NDRange(4, 4, 4), kernel)
        assert queue.num_launches == 2
        assert queue.events[0].duration_seconds >= 0.0


class TestPoisonedSlm:
    @pytest.mark.no_sanitize  # the uninitialized read is the point
    def test_kernel_reading_uninitialized_slm_sees_nan(self, queue):
        out = np.zeros(4)

        def kernel(item, slm, out):
            out[item.global_id] = slm.buf[item.local_id]
            yield item.barrier()

        queue.parallel_for(
            NDRange(4, 4, 4),
            kernel,
            args=(out,),
            local_specs=[LocalSpec("buf", (4,))],
            poison_slm=True,
        )
        assert np.all(np.isnan(out))
