"""Device descriptor validation and capability queries."""

import pytest

from repro.exceptions import DeviceCapabilityError, SubGroupSizeError
from repro.sycl.device import SyclDevice, cpu_device, pvc_stack_device


class TestSyclDeviceValidation:
    def test_rejects_zero_compute_units(self):
        with pytest.raises(DeviceCapabilityError):
            SyclDevice("bad", "x", 0, (16,), 1024)

    def test_rejects_empty_sub_group_sizes(self):
        with pytest.raises(DeviceCapabilityError):
            SyclDevice("bad", "x", 4, (), 1024)

    def test_rejects_non_power_of_two_sub_group(self):
        with pytest.raises(SubGroupSizeError):
            SyclDevice("bad", "x", 4, (12,), 1024)

    def test_rejects_zero_slm(self):
        with pytest.raises(DeviceCapabilityError):
            SyclDevice("bad", "x", 4, (16,), 0)


class TestCapabilityQueries:
    def test_supports_declared_sub_group_sizes(self):
        dev = pvc_stack_device(1)
        assert dev.supports_sub_group_size(16)
        assert dev.supports_sub_group_size(32)
        assert not dev.supports_sub_group_size(64)

    def test_validate_sub_group_size_raises_for_unsupported(self):
        with pytest.raises(SubGroupSizeError):
            pvc_stack_device(1).validate_sub_group_size(8)

    def test_validate_work_group_size_bounds(self):
        dev = cpu_device()
        dev.validate_work_group_size(1)
        dev.validate_work_group_size(dev.max_work_group_size)
        with pytest.raises(DeviceCapabilityError):
            dev.validate_work_group_size(0)
        with pytest.raises(DeviceCapabilityError):
            dev.validate_work_group_size(dev.max_work_group_size + 1)

    def test_preferred_sub_group_size_is_smallest(self):
        assert pvc_stack_device(1).preferred_sub_group_size == 16


class TestPvcDescriptor:
    def test_one_stack_has_64_xe_cores(self):
        dev = pvc_stack_device(1)
        assert dev.num_compute_units == 64
        assert dev.total_compute_units == 64

    def test_two_stacks_double_total_cores(self):
        dev = pvc_stack_device(2)
        assert dev.num_compute_units == 64
        assert dev.total_compute_units == 128

    def test_slm_is_128_kb_per_core(self):
        assert pvc_stack_device(1).slm_bytes_per_cu == 128 * 1024

    def test_invalid_stack_count_rejected(self):
        with pytest.raises(DeviceCapabilityError):
            pvc_stack_device(3)

    def test_xe_core_hierarchy_recorded(self):
        dev = pvc_stack_device(1)
        assert dev.extra["xve_per_core"] == 8
        assert dev.extra["hw_threads_per_xve"] == 8
