"""ND-range geometry: divisibility rules and index decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import InvalidNDRangeError
from repro.sycl.ndrange import EXECUTION_MODEL_MAP, NDRange


class TestValidation:
    def test_global_must_be_multiple_of_local(self):
        with pytest.raises(InvalidNDRangeError):
            NDRange(100, 32, 16)

    def test_local_must_be_multiple_of_sub_group(self):
        # the SYCL requirement cited in Section 3.6
        with pytest.raises(InvalidNDRangeError):
            NDRange(96, 24, 16)

    def test_sizes_must_be_positive(self):
        with pytest.raises(InvalidNDRangeError):
            NDRange(0, 16, 16)
        with pytest.raises(InvalidNDRangeError):
            NDRange(16, -16, 16)

    def test_valid_range_accepted(self):
        nd = NDRange(128, 32, 16)
        assert nd.num_groups == 4
        assert nd.sub_groups_per_group == 2


class TestDecomposition:
    def test_group_and_local_of(self):
        nd = NDRange(64, 16, 8)
        assert nd.group_of(0) == 0
        assert nd.group_of(17) == 1
        assert nd.local_of(17) == 1
        assert nd.group_of(63) == 3

    def test_sub_group_of(self):
        nd = NDRange(32, 16, 8)
        assert nd.sub_group_of(0) == (0, 0)
        assert nd.sub_group_of(9) == (1, 1)
        assert nd.sub_group_of(23) == (0, 7)

    def test_out_of_range_ids_rejected(self):
        nd = NDRange(32, 16, 8)
        with pytest.raises(InvalidNDRangeError):
            nd.group_of(32)
        with pytest.raises(InvalidNDRangeError):
            nd.local_of(-1)

    @given(
        groups=st.integers(1, 8),
        sub_groups=st.integers(1, 4),
        sg=st.sampled_from([2, 4, 8, 16, 32]),
        data=st.data(),
    )
    def test_decomposition_is_consistent(self, groups, sub_groups, sg, data):
        local = sub_groups * sg
        nd = NDRange(groups * local, local, sg)
        gid = data.draw(st.integers(0, nd.global_size - 1))
        g, l = nd.group_of(gid), nd.local_of(gid)
        s, lane = nd.sub_group_of(gid)
        assert gid == g * local + l
        assert l == s * sg + lane
        assert 0 <= lane < sg
        assert 0 <= s < sub_groups


class TestExecutionModelMap:
    def test_table2_contents(self):
        assert EXECUTION_MODEL_MAP == {
            "thread": "work-item",
            "warp": "sub-group",
            "thread block": "work-group",
            "grid": "ND-range",
        }
