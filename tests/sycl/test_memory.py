"""Shared-local-memory specs, capacity checking, allocation and poisoning."""

import numpy as np
import pytest

from repro.exceptions import LocalMemoryError
from repro.sycl.memory import (
    LocalSpec,
    allocate_local,
    check_local_capacity,
    poison_local,
    total_local_bytes,
)


class TestLocalSpec:
    def test_nbytes_fp64(self):
        assert LocalSpec("r", (16,)).nbytes == 128

    def test_nbytes_multi_dim(self):
        assert LocalSpec("h", (4, 8), np.float32).nbytes == 128

    def test_negative_shape_rejected(self):
        with pytest.raises(LocalMemoryError):
            LocalSpec("bad", (-1,))

    def test_zero_size_allowed(self):
        assert LocalSpec("empty", (0,)).nbytes == 0


class TestCapacity:
    def test_total_bytes_sums_specs(self):
        specs = [LocalSpec("a", (8,)), LocalSpec("b", (8,))]
        assert total_local_bytes(specs) == 128

    def test_over_capacity_raises_with_detail(self):
        specs = [LocalSpec("big", (1000,))]
        with pytest.raises(LocalMemoryError, match="big"):
            check_local_capacity(specs, 1024, "dev")

    def test_exact_fit_allowed(self):
        check_local_capacity([LocalSpec("a", (128,))], 1024, "dev")


class TestAllocation:
    def test_allocate_zero_initialized(self):
        local = allocate_local([LocalSpec("r", (4,)), LocalSpec("i", (2,), np.int32)])
        assert np.all(local.r == 0.0)
        assert local.r.dtype == np.float64
        assert local.i.dtype == np.int32

    def test_allocations_are_independent_per_call(self):
        spec = [LocalSpec("r", (4,))]
        a = allocate_local(spec)
        b = allocate_local(spec)
        a.r[0] = 42.0
        assert b.r[0] == 0.0

    def test_poison_fills_floats_with_nan(self):
        local = allocate_local([LocalSpec("r", (4,))])
        poison_local(local)
        assert np.all(np.isnan(local.r))

    def test_poison_fills_ints_with_max(self):
        local = allocate_local([LocalSpec("i", (4,), np.int32)])
        poison_local(local)
        assert np.all(local.i == np.iinfo(np.int32).max)
