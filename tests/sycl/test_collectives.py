"""Group and sub-group collectives: semantics against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sycl.device import cpu_device
from repro.sycl.group import evaluate_collective
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue


@pytest.fixture
def queue():
    return Queue(cpu_device())


def _run(queue, ndrange, kernel, *args, local_specs=None):
    return queue.parallel_for(ndrange, kernel, args=args, local_specs=local_specs)


class TestGroupReduce:
    def test_sum_over_group(self, queue):
        x = np.arange(16, dtype=np.float64)
        out = np.zeros(16)

        def kernel(item, slm, x, out):
            total = yield item.reduce_over_group(x[item.global_id], "sum")
            out[item.global_id] = total

        _run(queue, NDRange(16, 16, 8), kernel, x, out)
        assert np.all(out == x.sum())

    def test_max_over_group(self, queue):
        x = np.array([3.0, -1.0, 7.0, 2.0] * 2)
        out = np.zeros(8)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.reduce_over_group(x[item.global_id], "max")

        _run(queue, NDRange(8, 8, 4), kernel, x, out)
        assert np.all(out == 7.0)

    def test_reduce_is_per_group(self, queue):
        x = np.arange(8, dtype=np.float64)
        out = np.zeros(8)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.reduce_over_group(x[item.global_id], "sum")

        _run(queue, NDRange(8, 4, 4), kernel, x, out)
        assert np.all(out[:4] == 6.0)
        assert np.all(out[4:] == 22.0)


class TestSubGroupOps:
    def test_sub_group_reduce_scopes_are_independent(self, queue):
        x = np.arange(16, dtype=np.float64)
        out = np.zeros(16)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.reduce_over_sub_group(
                x[item.global_id], "sum"
            )

        _run(queue, NDRange(16, 16, 4), kernel, x, out)
        for sg in range(4):
            chunk = x[4 * sg : 4 * sg + 4]
            assert np.all(out[4 * sg : 4 * sg + 4] == chunk.sum())

    def test_broadcast_from_lane(self, queue):
        x = np.arange(8, dtype=np.float64)
        out = np.zeros(8)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.broadcast_over_sub_group(
                x[item.global_id], 2
            )

        _run(queue, NDRange(8, 8, 4), kernel, x, out)
        assert np.all(out[:4] == 2.0)
        assert np.all(out[4:] == 6.0)

    def test_shift_left_out_of_range_keeps_own_value(self, queue):
        x = np.arange(4, dtype=np.float64)
        out = np.zeros(4)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.shift_sub_group_left(x[item.global_id], 2)

        _run(queue, NDRange(4, 4, 4), kernel, x, out)
        assert list(out) == [2.0, 3.0, 2.0, 3.0]

    def test_xor_permute(self, queue):
        x = np.arange(4, dtype=np.float64)
        out = np.zeros(4)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.permute_sub_group_xor(x[item.global_id], 1)

        _run(queue, NDRange(4, 4, 4), kernel, x, out)
        assert list(out) == [1.0, 0.0, 3.0, 2.0]


class TestScansAndVotes:
    def test_inclusive_scan(self, queue):
        x = np.ones(8)
        out = np.zeros(8)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.inclusive_scan_over_group(
                x[item.global_id], "sum"
            )

        _run(queue, NDRange(8, 8, 8), kernel, x, out)
        assert list(out) == list(np.arange(1.0, 9.0))

    def test_exclusive_scan(self, queue):
        x = np.ones(8)
        out = np.zeros(8)

        def kernel(item, slm, x, out):
            out[item.global_id] = yield item.exclusive_scan_over_group(
                x[item.global_id], "sum"
            )

        _run(queue, NDRange(8, 8, 8), kernel, x, out)
        assert list(out) == list(np.arange(0.0, 8.0))

    def test_any_and_all_of_group(self, queue):
        out = np.zeros((2, 8))

        def kernel(item, slm, out):
            a = yield item.any_of_group(item.local_id == 3)
            b = yield item.all_of_group(item.local_id < 100)
            out[0, item.global_id] = float(a)
            out[1, item.global_id] = float(b)

        _run(queue, NDRange(8, 8, 8), kernel, out)
        assert np.all(out == 1.0)


class TestEvaluateCollectiveProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=1, max_size=16
        )
    )
    def test_reduce_sum_matches_numpy(self, values):
        lanes = list(range(len(values)))
        result = evaluate_collective("reduce", ("sum",), lanes, values)
        assert np.allclose(result, np.sum(values))
        assert len(result) == len(values)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=12),
        data=st.data(),
    )
    def test_inclusive_scan_matches_cumsum(self, values, data):
        lanes = list(range(len(values)))
        result = evaluate_collective("inclusive_scan", ("sum",), lanes, values)
        assert np.allclose(result, np.cumsum(values))

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=2, max_size=8),
        delta=st.integers(1, 4),
    )
    def test_shuffle_down_semantics(self, values, delta):
        lanes = list(range(len(values)))
        result = evaluate_collective("shuffle", ("down", delta), lanes, values)
        for lane in lanes:
            expected = values[lane + delta] if lane + delta < len(values) else values[lane]
            assert result[lane] == expected

    def test_broadcast_missing_lane_raises(self):
        with pytest.raises(ValueError, match="not a member"):
            evaluate_collective("broadcast", (9,), [0, 1, 2], [1.0, 2.0, 3.0])
