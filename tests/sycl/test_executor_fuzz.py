"""Property-based fuzzing of the cooperative executor.

Generates random—but legal—kernels (random mixes of group/sub-group
collectives with data-independent control flow) and checks the executor's
results against a direct sequential evaluation of the same collective
sequence. This is the deep invariant the solvers rely on: collectives
deliver the same values the mathematical definition prescribes, regardless
of interleaving.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sycl.device import cpu_device
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue

_OPS = ("group_sum", "group_max", "sub_sum", "barrier", "bcast", "scan")


def _reference(op: str, geometry, values: np.ndarray) -> np.ndarray:
    """Sequential evaluation of one collective over all work-items."""
    wg, sg = geometry
    out = np.empty_like(values)
    if op == "group_sum":
        out[:] = values.sum()
    elif op == "group_max":
        out[:] = values.max()
    elif op == "sub_sum":
        for s in range(wg // sg):
            out[s * sg : (s + 1) * sg] = values[s * sg : (s + 1) * sg].sum()
    elif op == "barrier":
        out[:] = values
    elif op == "bcast":
        out[:] = values[0]
    elif op == "scan":
        out[:] = np.cumsum(values)
    return out


@settings(max_examples=40, deadline=None)
@given(
    sub_groups=st.integers(1, 4),
    sg=st.sampled_from([4, 8]),
    ops=st.lists(st.sampled_from(_OPS), min_size=1, max_size=6),
    seed=st.integers(0, 10_000),
)
def test_random_collective_sequences_match_reference(sub_groups, sg, ops, seed):
    wg = sub_groups * sg
    rng = np.random.default_rng(seed)
    initial = rng.integers(-5, 6, size=wg).astype(np.float64)

    # reference: apply each op to the running per-item values
    expected = initial.copy()
    for op in ops:
        expected = _reference(op, (wg, sg), expected)

    observed = np.zeros(wg)

    def kernel(item, slm, initial, observed):
        value = float(initial[item.local_id])
        for op in ops:
            if op == "group_sum":
                value = yield item.reduce_over_group(value, "sum")
            elif op == "group_max":
                value = yield item.reduce_over_group(value, "max")
            elif op == "sub_sum":
                value = yield item.reduce_over_sub_group(value, "sum")
            elif op == "barrier":
                yield item.barrier()
            elif op == "bcast":
                value = yield item.broadcast_over_group(value, 0)
            elif op == "scan":
                value = yield item.inclusive_scan_over_group(value, "sum")
        observed[item.local_id] = value

    queue = Queue(cpu_device())
    queue.parallel_for(NDRange(wg, wg, sg), kernel, args=(initial, observed))
    assert np.allclose(observed, expected)


@settings(max_examples=25, deadline=None)
@given(
    sub_groups=st.integers(2, 4),
    sg=st.sampled_from([4, 8]),
    reps_per_sg=st.lists(st.integers(0, 3), min_size=4, max_size=4),
)
def test_uneven_sub_group_work_reconverges(sub_groups, sg, reps_per_sg):
    """Sub-groups doing different numbers of private collectives is legal."""
    wg = sub_groups * sg
    observed = np.zeros(wg)

    def kernel(item, slm, observed):
        reps = reps_per_sg[item.sub_group_id % len(reps_per_sg)]
        total = 0.0
        for _ in range(reps):
            total = yield item.reduce_over_sub_group(1.0, "sum")
        yield item.barrier()
        grand = yield item.reduce_over_group(total, "sum")
        observed[item.local_id] = grand

    queue = Queue(cpu_device())
    queue.parallel_for(NDRange(wg, wg, sg), kernel, args=(observed,))
    expected = sum(
        sg * (1.0 if reps_per_sg[s % len(reps_per_sg)] > 0 else 0.0) * sg
        for s in range(sub_groups)
    )
    assert np.all(observed == expected)


def test_many_groups_are_independent():
    """Work-groups never observe each other's SLM or collectives."""
    out = np.zeros(32)

    def kernel(item, slm, out):
        slm.buf[item.local_id] = float(item.group_id + 1)
        yield item.barrier()
        total = yield item.reduce_over_group(slm.buf[item.local_id], "sum")
        out[item.global_id] = total

    from repro.sycl.memory import LocalSpec

    queue = Queue(cpu_device())
    queue.parallel_for(
        NDRange(32, 8, 4), kernel, args=(out,), local_specs=[LocalSpec("buf", (8,))]
    )
    for g in range(4):
        assert np.all(out[8 * g : 8 * g + 8] == 8.0 * (g + 1))
