"""Property tests for ``partition_batch`` — the invariants sharding rests on.

The fleet router splits key spaces the way the distributed layer splits
batch index spaces; these are the exact-coverage / no-overlap / balance
guarantees both depend on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.multi import partition_batch


@st.composite
def _batch_and_ranks(draw):
    num_batch = draw(st.integers(min_value=1, max_value=4096))
    num_ranks = draw(st.integers(min_value=1, max_value=num_batch))
    return num_batch, num_ranks


class TestPartitionInvariants:
    @given(_batch_and_ranks())
    @settings(max_examples=200, deadline=None)
    def test_exact_coverage_no_overlap(self, case):
        num_batch, num_ranks = case
        slices = partition_batch(num_batch, num_ranks)
        assert len(slices) == num_ranks
        # contiguous, in order, no gaps, no overlap, full coverage
        cursor = 0
        for piece in slices:
            assert piece.start == cursor
            assert piece.stop >= piece.start
            cursor = piece.stop
        assert cursor == num_batch

    @given(_batch_and_ranks())
    @settings(max_examples=200, deadline=None)
    def test_balance_within_one(self, case):
        num_batch, num_ranks = case
        sizes = [s.stop - s.start for s in partition_batch(num_batch, num_ranks)]
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1  # ranks <= batch: nobody sits idle
        # the +1 remainders land on the leading ranks
        assert sizes == sorted(sizes, reverse=True)

    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=50, deadline=None)
    def test_size_one_batches(self, num_ranks):
        # one item per rank: the smallest legal world
        slices = partition_batch(num_ranks, num_ranks)
        assert all(s.stop - s.start == 1 for s in slices)
        assert slices[0] == slice(0, 1)

    def test_single_rank_owns_everything(self):
        assert partition_batch(7, 1) == [slice(0, 7)]


class TestPartitionRejections:
    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_ranks_than_batch_raises(self, num_batch, extra):
        with pytest.raises(ValueError, match="more ranks"):
            partition_batch(num_batch, num_batch + extra)

    @pytest.mark.parametrize(
        "num_batch,num_ranks",
        [(0, 1), (1, 0), (-1, 1), (1, -1), (0, 0)],
    )
    def test_non_positive_raises(self, num_batch, num_ranks):
        with pytest.raises(ValueError, match="must be positive"):
            partition_batch(num_batch, num_ranks)
