"""The simulated MPI world and distributed batched solves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dispatch import BatchSolverFactory
from repro.hw.specs import gpu
from repro.multi import (
    SimWorld,
    estimate_multi_gpu,
    partition_batch,
    solve_distributed,
)
from repro.workloads.general import random_diag_dominant_batch
from repro.workloads.pele import pele_batch, pele_rhs
from tests.conftest import reference_solutions


class TestSimWorld:
    def test_scatter_accounts_bytes(self):
        world = SimWorld(4)
        chunks = [np.ones(10) for _ in range(4)]
        world.scatter(chunks)
        # root->root is free; three remote transfers of 80 bytes
        assert world.total_bytes == 3 * 80.0

    def test_gather_and_bcast(self):
        world = SimWorld(3)
        gathered = world.gather([np.ones(2) * r for r in range(3)])
        assert np.allclose(gathered[2], 2.0)
        received = world.bcast(np.zeros(4))
        assert len(received) == 3
        assert world.total_bytes == 2 * 16.0 + 2 * 32.0

    def test_allreduce(self):
        world = SimWorld(4)
        total = world.allreduce([1.0, 2.0, 3.0, 4.0], op=lambda a, b: a + b)
        assert total == 10.0

    def test_run_executes_every_rank(self):
        world = SimWorld(5)
        ranks = world.run(lambda comm: comm.rank)
        assert ranks == [0, 1, 2, 3, 4]

    def test_wrong_chunk_count_rejected(self):
        with pytest.raises(ValueError, match="chunks"):
            SimWorld(2).scatter([np.ones(1)])

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            SimWorld(0)

    def test_matrix_payload_sized_by_storage(self, dd_batch):
        world = SimWorld(2)
        world.scatter([dd_batch.take_batch(slice(0, 4)), dd_batch.take_batch(slice(4, 8))])
        assert world.total_bytes == dd_batch.take_batch(slice(4, 8)).storage_bytes


class TestPartition:
    def test_balanced_partition(self):
        parts = partition_batch(10, 3)
        sizes = [sl.stop - sl.start for sl in parts]
        assert sizes == [4, 3, 3]
        assert parts[0].start == 0 and parts[-1].stop == 10

    def test_exact_division(self):
        parts = partition_batch(8, 4)
        assert all(sl.stop - sl.start == 2 for sl in parts)

    def test_more_ranks_than_items_rejected(self):
        with pytest.raises(ValueError, match="more ranks"):
            partition_batch(2, 4)

    @settings(max_examples=30, deadline=None)
    @given(nb=st.integers(1, 200), data=st.data())
    def test_partition_property(self, nb, data):
        ranks = data.draw(st.integers(1, nb))
        parts = partition_batch(nb, ranks)
        sizes = [sl.stop - sl.start for sl in parts]
        assert sum(sizes) == nb
        assert max(sizes) - min(sizes) <= 1
        # contiguous, ordered cover
        assert parts[0].start == 0
        for a, b in zip(parts, parts[1:]):
            assert a.stop == b.start


class TestDistributedSolve:
    @pytest.fixture
    def problem(self):
        matrix = random_diag_dominant_batch(12, 10, seed=4)
        b = np.random.default_rng(0).standard_normal((12, 10))
        factory = BatchSolverFactory(
            solver="bicgstab", preconditioner="jacobi", tolerance=1e-10
        )
        return matrix, b, factory

    def test_matches_single_rank_solution(self, problem):
        matrix, b, factory = problem
        single = factory.solve(matrix, b)
        world = SimWorld(3)
        dist = solve_distributed(world, factory, matrix, b)
        assert dist.all_converged
        assert np.allclose(dist.x, single.x, atol=1e-12)
        assert np.array_equal(dist.iterations, single.iterations)

    def test_matches_lapack(self, problem):
        matrix, b, factory = problem
        dist = solve_distributed(SimWorld(4), factory, matrix, b)
        assert np.allclose(dist.x, reference_solutions(matrix, b), atol=1e-7)

    def test_no_communication_during_solve(self, problem):
        # the paper's claim: only scatter + gather cross the wire
        matrix, b, factory = problem
        world = SimWorld(3)
        solve_distributed(world, factory, matrix, b)
        ops = [line.split()[0] for line in world.collective_log]
        assert set(ops) <= {"scatter", "gather", "p2p"}
        assert "scatter" in ops and "gather" in ops

    def test_initial_guess_distributed(self, problem):
        matrix, b, factory = problem
        single = factory.solve(matrix, b)
        dist = solve_distributed(
            SimWorld(2), factory, matrix, b, x0=single.x
        )
        assert dist.all_converged
        assert np.max(dist.iterations) == 0

    def test_shards_keep_shared_pattern(self, problem):
        matrix, _, _ = problem
        shard = matrix.take_batch(slice(3, 7))
        assert shard.num_batch == 4
        assert np.array_equal(shard.col_idxs, matrix.col_idxs)
        assert np.array_equal(shard.row_ptrs, matrix.row_ptrs)


class TestMultiGpuModel:
    @pytest.fixture(scope="class")
    def pele_setup(self):
        matrix = pele_batch("gri30")
        factory = BatchSolverFactory(
            solver="bicgstab", preconditioner="jacobi", tolerance=1e-9
        )
        result = factory.solve(matrix, pele_rhs(matrix))
        return matrix, factory, result

    def test_near_linear_scaling(self, pele_setup):
        matrix, factory, result = pele_setup
        spec = gpu("pvc2")
        timings = {
            ranks: estimate_multi_gpu(
                spec, factory, matrix, result, num_batch=2**17, num_ranks=ranks
            )
            for ranks in (1, 2, 4)
        }
        s2 = timings[2].speedup_over(timings[1])
        s4 = timings[4].speedup_over(timings[1])
        assert 1.5 < s2 <= 2.0
        assert 2.5 < s4 <= 4.0
        assert s4 > s2

    def test_transfer_term_behaviour(self, pele_setup):
        matrix, factory, result = pele_setup
        staged = estimate_multi_gpu(
            gpu("pvc2"), factory, matrix, result, num_batch=2**17, num_ranks=4
        )
        resident = estimate_multi_gpu(
            gpu("pvc2"),
            factory,
            matrix,
            result,
            num_batch=2**17,
            num_ranks=4,
            host_staging=False,
        )
        assert staged.transfer_seconds > 0
        assert resident.transfer_seconds == 0.0
        assert resident.total_seconds < staged.total_seconds
        # per-rank links: the transfer also shrinks with more ranks
        staged1 = estimate_multi_gpu(
            gpu("pvc2"), factory, matrix, result, num_batch=2**17, num_ranks=1
        )
        assert staged.transfer_seconds < staged1.transfer_seconds

    def test_invalid_bandwidth_rejected(self, pele_setup):
        matrix, factory, result = pele_setup
        with pytest.raises(ValueError):
            estimate_multi_gpu(
                gpu("pvc1"), factory, matrix, result, 2**14, 2, interconnect_gbps=0
            )
