"""Measured-vs-model drift detection and roofline placement."""

from __future__ import annotations

import pytest

from repro.hw.roofline import RooflinePoint
from repro.hw.specs import gpu
from repro.profile.roofline import (
    DEFAULT_TOLERANCE,
    DriftReport,
    LevelDrift,
    drift_report,
    measured_intensities,
    modeled_intensities,
    place_measured,
)
from repro.profile.runner import build_workload, run_profiled


@pytest.fixture(scope="module")
def cg_profile():
    matrix, b = build_workload("stencil:16", num_batch=4)
    prof = run_profiled(
        matrix, b, solver="cg", backend="sycl", tolerance=1e-8, max_iterations=40
    )
    return matrix, b, prof.profile_for("batch_cg_fused")


class TestDrift:
    def test_fused_cg_within_tolerance(self, cg_profile):
        matrix, b, profile = cg_profile
        spec = gpu("pvc1")
        modeled = modeled_intensities(
            spec, matrix, b, solver="cg", tolerance=1e-8, max_iterations=40
        )
        report = drift_report(profile, spec, modeled)
        assert isinstance(report, DriftReport)
        assert {lv.level for lv in report.levels} == {"slm", "global"}
        for lv in report.levels:
            assert lv.drift < DEFAULT_TOLERANCE, report.describe()
        assert report.ok
        assert "green" in report.describe()

    def test_tampered_counters_flagged(self, cg_profile):
        """Doubling measured FLOPs must push drift past tolerance."""
        matrix, b, profile = cg_profile
        spec = gpu("pvc1")
        modeled = modeled_intensities(
            spec, matrix, b, solver="cg", tolerance=1e-8, max_iterations=40
        )
        measured = measured_intensities(profile)
        report = drift_report(profile, spec, modeled)
        assert report.ok
        # simulate the rot the detector exists for: a kernel change that
        # doubles flops without the model being updated
        for phase in profile.phases.values():
            phase.flops *= 2
        try:
            bad = drift_report(profile, spec, modeled)
            assert not bad.ok
            assert "DRIFT" in bad.describe()
            assert any(lv.drift > DEFAULT_TOLERANCE for lv in bad.levels)
        finally:
            for phase in profile.phases.values():
                phase.flops //= 2
        assert measured_intensities(profile) == measured

    def test_empty_level_is_infinite_drift(self):
        spec = gpu("pvc1")
        from repro.profile.counters import KernelProfile

        profile = KernelProfile("ghost")
        profile.phase("spmv").flops = 100
        profile.phase("spmv").global_read_bytes = 100
        # no SLM traffic measured, but the model expects some
        report = drift_report(profile, spec, {"slm": 1.0, "global": 1.0})
        slm = next(lv for lv in report.levels if lv.level == "slm")
        assert slm.drift == float("inf")
        assert not report.ok

    def test_level_drift_ok_property(self):
        good = LevelDrift("slm", 1.0, 1.1, 0.1, 0.25)
        bad = LevelDrift("slm", 1.0, 2.0, 1.0, 0.25)
        assert good.ok and not bad.ok


class TestPlacement:
    def test_measured_point_on_roofline(self, cg_profile):
        _, _, profile = cg_profile
        spec = gpu("pvc1")
        point = place_measured(profile, spec, runtime_seconds=1e-3)
        assert isinstance(point, RooflinePoint)
        totals = profile.totals()
        # all measured global traffic rides the L2 lane by construction:
        # the L2 intensity is flops/global_bytes and HBM carries nothing
        assert point.intensity_by_level["l2"] == pytest.approx(
            totals.flops / totals.global_bytes
        )
        assert point.intensity_by_level["slm"] == pytest.approx(
            totals.flops / totals.slm_bytes
        )
        assert "hbm" not in point.intensity_by_level or point.intensity_by_level[
            "hbm"
        ] == float("inf")
        assert point.achieved_gflops == pytest.approx(
            totals.flops / 1e-3 / 1e9
        )
        assert point.binding_roof in ("l2", "slm", "hbm", "compute")
