"""Profiler machinery: opt-in contract, phases, divergence, merging."""

from __future__ import annotations

import pytest

from repro.kernels import run_batch_cg_on_device
from repro.profile import (
    PHASES,
    PhaseCounters,
    Profiler,
    current_profiler,
    kernel_phase,
    profiling,
    use_profiler,
)
from repro.profile.counters import phase_order
from repro.profile.runner import build_workload, run_profiled
from repro.sycl.device import pvc_stack_device


class TestOptInContract:
    def test_no_profiler_by_default(self):
        assert current_profiler() is None
        assert not profiling()
        # markers are inert without an installed profiler + active launch
        assert kernel_phase("spmv") is None

    def test_disabled_path_collects_nothing(self):
        """A solve with no profiler installed must leave no trace anywhere."""
        matrix, b = build_workload("stencil:8", num_batch=2)
        device = pvc_stack_device(1)
        x, iters, _ = run_batch_cg_on_device(
            device, matrix, b, tolerance=0.0, max_iterations=3
        )
        assert current_profiler() is None
        assert x.shape == (2, 8)

    def test_use_profiler_restores_previous(self):
        outer = Profiler()
        inner = Profiler()
        with use_profiler(outer):
            assert current_profiler() is outer
            with use_profiler(inner):
                assert current_profiler() is inner
            assert current_profiler() is outer
        assert current_profiler() is None

    def test_profiled_and_unprofiled_solves_agree(self):
        """Counting proxies must not perturb the numerics."""
        matrix, b = build_workload("stencil:8", num_batch=2)
        device = pvc_stack_device(1)
        x_plain, iters_plain, _ = run_batch_cg_on_device(
            device, matrix, b, tolerance=1e-10, max_iterations=50
        )
        with use_profiler(Profiler()):
            x_prof, iters_prof, _ = run_batch_cg_on_device(
                device, matrix, b, tolerance=1e-10, max_iterations=50
            )
        assert (x_plain == x_prof).all()
        assert (iters_plain == iters_prof).all()


class TestPhaseCounters:
    def test_phase_vocabulary(self):
        assert PHASES == ("spmv", "precond", "blas1", "reduction", "other")
        assert [phase_order(p) for p in PHASES] == sorted(
            phase_order(p) for p in PHASES
        )
        # unknown phases sort after the canonical ones
        assert phase_order("bespoke") > phase_order("other")

    def test_merge_adds_fields(self):
        a = PhaseCounters(flops=3, global_read_bytes=8, barriers=1)
        b = PhaseCounters(flops=4, slm_write_bytes=16, barriers=2)
        a.merge(b)
        assert a.flops == 7
        assert a.global_read_bytes == 8
        assert a.slm_write_bytes == 16
        assert a.barriers == 3

    def test_byte_rollups(self):
        c = PhaseCounters(
            global_read_bytes=8,
            global_write_bytes=4,
            slm_read_bytes=2,
            slm_write_bytes=1,
        )
        assert c.global_bytes == 12
        assert c.slm_bytes == 3
        assert c.total_bytes == 15


class TestDivergence:
    """Sub-group divergence events are deterministic counter facts.

    The sub-group spmv path diverges when the row count is not a
    multiple of the sub-group size: the tail sub-group's active and
    padded lanes take different branches. With a tolerance=0 fixed
    iteration count the event totals are exact.
    """

    def run(self, n: int, iters: int = 2, nb: int = 2) -> int:
        matrix, b = build_workload(f"stencil:{n}", num_batch=nb)
        prof = Profiler()
        device = pvc_stack_device(1)
        with use_profiler(prof):
            run_batch_cg_on_device(
                device,
                matrix,
                b,
                tolerance=0.0,
                max_iterations=iters,
                use_subgroup_spmv=True,
            )
        return prof.totals().divergence_events

    def test_uniform_flow_has_no_divergence(self):
        # n=16 fills the PVC sub-group exactly: every lane takes the
        # same branches, so zero events is a correctness statement
        assert self.run(16) == 0

    def test_tail_subgroup_divergence_counted(self):
        # n=40 -> 3 sub-groups of 16 with 8 tail rows: one diverging
        # sub-group per system per iteration
        assert self.run(40) == 4
        # n=50 -> 4 sub-groups, 2 tail rows: two diverging rounds
        assert self.run(50) == 8


class TestProfilerRollup:
    def test_merge_and_reset(self):
        matrix, b = build_workload("stencil:8", num_batch=2)
        a = run_profiled(
            matrix, b, solver="cg", backend="sycl", tolerance=0.0, max_iterations=2
        )
        other = run_profiled(
            matrix, b, solver="richardson", backend="sycl", max_iterations=5
        )
        a.merge(other)
        assert set(a.kernel_names()) == {
            "batch_cg_fused",
            "batch_richardson_fused",
        }
        a.reset()
        assert a.kernel_names() == []
        assert a.totals().as_dict() == PhaseCounters().as_dict()

    def test_profile_for_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            Profiler().profile_for("never_launched")

    def test_arithmetic_intensity_levels(self):
        matrix, b = build_workload("stencil:8", num_batch=2)
        prof = run_profiled(
            matrix, b, solver="cg", backend="sycl", tolerance=0.0, max_iterations=3
        )
        profile = prof.profile_for("batch_cg_fused")
        totals = profile.totals()
        assert profile.arithmetic_intensity("slm") == pytest.approx(
            totals.flops / totals.slm_bytes
        )
        assert profile.arithmetic_intensity("global") == pytest.approx(
            totals.flops / totals.global_bytes
        )
        assert profile.arithmetic_intensity("total") == pytest.approx(
            totals.flops / totals.total_bytes
        )
