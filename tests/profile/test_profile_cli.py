"""`repro profile` subcommands: report, roofline, export, and wrapping."""

from __future__ import annotations

import json

from repro.__main__ import main as repro_main

SMALL = ["--workload", "stencil:8", "--batch", "2", "--solvers", "cg",
         "--max-iters", "5"]


class TestReport:
    def test_report_prints_attribution_for_both_backends(self, capsys):
        code = repro_main(["profile", "report", *SMALL])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch_cg_fused" in out
        for phase in ("spmv", "precond", "blas1", "reduction", "total"):
            assert phase in out
        assert "sycl" in out and "cuda" in out

    def test_single_backend_selection(self, capsys):
        code = repro_main(
            ["profile", "report", *SMALL, "--backends", "sycl"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sycl" in out
        assert "cuda" not in out

    def test_unknown_workload_fails(self, capsys):
        code = repro_main(["profile", "report", "--workload", "nope"])
        assert code != 0


class TestRoofline:
    def test_green_drift_exits_zero(self, capsys):
        code = repro_main(
            [
                "profile",
                "roofline",
                "--workload",
                "stencil:16",
                "--batch",
                "4",
                "--solver",
                "cg",
                "--platform",
                "pvc1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "green" in out
        assert "binding roof" in out

    def test_impossible_tolerance_exits_nonzero(self, capsys):
        code = repro_main(
            [
                "profile",
                "roofline",
                "--workload",
                "stencil:16",
                "--batch",
                "4",
                "--solver",
                "cg",
                "--platform",
                "pvc1",
                "--drift-tolerance",
                "0.0",
            ]
        )
        assert code == 1
        assert "DRIFT" in capsys.readouterr().out


class TestExport:
    def test_folded_and_json_outputs(self, tmp_path, capsys):
        folded = tmp_path / "out.folded"
        as_json = tmp_path / "out.json"
        code = repro_main(
            [
                "profile",
                "export",
                *SMALL,
                "--backends",
                "sycl",
                "--out",
                str(folded),
                "--json-out",
                str(as_json),
            ]
        )
        assert code == 0
        lines = folded.read_text().splitlines()
        assert lines
        assert all(line.startswith("sycl;batch_cg_fused;") for line in lines)
        snapshot = json.loads(as_json.read_text())
        assert "sycl" in snapshot
        assert "batch_cg_fused" in snapshot["sycl"]


class TestWrapper:
    def test_wrapped_command_gets_profiled(self, capsys):
        """`profile <cmd>` runs the command under a live profiler and
        prints attribution for any instrumented launches it performed."""
        code = repro_main(
            ["profile", "sanitize", "diff", "--batch", "2", "--rows", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "batch_cg_fused" in out

    def test_wrapped_command_without_kernels_reports_nothing(self, capsys):
        # `tables` prints static tables without launching any kernels
        code = repro_main(["profile", "tables"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no instrumented kernel launches" in out
