"""Hand-counted counter correctness for the fused CG kernel.

Every expectation below is a closed-form function of (rows, nnz, batch,
iterations, work-group size) derived by reading ``batch_cg_kernel`` line
by line — not a golden value copied from a previous run. With
``tolerance=0`` the kernel runs exactly ``max_iterations`` iterations, so
the counts are fully determined:

* **spmv** — ``2*nnz`` flops per iteration per system; global reads are
  the CSR stream (8 B values + 4 B col index per nnz, two 4 B row-pointer
  touches per row), SLM reads the staged ``p`` vector, SLM writes the
  result vector.
* **precond** — the standalone Jacobi apply: 1 flop per row, one 8 B
  ``inv_diag`` read, one SLM read + write per row.
* **blas1** — init (1 flop/row) plus x/r update (4) and p update (2) per
  iteration; global traffic is the initial ``b``/``x`` read, the x
  copy-out and the per-system iteration-count write.
* **reduction** — 2 flops per element per dot product, ``2 + 3*iters``
  dots per system, one group collective per dot; the only global reads
  are the per-item ``thresholds[sysid]`` load — the one term that scales
  with the work-group size, which is why the expected counters are
  computed per backend from its own ``LaunchConfigurator`` plan (PVC
  picks W=16 where the A100 picks W=32).

The same formulas must hold bitwise on both simulated backends because
they share the executor; the W term is the only architectural difference.
"""

from __future__ import annotations

import pytest

from repro.core.launch import LaunchConfigurator
from repro.cudasim.device import a100_device
from repro.profile import Profiler
from repro.profile.runner import build_workload, run_profiled
from repro.sycl.device import pvc_stack_device

BACKEND_DEVICES = {"sycl": pvc_stack_device, "cuda": a100_device}


def expected_cg_counters(n: int, nnz: int, nb: int, iters: int, wg: int) -> dict:
    """Per-phase counter dict for a tolerance=0 fused-CG solve."""
    dots = 2 + 3 * iters
    return {
        "spmv": {
            "flops": 2 * nnz * iters * nb,
            "global_read_bytes": (12 * nnz + 8 * n) * iters * nb,
            "global_write_bytes": 0,
            "slm_read_bytes": 8 * nnz * iters * nb,
            "slm_write_bytes": 8 * n * iters * nb,
            "barriers": nb * iters,
            "group_collectives": 0,
            "sub_group_collectives": 0,
            "divergence_events": 0,
        },
        "precond": {
            "flops": n * iters * nb,
            "global_read_bytes": 8 * n * iters * nb,
            "global_write_bytes": 0,
            "slm_read_bytes": 8 * n * iters * nb,
            "slm_write_bytes": 8 * n * iters * nb,
            "barriers": nb * iters,
            "group_collectives": 0,
            "sub_group_collectives": 0,
            "divergence_events": 0,
        },
        "blas1": {
            "flops": n * nb * (1 + 6 * iters),
            "global_read_bytes": 16 * n * nb,
            "global_write_bytes": 8 * nb * (n + 1),
            "slm_read_bytes": 8 * n * nb * (6 * iters + 1),
            "slm_write_bytes": 8 * n * nb * (3 * iters + 4),
            "barriers": nb * (2 * iters + 1),
            "group_collectives": 0,
            "sub_group_collectives": 0,
            "divergence_events": 0,
        },
        "reduction": {
            "flops": 2 * n * nb * dots,
            "global_read_bytes": 8 * wg * nb,
            "global_write_bytes": 0,
            "slm_read_bytes": 16 * n * nb * dots,
            "slm_write_bytes": 0,
            "barriers": 0,
            "group_collectives": nb * dots,
            "sub_group_collectives": 0,
            "divergence_events": 0,
        },
    }


@pytest.mark.parametrize("backend", ["sycl", "cuda"])
@pytest.mark.parametrize("n,nb,iters", [(8, 2, 3), (12, 2, 2), (8, 3, 2)])
def test_fused_cg_counters_match_hand_count(backend, n, nb, iters):
    matrix, b = build_workload(f"stencil:{n}", num_batch=nb)
    nnz = int(matrix.row_ptrs[-1])
    device = BACKEND_DEVICES[backend](1) if backend == "sycl" else a100_device()
    wg = LaunchConfigurator(device).configure(n, nb).work_group_size

    prof = run_profiled(
        matrix, b, solver="cg", backend=backend, tolerance=0.0, max_iterations=iters
    )
    profile = prof.profile_for("batch_cg_fused")
    expected = expected_cg_counters(n, nnz, nb, iters, wg)

    assert set(profile.phases) == set(expected)
    for phase, want in expected.items():
        got = profile.phase(phase).as_dict()
        assert got == want, f"{backend}/{phase}: {got} != {want}"


@pytest.mark.parametrize("backend", ["sycl", "cuda"])
def test_counters_bitwise_stable_across_runs(backend):
    matrix, b = build_workload("stencil:8", num_batch=2)
    snapshots = []
    for _ in range(2):
        prof = run_profiled(
            matrix, b, solver="cg", backend=backend, tolerance=0.0, max_iterations=3
        )
        snapshots.append(prof.snapshot())
    assert snapshots[0] == snapshots[1]


def test_sycl_and_cuda_differ_only_in_work_group_term():
    """The cross-backend delta is exactly the thresholds-read W term."""
    matrix, b = build_workload("stencil:8", num_batch=2)
    profs = {
        backend: run_profiled(
            matrix, b, solver="cg", backend=backend, tolerance=0.0, max_iterations=3
        ).profile_for("batch_cg_fused")
        for backend in ("sycl", "cuda")
    }
    for phase in ("spmv", "precond", "blas1"):
        assert (
            profs["sycl"].phase(phase).as_dict()
            == profs["cuda"].phase(phase).as_dict()
        )
    sycl_red = profs["sycl"].phase("reduction").as_dict()
    cuda_red = profs["cuda"].phase("reduction").as_dict()
    # PVC W=16 vs A100 W=32: 8 B * delta-W * nb more threshold reads
    assert cuda_red["global_read_bytes"] - sycl_red["global_read_bytes"] == 8 * 16 * 2
    for key in sycl_red:
        if key != "global_read_bytes":
            assert sycl_red[key] == cuda_red[key]


def test_merged_profiler_totals_add_up():
    matrix, b = build_workload("stencil:8", num_batch=2)
    prof = Profiler()
    run_profiled(
        matrix,
        b,
        solver="cg",
        backend="sycl",
        tolerance=0.0,
        max_iterations=3,
        profiler=prof,
    )
    single = prof.profile_for("batch_cg_fused").totals().as_dict()
    run_profiled(
        matrix,
        b,
        solver="cg",
        backend="sycl",
        tolerance=0.0,
        max_iterations=3,
        profiler=prof,
    )
    double = prof.profile_for("batch_cg_fused").totals().as_dict()
    assert double == {k: 2 * v for k, v in single.items()}
    assert prof.profile_for("batch_cg_fused").launches == 2
