"""Attribution report rows and flamegraph (folded-stack) exports."""

from __future__ import annotations

import re

from repro.kernels import run_batch_cg_on_device
from repro.observability import Tracer, use_tracer
from repro.profile import Profiler, use_profiler
from repro.profile.folded import folded_from_trace, folded_lines, write_folded
from repro.profile.report import attribution_rows, format_report
from repro.profile.runner import build_workload, run_profiled
from repro.sycl.device import pvc_stack_device


def cg_profiler() -> Profiler:
    matrix, b = build_workload("stencil:8", num_batch=2)
    return run_profiled(
        matrix, b, solver="cg", backend="sycl", tolerance=0.0, max_iterations=3
    )


class TestAttributionRows:
    def test_rows_cover_phases_and_total(self):
        rows = attribution_rows(cg_profiler())
        phases = [r["phase"] for r in rows if r["kernel"] == "batch_cg_fused"]
        assert phases == ["spmv", "precond", "blas1", "reduction", "total"]

    def test_total_row_carries_intensities_and_sums(self):
        rows = attribution_rows(cg_profiler())
        total = next(r for r in rows if r["phase"] == "total")
        phase_rows = [r for r in rows if r["phase"] != "total"]
        assert total["flops"] == sum(r["flops"] for r in phase_rows)
        assert total["global_B"] == sum(r["global_B"] for r in phase_rows)
        assert total["AI_slm"] > 0
        assert total["AI_global"] > 0
        # flop% sums to 100 over the phases
        assert abs(sum(r["flop%"] for r in phase_rows) - 100.0) < 1e-9

    def test_rows_share_keys(self):
        rows = attribution_rows(cg_profiler(), backend="sycl")
        keys = {tuple(sorted(r)) for r in rows}
        assert len(keys) == 1
        assert rows[0]["backend"] == "sycl"

    def test_format_report_renders_backends(self):
        prof = cg_profiler()
        text = format_report({"sycl": prof, "cuda": prof}, title="t")
        assert "sycl" in text and "cuda" in text
        assert "batch_cg_fused" in text
        assert "spmv" in text


class TestFoldedExport:
    def test_lines_format_and_weights(self):
        prof = cg_profiler()
        lines = folded_lines(prof, weight="flops")
        assert lines
        pattern = re.compile(r"^batch_cg_fused;[a-z0-9_]+ \d+$")
        assert all(pattern.match(line) for line in lines)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == prof.totals().flops

    def test_alternate_weight_field(self):
        prof = cg_profiler()
        lines = folded_lines(prof, weight="barriers")
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == prof.totals().barriers
        # reduction has no barriers in the fused CG kernel: dropped
        assert not any(";reduction " in line for line in lines)

    def test_write_folded_round_trip(self, tmp_path):
        prof = cg_profiler()
        lines = folded_lines(prof)
        path = write_folded(lines, str(tmp_path / "out.folded"))
        assert (tmp_path / "out.folded").read_text().splitlines() == lines
        assert path == str(tmp_path / "out.folded")


class TestFoldedFromTrace:
    def test_kernel_spans_split_by_phase_share(self):
        matrix, b = build_workload("stencil:8", num_batch=2)
        tracer = Tracer()
        profiler = Profiler()
        device = pvc_stack_device(1)
        with use_tracer(tracer), use_profiler(profiler):
            run_batch_cg_on_device(
                device, matrix, b, tolerance=0.0, max_iterations=3
            )
        kernel_spans = [s for s in tracer.spans if s.category == "kernel"]
        assert kernel_spans, "queue must emit kernel spans under a tracer"
        lines = folded_from_trace(tracer, profiler)
        assert lines
        # every line ends with a positive integer weight and leaf frames
        # include the profiled phases
        leaves = {line.rsplit(" ", 1)[0].rsplit(";", 1)[-1] for line in lines}
        assert {"spmv", "blas1", "reduction"} <= leaves
        # the per-span shares (plus remainder lines) conserve wall time
        total_ns = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        span_ns = sum(
            max(0, s.end_ns - s.start_ns)
            for s in kernel_spans
        )
        assert total_ns == span_ns
