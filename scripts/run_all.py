#!/usr/bin/env python
"""Reproducibility driver: regenerate every artifact into ``results/``.

The paper's appendix ships ``run-test-dpcpp.sh`` / ``run-test-cuda.sh``
driving its benchmarks; this is the equivalent for the reproduction.
Writes one text file per table/figure plus the ablation outputs.

Usage: python scripts/run_all.py [--out results] [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps (for smoke runs)"
    )
    args = parser.parse_args(argv)

    from repro.bench import figures, tables
    from repro.bench.report import format_table

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sizes = (16, 32, 64) if args.quick else (16, 32, 64, 128, 256, 512)
    batches = (2**13, 2**15, 2**17) if args.quick else figures.BATCH_SWEEP

    jobs = [
        ("table1_terminology.txt", lambda: format_table(tables.table1_terminology())),
        ("table2_execution_model.txt", lambda: format_table(tables.table2_execution_model())),
        ("table3_features.txt", lambda: format_table(tables.table3_features())),
        ("table4_datasets.txt", lambda: format_table(tables.table4_datasets())),
        ("table5_gpu_specs.txt", lambda: format_table(tables.table5_gpu_specs())),
        (
            "fig4a_matrix_scaling.txt",
            lambda: format_table(figures.fig4a_matrix_scaling(sizes=sizes, nb_solve=8)),
        ),
        (
            "fig4b_batch_scaling.txt",
            lambda: format_table(figures.fig4b_batch_scaling(batches=batches, nb_solve=8)),
        ),
        (
            "fig5_implicit_scaling.txt",
            lambda: format_table(figures.fig5_implicit_scaling(sizes=sizes, nb_solve=8)),
        ),
        (
            "fig6_pele_runtimes.txt",
            lambda: format_table(figures.fig6_pele_runtimes(batches=batches)),
        ),
        (
            "fig7_speedup_summary.txt",
            lambda: format_table(figures.fig7_speedup_summary()),
        ),
        (
            "fig8_roofline.txt",
            lambda: "\n".join(figures.fig8_roofline().lines()),
        ),
    ]

    for filename, job in jobs:
        start = time.perf_counter()
        text = job()
        path = out / filename
        path.write_text(text + "\n")
        print(f"wrote {path} ({time.perf_counter() - start:.1f} s)")

    # tracing smoke: emit + validate a Chrome trace next to the artifacts
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import smoke_trace

    start = time.perf_counter()
    code = smoke_trace.main(["--out", str(out / "trace_smoke.json")])
    if code != 0:
        return code
    print(f"wrote {out / 'trace_smoke.json'} ({time.perf_counter() - start:.1f} s)")

    # serving smoke + benchmark: contracts, then the throughput artifact
    import bench_serve
    import smoke_serve

    start = time.perf_counter()
    code = smoke_serve.main([])
    if code != 0:
        return code
    print(f"serve smoke OK ({time.perf_counter() - start:.1f} s)")

    start = time.perf_counter()
    bench_args = ["--out", str(out / "BENCH_serve_throughput.json")]
    if args.quick:
        bench_args.append("--quick")
    code = bench_serve.main(bench_args)
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_serve_throughput.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # fleet smoke + scaling benchmark: routing/drain/admission contracts,
    # then the shard scale-out artifact
    import bench_fleet_scaling
    import smoke_fleet

    start = time.perf_counter()
    code = smoke_fleet.main([])
    if code != 0:
        return code
    print(f"fleet smoke OK ({time.perf_counter() - start:.1f} s)")

    start = time.perf_counter()
    fleet_args = ["--out", str(out / "BENCH_fleet_scaling.json")]
    if args.quick:
        fleet_args.append("--quick")
    code = bench_fleet_scaling.main(fleet_args)
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_fleet_scaling.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # autotuning smoke + benchmark: contracts, then tuned-vs-default artifact
    import bench_autotune
    import smoke_tune

    start = time.perf_counter()
    code = smoke_tune.main([])
    if code != 0:
        return code
    print(f"tune smoke OK ({time.perf_counter() - start:.1f} s)")

    start = time.perf_counter()
    tune_args = ["--out", str(out / "BENCH_autotune.json")]
    if args.quick:
        tune_args.append("--quick")
    code = bench_autotune.main(tune_args)
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_autotune.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # profiling smoke + overhead benchmark: measured-counter attribution,
    # model drift, and the disabled-path cost bound
    import bench_profile_overhead
    import bench_sanitize_overhead
    import smoke_profile

    start = time.perf_counter()
    code = smoke_profile.main(["--out", str(out / "profile_smoke.folded")])
    if code != 0:
        return code
    print(f"profile smoke OK ({time.perf_counter() - start:.1f} s)")

    start = time.perf_counter()
    code = bench_sanitize_overhead.main(
        ["--out", str(out / "BENCH_sanitize_overhead.json")]
    )
    if code != 0:
        return code
    code = bench_profile_overhead.main(
        [
            "--out",
            str(out / "BENCH_profile_overhead.json"),
            "--baseline",
            str(out / "BENCH_sanitize_overhead.json"),
        ]
    )
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_profile_overhead.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # tracer overhead artifact (the regression gate checks every manifest
    # entry, so the full artifact set must exist under --out)
    import bench_trace_overhead

    start = time.perf_counter()
    code = bench_trace_overhead.main(
        ["--out", str(out / "BENCH_trace_overhead.json")]
    )
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_trace_overhead.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # telemetry: SLO monitor self-checks (clean run healthy, seeded
    # regression pages) and the disabled-path overhead artifact
    from repro.__main__ import main as repro_main

    start = time.perf_counter()
    slo_args = ["slo", "check", "--requests", "16", "--epochs", "3", "--size", "8"]
    code = repro_main(slo_args)
    if code != 0:
        return code
    seeded = repro_main(
        slo_args + ["--inject-latency-ms", "5000", "--inject-fraction", "0.4"]
    )
    if seeded == 0:
        print("slo check: seeded latency regression was NOT detected", file=sys.stderr)
        return 1
    print(f"slo check OK (clean healthy, seeded regression pages) "
          f"({time.perf_counter() - start:.1f} s)")

    import bench_telemetry_overhead

    start = time.perf_counter()
    telemetry_args = ["--out", str(out / "BENCH_telemetry_overhead.json")]
    if args.quick:
        telemetry_args.append("--quick")
    code = bench_telemetry_overhead.main(telemetry_args)
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_telemetry_overhead.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # wide backend: lockstep-vs-faithful differential grid, then the
    # hot-path speedup artifact (hard >= 20x gate inside the bench)
    import bench_wide_speedup

    start = time.perf_counter()
    code = repro_main(["sanitize", "diff", "--backends", "sycl,wide"])
    if code != 0:
        return code
    print(f"wide diff OK ({time.perf_counter() - start:.1f} s)")

    start = time.perf_counter()
    wide_args = ["--out", str(out / "BENCH_wide_speedup.json")]
    if args.quick:
        wide_args.append("--quick")
    code = bench_wide_speedup.main(wide_args)
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_wide_speedup.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # chaos harness: the seeded fault battery must lose nothing, then the
    # trace-replay SLO artifact (clean compliance + battery + breaker arc)
    import bench_chaos_slo

    start = time.perf_counter()
    code = repro_main(
        ["chaos", "battery", "--requests", "40", "--batch-size", "4", "--size", "12"]
    )
    if code != 0:
        return code
    print(f"chaos battery OK ({time.perf_counter() - start:.1f} s)")

    start = time.perf_counter()
    chaos_args = ["--out", str(out / "BENCH_chaos_slo.json")]
    if args.quick:
        chaos_args.append("--quick")
    code = bench_chaos_slo.main(chaos_args)
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_chaos_slo.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # flight recorder: the always-on recording bill and the chaos-bundle
    # postmortem attribution gate
    import bench_recorder_overhead

    start = time.perf_counter()
    recorder_args = ["--out", str(out / "BENCH_recorder_overhead.json")]
    if args.quick:
        recorder_args.append("--quick")
    code = bench_recorder_overhead.main(recorder_args)
    if code != 0:
        return code
    print(
        f"wrote {out / 'BENCH_recorder_overhead.json'} "
        f"({time.perf_counter() - start:.1f} s)"
    )

    # regression gate over the freshly regenerated artifacts
    import check_regression

    code = check_regression.main(["--root", str(out)])
    if code != 0:
        return code

    print(f"\nall artifacts in {out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
