#!/usr/bin/env python
"""Measure the telemetry layer's cost on the production solve path.

The request-scoped telemetry added to the serving layer (trace contexts,
structured events, SLO counts) must be near-free when sampling is off —
that disabled path is what every production solve pays. This benchmark
times three configurations of the same solve loop:

* **baseline** — no telemetry constructs at all: no ambient trace
  context, no event log, no tracer (the pre-telemetry hot path);
* **disabled** — the full disabled-path plumbing a served request
  carries: a freshly minted (unsampled) ``TraceContext`` set ambient, an
  installed ``EventLog``, and the serving layer's per-request event call
  sites (admitted / flushed / solved) which head-sampling drops on
  entry;
* **enabled** — everything on: sampled context, retained events and a
  live ``Tracer`` with a span around every solve.

Each configuration runs ``--rounds`` interleaved rounds of ``--repeats``
solves and keeps its fastest round, so scheduler noise does not
masquerade as overhead. The headline metric
``disabled_vs_baseline_pct`` — gated at <= 2 % by
``benchmarks/baseline_manifest.json`` — is the disabled-path plumbing
timed *alone* (solve-free, tens of thousands of iterations) divided by
the baseline per-solve time: a full-loop A/B cannot resolve a
microsecond cost under millisecond-scale solve jitter, so the measured
A/B deltas are recorded as informational metrics only, alongside an
end-to-end serve comparison (sampling off vs fully on).

Writes ``BENCH_telemetry_overhead.json`` at the repo root by default.

Usage: python scripts/bench_telemetry_overhead.py
       [--out BENCH_telemetry_overhead.json] [--quick]
       [--max-disabled-overhead-pct PCT]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _solve_loop(repeats: int, factory, matrix, rhs, per_solve=None) -> float:
    """Seconds for ``repeats`` solves, calling ``per_solve`` around each."""
    start = time.perf_counter()
    for _ in range(repeats):
        if per_solve is None:
            factory.solve(matrix, rhs)
        else:
            per_solve(factory, matrix, rhs)
    return time.perf_counter() - start


def _best_of_interleaved(rounds: int, fns: list) -> list[float]:
    """Fastest round per configuration, rounds interleaved.

    Running configuration A's rounds back-to-back and then B's lets CPU
    frequency / allocator drift between the blocks masquerade as A-vs-B
    overhead; interleaving (A B C, A B C, ...) exposes every
    configuration to the same machine state, so the per-config minima are
    comparable at the sub-percent level the 2% gate needs.
    """
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            best[i] = min(best[i], fn())
    return best


def _make_workload(num_rows: int, nb: int):
    from repro.core.dispatch import BatchSolverFactory
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    matrix = three_point_stencil(num_rows, nb)
    rhs = stencil_rhs(num_rows, nb)

    def factory(tracer=None):
        return BatchSolverFactory(
            solver="cg",
            preconditioner="identity",
            criterion="relative",
            tolerance=1e-9,
            max_iterations=4000,
            tracer=tracer,
        )

    return factory, matrix, rhs


def _emit_request_lifecycle(events, ctx) -> None:
    """The serving layer's per-request emit sites, with realistic fields."""
    from repro.telemetry import REQUEST_ADMITTED, REQUEST_FLUSHED, REQUEST_SOLVED

    events.emit(
        REQUEST_ADMITTED, ctx=ctx, solver="cg", num_rows=32, matrix_format="csr"
    )
    events.emit(
        REQUEST_FLUSHED,
        ctx=ctx,
        flush_id="flush-bench",
        reason="size",
        batch_size=16,
        queue_wait_ms=0.5,
    )
    events.emit(
        REQUEST_SOLVED,
        ctx=ctx,
        latency_ms=2.5,
        iterations=40,
        converged=True,
        fallback=False,
        batch_size=16,
        tail=False,
    )


def bench_micro(repeats: int, rounds: int, num_rows: int, nb: int) -> dict:
    """The gated A/B/C: baseline vs disabled plumbing vs fully enabled."""
    from repro.observability import Tracer, use_tracer
    from repro.telemetry import EventLog, mint_context, use_event_log, use_trace_context

    make_factory, matrix, rhs = _make_workload(num_rows, nb)

    plain = make_factory()
    tracer = Tracer()
    traced = make_factory(tracer=tracer)
    events_off = EventLog(capacity=2048)
    events_on = EventLog(capacity=2048)

    def baseline_round() -> float:
        # no telemetry constructs at all: the pre-telemetry hot path
        return _solve_loop(repeats, plain, matrix, rhs)

    # disabled path: ambient unsampled context + installed log + the
    # serve-layer emit sites, which head-sampling rejects on entry
    def disabled_solve(factory, matrix_, rhs_):
        ctx = mint_context(sampled=False)
        with use_trace_context(ctx):
            factory.solve(matrix_, rhs_)
            _emit_request_lifecycle(events_off, ctx)

    def disabled_round() -> float:
        with use_event_log(events_off):
            return _solve_loop(repeats, plain, matrix, rhs, per_solve=disabled_solve)

    # enabled path: sampled context, retained events, a live tracer span
    def enabled_solve(factory, matrix_, rhs_):
        ctx = mint_context(sampled=True)
        with use_trace_context(ctx):
            with tracer.span("bench.request", category="serve", context=ctx):
                factory.solve(matrix_, rhs_)
            _emit_request_lifecycle(events_on, ctx)

    def enabled_round() -> float:
        tracer.reset()
        with use_event_log(events_on), use_tracer(tracer):
            return _solve_loop(repeats, traced, matrix, rhs, per_solve=enabled_solve)

    # warmups (imports, caches) before any timing
    baseline_round()
    disabled_round()
    enabled_round()
    baseline_s, disabled_s, enabled_s = _best_of_interleaved(
        rounds, [baseline_round, disabled_round, enabled_round]
    )

    # The gated number. A full-loop A/B cannot resolve the disabled path:
    # its true cost is microseconds against a millisecond solve, far
    # below the run-to-run jitter of the solve itself. So the plumbing is
    # timed alone (solve-free, tens of thousands of iterations — a tight,
    # reproducible measurement of exactly the work the disabled path
    # adds) and expressed as a fraction of the baseline solve.
    plumb_iters = 20000
    ctx_warm = mint_context(sampled=False)
    with use_event_log(events_off), use_trace_context(ctx_warm):
        _emit_request_lifecycle(events_off, ctx_warm)  # warmup
        start = time.perf_counter()
        for _ in range(plumb_iters):
            ctx = mint_context(sampled=False)
            with use_trace_context(ctx):
                _emit_request_lifecycle(events_off, ctx)
        plumb_s = (time.perf_counter() - start) / plumb_iters
    baseline_per_solve_s = baseline_s / repeats

    assert len(events_off) == 0, "unsampled events must be head-dropped"
    assert len(events_on) > 0, "sampled events must be retained"

    return {
        "baseline_per_solve_ms": baseline_per_solve_s * 1e3,
        "disabled_per_solve_ms": disabled_s / repeats * 1e3,
        "enabled_per_solve_ms": enabled_s / repeats * 1e3,
        "disabled_plumbing_us": plumb_s * 1e6,
        "disabled_vs_baseline_pct": 100.0 * plumb_s / baseline_per_solve_s,
        "disabled_vs_baseline_measured_pct": 100.0
        * (disabled_s - baseline_s)
        / baseline_s,
        "enabled_vs_baseline_pct": 100.0 * (enabled_s - baseline_s) / baseline_s,
        "events_dropped_disabled": events_off.summary()["dropped_head"],
        "events_retained_enabled": len(events_on),
    }


def bench_serve(num_requests: int, size: int) -> dict:
    """End-to-end serve comparison: sampling off vs everything on."""
    import numpy as np

    from repro.observability import Tracer, use_tracer
    from repro.serve import ServeConfig, SolveRequest, SolverService
    from repro.workloads.stencil import three_point_stencil

    pattern = three_point_stencil(size, 1).item_scipy(0)

    def run(sample_rate: float, tracer) -> float:
        config = ServeConfig(
            max_batch_size=16,
            max_wait_ms=1.0,
            num_workers=2,
            telemetry_sample_rate=sample_rate,
        )
        rng = np.random.default_rng(11)
        with use_tracer(tracer) if tracer is not None else _null_cm():
            with SolverService(config) as service:
                start = time.perf_counter()
                tickets = []
                for _ in range(num_requests):
                    values = pattern.copy()
                    values.data = values.data * rng.uniform(0.9, 1.1, size=values.nnz)
                    tickets.append(
                        service.submit(
                            SolveRequest(
                                values,
                                rng.standard_normal(size),
                                solver="bicgstab",
                                preconditioner="jacobi",
                                tolerance=1e-8,
                            )
                        )
                    )
                for ticket in tickets:
                    ticket.result(timeout=60.0)
                elapsed = time.perf_counter() - start
        return elapsed

    off_s = run(0.0, None)
    on_s = run(1.0, Tracer())
    return {
        "requests": num_requests,
        "off_per_request_ms": off_s / num_requests * 1e3,
        "on_per_request_ms": on_s / num_requests * 1e3,
        "enabled_overhead_pct": 100.0 * (on_s - off_s) / off_s,
    }


class _null_cm:
    """``with`` no-op for the tracer-less serve run."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_telemetry_overhead.json")
    parser.add_argument("--repeats", type=int, default=40)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--num-rows", type=int, default=32)
    parser.add_argument("--nb-solve", type=int, default=16)
    parser.add_argument("--serve-requests", type=int, default=96)
    parser.add_argument(
        "--max-disabled-overhead-pct",
        type=float,
        default=2.0,
        help="fail (exit 1) when the disabled path costs more than this",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller loops and a relaxed bound for CI smoke runs",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repeats = 12
        args.rounds = 3
        args.serve_requests = 32
        args.max_disabled_overhead_pct = max(args.max_disabled_overhead_pct, 15.0)

    from repro.bench.schema import bench_payload, write_bench

    micro = bench_micro(args.repeats, args.rounds, args.num_rows, args.nb_solve)
    serve = bench_serve(args.serve_requests, size=16)

    payload = bench_payload(
        "telemetry_overhead",
        workload={
            "solver": "cg",
            "matrix": f"3pt-stencil n={args.num_rows}",
            "num_batch": args.nb_solve,
            "tolerance": 1e-9,
            "repeats": args.repeats,
            "rounds": args.rounds,
        },
        metrics={**micro, "serve": serve},
        notes=(
            "disabled_vs_baseline_pct is the production bill for shipping "
            "the telemetry layer with sampling off: the plumbing a request "
            "adds (context mint + ambient install + head-dropped event "
            "sites) timed alone and divided by the baseline solve; the "
            "manifest gates it at <= 2%. The *_measured_pct and serve "
            "numbers are informational full-loop A/Bs, whose jitter far "
            "exceeds the disabled path's true microsecond cost."
        ),
    )
    out = write_bench(args.out, payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")

    if micro["disabled_vs_baseline_pct"] > args.max_disabled_overhead_pct:
        print(
            f"FAIL: disabled-path overhead "
            f"{micro['disabled_vs_baseline_pct']:.2f}% exceeds "
            f"{args.max_disabled_overhead_pct:.2f}%",
            file=sys.stderr,
        )
        return 1
    print(
        f"disabled-path overhead {micro['disabled_vs_baseline_pct']:.2f}% "
        f"<= {args.max_disabled_overhead_pct:.2f}% bound"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
