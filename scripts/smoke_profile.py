#!/usr/bin/env python
"""Smoke test for the measured-counter profiler (repro.profile).

Four fast end-to-end checks on the real kernel/simulator stack:

1. **Attribution** — a profiled drm19 (PeleLM) CG+BiCGSTAB run on both
   simulated backends produces per-phase rows for every solver phase the
   paper names (spmv / precond / blas1 / reduction), and the rendered
   report mentions both backends.
2. **Drift** — measured arithmetic intensity of the fused CG kernel
   agrees with the analytic model (TrafficLedger, kernel-faithful
   binning) within the default tolerance on both comparison levels.
3. **Flamegraph export** — the folded-stack export is non-empty and
   every line is ``stack;frames weight``.
4. **Determinism** — two identical profiled runs produce bitwise-equal
   counter snapshots.

Exit 0 on success; non-zero with a message on the first violation.

Usage: python scripts/smoke_profile.py [--out profile_smoke.folded]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

FOLDED_LINE = re.compile(r"^\S.*;[a-z0-9_]+ \d+$")


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"smoke_profile: FAIL — {message}", file=sys.stderr)
        raise SystemExit(1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=None, help="also write the folded export here"
    )
    args = parser.parse_args(argv)

    from repro.profile import PHASES
    from repro.profile.folded import folded_lines, write_folded
    from repro.profile.report import attribution_rows, format_report
    from repro.profile.roofline import drift_report, modeled_intensities
    from repro.profile.runner import build_workload, profile_workload
    from repro.hw.specs import gpu

    # -- 1. attribution on the paper's smallest PeleLM mechanism --------------
    workload = "drm19"
    num_batch = 4
    max_iterations = 20
    profilers = profile_workload(
        workload,
        solvers=("cg", "bicgstab"),
        backends=("sycl", "cuda"),
        num_batch=num_batch,
        max_iterations=max_iterations,
    )
    check(set(profilers) == {"sycl", "cuda"}, "expected both backends profiled")
    for backend, profiler in profilers.items():
        rows = attribution_rows(profiler, backend=backend)
        check(bool(rows), f"{backend}: no attribution rows collected")
        phases_seen = {row["phase"] for row in rows}
        for phase in ("spmv", "precond", "blas1", "reduction"):
            check(
                phase in phases_seen,
                f"{backend}: phase {phase!r} missing from attribution "
                f"(saw {sorted(phases_seen)})",
            )
        spmv_flops = sum(
            row["flops"] for row in rows if row["phase"] == "spmv"
        )
        check(spmv_flops > 0, f"{backend}: zero measured spmv flops")
    report_text = format_report(profilers, title=f"profile smoke ({workload})")
    check("sycl" in report_text and "cuda" in report_text,
          "report must mention both backends")
    print(report_text)

    # -- 2. measured-vs-model drift on the fused CG kernel --------------------
    spec = gpu("pvc1")
    matrix, b = build_workload(workload, num_batch=num_batch)
    modeled = modeled_intensities(
        spec, matrix, b, solver="cg", max_iterations=max_iterations
    )
    profile = profilers["sycl"].profile_for("batch_cg_fused")
    drift = drift_report(profile, spec, modeled)
    print()
    print(drift.describe())
    check(drift.ok, "measured AI drifted from the analytic model")

    # -- 3. folded-stack flamegraph export ------------------------------------
    lines = folded_lines(profilers["sycl"], weight="flops")
    check(bool(lines), "folded export is empty")
    for line in lines:
        check(
            FOLDED_LINE.match(line) is not None,
            f"malformed folded line: {line!r}",
        )
    if args.out:
        out = write_folded(lines, args.out)
        print(f"\nwrote {out} ({len(lines)} folded stacks)")

    # -- 4. bitwise determinism -----------------------------------------------
    rerun = profile_workload(
        workload,
        solvers=("cg", "bicgstab"),
        backends=("sycl", "cuda"),
        num_batch=num_batch,
        max_iterations=max_iterations,
    )
    for backend in ("sycl", "cuda"):
        check(
            profilers[backend].snapshot() == rerun[backend].snapshot(),
            f"{backend}: counters not bitwise-stable across identical runs",
        )

    print("\nsmoke_profile: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
