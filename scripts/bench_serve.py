#!/usr/bin/env python
"""Benchmark the serving layer: micro-batching win, plan cache, fallback.

Drives ``repro.serve.SolverService`` with a paced synthetic workload (same
3-point-stencil pattern per request, perturbed values) and records:

* a sweep over ``max_batch_size`` at a fixed arrival rate — throughput and
  p50/p99 latency with batching off (``max_batch_size=1``) vs on (>= 64),
  the acceptance measurement for the micro-batcher;
* plan-cache hit rate on a repeated-configuration workload;
* the degradation path: one forced non-convergent system co-batched with
  healthy ones must finish via the direct-LU fallback without failing its
  batch mates.

Writes ``BENCH_serve_throughput.json`` (see ``--out``).

Usage: python scripts/bench_serve.py [--out BENCH_serve_throughput.json]
       [--quick] [--rate 1500] [--requests 192]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.workloads.arrivals import (
    make_request as _make_request,
    pace,
    poisson_offsets,
    stencil_pattern as _stencil_pattern,
    uniform_offsets,
)


def run_sweep_point(
    *,
    max_batch_size: int,
    arrival_rate: float,
    num_requests: int,
    size: int,
    num_workers: int,
    max_wait_ms: float,
    seed: int = 7,
    backend: str = "sycl",
    execution: str = "vectorized",
    arrival: str = "uniform",
) -> dict:
    """One service lifecycle: paced submission, full drain, measurements."""
    from repro.serve import ServeConfig, SolverService

    config = ServeConfig(
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        max_pending=max(4 * num_requests, 64),
        num_workers=num_workers,
        backend=backend,
        execution=execution,
    )
    pattern = _stencil_pattern(size)
    rng = np.random.default_rng(seed)
    requests = [_make_request(pattern, rng, size) for _ in range(num_requests)]

    if arrival == "poisson":
        offsets = poisson_offsets(arrival_rate, num_requests, rng)
    else:
        offsets = uniform_offsets(arrival_rate, num_requests)
    with SolverService(config) as service:
        start = time.perf_counter()
        tickets = pace(offsets, lambda i: service.submit(requests[i]))
        outcomes = [t.result(timeout=120.0) for t in tickets]
        makespan_s = time.perf_counter() - start

        latency = service.metrics.histogram("serve.latency_ms")
        batch_sizes = service.metrics.histogram("serve.batch_size")
        flushes = service.metrics.counter("serve.flushes").value
        fallbacks = service.metrics.counter("serve.fallbacks").value
        hit_rate = service.plan_cache.hit_rate

    assert all(o.converged for o in outcomes), "sweep workload must converge"
    return {
        "max_batch_size": max_batch_size,
        "arrival_rate_rps": arrival_rate,
        "requests": num_requests,
        "makespan_s": round(makespan_s, 4),
        "throughput_rps": round(num_requests / makespan_s, 1),
        "latency_p50_ms": round(latency.percentile(50.0), 3),
        "latency_p99_ms": round(latency.percentile(99.0), 3),
        "latency_mean_ms": round(latency.mean, 3),
        "mean_batch_size": round(batch_sizes.mean, 2),
        "flushes": int(flushes),
        "fallbacks": int(fallbacks),
        "plan_cache_hit_rate": round(hit_rate, 4),
    }


def run_plan_cache_workload(
    *, num_requests: int, size: int, max_batch_size: int = 32, seed: int = 11
) -> dict:
    """Repeated-config workload: every request shares one dispatch tuple."""
    from repro.serve import ServeConfig, SolverService

    config = ServeConfig(
        max_batch_size=max_batch_size,
        max_wait_ms=1.0,
        max_pending=max(4 * num_requests, 64),
        num_workers=2,
    )
    pattern = _stencil_pattern(size)
    rng = np.random.default_rng(seed)
    with SolverService(config) as service:
        tickets = [
            service.submit(_make_request(pattern, rng, size))
            for _ in range(num_requests)
        ]
        for ticket in tickets:
            ticket.result(timeout=120.0)
        hits = service.plan_cache.hits
        misses = service.plan_cache.misses
        hit_rate = service.plan_cache.hit_rate
    return {
        "requests": num_requests,
        "max_batch_size": max_batch_size,
        "lookups": hits + misses,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hit_rate, 4),
    }


def run_fallback_workload(*, size: int = 24, seed: int = 13) -> dict:
    """One poisoned (non-convergent under CG) system co-batched with healthy."""
    from repro.serve import ServeConfig, SolveRequest, SolverService

    pattern = _stencil_pattern(size)
    rng = np.random.default_rng(seed)

    # Strongly nonsymmetric values on the shared stencil pattern: CG cannot
    # converge, so this request must come back via the direct-LU fallback.
    poisoned_matrix = pattern.copy()
    data = poisoned_matrix.data.copy()
    diag_mask = data > 1  # stencil diagonal entries are 2.0, off-diagonal -1.0
    data[diag_mask] = 2.0
    data[~diag_mask] = np.where(
        np.arange((~diag_mask).sum()) % 2 == 0, 100.0, -99.0
    )
    poisoned_matrix.data = data

    config = ServeConfig(max_batch_size=8, max_wait_ms=5.0, num_workers=1)
    with SolverService(config) as service:
        healthy = [
            service.submit(
                SolveRequest(
                    pattern.copy(),
                    rng.standard_normal(size),
                    solver="cg",
                    preconditioner="jacobi",
                    tolerance=1e-8,
                    max_iterations=40,
                )
            )
            for _ in range(3)
        ]
        bad = service.submit(
            SolveRequest(
                poisoned_matrix,
                rng.standard_normal(size),
                solver="cg",
                preconditioner="jacobi",
                tolerance=1e-8,
                max_iterations=40,
            )
        )
        service.flush()
        healthy_outcomes = [t.result(timeout=60.0) for t in healthy]
        bad_outcome = bad.result(timeout=60.0)
        fallbacks = int(service.metrics.counter("serve.fallbacks").value)
        failed = int(service.metrics.counter("serve.failed").value)

    return {
        "co_batched_healthy": len(healthy_outcomes),
        "poisoned_used_fallback": bool(bad_outcome.used_fallback),
        "poisoned_solver": bad_outcome.solver_name,
        "poisoned_converged": bool(bad_outcome.converged),
        "healthy_all_converged": bool(all(o.converged for o in healthy_outcomes)),
        "healthy_any_fallback": bool(any(o.used_fallback for o in healthy_outcomes)),
        "fallback_flushes": fallbacks,
        "failed_requests": failed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve_throughput.json")
    parser.add_argument("--rate", type=float, default=1500.0, help="arrival rate (req/s)")
    parser.add_argument("--requests", type=int, default=192)
    parser.add_argument("--size", type=int, default=32, help="rows per system")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 16, 64],
        help="max_batch_size sweep (must include 1 and >=64 for the headline)",
    )
    parser.add_argument(
        "--backend", choices=["sycl", "cuda", "cudasim", "wide"], default="sycl",
        help="worker-pool backend (cudasim is an alias of cuda)",
    )
    parser.add_argument(
        "--execution", choices=["vectorized", "kernel"], default="vectorized",
        help="solve flushes with the NumPy solvers or the fused device kernels",
    )
    parser.add_argument(
        "--arrival", choices=["uniform", "poisson"], default="uniform",
        help="arrival process (uniform keeps the gated baselines comparable)",
    )
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument(
        "--seed", type=int, default=7, help="base RNG seed for the workloads"
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.requests = min(args.requests, 96)

    sweep = []
    for mbs in args.batch_sizes:
        point = run_sweep_point(
            max_batch_size=mbs,
            arrival_rate=args.rate,
            num_requests=args.requests,
            size=args.size,
            num_workers=args.workers,
            max_wait_ms=args.wait_ms,
            seed=args.seed,
            backend=args.backend,
            execution=args.execution,
            arrival=args.arrival,
        )
        sweep.append(point)
        print(
            f"max_batch_size={mbs:>3}: {point['throughput_rps']:8.1f} req/s, "
            f"p50 {point['latency_p50_ms']:7.2f} ms, "
            f"p99 {point['latency_p99_ms']:7.2f} ms, "
            f"mean batch {point['mean_batch_size']:5.1f}"
        )

    unbatched = next((p for p in sweep if p["max_batch_size"] == 1), None)
    batched = max(
        (p for p in sweep if p["max_batch_size"] >= 64),
        key=lambda p: p["max_batch_size"],
        default=None,
    )
    batching_win = None
    if unbatched and batched:
        batching_win = {
            "arrival_rate_rps": args.rate,
            "throughput_unbatched_rps": unbatched["throughput_rps"],
            "throughput_batched_rps": batched["throughput_rps"],
            "speedup": round(
                batched["throughput_rps"] / unbatched["throughput_rps"], 2
            ),
            "p50_unbatched_ms": unbatched["latency_p50_ms"],
            "p50_batched_ms": batched["latency_p50_ms"],
            "p99_unbatched_ms": unbatched["latency_p99_ms"],
            "p99_batched_ms": batched["latency_p99_ms"],
        }
        print(
            f"\nbatching win: {batching_win['speedup']}x throughput "
            f"({unbatched['throughput_rps']:.0f} -> {batched['throughput_rps']:.0f} req/s)"
        )

    plan_cache = run_plan_cache_workload(
        num_requests=240 if args.quick else 600, size=args.size, seed=args.seed + 4
    )
    print(
        f"plan cache: {plan_cache['hits']}/{plan_cache['lookups']} hits "
        f"({plan_cache['hit_rate']:.1%}) over {plan_cache['requests']} requests"
    )

    fallback = run_fallback_workload(seed=args.seed + 6)
    print(
        f"fallback: poisoned request solved by {fallback['poisoned_solver']!r} "
        f"(used_fallback={fallback['poisoned_used_fallback']}), "
        f"{fallback['co_batched_healthy']} co-batched healthy requests "
        f"converged={fallback['healthy_all_converged']}, "
        f"failed_requests={fallback['failed_requests']}"
    )

    from repro.bench.schema import bench_payload, write_bench

    report = bench_payload(
        "serve_throughput",
        workload={
            "system_rows": args.size,
            "requests_per_point": args.requests,
            "arrival_rate_rps": args.rate,
            "num_workers": args.workers,
            "max_wait_ms": args.wait_ms,
            "solver": "bicgstab",
            "preconditioner": "jacobi",
            "backend": args.backend,
            "execution": args.execution,
            "arrival": args.arrival,
        },
        metrics={
            "sweep": sweep,
            "batching_win": batching_win,
            "plan_cache": plan_cache,
            "fallback": fallback,
        },
    )
    out = write_bench(args.out, report)
    print(f"\nwrote {out}")

    # acceptance checks (return non-zero so CI can gate on them)
    failures = []
    if batching_win and batching_win["speedup"] <= 1.0:
        failures.append("batched throughput not higher than unbatched")
    if plan_cache["hit_rate"] <= 0.90:
        failures.append(f"plan-cache hit rate {plan_cache['hit_rate']:.1%} <= 90%")
    if not (
        fallback["poisoned_used_fallback"]
        and fallback["poisoned_converged"]
        and fallback["healthy_all_converged"]
        and fallback["failed_requests"] == 0
    ):
        failures.append("fallback degradation contract violated")
    for failure in failures:
        print(f"bench_serve: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
