#!/usr/bin/env python
"""Benchmark the autotuning subsystem: tuned vs heuristic launch configs.

Runs the ``repro.tune`` autotuner over several (device, workload) pairs
and records, per pair, the modeled solve time of the tuned configuration
against the Section-3.6 heuristic default. Also exercises the persistence
contract: a second tuning run with the same seed must be a TuningDB cache
hit (no re-measurement), and ``clear`` must force a re-search.

Writes ``BENCH_autotune.json`` (see ``--out``).

Acceptance (non-zero exit on violation):

* the tuned configuration beats the default on >= 2 (device, workload)
  pairs;
* the same-seed re-run hits the database without new measurements;
* clearing the database forces a fresh search.

Usage: python scripts/bench_autotune.py [--out BENCH_autotune.json]
       [--db PATH] [--strategy grid] [--seed 0] [--quick]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def tuning_pairs(quick: bool) -> list[tuple[str, object]]:
    """The (platform key, workload) pairs the benchmark tunes."""
    from repro.tune import pele_workload, stencil_workload

    pairs = [
        ("pvc1", stencil_workload(32)),
        ("pvc1", pele_workload("drm19")),
        ("pvc2", stencil_workload(32)),
    ]
    if not quick:
        pairs += [
            ("pvc1", stencil_workload(64)),
            ("pvc1", stencil_workload(128)),
            ("pvc2", pele_workload("dodecane_lu")),
        ]
    return pairs


def run_pair(tuner, workload, db) -> dict:
    """Tune one pair and report the tuned-vs-default comparison."""
    start = time.perf_counter()
    outcome = tuner.tune(workload)
    elapsed = time.perf_counter() - start
    record = outcome.record
    return {
        "platform": tuner.spec.key,
        "workload": workload.name,
        "solver": workload.solver,
        "num_rows": workload.num_rows,
        "strategy": record.strategy,
        "evaluations": record.evaluations,
        "from_cache": outcome.from_cache,
        "default_us": round(record.default_seconds * 1e6, 3),
        "tuned_us": round(record.modeled_seconds * 1e6, 3),
        "speedup": round(record.speedup, 4),
        "tuned_candidate": record.candidate.as_dict(),
        "search_seconds": round(elapsed, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_autotune.json")
    parser.add_argument(
        "--db", default=None, help="TuningDB path (default: a temp file)"
    )
    parser.add_argument(
        "--strategy", choices=["grid", "coordinate", "random"], default="grid"
    )
    parser.add_argument("--budget", type=int, default=16)
    parser.add_argument(
        "--seed", type=int, default=0, help="random-search seed (replayable)"
    )
    parser.add_argument("--quick", action="store_true", help="fewer pairs")
    args = parser.parse_args(argv)

    from repro.hw.specs import gpu
    from repro.tune import Autotuner, TuningDB, derive_threshold

    if args.db is None:
        tmp = tempfile.NamedTemporaryFile(
            prefix="bench_autotune_", suffix=".json", delete=False
        )
        tmp.close()
        Path(tmp.name).unlink()  # TuningDB wants to create it itself
        db_path = tmp.name
    else:
        db_path = args.db
    db = TuningDB(db_path)

    def tuner_for(platform: str) -> Autotuner:
        return Autotuner(
            gpu(platform),
            db=db,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
        )

    pairs = tuning_pairs(args.quick)
    results = []
    for platform, workload in pairs:
        row = run_pair(tuner_for(platform), workload, db)
        results.append(row)
        print(
            f"{row['platform']:>5} / {row['workload']:<12} "
            f"default {row['default_us']:>9.2f} us -> tuned {row['tuned_us']:>9.2f} us "
            f"({row['speedup']:.3f}x, {row['evaluations']} evals)"
        )

    # -- persistence contract: same-seed re-run is a pure DB hit --------------
    measurements_before = db.metrics.counter("tune.measurements").value
    platform0, workload0 = pairs[0]
    rerun = tuner_for(platform0).tune(workload0)
    measurements_after = db.metrics.counter("tune.measurements").value
    rerun_is_hit = rerun.from_cache and measurements_after == measurements_before
    print(
        f"same-seed re-run: from_cache={rerun.from_cache}, "
        f"new measurements={int(measurements_after - measurements_before)}"
    )

    # -- clear contract: dropping records forces a re-search ------------------
    removed = db.clear(device=gpu(platform0).device.name)
    after_clear = tuner_for(platform0).tune(workload0)
    clear_forces_search = removed > 0 and not after_clear.from_cache
    print(
        f"clear: removed {removed} record(s); "
        f"re-tune from_cache={after_clear.from_cache}"
    )

    thresholds = {}
    for platform in sorted({p for p, _ in pairs}):
        threshold = derive_threshold(db, gpu(platform).device.name)
        if threshold is not None:
            thresholds[platform] = threshold
            print(f"derived sub-group threshold ({platform}): {threshold} rows")

    from repro.bench.schema import bench_payload, write_bench

    wins = [r for r in results if r["speedup"] > 1.0]
    report = bench_payload(
        "autotune",
        workload={
            "strategy": args.strategy,
            "seed": args.seed,
            "budget": args.budget,
            "quick": bool(args.quick),
            "db_path": db_path,
        },
        metrics={
            "pairs": results,
            "pairs_tuned_beats_default": len(wins),
            "rerun_cache_hit": rerun_is_hit,
            "clear_forces_research": clear_forces_search,
            "derived_thresholds": thresholds,
            "db_generation": db.generation,
        },
    )
    out = write_bench(args.out, report)
    print(f"\nwrote {out}")

    # acceptance checks (return non-zero so CI can gate on them)
    failures = []
    if len(wins) < 2:
        failures.append(
            f"tuned beat the default on only {len(wins)} pair(s), need >= 2"
        )
    if not rerun_is_hit:
        failures.append("same-seed re-run was not a pure DB cache hit")
    if not clear_forces_search:
        failures.append("clearing the DB did not force a re-search")
    for failure in failures:
        print(f"bench_autotune: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
