#!/usr/bin/env python
"""Benchmark the lockstep wide backend against the faithful interpreter.

The wide backend (``repro.wide``) executes one work-group per Python
generator with NumPy arrays along the lane axis, instead of one generator
per work-item. Both backends run the *same* kernel sources in
``repro.kernels``; this benchmark measures what that buys on the hot
path and gates the headline:

* **per-solve speedup** — the fused CG and BiCGSTAB kernels on a batched
  3-point-stencil workload sized to fill the device's widest work-group
  (the regime the backend exists for). The hard acceptance gate is a
  **>= 20x** speedup for both solvers; the script exits non-zero below
  that, and ``benchmarks/baseline_manifest.json`` pins the same floor for
  ``scripts/check_regression.py``.
* **agreement** — both backends' solutions must actually solve the
  systems (relative residual under a small multiple of the tolerance)
  and converge within the iteration budget. Iteration counts may differ
  by a few steps near the stopping threshold: the faithful interpreter
  reduces with a sequential left-fold while the wide backend uses
  NumPy's pairwise reduction, so the last ulp of a dot product can land
  on either side of the threshold. Bitwise equality *within* a backend
  is pinned by the test suite, not here.
* **serve stacked win** — the serving layer in kernel-execution mode
  (``ServeConfig(execution="kernel")``) flushed through wide workers vs
  faithful workers: throughput of the same request stream, plus proof
  (via the ``serve.kernel_solves`` counter) that the kernel path
  actually engaged on both sides.

Writes ``BENCH_wide_speedup.json`` (see ``--out``).

Usage: python scripts/bench_wide_speedup.py [--out BENCH_wide_speedup.json]
       [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

SPEEDUP_FLOOR = 20.0


def _counter_total(counter) -> float:
    """Sum a counter across its label children (parent stays unlabeled)."""
    return counter.value + sum(child.value for child in counter.children())


def run_hot_path(*, nb: int, n: int, tolerance: float, max_iterations: int) -> dict:
    """Time the fused CG/BiCGSTAB kernels: faithful Queue vs WideQueue."""
    from repro.kernels.bicgstab_kernel import run_batch_bicgstab_on_device
    from repro.kernels.cg_kernel import run_batch_cg_on_device
    from repro.sycl.device import pvc_stack_device
    from repro.sycl.queue import Queue
    from repro.wide import WideQueue
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    matrix = three_point_stencil(n, nb)
    b = stencil_rhs(n, nb, seed=11)
    b_norms = np.linalg.norm(b, axis=1)
    device = pvc_stack_device(1)
    results: dict[str, dict] = {}

    for name, run in (
        ("cg", run_batch_cg_on_device),
        ("bicgstab", run_batch_bicgstab_on_device),
    ):
        # Warm-up on the wide queue pays the one-time kernel lowering cost
        # outside the timed region (the faithful interpreter has no
        # equivalent warm-up state).
        run(
            device, matrix, b,
            tolerance=tolerance, max_iterations=max_iterations,
            queue=WideQueue(device),
        )
        start = time.perf_counter()
        x_wide, iters_wide, _ = run(
            device, matrix, b,
            tolerance=tolerance, max_iterations=max_iterations,
            queue=WideQueue(device),
        )
        wide_s = time.perf_counter() - start

        start = time.perf_counter()
        x_faithful, iters_faithful, _ = run(
            device, matrix, b,
            tolerance=tolerance, max_iterations=max_iterations,
            queue=Queue(device),
        )
        faithful_s = time.perf_counter() - start

        # agreement: both solutions must solve the systems and converge
        for backend, x, iters in (
            ("wide", x_wide, iters_wide),
            ("faithful", x_faithful, iters_faithful),
        ):
            if not (np.asarray(iters) < max_iterations).all():
                raise AssertionError(f"{name}/{backend}: a system did not converge")
            rel = np.linalg.norm(b - matrix.apply(x), axis=1) / b_norms
            if not (rel <= 10.0 * tolerance).all():
                raise AssertionError(
                    f"{name}/{backend}: relative residual {rel.max():.3e} "
                    f"exceeds 10x the tolerance"
                )

        speedup = faithful_s / wide_s
        results[name] = {
            "faithful_ms": round(faithful_s * 1e3, 1),
            "wide_ms": round(wide_s * 1e3, 1),
            "speedup_x": round(speedup, 1),
            "per_solve_faithful_ms": round(faithful_s * 1e3 / nb, 1),
            "per_solve_wide_ms": round(wide_s * 1e3 / nb, 2),
            "iters_faithful_mean": round(float(np.mean(iters_faithful)), 1),
            "iters_wide_mean": round(float(np.mean(iters_wide)), 1),
            "max_iter_delta": int(
                np.abs(np.asarray(iters_wide) - np.asarray(iters_faithful)).max()
            ),
        }
        print(
            f"{name:>8}: faithful {faithful_s * 1e3:8.0f} ms, "
            f"wide {wide_s * 1e3:7.0f} ms, speedup {speedup:5.1f}x "
            f"(iters ~{results[name]['iters_wide_mean']:.0f})"
        )
    return results


def run_serve_stacked(*, size: int, num_requests: int) -> dict:
    """Kernel-execution serving: wide workers vs faithful workers."""
    from repro.serve import ServeConfig, SolveRequest, SolverService
    from repro.workloads.stencil import three_point_stencil

    pattern = three_point_stencil(size, 1).item_scipy(0)

    def make_requests():
        rng = np.random.default_rng(7)
        requests = []
        for _ in range(num_requests):
            matrix = pattern.copy()
            matrix.data = matrix.data * rng.uniform(0.9, 1.1, size=matrix.nnz)
            requests.append(
                SolveRequest(
                    matrix,
                    rng.standard_normal(size),
                    solver="bicgstab",
                    preconditioner="jacobi",
                    tolerance=1e-8,
                )
            )
        return requests

    points = {}
    for backend in ("sycl", "wide"):
        config = ServeConfig(
            max_batch_size=num_requests,
            max_wait_ms=50.0,
            max_pending=4 * num_requests,
            num_workers=1,
            backend=backend,
            execution="kernel",
        )
        with SolverService(config) as service:
            start = time.perf_counter()
            tickets = [service.submit(r) for r in make_requests()]
            service.flush()
            outcomes = [t.result(timeout=600.0) for t in tickets]
            makespan_s = time.perf_counter() - start
            kernel_solves = _counter_total(
                service.metrics.counter("serve.kernel_solves")
            )
            kernel_fallbacks = _counter_total(
                service.metrics.counter("serve.kernel_fallbacks")
            )
        if not all(o.converged for o in outcomes):
            raise AssertionError(f"serve/{backend}: a request failed to converge")
        points[backend] = {
            "makespan_s": round(makespan_s, 2),
            "throughput_rps": round(num_requests / makespan_s, 2),
            "kernel_solves": int(kernel_solves),
            "kernel_fallbacks": int(kernel_fallbacks),
        }
        print(
            f"serve/{backend:>5}: {makespan_s:6.2f} s for {num_requests} requests "
            f"({points[backend]['throughput_rps']:.2f} req/s, "
            f"kernel_solves={points[backend]['kernel_solves']})"
        )

    speedup = (
        points["wide"]["throughput_rps"] / points["sycl"]["throughput_rps"]
    )
    print(f"serve stacked win: {speedup:.1f}x kernel-mode throughput with wide workers")
    return {
        "faithful": points["sycl"],
        "wide": points["wide"],
        "kernel_speedup_x": round(speedup, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_wide_speedup.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller batch / looser tolerance (same >= 20x gate)",
    )
    args = parser.parse_args(argv)

    # n fills the device's widest work-group (lane axis = 1024): the wide
    # backend's per-round NumPy cost is nearly n-independent while the
    # faithful interpreter steps every work-item, so this is the regime
    # the backend targets. --quick shrinks the batch and loosens the
    # tolerance (fewer iterations), not n — the gate stays >= 20x.
    if args.quick:
        hot = dict(nb=2, n=1024, tolerance=1e-4, max_iterations=600)
        serve = dict(size=128, num_requests=12)
    else:
        hot = dict(nb=4, n=1024, tolerance=1e-6, max_iterations=600)
        serve = dict(size=128, num_requests=24)

    print(
        f"hot path: 3-point stencil, nb={hot['nb']}, n={hot['n']}, "
        f"tol={hot['tolerance']:g}"
    )
    solvers = run_hot_path(**hot)
    print()
    stacked = run_serve_stacked(**serve)

    from repro.bench.schema import bench_payload, write_bench

    report = bench_payload(
        "wide_speedup",
        workload={
            "pattern": "three_point_stencil",
            "num_batch": hot["nb"],
            "num_rows": hot["n"],
            "tolerance": hot["tolerance"],
            "max_iterations": hot["max_iterations"],
            "solvers": ["cg", "bicgstab"],
            "serve_system_rows": serve["size"],
            "serve_requests": serve["num_requests"],
            "quick": bool(args.quick),
        },
        metrics={
            "cg": solvers["cg"],
            "bicgstab": solvers["bicgstab"],
            "serve": stacked,
            "speedup_floor_x": SPEEDUP_FLOOR,
        },
        notes=(
            "Same kernel sources on both backends; wide executes one "
            "work-group per generator with a NumPy lane axis. The >= 20x "
            "floor on cg/bicgstab speedup_x is a hard gate here and in "
            "benchmarks/baseline_manifest.json."
        ),
    )
    out = write_bench(args.out, report)
    print(f"\nwrote {out}")

    failures = []
    for name in ("cg", "bicgstab"):
        speedup = solvers[name]["speedup_x"]
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"{name} speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:.0f}x floor"
            )
    if stacked["kernel_speedup_x"] <= 1.0:
        failures.append("wide workers did not beat faithful workers in kernel mode")
    for backend in ("faithful", "wide"):
        if stacked[backend]["kernel_solves"] < 1:
            failures.append(f"serve/{backend}: kernel execution path never engaged")
        if stacked[backend]["kernel_fallbacks"] != 0:
            failures.append(f"serve/{backend}: kernel execution fell back")
    for failure in failures:
        print(f"bench_wide_speedup: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
