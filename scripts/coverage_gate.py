#!/usr/bin/env python
"""Line-coverage floor for the serving stack — stdlib tracer, no pytest-cov.

Runs the ``tier1`` suite (``pytest -m tier1``: tests/serve, tests/fleet,
tests/chaos, tests/telemetry, tests/recorder) in-process under a
``sys.settrace`` / ``threading.settrace`` line tracer scoped to two
independently-floored groups: the serving stack (``src/repro/serve`` +
``src/repro/fleet``, default floor 85%) and the observability stack
(``src/repro/observability`` + ``src/repro/telemetry`` +
``src/repro/recorder``, default floor 80%). Either group dropping below
its floor fails the gate.

Executable lines come from the compiled code objects themselves
(``co_lines`` walked recursively through nested functions/classes), so
the denominator is exactly what CPython can execute — comments, blank
lines, and docstring bodies never count against the floor.

Usage: python scripts/coverage_gate.py [--floor 85] [--obs-floor 80]
       [--report 10] [pytest args after --]
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Floored package groups (repo-relative): the serving stack and the
#: observability stack (metrics/dashboard/flight recorder) each hold
#: their own line, independently — a well-covered serve layer must not
#: subsidise untested forensics code, or vice versa.
GROUPS = (
    ("serve", ("src/repro/serve", "src/repro/fleet")),
    (
        "observability",
        (
            "src/repro/observability",
            "src/repro/telemetry",
            "src/repro/recorder",
        ),
    ),
)

DEFAULT_FLOOR = 85.0
DEFAULT_OBS_FLOOR = 80.0


def executable_lines(path: Path) -> set[int]:
    """Line numbers CPython can actually execute in ``path``."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    code_type = type(code)
    while stack:
        obj = stack.pop()
        for _start, _end, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in obj.co_consts:
            if isinstance(const, code_type):
                stack.append(const)
    return lines


class LineTracer:
    """Per-file executed-line sets, fed by the settrace protocol.

    The global hook prunes fast: only calls whose code object lives in a
    target file get a local tracer, so the suite's numpy-heavy inner
    loops run untraced.
    """

    def __init__(self, files: set[str]) -> None:
        self._files = files
        self.hits: dict[str, set[int]] = {name: set() for name in files}

    def global_trace(self, frame, event, arg):
        if event == "call" and frame.f_code.co_filename in self._files:
            return self.local_trace
        return None

    def local_trace(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self.local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    passthrough: list[str] = []
    if "--" in argv:
        split = argv.index("--")
        argv, passthrough = argv[:split], argv[split + 1 :]

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="serve/fleet group floor percent (default 85)")
    parser.add_argument("--obs-floor", type=float, default=DEFAULT_OBS_FLOOR,
                        help="observability/telemetry/recorder group floor "
                        "percent (default 80)")
    parser.add_argument("--report", type=int, default=10,
                        help="show the N least-covered files per group (0 = all)")
    args = parser.parse_args(argv)

    os.chdir(ROOT)
    floors = {"serve": args.floor, "observability": args.obs_floor}
    group_files: dict[str, dict[str, set[int]]] = {}
    for group_name, group_targets in GROUPS:
        group_files[group_name] = {
            str(path.resolve()): executable_lines(path)
            for target in group_targets
            for path in sorted((ROOT / target).rglob("*.py"))
        }
    targets = {
        name: lines
        for files in group_files.values()
        for name, lines in files.items()
    }
    if not targets:
        print("coverage_gate: no target files found", file=sys.stderr)
        return 2

    import pytest

    tracer = LineTracer(set(targets))
    tracer.install()
    try:
        code = pytest.main(["-m", "tier1", "-q", *passthrough])
    finally:
        tracer.uninstall()
    if code != 0:
        print(f"coverage_gate: tier1 suite failed (exit {code})", file=sys.stderr)
        return code

    failures: list[str] = []
    for group_name, _group_targets in GROUPS:
        floor = floors[group_name]
        rows = []
        total_executable = 0
        total_hit = 0
        for name, executable in sorted(group_files[group_name].items()):
            if not executable:
                continue
            hit = len(tracer.hits[name] & executable)
            total_executable += len(executable)
            total_hit += hit
            rows.append(
                (100.0 * hit / len(executable), hit, len(executable), name)
            )
        percent = 100.0 * total_hit / total_executable
        rows.sort()
        shown = rows if args.report == 0 else rows[: args.report]
        print(f"\n{'cover':>7}  {'lines':>11}  [{group_name}] least covered first")
        for file_percent, hit, executable, name in shown:
            rel = os.path.relpath(name, ROOT)
            print(f"{file_percent:6.1f}%  {hit:5d}/{executable:<5d}  {rel}")
        print(
            f"coverage_gate[{group_name}]: {percent:.1f}% of "
            f"{total_executable} executable lines across {len(rows)} files "
            f"(floor {floor:.0f}%)"
        )
        if percent < floor:
            failures.append(
                f"{group_name}: {percent:.1f}% < {floor:.0f}% floor"
            )

    if failures:
        for failure in failures:
            print(f"coverage_gate: FAIL — {failure}", file=sys.stderr)
        return 1
    print("\ncoverage_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
