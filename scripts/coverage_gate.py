#!/usr/bin/env python
"""Line-coverage floor for the serving stack — stdlib tracer, no pytest-cov.

Runs the ``tier1`` suite (``pytest -m tier1``: tests/serve, tests/fleet,
tests/chaos, tests/telemetry) in-process under a ``sys.settrace`` /
``threading.settrace`` line tracer scoped to ``src/repro/serve`` and
``src/repro/fleet``, then fails if the executed fraction of executable
lines drops below the floor.

Executable lines come from the compiled code objects themselves
(``co_lines`` walked recursively through nested functions/classes), so
the denominator is exactly what CPython can execute — comments, blank
lines, and docstring bodies never count against the floor.

Usage: python scripts/coverage_gate.py [--floor 85] [--report 10]
       [pytest args after --]
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Packages the floor is enforced over (repo-relative).
TARGETS = ("src/repro/serve", "src/repro/fleet")

DEFAULT_FLOOR = 85.0


def executable_lines(path: Path) -> set[int]:
    """Line numbers CPython can actually execute in ``path``."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    code_type = type(code)
    while stack:
        obj = stack.pop()
        for _start, _end, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in obj.co_consts:
            if isinstance(const, code_type):
                stack.append(const)
    return lines


class LineTracer:
    """Per-file executed-line sets, fed by the settrace protocol.

    The global hook prunes fast: only calls whose code object lives in a
    target file get a local tracer, so the suite's numpy-heavy inner
    loops run untraced.
    """

    def __init__(self, files: set[str]) -> None:
        self._files = files
        self.hits: dict[str, set[int]] = {name: set() for name in files}

    def global_trace(self, frame, event, arg):
        if event == "call" and frame.f_code.co_filename in self._files:
            return self.local_trace
        return None

    def local_trace(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self.local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    passthrough: list[str] = []
    if "--" in argv:
        split = argv.index("--")
        argv, passthrough = argv[:split], argv[split + 1 :]

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="minimum line coverage percent (default 85)")
    parser.add_argument("--report", type=int, default=10,
                        help="show the N least-covered files (0 = all)")
    args = parser.parse_args(argv)

    os.chdir(ROOT)
    targets = {
        str(path.resolve()): executable_lines(path)
        for target in TARGETS
        for path in sorted((ROOT / target).rglob("*.py"))
    }
    if not targets:
        print("coverage_gate: no target files found", file=sys.stderr)
        return 2

    import pytest

    tracer = LineTracer(set(targets))
    tracer.install()
    try:
        code = pytest.main(["-m", "tier1", "-q", *passthrough])
    finally:
        tracer.uninstall()
    if code != 0:
        print(f"coverage_gate: tier1 suite failed (exit {code})", file=sys.stderr)
        return code

    rows = []
    total_executable = 0
    total_hit = 0
    for name, executable in sorted(targets.items()):
        if not executable:
            continue
        hit = len(tracer.hits[name] & executable)
        total_executable += len(executable)
        total_hit += hit
        rows.append((100.0 * hit / len(executable), hit, len(executable), name))

    percent = 100.0 * total_hit / total_executable
    rows.sort()
    shown = rows if args.report == 0 else rows[: args.report]
    print(f"\n{'cover':>7}  {'lines':>11}  file (least covered first)")
    for file_percent, hit, executable, name in shown:
        rel = os.path.relpath(name, ROOT)
        print(f"{file_percent:6.1f}%  {hit:5d}/{executable:<5d}  {rel}")
    print(
        f"\ncoverage_gate: {percent:.1f}% of {total_executable} executable "
        f"lines across {len(rows)} files (floor {args.floor:.0f}%)"
    )
    if percent < args.floor:
        print(
            f"coverage_gate: FAIL — {percent:.1f}% < {args.floor:.0f}% floor",
            file=sys.stderr,
        )
        return 1
    print("coverage_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
