#!/usr/bin/env python
"""Measure the flight recorder's always-on cost and attribution accuracy.

The flight recorder is meant to run on every production shard, so its
recording path must be near-free — a few deque appends per flush.
This benchmark gates two numbers:

* ``recorder_vs_baseline_pct`` — the always-on recording bill per solve.
  The per-flush forensic work a recorded serve flush adds (event-tap
  ring appends, the flush record, :func:`repro.recorder.classify.
  solve_summary` over the batch's residual curves, the registry delta
  snapshot) is timed alone at thousands of iterations — a full-loop A/B
  cannot resolve a microsecond cost under millisecond solve jitter — and
  expressed as a fraction of the baseline batched solve. The manifest
  gates it at <= 2%.
* ``attribution.fault_attribution_fraction`` — run the seeded chaos
  battery under a recorder, dump the bundle, feed it through the
  postmortem analyzer, and check that >= 95% of the injected faults come
  back attributed to their fault class with the right victim trace ids.

Measured full-loop A/B deltas (recorder off vs on, micro and end-to-end
serve) are recorded as informational metrics alongside.

Writes ``BENCH_recorder_overhead.json`` at the repo root by default.

Usage: python scripts/bench_recorder_overhead.py
       [--out BENCH_recorder_overhead.json] [--quick]
       [--max-recorder-overhead-pct PCT] [--min-attributed FRACTION]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _solve_loop(repeats: int, factory, matrix, rhs, per_solve=None) -> float:
    """Seconds for ``repeats`` solves, calling ``per_solve`` around each."""
    start = time.perf_counter()
    for _ in range(repeats):
        if per_solve is None:
            factory.solve(matrix, rhs)
        else:
            per_solve(factory, matrix, rhs)
    return time.perf_counter() - start


def _best_of_interleaved(rounds: int, fns: list) -> list[float]:
    """Fastest round per configuration, rounds interleaved (A B, A B, ...)
    so machine-state drift cannot masquerade as A-vs-B overhead."""
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            best[i] = min(best[i], fn())
    return best


def _make_workload(num_rows: int, nb: int):
    from repro.core.dispatch import BatchSolverFactory
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    matrix = three_point_stencil(num_rows, nb)
    rhs = stencil_rhs(num_rows, nb)
    factory = BatchSolverFactory(
        solver="cg",
        preconditioner="identity",
        criterion="relative",
        tolerance=1e-9,
        max_iterations=4000,
    )
    return factory, matrix, rhs


def _record_one_flush(recorder, registry, curves, converged, iterations, nb) -> None:
    """Exactly the forensic work the serving layer adds per recorded flush."""
    from repro.recorder.classify import solve_summary

    # the event-tap side: three retained lifecycle events ring per request
    # on the sampled path; ring one flush's worth here
    for i in range(3):
        recorder.record_event(
            {
                "schema_version": 1,
                "type": "request.solved",
                "ts_ns": 0,
                "trace_id": "bench-trace",
                "span_id": None,
                "request_id": "bench-req",
                "keep": "head",
                "fields": {"latency_ms": 2.5, "iterations": 40, "converged": True},
            }
        )
    recorder.record_flush(
        flush_id="flush-bench",
        reason="size",
        batch_size=nb,
        worker="worker-0",
        solver="cg",
        solve_ms=2.5,
        cache_hit=True,
        trace_ids=["bench-trace"] * nb,
    )
    summary = solve_summary(
        curves,
        converged=converged,
        iterations=iterations,
        max_iterations=4000,
        solver="cg",
        backend="sycl",
    )
    summary["flush_id"] = "flush-bench"
    summary["trace_ids"] = ["bench-trace"] * nb
    recorder.record_solve(summary)
    recorder.observe_registry(registry)


def bench_micro(repeats: int, rounds: int, num_rows: int, nb: int) -> dict:
    """The gated A/B: bare solve loop vs solve loop + recorder plumbing."""
    import numpy as np

    from repro.observability.metrics import MetricsRegistry
    from repro.recorder import FlightRecorder, use_recorder

    factory, matrix, rhs = _make_workload(num_rows, nb)

    recorder = FlightRecorder(capacity=1024, solve_capacity=256)
    registry = MetricsRegistry()
    registry.counter("serve.flushes").inc()
    registry.gauge("serve.queue_depth").set(0)
    registry.log_histogram("serve.request_latency_ms").observe(2.5)

    # one real solve supplies realistic residual curves for the
    # classification work the recorder does per flush
    result = factory.solve(matrix, rhs)
    logger = getattr(result, "logger", None)
    if logger is not None and hasattr(logger, "residual_curves"):
        curves = logger.residual_curves()
    else:
        curves = [list(np.geomspace(1.0, 1e-10, 40)) for _ in range(nb)]
    converged = np.ones(len(curves), dtype=bool)
    iterations = np.full(len(curves), 40, dtype=np.int64)

    def baseline_round() -> float:
        return _solve_loop(repeats, factory, matrix, rhs)

    def recorded_solve(factory_, matrix_, rhs_):
        factory_.solve(matrix_, rhs_)
        _record_one_flush(recorder, registry, curves, converged, iterations, nb)

    def recorded_round() -> float:
        with use_recorder(recorder):
            return _solve_loop(repeats, factory, matrix, rhs, per_solve=recorded_solve)

    baseline_round()  # warmups (imports, caches) before any timing
    recorded_round()
    baseline_s, recorded_s = _best_of_interleaved(
        rounds, [baseline_round, recorded_round]
    )

    # The gated number: the recording plumbing timed alone (solve-free,
    # thousands of iterations) over the baseline per-solve time. The
    # full-loop A/B above cannot resolve it — its true cost is
    # microseconds against a millisecond batched solve.
    plumb_iters = 5000
    _record_one_flush(recorder, registry, curves, converged, iterations, nb)  # warm
    start = time.perf_counter()
    for _ in range(plumb_iters):
        _record_one_flush(recorder, registry, curves, converged, iterations, nb)
    plumb_s = (time.perf_counter() - start) / plumb_iters
    baseline_per_solve_s = baseline_s / repeats

    assert recorder.solves_seen > 0 and recorder.flushes_seen > 0
    assert len(recorder.snapshot()["solves"]) <= recorder.solve_capacity

    return {
        "baseline_per_solve_ms": baseline_per_solve_s * 1e3,
        "recorded_per_solve_ms": recorded_s / repeats * 1e3,
        "recorder_plumbing_us": plumb_s * 1e6,
        "recorder_vs_baseline_pct": 100.0 * plumb_s / baseline_per_solve_s,
        "recorder_vs_baseline_measured_pct": 100.0
        * (recorded_s - baseline_s)
        / baseline_s,
        "events_ringed": recorder.events_seen,
        "solves_ringed": recorder.solves_seen,
    }


def bench_serve(num_requests: int, size: int) -> dict:
    """End-to-end serve A/B: recorder off vs recorder on (informational)."""
    import numpy as np

    from repro.recorder import FlightRecorder, use_recorder
    from repro.serve import ServeConfig, SolveRequest, SolverService
    from repro.workloads.stencil import three_point_stencil

    pattern = three_point_stencil(size, 1).item_scipy(0)

    def run(recorder) -> float:
        config = ServeConfig(max_batch_size=16, max_wait_ms=1.0, num_workers=2)
        rng = np.random.default_rng(11)
        with use_recorder(recorder):
            with SolverService(config) as service:
                start = time.perf_counter()
                tickets = []
                for _ in range(num_requests):
                    values = pattern.copy()
                    values.data = values.data * rng.uniform(0.9, 1.1, size=values.nnz)
                    tickets.append(
                        service.submit(
                            SolveRequest(
                                values,
                                rng.standard_normal(size),
                                solver="bicgstab",
                                preconditioner="jacobi",
                                tolerance=1e-8,
                            )
                        )
                    )
                for ticket in tickets:
                    ticket.result(timeout=60.0)
                elapsed = time.perf_counter() - start
        return elapsed

    off_s = run(None)
    recorder = FlightRecorder(capacity=4096, solve_capacity=1024)
    on_s = run(recorder)
    return {
        "requests": num_requests,
        "off_per_request_ms": off_s / num_requests * 1e3,
        "on_per_request_ms": on_s / num_requests * 1e3,
        "on_overhead_pct": 100.0 * (on_s - off_s) / off_s,
        "solves_recorded": recorder.solves_seen,
    }


def bench_attribution(tmp_dir: Path, num_requests: int, seed: int) -> dict:
    """Chaos battery -> bundle -> postmortem: do injected faults come back
    attributed to their class with the right victim traces?"""
    from repro.chaos import ChaosInjector, FaultPlan
    from repro.chaos.replay import build_trace, run_replay
    from repro.recorder import FlightRecorder, analyze_bundles, load_bundles, use_recorder
    from repro.serve import ServeConfig, SolverService

    chaos = ChaosInjector(FaultPlan.battery(seed=seed))
    items = build_trace(seed=seed, num_requests=num_requests, rate_rps=400.0)
    config = ServeConfig(max_batch_size=8, max_wait_ms=2.0, num_workers=2)
    recorder = FlightRecorder(capacity=8192, solve_capacity=2048, shard="bench-attr")
    with use_recorder(recorder):
        report = run_replay(
            items,
            lambda: SolverService(config, chaos=chaos),
            seed=seed,
            result_timeout_s=60.0,
        )
    bundle = recorder.dump(tmp_dir, reason="chaos_fault")
    analysis = analyze_bundles(load_bundles([bundle]))

    # ground truth straight from the recorder's chaos triggers: the
    # injector rings one per fault with the authoritative victim list
    truth = [
        trig
        for trig in recorder.snapshot()["triggers"]
        if trig.get("reason") == "chaos_fault"
    ]
    infra = [
        inc for inc in analysis["incidents"] if inc["source"] == "infrastructure"
    ]
    matched = 0
    for trig in truth:
        hit = any(
            inc["fault_class"] == trig.get("kind")
            and inc.get("flush_id") == trig.get("flush_id")
            and inc.get("trace_id") in (trig.get("trace_ids") or [None])
            and set(trig.get("trace_ids") or []) <= set(inc.get("trace_ids", []))
            for inc in infra
        )
        matched += bool(hit)
    fraction = matched / len(truth) if truth else 0.0
    return {
        "requests": num_requests,
        "faults_injected": len(truth),
        "faults_attributed": matched,
        "fault_attribution_fraction": fraction,
        "failures_seen": len(analysis["failures"]),
        "failures_unattributed": analysis["attribution_counts"]["unattributed"],
        "lost_requests": report.lost,
        "bundle": str(bundle),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_recorder_overhead.json")
    parser.add_argument("--repeats", type=int, default=40)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--num-rows", type=int, default=32)
    parser.add_argument("--nb-solve", type=int, default=16)
    parser.add_argument("--serve-requests", type=int, default=96)
    parser.add_argument("--attr-requests", type=int, default=160)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-recorder-overhead-pct",
        type=float,
        default=2.0,
        help="fail (exit 1) when always-on recording costs more than this",
    )
    parser.add_argument(
        "--min-attributed",
        type=float,
        default=0.95,
        help="fail (exit 1) when fewer injected faults are attributed",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller loops and a relaxed overhead bound for CI smoke runs",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repeats = 12
        args.rounds = 3
        args.serve_requests = 32
        args.attr_requests = 96
        args.max_recorder_overhead_pct = max(args.max_recorder_overhead_pct, 15.0)

    import tempfile

    from repro.bench.schema import bench_payload, write_bench

    micro = bench_micro(args.repeats, args.rounds, args.num_rows, args.nb_solve)
    serve = bench_serve(args.serve_requests, size=16)
    with tempfile.TemporaryDirectory(prefix="repro_bench_recorder_") as tmp:
        attribution = bench_attribution(Path(tmp), args.attr_requests, args.seed)

    payload = bench_payload(
        "recorder_overhead",
        workload={
            "solver": "cg",
            "matrix": f"3pt-stencil n={args.num_rows}",
            "num_batch": args.nb_solve,
            "tolerance": 1e-9,
            "repeats": args.repeats,
            "rounds": args.rounds,
        },
        metrics={**micro, "serve": serve, "attribution": attribution},
        notes=(
            "recorder_vs_baseline_pct is the always-on flight-recorder bill: "
            "the per-flush forensic work (event-tap appends, flush record, "
            "convergence classification, registry delta) timed alone and "
            "divided by the baseline batched solve; the manifest gates it at "
            "<= 2%. attribution.fault_attribution_fraction feeds the chaos "
            "battery's bundle through the postmortem analyzer and checks "
            "injected faults come back attributed to their fault class with "
            "the right victim traces (gated >= 0.95). The *_measured_pct and "
            "serve numbers are informational full-loop A/Bs."
        ),
    )
    out = write_bench(args.out, payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")

    failed = False
    if micro["recorder_vs_baseline_pct"] > args.max_recorder_overhead_pct:
        print(
            f"FAIL: always-on recording overhead "
            f"{micro['recorder_vs_baseline_pct']:.2f}% exceeds "
            f"{args.max_recorder_overhead_pct:.2f}%",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"always-on recording overhead {micro['recorder_vs_baseline_pct']:.2f}% "
            f"<= {args.max_recorder_overhead_pct:.2f}% bound"
        )
    if attribution["fault_attribution_fraction"] < args.min_attributed:
        print(
            f"FAIL: only {attribution['faults_attributed']}/"
            f"{attribution['faults_injected']} injected faults attributed "
            f"({attribution['fault_attribution_fraction']:.2%} < "
            f"{args.min_attributed:.0%})",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"postmortem attribution {attribution['faults_attributed']}/"
            f"{attribution['faults_injected']} injected faults "
            f"({attribution['fault_attribution_fraction']:.2%} >= "
            f"{args.min_attributed:.0%})"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
