#!/usr/bin/env python
"""Measure sanitizer-off vs sanitizer-on fused-kernel solve time.

The sanitizer is opt-in: production simulator runs pay only a single
``current_sanitizer()`` contextvar lookup per launch, so the *off* path
must stay within noise of the pre-sanitizer baseline. The *on* path routes
every SLM element access through shadow state and every sync through the
epoch bookkeeping — it is allowed to cost a multiple, and this benchmark
records how large that multiple is (with and without source-site capture,
the most expensive part of the checked path).

Writes ``BENCH_sanitize_overhead.json`` at the repo root by default.

Usage: python scripts/bench_sanitize_overhead.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _time_kernel_solves(repeats: int, num_rows: int, nb: int, config) -> tuple[float, dict]:
    """Total seconds for ``repeats`` fused-CG solves; config=None => unchecked."""
    from repro.kernels import run_batch_cg_on_device
    from repro.sanitize import Sanitizer, use_sanitizer
    from repro.sycl.device import pvc_stack_device
    from repro.sycl.queue import Queue
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    matrix = three_point_stencil(num_rows, nb)
    rhs = stencil_rhs(num_rows, nb)
    device = pvc_stack_device(1)
    queue = Queue(device)

    def solve_once():
        run_batch_cg_on_device(device, matrix, rhs, tolerance=1e-9, queue=queue)
        queue.reset_events()

    solve_once()  # warmup (imports, caches)
    if config is None:
        start = time.perf_counter()
        for _ in range(repeats):
            solve_once()
        return time.perf_counter() - start, {}

    sanitizer = Sanitizer(config)
    with use_sanitizer(sanitizer):
        solve_once()  # warmup of the checked path
        start = time.perf_counter()
        for _ in range(repeats):
            solve_once()
        elapsed = time.perf_counter() - start
    summary = sanitizer.summary()
    assert summary["violations"] == {}, f"solver kernel not clean: {summary}"
    return elapsed, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sanitize_overhead.json")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--num-rows", type=int, default=16)
    parser.add_argument("--nb-solve", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.bench.schema import bench_payload, write_bench
    from repro.sanitize import SanitizerConfig

    off_s, _ = _time_kernel_solves(args.repeats, args.num_rows, args.nb_solve, None)
    on_s, on_summary = _time_kernel_solves(
        args.repeats, args.num_rows, args.nb_solve, SanitizerConfig()
    )
    fast_s, _ = _time_kernel_solves(
        args.repeats,
        args.num_rows,
        args.nb_solve,
        SanitizerConfig(record_sites=False),
    )

    payload = bench_payload(
        "sanitize_overhead",
        workload={
            "solver": "cg (fused simulator kernel)",
            "matrix": f"3pt-stencil n={args.num_rows}",
            "num_batch": args.nb_solve,
            "tolerance": 1e-9,
            "repeats": args.repeats,
        },
        metrics={
            "sanitizer_off_s": off_s,
            "sanitizer_on_s": on_s,
            "sanitizer_on_no_sites_s": fast_s,
            "on_slowdown_x": on_s / off_s if off_s > 0 else float("nan"),
            "no_sites_slowdown_x": fast_s / off_s if off_s > 0 else float("nan"),
            "per_solve_off_ms": off_s / args.repeats * 1e3,
            "per_solve_on_ms": on_s / args.repeats * 1e3,
            "checked_per_repeat": {
                "slm_accesses": on_summary["slm_accesses"] // (args.repeats + 1),
                "syncs": on_summary["syncs"] // (args.repeats + 1),
            },
        },
        notes=(
            "sanitizer_off is the production path (no sanitizer installed: one "
            "contextvar lookup per launch); on/no-sites pay per-SLM-access "
            "shadow checks, with and without sys._getframe source-site capture"
        ),
    )
    out = write_bench(args.out, payload)
    print(json.dumps(payload, indent=1))
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
