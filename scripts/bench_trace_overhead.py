#!/usr/bin/env python
"""Measure tracer-off vs tracer-on solve time on the 3-pt stencil.

Records the instrumentation cost of the observability layer so later PRs
can verify tracing stays cheap: the *disabled* path (no tracer installed —
every instrumentation point hits the shared no-op singletons) is the one
production solves pay and must stay within a few percent of free; the
*enabled* path (a live ``Tracer`` collecting spans, counter samples and
metrics) is allowed to cost more but is measured here too.

Writes ``BENCH_trace_overhead.json`` at the repo root by default; the
benchmark loop reuses one simulator queue and clears its submission log
each repetition via ``Queue.reset_events`` (the long-sweep hygiene the
queue API exists for).

Usage: python scripts/bench_trace_overhead.py [--out BENCH_trace_overhead.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _time_solves(repeats: int, num_rows: int, nb: int, tracer) -> float:
    """Total seconds for ``repeats`` factory solves (fresh tracer state each)."""
    from repro.core.dispatch import BatchSolverFactory
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    matrix = three_point_stencil(num_rows, nb)
    rhs = stencil_rhs(num_rows, nb)
    factory = BatchSolverFactory(
        solver="cg",
        preconditioner="identity",
        criterion="relative",
        tolerance=1e-9,
        max_iterations=4000,
        tracer=tracer,
    )
    factory.solve(matrix, rhs)  # warmup (imports, caches)
    if tracer is not None:
        tracer.reset()
    start = time.perf_counter()
    for _ in range(repeats):
        factory.solve(matrix, rhs)
    elapsed = time.perf_counter() - start
    if tracer is not None:
        tracer.reset()
    return elapsed


def _time_kernel_solves(repeats: int, num_rows: int, nb: int) -> float:
    """Simulator-path timing; demonstrates the reset_events sweep hygiene."""
    from repro.kernels import run_batch_cg_on_device
    from repro.sycl.device import pvc_stack_device
    from repro.sycl.queue import Queue
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    matrix = three_point_stencil(num_rows, nb)
    rhs = stencil_rhs(num_rows, nb)
    device = pvc_stack_device(1)
    queue = Queue(device)
    run_batch_cg_on_device(device, matrix, rhs, tolerance=1e-9, queue=queue)
    queue.reset_events()
    start = time.perf_counter()
    for _ in range(repeats):
        run_batch_cg_on_device(device, matrix, rhs, tolerance=1e-9, queue=queue)
        queue.reset_events()  # keep the submission log from growing
    assert queue.num_launches == 0
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_trace_overhead.json")
    parser.add_argument("--repeats", type=int, default=30)
    parser.add_argument("--num-rows", type=int, default=32)
    parser.add_argument("--nb-solve", type=int, default=16)
    parser.add_argument(
        "--kernel-repeats", type=int, default=3, help="simulator-path repetitions"
    )
    args = parser.parse_args(argv)

    from repro.bench.schema import bench_payload, write_bench
    from repro.observability import Tracer

    off_s = _time_solves(args.repeats, args.num_rows, args.nb_solve, tracer=None)
    on_s = _time_solves(args.repeats, args.num_rows, args.nb_solve, tracer=Tracer())
    kernel_s = _time_kernel_solves(args.kernel_repeats, 16, 2)

    overhead_pct = 100.0 * (on_s - off_s) / off_s if off_s > 0 else float("nan")
    payload = bench_payload(
        "trace_overhead",
        workload={
            "solver": "cg",
            "matrix": f"3pt-stencil n={args.num_rows}",
            "num_batch": args.nb_solve,
            "tolerance": 1e-9,
            "repeats": args.repeats,
        },
        metrics={
            "tracer_off_s": off_s,
            "tracer_on_s": on_s,
            "tracer_on_overhead_pct": overhead_pct,
            "per_solve_off_ms": off_s / args.repeats * 1e3,
            "per_solve_on_ms": on_s / args.repeats * 1e3,
            "kernel_path": {
                "solver": "cg (fused simulator kernel)",
                "matrix": "3pt-stencil n=16",
                "num_batch": 2,
                "repeats": args.kernel_repeats,
                "total_s": kernel_s,
            },
        },
        notes=(
            "tracer_off is the production no-op path (no tracer installed); "
            "later PRs compare their tracer_off against this baseline to "
            "verify instrumentation stays cheap"
        ),
    )
    out = write_bench(args.out, payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
