#!/usr/bin/env python
"""Fast contract checks of the autotuning subsystem (CI smoke).

Small workload, tiny budget, temp-file TuningDB — verifies in a few
seconds that:

* seeded random search runs under budget and never loses to the default;
* the same seed replays the identical search result (determinism);
* a second tune of the same key is a DB cache hit with no new
  measurements, including through a fresh ``TuningDB`` instance reloading
  the persisted file;
* ``clear`` forces a re-search;
* the serving plan cache invalidates its plans when the DB generation
  changes.

Usage: python scripts/smoke_tune.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(f"  {'ok' if condition else 'FAIL'}: {label}")
    if not condition:
        failures.append(label)


def _run() -> int:
    from repro.hw.specs import gpu
    from repro.serve.plan_cache import PlanCache
    from repro.serve.request import BatchKey
    from repro.tune import RANDOM, Autotuner, TuningDB, stencil_workload

    failures: list[str] = []
    spec = gpu("pvc1")
    workload = stencil_workload(16, nb_solve=4)

    with tempfile.TemporaryDirectory(prefix="smoke_tune_") as tmp:
        db_path = Path(tmp) / "tuning_db.json"
        db = TuningDB(db_path)
        tuner = Autotuner(spec, db=db, strategy=RANDOM, budget=6, seed=3)

        print("tune smoke: seeded random search, tiny budget, temp DB")
        first = tuner.tune(workload)
        check(not first.from_cache, "first tune runs a search", failures)
        check(
            first.record.modeled_seconds <= first.record.default_seconds,
            "tuned config never loses to the default",
            failures,
        )
        check(
            first.search is not None and first.search.evaluations <= 6 + 1,
            "random search respects its budget (+ default measurement)",
            failures,
        )

        measurements = db.metrics.counter("tune.measurements").value
        second = tuner.tune(workload)
        check(second.from_cache, "same-key re-tune is a DB cache hit", failures)
        check(
            db.metrics.counter("tune.measurements").value == measurements,
            "cache hit runs no new measurements",
            failures,
        )

        # determinism: a fresh in-memory search with the same seed replays
        replay = Autotuner(spec, db=TuningDB(), strategy=RANDOM, budget=6, seed=3)
        check(
            replay.tune(workload).record.candidate == first.record.candidate,
            "same seed reproduces the same winner",
            failures,
        )

        # persistence: a brand-new DB instance reloads the stored record
        reloaded = Autotuner(spec, db=TuningDB(db_path), strategy=RANDOM, budget=6, seed=3)
        check(
            reloaded.tune(workload).from_cache,
            "persisted record survives a DB reload",
            failures,
        )

        removed = db.clear(device=spec.device.name)
        check(removed >= 1, "clear removes the stored record", failures)
        check(
            not tuner.tune(workload).from_cache,
            "tune after clear re-searches",
            failures,
        )

        # plan-cache invalidation: a DB mutation drops cached plans
        cache = PlanCache(spec.device, tuning_db=db)
        key = BatchKey(
            matrix_format="csr",
            num_rows=16,
            pattern_token="smoke",
            solver="cg",
            preconditioner="jacobi",
            criterion="relative",
            precision="double",
            tolerance=1e-8,
            max_iterations=100,
        )
        cache.plan_for(key)
        _, hit = cache.plan_for(key)
        check(hit, "plan cache hits on a repeated key", failures)
        db.clear()  # bumps the generation
        _, hit = cache.plan_for(key)
        invalidations = cache.metrics.counter("serve.plan_cache.invalidations").value
        check(
            not hit and invalidations == 1,
            "DB generation change invalidates cached plans",
            failures,
        )

    if failures:
        print(f"tune smoke: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("tune smoke: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="additionally launch the fused kernel at a freshly tuned "
        "geometry under the kernel sanitizer (tuned geometries must "
        "never trade correctness)",
    )
    parser.add_argument(
        "--backend",
        choices=["sycl", "cuda", "cudasim", "wide"],
        default="sycl",
        help="queue for the tuned-geometry launch: 'wide' uses the "
        "lockstep WideQueue (deferring to the faithful interpreter while "
        "the sanitizer is installed, then re-launching bare in lockstep "
        "for a parity check); cuda/cudasim run the sycl queue here, as "
        "the tuned launch uses the SYCL-dialect kernel",
    )
    args = parser.parse_args(argv)
    code = _run()
    if not args.sanitize or code != 0:
        return code

    import numpy as np

    from repro.core.launch import LaunchConfigurator
    from repro.hw.specs import gpu
    from repro.kernels.cg_kernel import batch_cg_kernel
    from repro.sanitize import Sanitizer, format_summary, use_sanitizer
    from repro.sycl.memory import LocalSpec
    from repro.sycl.queue import Queue
    from repro.tune import RANDOM, Autotuner, TuningDB, stencil_workload
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    failures: list[str] = []
    spec = gpu("pvc1")
    db = TuningDB()
    result = Autotuner(spec, db=db, strategy=RANDOM, budget=6, seed=3).tune(
        stencil_workload(16, nb_solve=4)
    )
    geometry = LaunchConfigurator(spec.device, tuning_db=db).geometry(
        16, solver="cg", preconditioner="jacobi", precision="double"
    )
    check(
        geometry.sub_group_size == result.record.candidate.sub_group_size,
        "configurator serves the freshly tuned geometry",
        failures,
    )

    nb, n = 4, 16
    matrix = three_point_stencil(n, nb)
    b = stencil_rhs(n, nb, seed=5)
    x = np.zeros((nb, n))
    iters = np.zeros(nb, dtype=np.int64)

    if args.backend == "wide":
        from repro.wide.queue import WideQueue

        queue = WideQueue()
    else:
        if args.backend in ("cuda", "cudasim"):
            print(
                "tune smoke: the tuned-geometry launch uses the SYCL-dialect "
                "kernel; running it on the sycl queue"
            )
        queue = Queue()

    def tuned_launch(q, x_out, out_iters):
        q.parallel_for(
            geometry.plan(nb).nd_range(),
            batch_cg_kernel,
            args=(
                matrix.row_ptrs,
                matrix.col_idxs,
                matrix.values,
                b,
                x_out,
                1.0 / matrix.diagonal(),
                1e-8 * np.linalg.norm(b, axis=1),
                200,
                out_iters,
                False,
                None,
            ),
            local_specs=[LocalSpec(name, (n,)) for name in ("r", "z", "p", "t", "x")],
            name="batch_cg_fused_tuned",
        )

    print("\ntune smoke: fused kernel at the tuned geometry, sanitized")
    sanitizer = Sanitizer()
    with use_sanitizer(sanitizer):
        tuned_launch(queue, x, iters)
    check(sanitizer.stats.launches == 1, "sanitizer observed the launch", failures)
    check(sanitizer.clean, "tuned-geometry launch is violation-free", failures)
    check(bool((iters < 200).all()), "every system converged", failures)
    if args.backend == "wide":
        # re-launch bare: the lockstep execution must reproduce the
        # sanitized (faithful-fallback) result at the tuned geometry
        x_wide = np.zeros((nb, n))
        iters_wide = np.zeros(nb, dtype=np.int64)
        tuned_launch(queue, x_wide, iters_wide)
        check(
            bool(np.allclose(x_wide, x, rtol=1e-9, atol=1e-12)),
            "lockstep launch matches the faithful result",
            failures,
        )
        check(
            bool((iters_wide == iters).all()),
            "lockstep iteration counts match",
            failures,
        )
    residual = b - matrix.apply(x)
    rel = np.linalg.norm(residual, axis=1) / np.linalg.norm(b, axis=1)
    check(bool((rel < 1e-7).all()), "solutions solve the systems", failures)
    check(
        result.record.modeled_seconds <= result.record.default_seconds,
        "tuned geometry still beats the default",
        failures,
    )
    print(format_summary(sanitizer))
    if failures:
        print(f"tune smoke (sanitize): {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("tune smoke (sanitize): OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
