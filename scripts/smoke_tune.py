#!/usr/bin/env python
"""Fast contract checks of the autotuning subsystem (CI smoke).

Small workload, tiny budget, temp-file TuningDB — verifies in a few
seconds that:

* seeded random search runs under budget and never loses to the default;
* the same seed replays the identical search result (determinism);
* a second tune of the same key is a DB cache hit with no new
  measurements, including through a fresh ``TuningDB`` instance reloading
  the persisted file;
* ``clear`` forces a re-search;
* the serving plan cache invalidates its plans when the DB generation
  changes.

Usage: python scripts/smoke_tune.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(f"  {'ok' if condition else 'FAIL'}: {label}")
    if not condition:
        failures.append(label)


def main(argv: list[str] | None = None) -> int:
    from repro.hw.specs import gpu
    from repro.serve.plan_cache import PlanCache
    from repro.serve.request import BatchKey
    from repro.tune import RANDOM, Autotuner, TuningDB, stencil_workload

    failures: list[str] = []
    spec = gpu("pvc1")
    workload = stencil_workload(16, nb_solve=4)

    with tempfile.TemporaryDirectory(prefix="smoke_tune_") as tmp:
        db_path = Path(tmp) / "tuning_db.json"
        db = TuningDB(db_path)
        tuner = Autotuner(spec, db=db, strategy=RANDOM, budget=6, seed=3)

        print("tune smoke: seeded random search, tiny budget, temp DB")
        first = tuner.tune(workload)
        check(not first.from_cache, "first tune runs a search", failures)
        check(
            first.record.modeled_seconds <= first.record.default_seconds,
            "tuned config never loses to the default",
            failures,
        )
        check(
            first.search is not None and first.search.evaluations <= 6 + 1,
            "random search respects its budget (+ default measurement)",
            failures,
        )

        measurements = db.metrics.counter("tune.measurements").value
        second = tuner.tune(workload)
        check(second.from_cache, "same-key re-tune is a DB cache hit", failures)
        check(
            db.metrics.counter("tune.measurements").value == measurements,
            "cache hit runs no new measurements",
            failures,
        )

        # determinism: a fresh in-memory search with the same seed replays
        replay = Autotuner(spec, db=TuningDB(), strategy=RANDOM, budget=6, seed=3)
        check(
            replay.tune(workload).record.candidate == first.record.candidate,
            "same seed reproduces the same winner",
            failures,
        )

        # persistence: a brand-new DB instance reloads the stored record
        reloaded = Autotuner(spec, db=TuningDB(db_path), strategy=RANDOM, budget=6, seed=3)
        check(
            reloaded.tune(workload).from_cache,
            "persisted record survives a DB reload",
            failures,
        )

        removed = db.clear(device=spec.device.name)
        check(removed >= 1, "clear removes the stored record", failures)
        check(
            not tuner.tune(workload).from_cache,
            "tune after clear re-searches",
            failures,
        )

        # plan-cache invalidation: a DB mutation drops cached plans
        cache = PlanCache(spec.device, tuning_db=db)
        key = BatchKey(
            matrix_format="csr",
            num_rows=16,
            pattern_token="smoke",
            solver="cg",
            preconditioner="jacobi",
            criterion="relative",
            precision="double",
            tolerance=1e-8,
            max_iterations=100,
        )
        cache.plan_for(key)
        _, hit = cache.plan_for(key)
        check(hit, "plan cache hits on a repeated key", failures)
        db.clear()  # bumps the generation
        _, hit = cache.plan_for(key)
        invalidations = cache.metrics.counter("serve.plan_cache.invalidations").value
        check(
            not hit and invalidations == 1,
            "DB generation change invalidates cached plans",
            failures,
        )

    if failures:
        print(f"tune smoke: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("tune smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
