#!/usr/bin/env python
"""Measure profiler-off vs profiler-on fused-kernel solve time.

The profiler is opt-in, like the sanitizer and the tracer before it: with
no profiler installed every ``kernel_phase(...)`` marker is a single
contextvar lookup returning ``None`` and every counter hook is skipped,
so the *disabled* path must stay within a few percent of the production
baseline recorded by ``scripts/bench_sanitize_overhead.py``
(``metrics.per_solve_off_ms`` — the same fused-CG workload with neither
tool installed). The *enabled* path routes every global/SLM element touch
through a ``CountingArray`` proxy and attributes every flop to a phase;
it is allowed to cost a multiple, recorded here.

Writes ``BENCH_profile_overhead.json`` at the repo root by default.

Usage: python scripts/bench_profile_overhead.py [--out FILE]
       [--baseline BENCH_sanitize_overhead.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _time_kernel_solves(repeats: int, num_rows: int, nb: int, profiler) -> float:
    """Total seconds for ``repeats`` fused-CG solves; profiler=None => off."""
    from repro.kernels import run_batch_cg_on_device
    from repro.profile import use_profiler
    from repro.sycl.device import pvc_stack_device
    from repro.sycl.queue import Queue
    from repro.workloads.stencil import stencil_rhs, three_point_stencil

    matrix = three_point_stencil(num_rows, nb)
    rhs = stencil_rhs(num_rows, nb)
    device = pvc_stack_device(1)
    queue = Queue(device)

    def solve_once():
        run_batch_cg_on_device(device, matrix, rhs, tolerance=1e-9, queue=queue)
        queue.reset_events()

    solve_once()  # warmup (imports, caches)
    if profiler is None:
        start = time.perf_counter()
        for _ in range(repeats):
            solve_once()
        return time.perf_counter() - start

    with use_profiler(profiler):
        solve_once()  # warmup of the counted path
        start = time.perf_counter()
        for _ in range(repeats):
            solve_once()
        elapsed = time.perf_counter() - start
    return elapsed


def _baseline_per_solve_ms(path: Path) -> float | None:
    """``metrics.per_solve_off_ms`` from the sanitize-overhead artifact."""
    if not path.exists():
        return None
    try:
        from repro.bench.schema import load_bench

        return float(load_bench(path)["metrics"]["per_solve_off_ms"])
    except (ValueError, KeyError, TypeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_profile_overhead.json")
    parser.add_argument(
        "--baseline",
        default="BENCH_sanitize_overhead.json",
        help="sanitize-overhead artifact whose per_solve_off_ms is the "
        "uninstrumented production baseline (same workload)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--num-rows", type=int, default=16)
    parser.add_argument("--nb-solve", type=int, default=4)
    parser.add_argument(
        "--max-disabled-overhead-pct",
        type=float,
        default=5.0,
        help="acceptance bound for the disabled path vs the baseline",
    )
    args = parser.parse_args(argv)

    from repro.bench.schema import bench_payload, write_bench
    from repro.profile import Profiler

    off_s = _time_kernel_solves(args.repeats, args.num_rows, args.nb_solve, None)
    profiler = Profiler()
    on_s = _time_kernel_solves(args.repeats, args.num_rows, args.nb_solve, profiler)
    total = profiler.totals()

    per_solve_off_ms = off_s / args.repeats * 1e3
    per_solve_on_ms = on_s / args.repeats * 1e3
    baseline_ms = _baseline_per_solve_ms(Path(args.baseline))
    disabled_vs_baseline_pct = (
        100.0 * (per_solve_off_ms - baseline_ms) / baseline_ms
        if baseline_ms
        else None
    )

    payload = bench_payload(
        "profile_overhead",
        workload={
            "solver": "cg (fused simulator kernel)",
            "matrix": f"3pt-stencil n={args.num_rows}",
            "num_batch": args.nb_solve,
            "tolerance": 1e-9,
            "repeats": args.repeats,
            "baseline_artifact": str(args.baseline),
        },
        metrics={
            "profiler_off_s": off_s,
            "profiler_on_s": on_s,
            "on_slowdown_x": on_s / off_s if off_s > 0 else float("nan"),
            "per_solve_off_ms": per_solve_off_ms,
            "per_solve_on_ms": per_solve_on_ms,
            "baseline_per_solve_ms": baseline_ms,
            "disabled_vs_baseline_pct": disabled_vs_baseline_pct,
            "counted_per_repeat": {
                "flops": total.flops // (args.repeats + 1),
                "global_bytes": total.global_bytes // (args.repeats + 1),
                "slm_bytes": total.slm_bytes // (args.repeats + 1),
            },
        },
        notes=(
            "profiler_off is the production path (kernel_phase markers hit "
            "a None contextvar); the baseline is the sanitize-overhead "
            "sanitizer_off measurement of the same workload on the same "
            "machine, so disabled_vs_baseline_pct isolates the cost of "
            "having the markers compiled in at all"
        ),
    )
    out = write_bench(args.out, payload)
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")

    if disabled_vs_baseline_pct is None:
        print(
            f"bench_profile_overhead: no baseline at {args.baseline}; "
            "disabled-path bound not checked",
            file=sys.stderr,
        )
        return 0
    if disabled_vs_baseline_pct > args.max_disabled_overhead_pct:
        print(
            f"bench_profile_overhead: FAIL — disabled path "
            f"{disabled_vs_baseline_pct:.1f}% over baseline "
            f"(bound {args.max_disabled_overhead_pct:.1f}%)",
            file=sys.stderr,
        )
        return 1
    print(
        f"disabled path {disabled_vs_baseline_pct:+.1f}% vs baseline "
        f"(bound {args.max_disabled_overhead_pct:.1f}%): OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
