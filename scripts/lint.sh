#!/usr/bin/env bash
# Lint gate: run ruff when available, fall back to a bytecode compile check.
#
# The project's lint configuration lives in pyproject.toml ([tool.ruff]).
# CI containers without ruff installed still get a syntax-level gate via
# `python -m compileall`, so this script never requires a network install.
#
# Usage: scripts/lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "lint: ruff $(ruff --version | head -n1)"
    ruff check src scripts tests
    echo "lint: OK (ruff)"
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "lint: ruff (python module)"
    python -m ruff check src scripts tests
    echo "lint: OK (ruff)"
else
    echo "lint: ruff not installed — falling back to 'python -m compileall'" >&2
    python -m compileall -q src scripts tests
    echo "lint: OK (compileall fallback; install ruff for the full gate)"
fi
