#!/usr/bin/env python
"""Benchmark the fleet layer: shard scale-out, graceful drain, ring remap.

Drives ``repro.fleet.FleetService`` with the shared Poisson arrival
process over a key-diverse stencil workload and records:

* a sweep over shard count (1, 2, 4) at a fixed arrival rate and
  per-flush device dwell — the fleet's throughput must scale ≥ 2.5x at
  4 shards vs 1 (stacking on the serving layer's ~4x batching win);
* a graceful scale-down under load: every request admitted before the
  drain must complete (zero lost in-flight requests);
* consistent-hash remap factors: adding/removing a shard must remap
  ~1/N of the key space (gated at ≤ 1.5/N), and removal must not move
  any key between surviving shards.

Writes ``BENCH_fleet_scaling.json`` (see ``--out``).

Usage: python scripts/bench_fleet_scaling.py [--out BENCH_fleet_scaling.json]
       [--quick] [--rate 2000] [--requests 256]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.workloads.arrivals import (
    keyed_requests,
    pace,
    poisson_offsets,
    stencil_pattern,
)

#: Throughput factor at 4 shards vs 1 the manifest gates (>= 2.5).
SCALING_GATE = 2.5

#: Remap-factor gate: moved fraction x shard count must stay under this.
REMAP_GATE = 1.5


def _fleet_config(num_shards: int, *, num_requests: int, device_dwell_ms: float,
                  max_batch_size: int, backend: str):
    from repro.fleet import FleetConfig
    from repro.serve import ServeConfig

    return FleetConfig(
        serve=ServeConfig(
            max_batch_size=max_batch_size,
            max_wait_ms=5.0,
            max_pending=max(4 * num_requests, 64),
            num_workers=1,
            backend=backend,
            device_dwell_ms=device_dwell_ms,
        ),
        initial_replicas=num_shards,
        max_replicas=max(num_shards, 8),
        # many vnodes: per-shard ring arcs within a few % of 1/N, so the
        # busiest shard's key share — the scale-out ceiling — stays low
        virtual_nodes=256,
        max_pending=max(8 * num_requests, 256),
    )


def run_scaling_point(
    *,
    num_shards: int,
    arrival_rate: float,
    num_requests: int,
    num_keys: int,
    size: int,
    device_dwell_ms: float,
    max_batch_size: int,
    seed: int,
    backend: str,
) -> dict:
    """One fleet lifecycle at ``num_shards``: paced submission, full drain."""
    from repro.fleet import FleetService

    config = _fleet_config(
        num_shards,
        num_requests=num_requests,
        device_dwell_ms=device_dwell_ms,
        max_batch_size=max_batch_size,
        backend=backend,
    )
    pattern = stencil_pattern(size)
    rng = np.random.default_rng(seed)
    # loose tolerance: the host-side CG loop is simulation overhead here,
    # not the measured quantity — the dwell models the device time
    requests = keyed_requests(
        pattern, rng, size, num_requests, num_keys,
        solver="cg", layout="grouped", tolerance=1e-5,
    )
    offsets = poisson_offsets(arrival_rate, num_requests, rng)

    with FleetService(config) as fleet:
        start = time.perf_counter()
        tickets = pace(offsets, lambda i: fleet.submit(requests[i]))
        fleet.flush()
        outcomes = [t.result(timeout=120.0) for t in tickets]
        makespan_s = time.perf_counter() - start
        stats = fleet.shard_stats()
        hdr = fleet.latency_histogram()
        per_shard_served = {row["shard"]: row["served"] for row in stats}
        busiest = max(per_shard_served.values())

    assert all(o.converged for o in outcomes), "fleet workload must converge"
    return {
        "shards": num_shards,
        "arrival_rate_rps": arrival_rate,
        "requests": num_requests,
        "distinct_keys": num_keys,
        "makespan_s": round(makespan_s, 4),
        "throughput_rps": round(num_requests / makespan_s, 1),
        "latency_p50_ms": round(hdr.percentile(50.0), 3),
        "latency_p99_ms": round(hdr.percentile(99.0), 3),
        "per_shard_served": per_shard_served,
        "busiest_shard_fraction": round(busiest / num_requests, 4),
    }


def run_drain_test(
    *, size: int, num_requests: int, device_dwell_ms: float, seed: int, backend: str
) -> dict:
    """Scale down under load; count every admitted request to completion."""
    from repro.fleet import FleetService

    config = _fleet_config(
        2,
        num_requests=num_requests,
        device_dwell_ms=device_dwell_ms,
        max_batch_size=4,
        backend=backend,
    )
    pattern = stencil_pattern(size)
    rng = np.random.default_rng(seed)
    requests = keyed_requests(pattern, rng, size, num_requests, 32, solver="cg")

    with FleetService(config) as fleet:
        tickets = [fleet.submit(r) for r in requests]
        fleet.flush()
        in_flight = fleet.pending
        drained = fleet.scale_down(1)  # graceful: ring-off, flush, wait, close
        lost = 0
        for ticket in tickets:
            try:
                outcome = ticket.result(timeout=60.0)
                if not outcome.converged:
                    lost += 1
            except Exception:
                lost += 1
        rebalances = sum(
            1 for ev in fleet.events.events() if ev.type == "fleet.rebalance"
        )

    return {
        "requests": num_requests,
        "in_flight_at_drain": in_flight,
        "drained_shards": drained,
        "lost_requests": lost,
        "rebalance_events": rebalances,
        "replicas_after": 1,
    }


def run_ring_remap(*, num_keys: int, num_shards: int, virtual_nodes: int) -> dict:
    """Measure the key-space fraction remapped by one membership change."""
    from repro.fleet import HashRing

    keys = [f"batchkey-{i}" for i in range(num_keys)]
    ring = HashRing(virtual_nodes)
    for i in range(num_shards):
        ring.add(f"shard-{i}")
    before = ring.assignments(keys)

    # add one shard: ~1/(N+1) of keys should move, all of them to the newcomer
    ring.add(f"shard-{num_shards}")
    after_add = ring.assignments(keys)
    moved_add = [k for k in before if before[k] != after_add[k]]
    stray_add = [k for k in moved_add if after_add[k] != f"shard-{num_shards}"]
    add_fraction = len(moved_add) / num_keys

    # remove it again: exactly its keys move back, none between survivors
    ring.remove(f"shard-{num_shards}")
    after_remove = ring.assignments(keys)
    moved_remove = [k for k in after_add if after_add[k] != after_remove[k]]
    collateral = [k for k in moved_remove if after_add[k] != f"shard-{num_shards}"]
    remove_fraction = len(moved_remove) / num_keys

    occupancy = ring.occupancy()
    return {
        "keys": num_keys,
        "shards": num_shards,
        "virtual_nodes": virtual_nodes,
        "add_moved_fraction": round(add_fraction, 4),
        "add_remap_x_n": round(add_fraction * (num_shards + 1), 3),
        "add_stray_keys": len(stray_add),
        "remove_moved_fraction": round(remove_fraction, 4),
        "remove_remap_x_n": round(remove_fraction * (num_shards + 1), 3),
        "remove_collateral_keys": len(collateral),
        "occupancy_min": round(min(occupancy.values()), 4),
        "occupancy_max": round(max(occupancy.values()), 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fleet_scaling.json")
    parser.add_argument("--rate", type=float, default=2000.0, help="arrival rate (req/s)")
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--keys", type=int, default=64, help="distinct BatchKeys")
    parser.add_argument("--size", type=int, default=16, help="rows per system")
    parser.add_argument("--dwell-ms", type=float, default=100.0,
                        help="simulated device occupancy per flush")
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument("--shard-counts", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--backend", choices=["sycl", "cuda", "cudasim", "wide"],
                        default="sycl")
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    if args.quick:
        args.requests = min(args.requests, 128)
        args.keys = min(args.keys, 32)

    sweep = []
    for num_shards in args.shard_counts:
        point = run_scaling_point(
            num_shards=num_shards,
            arrival_rate=args.rate,
            num_requests=args.requests,
            num_keys=args.keys,
            size=args.size,
            device_dwell_ms=args.dwell_ms,
            max_batch_size=args.batch_size,
            seed=args.seed,
            backend=args.backend,
        )
        sweep.append(point)
        print(
            f"shards={num_shards}: {point['throughput_rps']:8.1f} req/s, "
            f"p50 {point['latency_p50_ms']:7.2f} ms, "
            f"p99 {point['latency_p99_ms']:7.2f} ms, "
            f"busiest shard {point['busiest_shard_fraction']:.0%}"
        )

    one = next((p for p in sweep if p["shards"] == 1), None)
    four = next((p for p in sweep if p["shards"] == 4), None)
    scaling = None
    if one and four:
        scaling = {
            "throughput_1_shard_rps": one["throughput_rps"],
            "throughput_4_shard_rps": four["throughput_rps"],
            "speedup_4x": round(four["throughput_rps"] / one["throughput_rps"], 2),
        }
        print(
            f"\nscale-out win: {scaling['speedup_4x']}x throughput "
            f"({one['throughput_rps']:.0f} -> {four['throughput_rps']:.0f} req/s)"
        )

    drain = run_drain_test(
        size=args.size,
        num_requests=64 if not args.quick else 32,
        device_dwell_ms=2 * args.dwell_ms,
        seed=args.seed + 3,
        backend=args.backend,
    )
    print(
        f"drain: {drain['in_flight_at_drain']} in flight at scale-down, "
        f"lost {drain['lost_requests']}, "
        f"{drain['rebalance_events']} rebalance events"
    )

    ring = run_ring_remap(num_keys=4096, num_shards=4, virtual_nodes=64)
    print(
        f"ring: add remap {ring['add_moved_fraction']:.1%} of keys "
        f"({ring['add_remap_x_n']}/N), remove remap "
        f"{ring['remove_moved_fraction']:.1%} ({ring['remove_remap_x_n']}/N), "
        f"collateral {ring['remove_collateral_keys']}"
    )

    from repro.bench.schema import bench_payload, write_bench

    report = bench_payload(
        "fleet_scaling",
        workload={
            "system_rows": args.size,
            "requests_per_point": args.requests,
            "distinct_keys": args.keys,
            "arrival_rate_rps": args.rate,
            "arrival": "poisson",
            "device_dwell_ms": args.dwell_ms,
            "max_batch_size": args.batch_size,
            "solver": "cg",
            "preconditioner": "jacobi",
            "backend": args.backend,
        },
        metrics={
            "sweep": sweep,
            "scaling": scaling,
            "drain": drain,
            "ring": ring,
        },
    )
    out = write_bench(args.out, report)
    print(f"\nwrote {out}")

    # acceptance checks (return non-zero so CI can gate on them)
    failures = []
    if scaling and scaling["speedup_4x"] < SCALING_GATE:
        failures.append(
            f"4-shard speedup {scaling['speedup_4x']}x < {SCALING_GATE}x"
        )
    if drain["lost_requests"] != 0:
        failures.append(f"drain lost {drain['lost_requests']} in-flight requests")
    if ring["add_remap_x_n"] > REMAP_GATE or ring["remove_remap_x_n"] > REMAP_GATE:
        failures.append("consistent-hash remap factor above 1.5/N")
    if ring["add_stray_keys"] or ring["remove_collateral_keys"]:
        failures.append("membership change moved keys between uninvolved shards")
    for failure in failures:
        print(f"bench_fleet_scaling: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
