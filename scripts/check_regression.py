#!/usr/bin/env python
"""Perf-regression gate: compare BENCH_*.json against a committed manifest.

Every committed benchmark artifact (schema-v1, see
:mod:`repro.bench.schema`) is checked against
``benchmarks/baseline_manifest.json``, which records per metric:

.. code-block:: json

    {
      "schema_version": 1,
      "benchmarks": {
        "BENCH_serve_throughput.json": {
          "metrics": {
            "batching_win.speedup":
              {"baseline": 2.1, "direction": "higher", "tolerance_pct": 15.0}
          }
        }
      }
    }

``direction: "higher"`` means higher is better — the gate fails when the
current value drops below ``baseline * (1 - tolerance_pct/100)``.
``"lower"`` is the mirror (latencies, slowdown ratios): fail above
``baseline * (1 + tolerance_pct/100)``. Metric keys are the dotted paths
of :func:`repro.bench.schema.flatten_metrics`, so nested sweep points are
addressable (``sweep.2.throughput_rps``).

A missing artifact or a manifest metric absent from the artifact is a
hard failure — a benchmark silently dropping a measurement must not read
as "no regression". Improvements beyond tolerance are reported (so stale
baselines get refreshed) but never fail the gate.

Usage: python scripts/check_regression.py [--manifest FILE] [--root DIR]
       [--update]    # rewrite manifest baselines from the current artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

MANIFEST_SCHEMA_VERSION = 1


def load_manifest(path: Path) -> dict:
    manifest = json.loads(path.read_text())
    version = manifest.get("schema_version")
    if version != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: manifest schema_version {version!r} unsupported"
        )
    return manifest


def check_metric(name: str, value: float, rule: dict) -> tuple[str, str]:
    """``(status, detail)`` where status is ok / improved / REGRESSION."""
    baseline = float(rule["baseline"])
    direction = rule["direction"]
    tolerance = float(rule.get("tolerance_pct", 10.0)) / 100.0
    if direction not in ("higher", "lower"):
        raise ValueError(f"{name}: direction must be 'higher' or 'lower'")

    # tolerance band of width tolerance*|baseline| on the bad side; the
    # abs() keeps the band sane for negative baselines (overhead deltas)
    # and makes a zero baseline an exact gate (any bad-direction move fails)
    band = tolerance * abs(baseline)
    if direction == "higher":
        bad = value < baseline - band
    else:
        bad = value > baseline + band
    delta_pct = (
        100.0 * (value - baseline) / abs(baseline)
        if baseline != 0.0
        else (0.0 if value == baseline else float("inf"))
    )

    detail = (
        f"{name}: {value:g} vs baseline {baseline:g} "
        f"({delta_pct:+.1f}%, {direction} is better, "
        f"tolerance {tolerance * 100.0:.0f}%)"
    )
    if bad:
        return "REGRESSION", detail
    improved = (
        delta_pct > tolerance * 100.0
        if direction == "higher"
        else delta_pct < -tolerance * 100.0
    )
    return ("improved" if improved else "ok"), detail


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--manifest", default=None, help="default: benchmarks/baseline_manifest.json"
    )
    parser.add_argument(
        "--root", default=None, help="directory holding the BENCH_*.json artifacts"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite manifest baselines from the current artifacts "
        "(directions and tolerances are kept)",
    )
    args = parser.parse_args(argv)

    from repro.bench.schema import flatten_metrics, load_bench

    repo = Path(__file__).resolve().parent.parent
    manifest_path = Path(args.manifest or repo / "benchmarks" / "baseline_manifest.json")
    root = Path(args.root) if args.root else repo
    manifest = load_manifest(manifest_path)

    failures: list[str] = []
    improvements: list[str] = []
    checked = 0
    for artifact_name, entry in sorted(manifest["benchmarks"].items()):
        artifact_path = root / artifact_name
        if not artifact_path.exists():
            failures.append(f"{artifact_name}: artifact missing at {artifact_path}")
            continue
        try:
            payload = load_bench(artifact_path)
        except ValueError as err:
            failures.append(str(err))
            continue
        flat = flatten_metrics(payload)
        for metric_name, rule in sorted(entry["metrics"].items()):
            if metric_name not in flat:
                failures.append(
                    f"{artifact_name}: metric {metric_name!r} absent from artifact"
                )
                continue
            if args.update:
                rule["baseline"] = flat[metric_name]
                continue
            status, detail = check_metric(metric_name, flat[metric_name], rule)
            checked += 1
            print(f"[{status:>10}] {artifact_name} :: {detail}")
            if status == "REGRESSION":
                failures.append(f"{artifact_name}: {detail}")
            elif status == "improved":
                improvements.append(f"{artifact_name}: {detail}")

    if args.update:
        if failures:
            for failure in failures:
                print(f"check_regression: FAIL — {failure}", file=sys.stderr)
            return 1
        manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        print(f"updated baselines in {manifest_path}")
        return 0

    if improvements:
        print(
            f"\n{len(improvements)} metric(s) improved beyond tolerance — "
            "consider refreshing baselines with --update"
        )
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"check_regression: FAIL — {failure}", file=sys.stderr)
        return 1
    print(f"\ncheck_regression: OK ({checked} metric(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
