#!/usr/bin/env python
"""Fleet smoke check: exercise the fleet's contracts on a tiny workload.

Covers, in a few seconds, the behaviours CI must not regress:

* routing — every request of one ``BatchKey`` lands on the same shard,
  and the router's choice is deterministic across processes (SHA-1 ring);
* remap bound — adding/removing a shard moves ≤ 1.5/N of a synthetic key
  population and never moves keys between uninvolved shards;
* graceful drain — a scale-down with requests in flight completes every
  admitted ticket (zero drops) and emits ``fleet.rebalance`` events;
* fleet admission — submits beyond the fleet's ``max_pending`` raise
  :class:`~repro.exceptions.ServiceSaturatedError` with a retry hint
  before any shard queue is touched;
* isolation — each shard serves its keys from its own plan cache (every
  shard that served traffic reports its own hits/misses).

Exits non-zero with a diagnostic on the first violated contract.

Usage: python scripts/smoke_fleet.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np


def _fail(message: str) -> int:
    print(f"smoke_fleet: FAIL — {message}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    from repro.exceptions import ServiceSaturatedError
    from repro.fleet import FleetConfig, FleetService, HashRing
    from repro.serve import ServeConfig
    from repro.workloads.arrivals import keyed_requests, stencil_pattern

    size = 16
    pattern = stencil_pattern(size)
    rng = np.random.default_rng(5)

    # -- routing determinism + per-key affinity ------------------------------
    config = FleetConfig(
        serve=ServeConfig(max_batch_size=4, max_wait_ms=5.0, num_workers=1),
        initial_replicas=3,
        max_replicas=4,
    )
    with FleetService(config) as fleet:
        requests = keyed_requests(pattern, rng, size, 48, 16, solver="cg")
        ring_before = {
            repr(r.batch_key): fleet.ring.node_for(r.batch_key) for r in requests
        }
        tickets = [fleet.submit(r) for r in requests]
        fleet.flush()
        outcomes = [t.result(timeout=60.0) for t in tickets]
        if not all(o.converged for o in outcomes):
            return _fail("fleet workload did not converge")
        # same key -> same shard, and exactly where the ring said
        for request in requests:
            if fleet.ring.node_for(request.batch_key) != ring_before[repr(request.batch_key)]:
                return _fail("ring lookup is not deterministic")
        stats = fleet.shard_stats()
        served_shards = [row for row in stats if row["served"] > 0]
        if len(served_shards) < 2:
            return _fail(
                f"16 distinct keys exercised only {len(served_shards)} shard(s)"
            )
        # per-shard plan caches: every shard that served traffic did its own
        # planning (no shared cache between replicas)
        for shard in fleet.shards():
            served = shard.service.metrics.counter("serve.served").value
            lookups = shard.service.plan_cache.hits + shard.service.plan_cache.misses
            if served > 0 and lookups == 0:
                return _fail(f"{shard.name} served requests without its own plans")
        occupancy = fleet.ring_occupancy()
        if abs(sum(occupancy.values()) - 1.0) > 1e-9:
            return _fail("ring occupancy does not sum to 1")
    print(
        f"smoke_fleet: routing OK — 48 requests over 16 keys hit "
        f"{len(served_shards)}/3 shards, occupancy sums to 1"
    )

    # -- consistent-hash remap bound -----------------------------------------
    keys = [f"key-{i}" for i in range(2048)]
    ring = HashRing(virtual_nodes=64)
    for i in range(4):
        ring.add(f"shard-{i}")
    before = ring.assignments(keys)
    ring.add("shard-4")
    after = ring.assignments(keys)
    moved = [k for k in keys if before[k] != after[k]]
    if any(after[k] != "shard-4" for k in moved):
        return _fail("adding a shard moved keys between pre-existing shards")
    if len(moved) / len(keys) > 1.5 / 5:
        return _fail(
            f"adding a 5th shard remapped {len(moved) / len(keys):.1%} > 1.5/N of keys"
        )
    ring.remove("shard-4")
    restored = ring.assignments(keys)
    if restored != before:
        return _fail("remove did not restore the pre-add assignment")
    print(
        f"smoke_fleet: ring OK — add remapped {len(moved) / len(keys):.1%} of keys "
        "(≤ 1.5/N), remove restored the original assignment"
    )

    # -- graceful drain: zero dropped in-flight requests ---------------------
    drain_config = FleetConfig(
        serve=ServeConfig(
            max_batch_size=4, max_wait_ms=5.0, num_workers=1, device_dwell_ms=20.0
        ),
        initial_replicas=2,
    )
    with FleetService(drain_config) as fleet:
        requests = keyed_requests(pattern, rng, size, 32, 8, solver="cg")
        tickets = [fleet.submit(r) for r in requests]
        fleet.flush()
        drained = fleet.scale_down(1)
        if len(drained) != 1:
            return _fail(f"scale_down drained {len(drained)} shards, expected 1")
        lost = 0
        for ticket in tickets:
            try:
                if not ticket.result(timeout=60.0).converged:
                    lost += 1
            except Exception:
                lost += 1
        if lost:
            return _fail(f"graceful drain lost {lost} in-flight requests")
        if fleet.num_replicas != 1:
            return _fail(f"{fleet.num_replicas} replicas after drain, expected 1")
        rebalances = [
            ev for ev in fleet.events.events() if ev.type == "fleet.rebalance"
        ]
        actions = {ev.fields.get("action") for ev in rebalances}
        if not {"drain_begin", "drain_complete"} <= actions:
            return _fail(f"drain emitted rebalance actions {actions}")
    print(
        f"smoke_fleet: drain OK — {drained[0]} drained under load, "
        "0 requests lost, rebalance events emitted"
    )

    # -- fleet-level admission control ---------------------------------------
    tight = FleetConfig(
        serve=ServeConfig(
            max_batch_size=64, max_wait_ms=500.0, max_pending=64, num_workers=1
        ),
        initial_replicas=2,
        max_pending=4,
    )
    with FleetService(tight) as fleet:
        requests = keyed_requests(pattern, rng, size, 5, 5, solver="cg")
        held = [fleet.submit(r) for r in requests[:4]]
        try:
            fleet.submit(requests[4])
        except ServiceSaturatedError as exc:
            if exc.retry_after_s <= 0:
                return _fail("fleet saturation carries no retry_after_s hint")
        else:
            return _fail("submit beyond fleet max_pending did not raise")
        if fleet.metrics.counter("fleet.rejected").value != 1:
            return _fail("fleet.rejected counter did not record the rejection")
        fleet.flush()
        for ticket in held:
            if not ticket.result(timeout=60.0).converged:
                return _fail("held requests did not complete after flush")
    print("smoke_fleet: admission OK — fleet backpressure fires before shard queues")

    print("smoke_fleet: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
