#!/usr/bin/env python
"""Benchmark the chaos harness: trace replay vs the SLO gate.

Three sections, all seeded and deterministic in their fault schedules:

* ``clean`` — a diurnal multi-tenant trace replayed against an unfaulted
  service must come back SLO-compliant (every ``repro.telemetry.slo``
  objective green) with zero lost requests and zero fallbacks;
* ``faults`` — the same trace under the full ``FaultPlan.battery``
  (worker deaths, poisoned/singular batches, device delays, sanitizer
  trips) must lose nothing: every request completes or fails with a
  *structured* error (no status-500 escapes);
* ``breaker`` — a fallback storm must open the circuit breaker, and
  healthy traffic after the cooldown must close it again.

Writes ``BENCH_chaos_slo.json`` (see ``--out``), gated by
``benchmarks/baseline_manifest.json`` via ``scripts/check_regression.py``.

Usage: python scripts/bench_chaos_slo.py [--out BENCH_chaos_slo.json]
       [--quick] [--requests 96] [--rate 400] [--seed 7]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np


def _service_factory(chaos=None, **overrides):
    from repro.serve import ServeConfig, SolverService

    defaults = dict(max_batch_size=8, max_wait_ms=2.0, num_workers=2)
    defaults.update(overrides)
    config = ServeConfig(**defaults)
    return lambda: SolverService(config, chaos=chaos)


def run_replay_section(*, seed: int, num_requests: int, rate_rps: float,
                       size: int, threshold_ms: float, with_faults: bool) -> dict:
    """One scored replay: the diurnal trace, optionally under the battery."""
    from repro.chaos import ChaosInjector, FaultPlan
    from repro.chaos.replay import build_trace, run_replay

    trace = build_trace(
        seed=seed, num_requests=num_requests, rate_rps=rate_rps, pattern="diurnal"
    )
    chaos = ChaosInjector(FaultPlan.battery(seed=seed)) if with_faults else None
    report = run_replay(
        trace,
        _service_factory(chaos),
        seed=seed,
        size=size,
        latency_threshold_ms=threshold_ms,
        result_timeout_s=60.0,
    )
    metrics = report.to_metrics()
    metrics["unstructured_failures"] = report.statuses.get(500, 0)
    return metrics


def run_breaker_section(*, seed: int, size: int) -> dict:
    """Storm -> open -> cooldown -> healthy probe -> close, measured."""
    from repro.chaos import ChaosInjector, FaultPlan, FaultSpec
    from repro.chaos.plan import POISON_BATCH
    from repro.serve import ServeConfig, SolverService
    from repro.workloads.arrivals import stencil_pattern

    pattern = stencil_pattern(size)
    rng = np.random.default_rng(seed)

    def request():
        from repro.serve import SolveRequest

        matrix = pattern.copy()
        scale = rng.uniform(0.95, 1.05, size=size)
        rows = np.repeat(np.arange(size), np.diff(matrix.indptr))
        matrix.data = matrix.data * scale[rows] * scale[matrix.indices]
        return SolveRequest(
            matrix, rng.standard_normal(size), solver="cg", preconditioner="jacobi"
        )

    # poison exactly the first flush: its four rescued requests are all
    # bad outcomes, tripping the breaker at min_events=4
    chaos = ChaosInjector(
        FaultPlan(seed, (FaultSpec(POISON_BATCH, every=1, max_faults=1),))
    )
    config = ServeConfig(
        max_batch_size=4,
        max_wait_ms=60_000.0,
        num_workers=1,
        breaker_window=8,
        breaker_min_events=4,
        breaker_threshold=0.5,
        breaker_cooldown_s=0.05,
    )
    with SolverService(config, chaos=chaos) as service:
        storm = [service.submit(request()) for _ in range(4)]
        storm_errors = sum(1 for t in storm if t.exception(timeout=60.0) is not None)
        opened = int(service.metrics.counter("serve.breaker_opens").value)
        open_state = service.breaker.state

        time.sleep(0.1)  # past the cooldown: half-open
        healthy = [service.submit(request()) for _ in range(4)]
        probe_errors = sum(
            1 for t in healthy if t.exception(timeout=60.0) is not None
        )
        closed = int(service.metrics.counter("serve.breaker_closes").value)
        closed_state = service.breaker.state

    return {
        "opened": opened,
        "state_after_storm": open_state,
        "closed_after_recovery": closed,
        "state_after_recovery": closed_state,
        "storm_errors": storm_errors,
        "probe_errors": probe_errors,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_chaos_slo.json")
    parser.add_argument("--requests", type=int, default=96)
    parser.add_argument("--rate", type=float, default=400.0, help="arrival rate (req/s)")
    parser.add_argument("--size", type=int, default=16, help="rows per system")
    parser.add_argument("--threshold-ms", type=float, default=500.0,
                        help="SLO latency objective")
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.quick:
        args.requests = min(args.requests, 48)

    clean = run_replay_section(
        seed=args.seed, num_requests=args.requests, rate_rps=args.rate,
        size=args.size, threshold_ms=args.threshold_ms, with_faults=False,
    )
    print(
        f"clean:   {clean['completed']}/{clean['total_requests']} completed, "
        f"p99 {clean['latency_p99_ms']:.1f} ms, "
        f"SLO {'compliant' if clean['slo_compliant'] else 'VIOLATED'}"
    )

    faults = run_replay_section(
        seed=args.seed, num_requests=args.requests, rate_rps=args.rate,
        size=args.size, threshold_ms=args.threshold_ms, with_faults=True,
    )
    print(
        f"faults:  {faults['injected_total']} injected, "
        f"lost {faults['lost_requests']}, "
        f"unstructured {faults['unstructured_failures']}, "
        f"{faults['completed']} completed / {faults['total_requests']}"
    )

    breaker = run_breaker_section(seed=args.seed, size=args.size)
    print(
        f"breaker: opened {breaker['opened']}x under the storm "
        f"({breaker['state_after_storm']}), closed "
        f"{breaker['closed_after_recovery']}x after recovery "
        f"({breaker['state_after_recovery']})"
    )

    from repro.bench.schema import bench_payload, write_bench

    report = bench_payload(
        "chaos_slo",
        workload={
            "system_rows": args.size,
            "requests": args.requests,
            "arrival_rate_rps": args.rate,
            "arrival": "diurnal",
            "latency_threshold_ms": args.threshold_ms,
            "fault_plan": "battery",
            "seed": args.seed,
        },
        metrics={"clean": clean, "faults": faults, "breaker": breaker},
    )
    out = write_bench(args.out, report)
    print(f"\nwrote {out}")

    # acceptance checks (non-zero exit so CI can gate directly)
    failures = []
    if not clean["slo_compliant"]:
        failures.append("clean replay violated the SLO set")
    if clean["lost_requests"]:
        failures.append(f"clean replay lost {clean['lost_requests']} requests")
    if faults["lost_requests"]:
        failures.append(f"fault battery lost {faults['lost_requests']} requests")
    if faults["unstructured_failures"]:
        failures.append(
            f"{faults['unstructured_failures']} failures escaped unstructured (500)"
        )
    if faults["injected_total"] < 1:
        failures.append("the battery injected nothing")
    if breaker["opened"] != 1 or breaker["state_after_storm"] != "open":
        failures.append("the fallback storm did not open the breaker")
    if breaker["closed_after_recovery"] != 1 or breaker["state_after_recovery"] != "closed":
        failures.append("the breaker did not close after recovery")
    for failure in failures:
        print(f"bench_chaos_slo: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
