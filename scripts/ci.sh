#!/usr/bin/env bash
# CI gate: tier-1 tests, lint, the smoke checks, and the perf-regression
# gate over the committed BENCH_*.json artifacts.
#
# Mirrors what the reproducibility driver expects to hold: the full test
# suite green, the lint gate clean, the tracing pipeline producing valid
# Chrome traces, the serving layer honouring its contracts, the profiler
# attributing counters on both backends with green model drift, and the
# committed benchmark artifacts within tolerance of the baseline
# manifest. Every stage is a hard gate: set -e aborts the script (and
# fails CI) on the first non-zero exit — no warn-and-continue stages.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== lint =="
bash scripts/lint.sh

echo
echo "== trace smoke =="
python scripts/smoke_trace.py --out /tmp/ci_trace_smoke.json

echo
echo "== serve smoke =="
python scripts/smoke_serve.py

echo
echo "== fleet smoke =="
python scripts/smoke_fleet.py

echo
echo "== tune smoke =="
python scripts/smoke_tune.py --sanitize

echo
echo "== profile smoke =="
python scripts/smoke_profile.py --out /tmp/ci_profile_smoke.folded

echo
echo "== slo check =="
# clean workload: every objective healthy, exit 0
python -m repro slo check --requests 16 --epochs 3 --size 8
# seeded latency regression: the burn-rate alert must page (non-zero exit)
if python -m repro slo check --requests 16 --epochs 3 --size 8 \
    --inject-latency-ms 5000 --inject-fraction 0.4 >/dev/null 2>&1; then
    echo "slo check: seeded latency regression was NOT detected" >&2
    exit 1
fi
echo "slo check: seeded regression detected (non-zero exit) — OK"

echo
echo "== telemetry smoke =="
# one dashboard frame renders, and the overhead bench holds its
# (quick-mode) disabled-path bound
python -m repro top --frames 1 --interval 0.05 --requests 12 --size 8 >/dev/null
python scripts/bench_telemetry_overhead.py --quick \
    --out /tmp/ci_telemetry_overhead.json >/dev/null

echo
echo "== wide-diff =="
# lockstep wide backend vs the faithful interpreter across the
# differential grid, then the quick-mode speedup bench (same >= 20x
# hot-path gate as the committed BENCH_wide_speedup.json artifact)
python -m repro sanitize diff --backends sycl,wide
python scripts/bench_wide_speedup.py --quick --out /tmp/ci_wide_speedup.json

echo
echo "== chaos-gate =="
# seeded fault battery: every fault kind fires, zero lost tickets, every
# failure structured — then the replay SLO bench in quick mode, checked
# against the committed baseline manifest
python -m repro chaos battery --requests 40 --batch-size 4 --size 12
python -m repro chaos battery --requests 40 --batch-size 4 --size 12 --shards 2
python scripts/bench_chaos_slo.py --quick --out /tmp/ci_chaos_slo.json

echo
echo "== recorder smoke =="
# flight recorder end to end: the quick-mode overhead/attribution bench,
# then a live bundle driven through every postmortem verb
python scripts/bench_recorder_overhead.py --quick \
    --out /tmp/ci_recorder_overhead.json >/dev/null
rm -rf /tmp/ci_recorder_bundles
python -m repro chaos battery --requests 40 --batch-size 4 --size 12 \
    --bundle-dir /tmp/ci_recorder_bundles --dump-bundle
python -m repro postmortem analyze /tmp/ci_recorder_bundles >/dev/null
python -m repro postmortem timeline /tmp/ci_recorder_bundles --limit 5 >/dev/null

echo
echo "== coverage floor =="
# tier1 (serve/fleet/chaos/telemetry/recorder) under the stdlib line
# tracer: >= 85% of src/repro/serve + src/repro/fleet executable lines,
# >= 80% of src/repro/observability + telemetry + recorder
python scripts/coverage_gate.py --floor 85 --obs-floor 80

echo
echo "== perf-regression gate =="
python scripts/check_regression.py

echo
echo "== sanitize =="
python -m repro sanitize selftest
# fast checked subset: detector/shadow units plus every kernel test
# re-run under a suite-wide sanitizer (SANITIZE=1)
SANITIZE=1 python -m pytest -q \
    tests/sanitize/test_detectors.py \
    tests/sanitize/test_shadow.py \
    tests/sanitize/test_sanitize_cli.py \
    tests/kernels

echo
echo "ci: OK"
