#!/usr/bin/env bash
# CI gate: tier-1 tests, lint, and the two smoke checks.
#
# Mirrors what the reproducibility driver expects to hold: the full test
# suite green, the lint gate clean, the tracing pipeline producing valid
# Chrome traces, and the serving layer honouring its contracts.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== lint =="
bash scripts/lint.sh

echo
echo "== trace smoke =="
python scripts/smoke_trace.py --out /tmp/ci_trace_smoke.json

echo
echo "== serve smoke =="
python scripts/smoke_serve.py

echo
echo "== tune smoke =="
python scripts/smoke_tune.py

echo
echo "ci: OK"
