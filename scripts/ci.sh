#!/usr/bin/env bash
# CI gate: tier-1 tests, lint, and the two smoke checks.
#
# Mirrors what the reproducibility driver expects to hold: the full test
# suite green, the lint gate clean, the tracing pipeline producing valid
# Chrome traces, and the serving layer honouring its contracts.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== lint =="
bash scripts/lint.sh

echo
echo "== trace smoke =="
python scripts/smoke_trace.py --out /tmp/ci_trace_smoke.json

echo
echo "== serve smoke =="
python scripts/smoke_serve.py

echo
echo "== tune smoke =="
python scripts/smoke_tune.py --sanitize

echo
echo "== sanitize =="
python -m repro sanitize selftest
# fast checked subset: detector/shadow units plus every kernel test
# re-run under a suite-wide sanitizer (SANITIZE=1)
SANITIZE=1 python -m pytest -q \
    tests/sanitize/test_detectors.py \
    tests/sanitize/test_shadow.py \
    tests/sanitize/test_sanitize_cli.py \
    tests/kernels

echo
echo "ci: OK"
