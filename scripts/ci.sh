#!/usr/bin/env bash
# CI gate: tier-1 tests, lint, the smoke checks, and the perf-regression
# gate over the committed BENCH_*.json artifacts.
#
# Mirrors what the reproducibility driver expects to hold: the full test
# suite green, the lint gate clean, the tracing pipeline producing valid
# Chrome traces, the serving layer honouring its contracts, the profiler
# attributing counters on both backends with green model drift, and the
# committed benchmark artifacts within tolerance of the baseline
# manifest. Every stage is a hard gate: set -e aborts the script (and
# fails CI) on the first non-zero exit — no warn-and-continue stages.
#
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="${PWD}/src${PYTHONPATH:+:${PYTHONPATH}}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== lint =="
bash scripts/lint.sh

echo
echo "== trace smoke =="
python scripts/smoke_trace.py --out /tmp/ci_trace_smoke.json

echo
echo "== serve smoke =="
python scripts/smoke_serve.py

echo
echo "== tune smoke =="
python scripts/smoke_tune.py --sanitize

echo
echo "== profile smoke =="
python scripts/smoke_profile.py --out /tmp/ci_profile_smoke.folded

echo
echo "== perf-regression gate =="
python scripts/check_regression.py

echo
echo "== sanitize =="
python -m repro sanitize selftest
# fast checked subset: detector/shadow units plus every kernel test
# re-run under a suite-wide sanitizer (SANITIZE=1)
SANITIZE=1 python -m pytest -q \
    tests/sanitize/test_detectors.py \
    tests/sanitize/test_shadow.py \
    tests/sanitize/test_sanitize_cli.py \
    tests/kernels

echo
echo "ci: OK"
