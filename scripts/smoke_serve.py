#!/usr/bin/env python
"""Serving smoke check: exercise the service's contracts on a tiny workload.

Covers, in a few seconds, the behaviours CI must not regress:

* correctness — every served solution matches a dense LU reference;
* coalescing — compatible requests share flushes (mean batch size > 1);
* plan cache — repeated configs hit (> 50% on this tiny workload);
* backpressure — submits beyond ``max_pending`` raise
  :class:`~repro.exceptions.ServiceSaturatedError` with a retry hint;
* degradation — a non-convergent system finishes via the direct-LU
  fallback without failing its co-batched neighbours.

Exits non-zero with a diagnostic on the first violated contract.

Usage: python scripts/smoke_serve.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np


def _fail(message: str) -> int:
    print(f"smoke_serve: FAIL — {message}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    from repro.exceptions import ServiceSaturatedError
    from repro.serve import ServeConfig, SolveRequest, SolverService
    from repro.workloads.stencil import three_point_stencil

    size = 24
    pattern = three_point_stencil(size, 1).item_scipy(0)
    rng = np.random.default_rng(3)

    # -- correctness + coalescing + plan cache -------------------------------
    config = ServeConfig(max_batch_size=8, max_wait_ms=5.0, num_workers=2)
    with SolverService(config) as service:
        requests = []
        for _ in range(32):
            matrix = pattern.copy()
            matrix.data = matrix.data * rng.uniform(0.9, 1.1, size=matrix.nnz)
            requests.append(
                SolveRequest(
                    matrix,
                    rng.standard_normal(size),
                    solver="bicgstab",
                    preconditioner="jacobi",
                    tolerance=1e-10,
                )
            )
        tickets = [service.submit(r) for r in requests]
        outcomes = [t.result(timeout=60.0) for t in tickets]

        for request, outcome in zip(requests, outcomes):
            dense = np.zeros((size, size))
            for row in range(size):
                lo, hi = request.row_ptrs[row], request.row_ptrs[row + 1]
                dense[row, request.col_idxs[lo:hi]] = request.values[lo:hi]
            reference = np.linalg.solve(dense, request.b)
            if not np.allclose(outcome.x, reference, rtol=1e-6, atol=1e-8):
                return _fail("served solution does not match LU reference")
        mean_batch = sum(o.batch_size for o in outcomes) / len(outcomes)
        if mean_batch <= 1.0:
            return _fail(f"no coalescing happened (mean batch {mean_batch:.2f})")
        if service.plan_cache.hit_rate <= 0.5:
            return _fail(
                f"plan-cache hit rate {service.plan_cache.hit_rate:.1%} <= 50%"
            )
    print(
        f"smoke_serve: correctness OK — 32 requests, mean batch "
        f"{mean_batch:.1f}, plan-cache hit rate {service.plan_cache.hit_rate:.0%}"
    )

    # -- backpressure --------------------------------------------------------
    tight = ServeConfig(
        max_batch_size=64, max_wait_ms=200.0, max_pending=2, num_workers=1
    )
    with SolverService(tight) as service:
        held = [
            service.submit(
                SolveRequest(
                    pattern.copy(),
                    rng.standard_normal(size),
                    solver="cg",
                    preconditioner="jacobi",
                )
            )
            for _ in range(2)
        ]
        try:
            service.submit(
                SolveRequest(
                    pattern.copy(),
                    rng.standard_normal(size),
                    solver="cg",
                    preconditioner="jacobi",
                )
            )
        except ServiceSaturatedError as exc:
            if exc.retry_after_s <= 0:
                return _fail("saturation error carries no retry_after_s hint")
        else:
            return _fail("submit beyond max_pending did not raise")
        service.flush()
        for ticket in held:
            if not ticket.result(timeout=60.0).converged:
                return _fail("held requests did not complete after flush")
    print("smoke_serve: backpressure OK — saturated submit rejected with retry hint")

    # -- graceful degradation ------------------------------------------------
    poisoned = pattern.copy()
    data = poisoned.data.copy()
    diag = data > 1  # stencil diagonal is 2.0, off-diagonal -1.0
    data[~diag] = np.where(np.arange((~diag).sum()) % 2 == 0, 100.0, -99.0)
    poisoned.data = data

    with SolverService(ServeConfig(max_batch_size=8, max_wait_ms=5.0)) as service:
        healthy = [
            service.submit(
                SolveRequest(
                    pattern.copy(),
                    rng.standard_normal(size),
                    solver="cg",
                    preconditioner="jacobi",
                    max_iterations=40,
                )
            )
            for _ in range(3)
        ]
        bad = service.submit(
            SolveRequest(
                poisoned,
                rng.standard_normal(size),
                solver="cg",
                preconditioner="jacobi",
                max_iterations=40,
            )
        )
        service.flush()
        bad_outcome = bad.result(timeout=60.0)
        healthy_outcomes = [t.result(timeout=60.0) for t in healthy]
    if not bad_outcome.used_fallback or bad_outcome.solver_name != "direct":
        return _fail("non-convergent request did not take the direct-LU fallback")
    if not bad_outcome.converged:
        return _fail("fallback did not converge the poisoned system")
    if not all(o.converged and not o.used_fallback for o in healthy_outcomes):
        return _fail("co-batched healthy requests were disturbed by the fallback")
    print("smoke_serve: degradation OK — poisoned request fell back to direct-LU")

    print("smoke_serve: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
