#!/usr/bin/env python
"""Tracing smoke check: run a small traced stencil solve, validate the trace.

Exercises the full observability pipeline end to end — the ``repro trace``
CLI wrapping the ``stencil`` experiment, the Chrome trace-event exporter,
and the schema validator — on a workload small enough for CI. Exits
non-zero (with a diagnostic) if the emitted trace is missing kernel-launch
spans, their LaunchStats arguments, or the per-iteration convergence
counters.

Usage: python scripts/smoke_trace.py [--out results/trace_smoke.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="results/trace_smoke.json",
        help="where to write the Chrome trace (default: results/trace_smoke.json)",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=[16])
    parser.add_argument("--nb-solve", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.__main__ import main as repro_main
    from repro.observability.export import validate_chrome_trace

    out = Path(args.out)
    cmd = [
        "trace",
        "stencil",
        "--sizes",
        *[str(s) for s in args.sizes],
        "--nb-solve",
        str(args.nb_solve),
        "--trace-out",
        str(out),
        "--no-summary",
    ]
    code = repro_main(cmd)
    if code != 0:
        print(f"smoke_trace: 'repro {' '.join(cmd)}' exited {code}", file=sys.stderr)
        return code

    try:
        counts = validate_chrome_trace(out, require_kernel_spans=True, require_counters=True)
    except ValueError as exc:
        print(f"smoke_trace: INVALID trace: {exc}", file=sys.stderr)
        return 1

    print(
        f"smoke_trace: OK — {out} has {counts['spans']} spans "
        f"({counts['kernel_spans']} kernel launches), "
        f"{counts['counters']} counter samples, {counts['instants']} instants"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
