"""The paper's file-based workflow (``batched-solver-from-files``).

The artifact of the paper drives one benchmark from matrices stored on
disk: a directory of MatrixMarket files sharing one sparsity pattern.
This script writes a Pele surrogate batch to disk, reads it back,
verifies the shared pattern, and solves — the round trip an application
would use to hand matrices from a producer code to the batched solver.

Usage: python examples/from_files.py [directory]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.dispatch import BatchSolverFactory
from repro.workloads.io import load_batch_dir, save_batch_dir
from repro.workloads.pele import pele_batch, pele_rhs

directory = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
    tempfile.mkdtemp(prefix="repro_batch_")
)

# --- producer side: dump the batch as MatrixMarket files ---------------------
matrix = pele_batch("gri12", num_batch=8)
rhs = pele_rhs(matrix)
paths = save_batch_dir(directory, matrix, rhs=rhs)
print(f"wrote {len(paths)} MatrixMarket files + rhs.npy to {directory}")
print(f"  first file: {paths[0].name} "
      f"({matrix.num_rows}x{matrix.num_cols}, {matrix.nnz_per_item} nnz)")

# --- consumer side: load, verify, solve ----------------------------------------
loaded, loaded_rhs = load_batch_dir(directory)
assert loaded.num_batch == matrix.num_batch
assert np.allclose(loaded.to_batch_dense(), matrix.to_batch_dense())
print(f"loaded batch: {loaded} (shared pattern verified on load)")

factory = BatchSolverFactory(
    solver="bicgstab", preconditioner="jacobi", tolerance=1e-10
)
result = factory.solve(loaded, loaded_rhs)
residual = np.linalg.norm(loaded_rhs - loaded.apply(result.x), axis=1)
print(f"solved: converged={result.all_converged}, "
      f"iterations={[int(i) for i in result.iterations]}, "
      f"max residual={residual.max():.2e}")

assert result.all_converged
print("\nfrom_files OK")
