"""Tour of the SYCL execution-model simulator: write and launch kernels.

Shows the substrate underneath the solvers: ND-range launches,
work-group/sub-group collectives, shared local memory, divergence
detection, and the fused batched-CG kernel with both reduction styles
(Section 3.2's SYCL-vs-CUDA structural difference).

Usage: python examples/sycl_kernel_tour.py
"""

import numpy as np

from repro.exceptions import BarrierDivergenceError
from repro.kernels import run_batch_bicgstab_on_device, run_batch_cg_on_device
from repro.sycl import LocalSpec, NDRange, Queue, pvc_stack_device
from repro.cudasim import Stream, LaunchConfig, a100_device
from repro.kernels.blas1 import block_reduce_cuda
from repro.workloads.stencil import stencil_rhs, three_point_stencil

device = pvc_stack_device(1)
queue = Queue(device)
print(f"device: {device.name}")
print(f"  Xe-cores={device.num_compute_units}, SLM={device.slm_bytes_per_cu // 1024} KB/core, "
      f"sub-group sizes={device.sub_group_sizes}")

# --- a hand-written kernel with a group reduction and SLM -------------------
x = np.arange(64, dtype=np.float64)
out = np.zeros(4)


def sum_of_squares(item, slm, x, out):
    v = x[item.global_id]
    slm.scratch[item.local_id] = v * v
    yield item.barrier()
    total = yield item.reduce_over_group(slm.scratch[item.local_id], "sum")
    if item.local_id == 0:
        out[item.group_id] = total


event = queue.parallel_for(
    NDRange(64, 16, 16),
    sum_of_squares,
    args=(x, out),
    local_specs=[LocalSpec("scratch", (16,))],
)
print(f"\nsum_of_squares per group: {out}")
print(f"  collectives executed: {event.stats.collective_counts}")

# --- divergence detection ----------------------------------------------------


def divergent(item, slm):
    if item.local_id == 0:
        yield item.barrier()


try:
    queue.parallel_for(NDRange(16, 16, 16), divergent)
except BarrierDivergenceError as exc:
    print(f"\ndivergent kernel rejected, as on strict hardware:\n  {exc}")

# --- the CUDA backend: block reduction from warp shuffles --------------------
stream = Stream(a100_device())
data = np.random.default_rng(0).standard_normal(128)
result = np.zeros(1)


def cuda_sum(cuda, shared, data, result):
    total = yield from block_reduce_cuda(cuda, shared, float(data[cuda.global_thread_id]))
    if cuda.thread_idx == 0:
        result[0] = total


stream.launch_kernel(
    LaunchConfig(1, 128),
    cuda_sum,
    args=(data, result),
    shared_specs=[LocalSpec("reduce_buf", (4,))],
)
print(f"\nCUDA-style block reduction: {result[0]:.6f} (numpy: {data.sum():.6f})")

# --- the fused batched solvers on the simulator ------------------------------
matrix = three_point_stencil(16, 4)
b = stencil_rhs(16, 4)
x_cg, iters, event = run_batch_cg_on_device(device, matrix, b, tolerance=1e-10)
print(f"\nfused BatchCg kernel: one launch for {matrix.num_batch} systems, "
      f"iterations={list(iters)}")
print(f"  SLM per work-group: {event.stats.slm_bytes_per_group} bytes")

res = np.linalg.norm(b - matrix.apply(x_cg), axis=1) / np.linalg.norm(b, axis=1)
assert res.max() < 1e-9

for style in ("group", "sub_group"):
    x_st, _, _ = run_batch_bicgstab_on_device(
        device, matrix, b, tolerance=1e-10, reduce_style=style
    )
    print(f"fused BatchBicgstab [{style:9s}]: max |x - x_cg| = "
          f"{np.max(np.abs(x_st - x_cg)):.2e}")

print("\nsycl_kernel_tour OK")
