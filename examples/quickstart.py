"""Quickstart: build a batch of sparse systems, solve them, inspect results.

Run with ``python examples/quickstart.py``. Walks the public API end to
end in under a minute:

1. build a batch of matrices sharing one sparsity pattern (BatchCsr),
2. dispatch a preconditioned batched solver through the factory,
3. solve with per-system convergence monitoring,
4. warm-restart from a previous solution (the paper's headline use case).
"""

import numpy as np

from repro.core import BatchCsr
from repro.core.dispatch import BatchSolverFactory

rng = np.random.default_rng(42)

# --- 1. a batch of 100 systems sharing one 32x32 sparsity pattern ---------
num_batch, n = 100, 32
mask = rng.random((n, n)) < 0.15
np.fill_diagonal(mask, True)
dense = rng.standard_normal((num_batch, n, n)) * mask
# make every item diagonally dominant so BiCGSTAB + Jacobi is a safe choice
off = np.abs(dense).sum(axis=2) - np.abs(dense[:, np.arange(n), np.arange(n)])
dense[:, np.arange(n), np.arange(n)] = 1.2 * off + 1.0

matrix = BatchCsr.from_dense(dense)
print(f"matrix batch : {matrix}")
print(f"storage      : {matrix.storage_bytes / 1e3:.1f} KB "
      f"(dense would be {8 * num_batch * n * n / 1e3:.1f} KB)")

b = rng.standard_normal((num_batch, n))

# --- 2. dispatch a solver configuration (Figure 3 of the paper) -----------
factory = BatchSolverFactory(
    solver="bicgstab",
    preconditioner="jacobi",
    criterion="relative",
    tolerance=1e-10,
    max_iterations=500,
)
solver = factory.create(matrix)

# --- 3. solve and inspect per-system convergence ---------------------------
result = solver.solve(b)
print(f"\nsolve        : {result}")
print(f"iterations   : min={result.iterations.min()} "
      f"mean={result.iterations.mean():.1f} max={result.iterations.max()}")
print(f"residuals    : max ||b-Ax||={result.residual_norms.max():.2e}")
print(f"work         : {result.ledger.flops / 1e6:.1f} MFLOP, "
      f"{result.ledger.total_bytes / 1e6:.1f} MB logical traffic")

residual = np.linalg.norm(b - matrix.apply(result.x), axis=1)
assert np.all(residual <= 1e-10 * np.linalg.norm(b, axis=1) * 1.01)

# --- 4. warm restart: the advantage over batched direct solvers ------------
b_perturbed = b + 1e-6 * rng.standard_normal(b.shape)
cold = solver.solve(b_perturbed)
warm = solver.solve(b_perturbed, x0=result.x)
print(f"\nre-solve after a small RHS change (outer-loop scenario):")
print(f"  cold start : {cold.iterations.mean():.1f} iterations on average")
print(f"  warm start : {warm.iterations.mean():.1f} iterations on average")
assert warm.iterations.mean() < cold.iterations.mean()
print("\nquickstart OK")
