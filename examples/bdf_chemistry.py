"""End-to-end outer loop: stiff batched kinetics under BDF + batched solves.

This is the application pattern that motivates the whole paper
(Section 2): a reactive-flow code time-steps one stiff ODE system per
mesh cell with BDF; each implicit step runs Newton; each Newton step
solves a *batch* of linear systems sharing a sparsity pattern. The
script integrates a batch of Robertson kinetics problems (per-cell rate
constants), with the linear systems going through the batched BiCGSTAB +
Jacobi stack, and shows the warm-start effect on solver work.

Usage: python examples/bdf_chemistry.py
"""

import numpy as np

from repro.core.dispatch import BatchSolverFactory
from repro.workloads.sundials import BdfIntegrator, robertson_batch

CELLS = 64

print(f"integrating Robertson kinetics for {CELLS} cells (batched), BDF2 ...")
factory = BatchSolverFactory(
    solver="bicgstab", preconditioner="jacobi", tolerance=1e-12
)
integrator = BdfIntegrator(factory=factory, order=2, newton_tol=1e-12)

ode = robertson_batch(num_batch=CELLS, seed=7, spread=0.25)
result = integrator.integrate(ode, t_end=0.5, num_steps=250)

y = result.final_state
print(f"  steps                : {len(result.times) - 1}")
print(f"  Newton iterations    : {result.newton_iterations}")
print(f"  linear solves        : {result.linear_solves}")
print(f"  avg linear iterations: {result.mean_linear_iterations:.2f}")
print(f"  mass conservation    : max |sum(y)-1| = "
      f"{np.max(np.abs(result.states.sum(axis=2) - 1.0)):.2e}")
print(f"  species ranges       : y1 in [{y[:, 0].min():.4f}, {y[:, 0].max():.4f}], "
      f"y3 in [{y[:, 2].min():.4f}, {y[:, 2].max():.4f}]")

assert np.allclose(result.states.sum(axis=2), 1.0, atol=1e-7)

print("\nwarm vs cold linear initial guesses over the same integration:")
for warm in (True, False):
    ode2 = robertson_batch(num_batch=CELLS, seed=7, spread=0.25)
    integ = BdfIntegrator(factory=factory, order=2, warm_start=warm)
    r = integ.integrate(ode2, t_end=0.5, num_steps=250)
    label = "warm" if warm else "cold"
    print(f"  {label}: {r.mean_linear_iterations:.2f} "
          f"avg iterations per linear solve")

print("\nbdf_chemistry OK")
