"""Per-system convergence monitoring (Section 3 of the paper).

Ginkgo's batched solvers track each system's convergence individually.
This script solves a deliberately heterogeneous batch — same sparsity
pattern, wildly different conditioning per item — and shows per-system
residual histories as sparklines, plus the effect of the two stopping
criteria on the iteration spread.

Usage: python examples/convergence_history.py
"""

import numpy as np

from repro.bench.ascii_chart import sparkline
from repro.core import BatchCg, SolverSettings
from repro.core.matrix import BatchCsr
from repro.core.stop import AbsoluteResidual, RelativeResidual

rng = np.random.default_rng(5)

# one pattern, very different conditioning: item k gets diagonal dominance
# shrinking towards 1 (harder and harder for CG)
nb, n = 6, 48
mask = rng.random((n, n)) < 0.1
mask |= mask.T
np.fill_diagonal(mask, True)
dense = np.zeros((nb, n, n))
for k in range(nb):
    item = rng.standard_normal((n, n)) * mask
    item = 0.5 * (item + item.T)
    off = np.abs(item).sum(axis=1) - np.abs(np.diag(item))
    dominance = 1.0 + 6.0 ** (-k)  # item 0 easy ... item 5 nearly defective
    item[np.arange(n), np.arange(n)] = dominance * off
    dense[k] = item
matrix = BatchCsr.from_dense(dense)
b = rng.standard_normal((nb, n))

settings = SolverSettings(
    max_iterations=400, criterion=RelativeResidual(1e-10), keep_history=True
)
result = BatchCg(matrix, settings=settings).solve(b)
history = result.logger.history  # (records, nb)

print("per-system CG convergence (sparkline of log10 residual, left=start):")
for k in range(nb):
    trace = history[:, k]
    trace = trace[: int(result.iterations[k]) + 1]
    logs = np.log10(np.maximum(trace, 1e-300))
    print(
        f"  system {k}: {sparkline(-logs)}  "
        f"{int(result.iterations[k]):4d} iterations, "
        f"final residual {result.residual_norms[k]:.1e}"
    )

spread = result.iterations.max() - result.iterations.min()
print(f"\niteration spread across the batch: {spread} "
      "(each system stopped individually — no system over-solves)")

print("\nstopping criterion comparison on the same batch:")
for criterion in (RelativeResidual(1e-8), AbsoluteResidual(1e-8)):
    res = BatchCg(
        matrix,
        settings=SolverSettings(max_iterations=400, criterion=criterion),
    ).solve(b)
    print(f"  {criterion!r:32s} -> iterations {[int(i) for i in res.iterations]}")

assert result.all_converged
print("\nconvergence_history OK")
