"""The paper's scaling study (Figs. 4-5) as a runnable script.

Generates 3-point-stencil SPD batches, solves them with BatchCg and
BatchBicgstab, and models the runtime on one and two PVC stacks —
printing the same series the paper plots. Takes about a minute.

Usage: python examples/stencil_scaling.py [--quick]
"""

import sys

import numpy as np

from repro.bench.figures import fig4a_matrix_scaling, fig4b_batch_scaling, fig5_implicit_scaling
from repro.bench.report import print_table

quick = "--quick" in sys.argv
sizes = (16, 32, 64) if quick else (16, 32, 64, 128, 256, 512)
batches = (2**13, 2**15, 2**17)

print("Scaling with the matrix size (Fig 4a): batch of 2^17 systems, PVC 1 stack")
rows = fig4a_matrix_scaling(sizes=sizes, nb_solve=8)
print_table(rows, None)
per_iter = np.array([r["ms_per_iteration"] for r in rows if r["solver"] == "cg"])
print(f"\nper-iteration cost grows {per_iter[-1] / per_iter[0]:.1f}x over a "
      f"{sizes[-1] // sizes[0]}x size sweep -> near-linear, as in the paper")

print("\nScaling with the batch size (Fig 4b): 64x64 systems, PVC 1 stack")
print_table(fig4b_batch_scaling(batches=batches, nb_solve=8), None)

print("\nImplicit scaling over 2 stacks (Fig 5)")
rows = fig5_implicit_scaling(sizes=sizes, nb_solve=8)
print_table(rows, None)
speedups = [r["speedup"] for r in rows]
print(f"\nspeedup range {min(speedups):.2f}x - {max(speedups):.2f}x "
      f"(paper: 1.5x - 2.0x, avg 1.8x/1.9x)")
