"""Distributing a batched solve over multiple GPUs / MPI ranks.

The paper's outlook: batched solves are embarrassingly parallel across the
batch dimension, so multi-GPU scaling is a partition-and-gather exercise.
This script runs a real distributed solve through the simulated MPI world
(verifying zero mid-solve communication and bit-identical solutions) and
models the wall-clock on 1-8 PVC GPUs.

Usage: python examples/multi_gpu.py [num_ranks]
"""

import sys

import numpy as np

from repro.bench.ascii_chart import bar_chart
from repro.bench.report import print_table
from repro.core.dispatch import BatchSolverFactory
from repro.hw import gpu
from repro.multi import SimWorld, estimate_multi_gpu, solve_distributed
from repro.workloads.pele import pele_batch, pele_rhs

ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 4

matrix = pele_batch("gri30")
b = pele_rhs(matrix)
factory = BatchSolverFactory(solver="bicgstab", preconditioner="jacobi", tolerance=1e-10)

# --- single-rank reference ---------------------------------------------------
single = factory.solve(matrix, b)

# --- distributed over the simulated MPI world ---------------------------------
world = SimWorld(ranks)
dist = solve_distributed(world, factory, matrix, b)
assert dist.all_converged
assert np.allclose(dist.x, single.x)

print(f"distributed solve over {ranks} ranks:")
print(f"  systems per rank : {[sl.stop - sl.start for sl in dist.partitions]}")
print(f"  solutions match single-rank solve bit-for-bit: "
      f"{bool(np.array_equal(dist.x, single.x))}")
print(f"  interconnect traffic: {dist.comm_bytes / 1e6:.2f} MB "
      f"(scatter + gather only — nothing crosses mid-solve)")

# --- modeled multi-GPU wall-clock ----------------------------------------------
rows = []
base = None
for n in (1, 2, 4, 8):
    timing = estimate_multi_gpu(
        gpu("pvc2"), factory, matrix, single,
        num_batch=2**17, num_ranks=n, host_staging=False,
    )
    base = base or timing
    rows.append({
        "gpus": n,
        "runtime_ms": timing.total_seconds * 1e3,
        "speedup": timing.speedup_over(base),
    })
print_table(rows, "\nModeled scaling: PVC GPUs over a 2^17 batch (gri30)")
print()
print(bar_chart([str(r["gpus"]) + " GPU" for r in rows],
                [r["speedup"] for r in rows], title="speedup", unit="x"))
print("\nmulti_gpu OK")
