"""The PeleLM application study (Figs. 6-8) as a runnable script.

For each reaction mechanism of Table 4: generate the surrogate Jacobian
batch, solve it with scalar-Jacobi-preconditioned BatchBicgstab (the
configuration the paper uses), cross-check the solutions against dense
LAPACK, and model runtimes on all four GPUs. Ends with the Fig. 8
Advisor-style roofline report for dodecane_lu.

Usage: python examples/pele_reaction.py [mechanism ...]
"""

import sys

import numpy as np

from repro.bench.figures import fig8_roofline
from repro.bench.report import print_table
from repro.core import BatchBicgstab, BatchJacobi, SolverSettings
from repro.core.stop import RelativeResidual
from repro.hw import estimate_solve, gpu
from repro.workloads.pele import MECHANISMS, pele_batch, pele_rhs

names = [a for a in sys.argv[1:] if not a.startswith("-")] or sorted(MECHANISMS)

rows = []
for name in names:
    matrix = pele_batch(name)
    b = pele_rhs(matrix)
    solver = BatchBicgstab(
        matrix,
        BatchJacobi(matrix),
        settings=SolverSettings(max_iterations=200, criterion=RelativeResidual(1e-9)),
    )
    result = solver.solve(b)

    # verify against a dense direct solve
    x_ref = np.linalg.solve(matrix.to_batch_dense(), b[..., None])[..., 0]
    err = np.max(np.abs(result.x - x_ref)) / np.max(np.abs(x_ref))
    assert result.all_converged, name

    row = {
        "mechanism": name,
        "rows": matrix.num_rows,
        "nnz": matrix.nnz_per_item,
        "iters": float(result.iterations.mean()),
        "vs_lapack": f"{err:.1e}",
    }
    for key in ("a100", "h100", "pvc1", "pvc2"):
        timing = estimate_solve(gpu(key), solver, result, num_batch=2**17)
        row[f"{key}_ms"] = timing.total_seconds * 1e3
    rows.append(row)

print_table(rows, "PeleLM mechanisms: BatchBicgstab + scalar Jacobi, batch 2^17 (modeled)")

base = np.array([r["a100_ms"] for r in rows])
for key in ("h100", "pvc1", "pvc2"):
    ratio = base / np.array([r[f"{key}_ms"] for r in rows])
    print(f"  {key:5s} speedup vs A100: {ratio.mean():.2f}x average")

if "dodecane_lu" in names:
    print("\nFig 8: Advisor-style report (dodecane_lu, PVC 1 stack, batch 2^17)")
    for line in fig8_roofline().lines():
        print("  " + line)
