"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``   — print Tables 1-5 of the paper.
* ``figures``  — regenerate Figures 4-8 (tables + ASCII charts).
* ``pele``     — the PeleLM study for one mechanism (table + speedup chart).
* ``stencil``  — the scaling study (Figs. 4-5) for chosen sizes.
* ``advisor``  — the Fig. 8 Advisor-style report for a mechanism/platform.
* ``features`` — the dispatch feature matrix (Table 3 + extensions).
* ``serve-demo`` — run a synthetic request workload through the async
  batched-solver service (``repro.serve``) and print its metrics;
  ``--shards N`` routes the same workload through a fleet of N replicas.
* ``fleet-demo`` — the sharded solver fleet (``repro.fleet``): paced
  Poisson/bursty arrivals consistent-hash-routed over N shard replicas,
  a scale-up + graceful-drain lifecycle demonstration (or the live
  ``Autoscaler`` with ``--autoscale``), per-shard counters and ring
  occupancy.
* ``tune``     — drive the empirical autotuner (``repro.tune``): search
  launch configurations for a workload (``tune tune``), inspect the
  persistent tuning database (``tune show``), or drop records
  (``tune clear``).
* ``trace``    — run any of the above with tracing enabled and export a
  Chrome trace-event file, e.g.
  ``python -m repro trace stencil --trace-out trace.json``
  (open the result in Perfetto or ``chrome://tracing``).
* ``profile``  — measured kernel counters (``repro.profile``):
  ``profile report`` prints the per-kernel × per-phase counter
  attribution for both simulated backends, ``profile roofline`` places
  the measured arithmetic intensity on the platform roofline and checks
  it against the analytic model (non-zero exit on drift),
  ``profile export`` writes flamegraph-ready folded stacks, and
  ``profile <command> [args]`` runs any other repro command with counter
  collection enabled, e.g. ``python -m repro profile stencil --sizes 16``.
* ``slo``      — the SLO monitor (``repro.telemetry``): ``slo check``
  runs a synthetic serve workload on a synthetic multi-hour clock and
  exits non-zero when any burn-rate alert fires (seed a regression with
  ``--inject-latency-ms``), ``slo report`` prints the burn table (or
  evaluates a Prometheus text dump offline via ``--metrics-in``), and
  ``slo <command> [args]`` runs any other repro command with a telemetry
  hub installed and scores its combined metrics against the objectives
  at exit, e.g. ``python -m repro slo serve-demo --requests 64``.
* ``top``      — a live text dashboard over a running synthetic serve
  workload: gauges, counters, latency percentiles with sparklines, SLO
  burn state and the structured event-log tail, one frame per interval.
* ``chaos``    — the fault-injection harness (``repro.chaos``):
  ``chaos replay`` replays a seeded per-tenant trace (diurnal/bursty
  arrivals, mixed mechanisms) against a service or fleet and scores it
  through the SLO monitor (``--faults`` injects the seeded battery;
  non-zero exit on lost tickets or, clean, on SLO violations),
  ``chaos battery`` is the fault gate — every fault kind must fire, zero
  tickets lost, every failure a structured status — and
  ``chaos <command> [args]`` runs any other repro command with the fault
  battery ambiently installed, e.g.
  ``python -m repro chaos serve-demo --requests 64``.
* ``sanitize`` — the kernel sanitizer (``repro.sanitize``):
  ``sanitize selftest`` runs the seeded-mutation detector battery,
  ``sanitize check <case>`` runs one battery kernel (violations print a
  structured report and exit 1), ``sanitize diff`` runs the backend
  differential grid, and ``sanitize <command> [args]`` runs any other
  repro command with every kernel launch checked, e.g.
  ``python -m repro sanitize stencil --sizes 16``. Composes with
  ``trace``: ``repro trace sanitize check racy-write --trace-out t.json``
  still writes the trace of the failing launch.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_tables(_args) -> None:
    from repro.bench import tables

    tables.main()


def _cmd_figures(_args) -> None:
    from repro.bench import figures

    figures.main()


def _cmd_features(_args) -> None:
    from repro.bench.report import print_table
    from repro.bench.tables import table3_features

    print_table(table3_features(), "Batched feature support ((+) = library extension)")


def _cmd_pele(args) -> None:
    from repro.bench.ascii_chart import bar_chart
    from repro.bench.figures import fig7_speedup_summary
    from repro.bench.report import print_table

    rows = fig7_speedup_summary(num_batch=args.batch)
    print_table(rows, f"Speedup vs A100 (batch {args.batch})")
    avg = rows[-1]
    print()
    print(
        bar_chart(
            ["A100", "H100", "PVC-1S", "PVC-2S"],
            [
                avg["a100_speedup"],
                avg["h100_speedup"],
                avg["pvc1_speedup"],
                avg["pvc2_speedup"],
            ],
            title="average speedup vs A100",
            unit="x",
        )
    )


def _cmd_stencil(args) -> None:
    from repro.bench.ascii_chart import bar_chart
    from repro.bench.figures import fig4a_matrix_scaling, fig5_implicit_scaling
    from repro.bench.report import print_table

    sizes = tuple(args.sizes)
    rows = fig4a_matrix_scaling(sizes=sizes, nb_solve=args.nb_solve)
    print_table(rows, "Fig 4a: runtime vs matrix size (PVC-1S, 2^17)")
    cg = [r for r in rows if r["solver"] == "cg"]
    print()
    print(
        bar_chart(
            [str(r["num_rows"]) for r in cg],
            [r["runtime_ms"] for r in cg],
            title="BatchCg runtime (ms), log scale",
            log_scale=True,
            unit=" ms",
        )
    )
    rows5 = fig5_implicit_scaling(sizes=sizes, nb_solve=args.nb_solve)
    print_table(rows5, "Fig 5: implicit 2-stack scaling")


def _cmd_serve_demo(args) -> int:
    """Demonstrate the request-serving layer on a synthetic workload."""
    import time as _time

    import numpy as np

    from repro.bench.report import print_table
    from repro.serve import ServeConfig, SolveRequest, SolverService
    from repro.workloads.stencil import three_point_stencil

    if getattr(args, "shards", 1) > 1:
        return _serve_demo_fleet(args)

    num_tenants = getattr(args, "tenants", 0) or 0
    config = ServeConfig(
        max_batch_size=args.batch_size,
        max_wait_ms=args.wait_ms,
        num_workers=args.workers,
        backend=args.backend,
        execution=args.execution,
        tuning_db_path=args.tuning_db,
        tenant_default_quota=getattr(args, "tenant_quota", None),
    )
    pattern_batch = three_point_stencil(args.size, 1)
    pattern = pattern_batch.item_scipy(0)
    rng = np.random.default_rng(42)

    # --tenants N splits the workload over N tenants cycling through the
    # priority classes, so the demo shows fair-share release order and
    # (with --tenant-quota) per-tenant 429s
    priorities = ("high", "normal", "low")
    tenant_of = (
        (lambda i: f"tenant-{i % num_tenants}") if num_tenants else (lambda i: "default")
    )
    priority_of = (
        (lambda i: priorities[(i % num_tenants) % len(priorities)])
        if num_tenants
        else (lambda i: "normal")
    )

    print(
        f"serve-demo: {args.requests} requests, n={args.size}, "
        f"max_batch_size={config.max_batch_size}, max_wait_ms={config.max_wait_ms}, "
        f"{config.num_workers} x {config.backend} workers"
        + (f", {num_tenants} tenants (quota {config.tenant_default_quota})"
           if num_tenants else "")
    )
    per_tenant: dict[str, dict[str, int]] = {}

    def bucket(tenant: str) -> dict[str, int]:
        return per_tenant.setdefault(
            tenant, {"submitted": 0, "completed": 0, "rejected": 0}
        )

    start = _time.perf_counter()
    with SolverService(config) as service:
        from repro.exceptions import ServiceSaturatedError

        tickets = []
        for i in range(args.requests):
            values = pattern.copy()
            values.data = values.data * rng.uniform(0.9, 1.1, size=values.nnz)
            request = SolveRequest(
                values,
                rng.standard_normal(args.size),
                solver=args.solver,
                preconditioner="jacobi",
                tolerance=1e-8,
                tenant=tenant_of(i),
                priority=priority_of(i),
            )
            bucket(request.tenant)["submitted"] += 1
            try:
                tickets.append((request.tenant, service.submit(request)))
            except ServiceSaturatedError:
                # quota / backpressure rejections are part of the demo
                bucket(request.tenant)["rejected"] += 1
        outcomes = []
        for tenant, ticket in tickets:
            outcome = ticket.result(timeout=60.0)
            bucket(tenant)["completed"] += 1
            outcomes.append(outcome)
    elapsed = _time.perf_counter() - start

    served = [o for o in outcomes if o is not None]
    sizes = [o.batch_size for o in served]
    print(
        f"\nserved {len(served)} requests in {elapsed * 1e3:.1f} ms "
        f"({len(served) / elapsed:.0f} req/s), mean batch size "
        f"{sum(sizes) / len(sizes):.1f}, plan-cache hit rate "
        f"{service.plan_cache.hit_rate:.0%}"
    )

    def count(name: str) -> int:
        return int(service.metrics.counter(name).value)

    print(
        f"plan cache: {count('serve.plan_cache.hits')} hits, "
        f"{count('serve.plan_cache.misses')} misses, "
        f"{count('serve.plan_cache.evictions')} evictions, "
        f"{count('serve.plan_cache.invalidations')} invalidations"
    )
    print(
        f"fallbacks: {count('serve.fallbacks')} solved by direct-LU, "
        f"{count('serve.fallback_failures')} failed"
    )
    if num_tenants:
        ledger = service.batcher.ledger.snapshot()
        rows = [
            {
                "tenant": tenant,
                **counts,
                "virtual_time": f"{ledger.get(tenant, 0.0):.1f}",
            }
            for tenant, counts in sorted(per_tenant.items())
        ]
        print()
        print_table(rows, "per-tenant QoS (fair-share virtual time)")
    print()
    print_table(service.metrics.rows(), "serve metrics")

    if args.metrics_out:
        from repro.observability import render_prometheus

        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(service.metrics))
        print(f"prometheus metrics written to {args.metrics_out}")
    if args.events_out:
        path = service.events.write_jsonl(args.events_out)
        print(f"{len(service.events)} telemetry events written to {path}")
    return 0


def _serve_demo_fleet(args) -> int:
    """``serve-demo --shards N``: the same workload through the fleet."""
    import time as _time

    import numpy as np

    from repro.bench.report import print_table
    from repro.fleet import FleetConfig, FleetService
    from repro.serve import ServeConfig
    from repro.workloads.arrivals import keyed_requests, stencil_pattern

    config = FleetConfig(
        serve=ServeConfig(
            max_batch_size=args.batch_size,
            max_wait_ms=args.wait_ms,
            num_workers=args.workers,
            backend=args.backend,
            execution=args.execution,
        ),
        initial_replicas=args.shards,
        max_replicas=max(args.shards, 8),
        tuning_db_path=args.tuning_db,
    )
    pattern = stencil_pattern(args.size)
    rng = np.random.default_rng(42)
    requests = keyed_requests(
        pattern, rng, args.size, args.requests, args.keys, solver=args.solver
    )

    print(
        f"serve-demo: {args.requests} requests over {args.keys} keys, "
        f"n={args.size}, {args.shards} shards x {config.serve.num_workers} "
        f"{config.serve.backend} worker(s), max_batch_size={config.serve.max_batch_size}"
    )
    start = _time.perf_counter()
    with FleetService(config) as fleet:
        tickets = [fleet.submit(r) for r in requests]
        fleet.flush()
        outcomes = [t.result(timeout=60.0) for t in tickets]
        elapsed = _time.perf_counter() - start

        fleet.refresh_metrics()
        stats = fleet.shard_stats()
        occupancy = fleet.ring_occupancy()
        hdr = fleet.latency_histogram()
        converged = sum(1 for o in outcomes if o.converged)
        print(
            f"\nserved {converged}/{len(outcomes)} requests in "
            f"{elapsed * 1e3:.1f} ms ({len(outcomes) / elapsed:.0f} req/s), "
            f"fleet p50/p99 {hdr.percentile(50.0):.2f}/{hdr.percentile(99.0):.2f} ms"
        )
        print()
        for row in stats:
            row["p99_ms"] = round(row["p99_ms"], 2)
            row["ring_share"] = f"{occupancy.get(row['shard'], 0.0):.1%}"
        print_table(stats, "per-shard counters")
        print()
        print_table(fleet.metrics.rows(), "fleet metrics")

        if args.metrics_out:
            from repro.observability import render_prometheus

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(render_prometheus(fleet.metrics))
            print(f"prometheus metrics written to {args.metrics_out}")
        if args.events_out:
            path = fleet.events.write_jsonl(args.events_out)
            print(f"{len(fleet.events)} telemetry events written to {path}")
    return 0


def _cmd_fleet_demo(args) -> int:
    """Demonstrate the fleet: routing, scale-up, autoscaling, graceful drain."""
    import time as _time

    import numpy as np

    from repro.bench.report import print_table
    from repro.fleet import Autoscaler, FleetConfig, FleetService
    from repro.serve import ServeConfig
    from repro.workloads.arrivals import (
        bursty_offsets,
        keyed_requests,
        pace,
        poisson_offsets,
        stencil_pattern,
    )

    config = FleetConfig(
        serve=ServeConfig(
            max_batch_size=args.batch_size,
            max_wait_ms=5.0,
            max_pending=max(4 * args.requests, 64),
            num_workers=1,
            backend=args.backend,
            device_dwell_ms=args.dwell_ms,
        ),
        initial_replicas=args.shards,
        max_replicas=max(args.shards + 2, 4),
        virtual_nodes=128,
        max_pending=max(8 * args.requests, 256),
        target_p99_ms=args.threshold_ms,
        scale_up_patience=2,
        scale_down_patience=3,
        cooldown_evaluations=1,
    )
    pattern = stencil_pattern(args.size)
    rng = np.random.default_rng(args.seed)
    requests = keyed_requests(
        pattern, rng, args.size, args.requests, args.keys,
        solver="cg", layout="grouped", tolerance=1e-5,
    )
    if args.arrival == "bursty":
        offsets = bursty_offsets(args.rate, args.requests, rng)
    else:
        offsets = poisson_offsets(args.rate, args.requests, rng)

    print(
        f"fleet-demo: {args.requests} requests over {args.keys} keys at "
        f"~{args.rate:.0f} req/s ({args.arrival} arrivals), "
        f"{args.shards} shard(s), dwell {args.dwell_ms:g} ms/flush"
        + (", autoscaler on" if args.autoscale else "")
    )
    with FleetService(config) as fleet:
        scaler = Autoscaler(fleet)
        if args.autoscale:
            scaler.start(interval_s=args.autoscale_interval)

        start = _time.perf_counter()
        tickets = pace(offsets, lambda i: fleet.submit(requests[i]))
        fleet.flush()
        outcomes = [t.result(timeout=120.0) for t in tickets]
        elapsed = _time.perf_counter() - start
        if args.autoscale:
            scaler.stop()

        peak_replicas = fleet.num_replicas
        if not args.autoscale:
            # manual lifecycle demo: add a replica (~1/N of keys remap to
            # it), then drain one gracefully with the fleet still open
            added = fleet.scale_up(1)
            if added:
                print(f"scale-up: started {', '.join(added)}")
                peak_replicas = fleet.num_replicas
            drained = fleet.scale_down(1)
            if drained:
                print(f"scale-down: drained {', '.join(drained)} (zero drops)")

        fleet.refresh_metrics()
        stats = fleet.shard_stats()
        occupancy = fleet.ring_occupancy()
        hdr = fleet.latency_histogram()
        converged = sum(1 for o in outcomes if o.converged)
        rebalances = sum(
            1 for ev in fleet.events.events() if ev.type == "fleet.rebalance"
        )
        print(
            f"\nserved {converged}/{len(outcomes)} requests in {elapsed:.2f} s "
            f"({len(outcomes) / elapsed:.0f} req/s), fleet p50/p99 "
            f"{hdr.percentile(50.0):.2f}/{hdr.percentile(99.0):.2f} ms, "
            f"peak replicas {peak_replicas}, {rebalances} rebalance events"
        )
        if args.autoscale and scaler.decisions:
            actions = [d for d in scaler.decisions if d.startswith("scale")]
            print(
                f"autoscaler: {len(scaler.decisions)} evaluations, "
                f"actions: {', '.join(actions) if actions else 'none'}"
            )
        print()
        for row in stats:
            row["p99_ms"] = round(row["p99_ms"], 2)
            row["ring_share"] = f"{occupancy.get(row['shard'], 0.0):.1%}"
        print_table(stats, "per-shard counters")
        print()
        print_table(fleet.metrics.rows(), "fleet metrics")

        if args.metrics_out:
            from repro.observability import render_prometheus

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(render_prometheus(fleet.metrics))
            print(f"prometheus metrics written to {args.metrics_out}")
        if args.events_out:
            path = fleet.events.write_jsonl(args.events_out)
            print(f"{len(fleet.events)} telemetry events written to {path}")
    return 0 if converged == len(outcomes) else 1


def _cmd_tune(args) -> int:
    """Drive the autotuner / inspect the persistent tuning database."""
    from repro.bench.report import print_table
    from repro.hw.specs import gpu
    from repro.tune import (
        Autotuner,
        TuningDB,
        derive_threshold,
        pele_workload,
        stencil_workload,
    )

    db = TuningDB(args.db)

    if args.action == "show":
        records = db.records()
        if not records:
            print(f"tuning DB {args.db}: no records")
            return 0
        rows = [
            {
                "device": r.key.device,
                "solver": r.key.solver,
                "precond": r.key.preconditioner,
                "rows": r.key.rows_bucket,
                "precision": r.key.precision,
                "sg": r.candidate.sub_group_size,
                "wg": r.candidate.work_group_size,
                "reduce": r.candidate.reduction_scope,
                "slm": r.candidate.slm_strategy,
                "tuned_us": round(r.modeled_seconds * 1e6, 2),
                "speedup": round(r.speedup, 3),
                "strategy": r.strategy,
                "evals": r.evaluations,
            }
            for r in records
        ]
        print_table(rows, f"tuning DB {args.db} (generation {db.generation})")
        for device_name in sorted({r.key.device for r in records}):
            threshold = derive_threshold(db, device_name)
            if threshold is not None:
                print(
                    f"derived sub-group threshold for {device_name}: "
                    f"{threshold} rows"
                )
        return 0

    if args.action == "clear":
        device = None if args.platform is None else gpu(args.platform).device.name
        removed = db.clear(device=device, solver=args.solver)
        print(
            f"removed {removed} record(s) from {args.db} "
            f"(generation {db.generation})"
        )
        return 0

    # action == "tune": search (or fetch) the configuration for one workload
    if args.platform is None:
        raise SystemExit("repro tune tune: --platform is required")
    spec = gpu(args.platform)
    if args.workload == "stencil":
        workload = stencil_workload(args.rows, nb_solve=args.nb_solve)
    else:
        workload = pele_workload(args.workload, nb_solve=args.nb_solve)
    tuner = Autotuner(
        spec,
        db=db,
        strategy=args.strategy,
        budget=args.budget,
        patience=args.patience,
        seed=args.seed,
        prune_fraction=args.prune_fraction,
    )
    outcome = tuner.tune(workload, force=args.force, store_generic=args.store_generic)
    record = outcome.record
    source = "cache hit (no measurements)" if outcome.from_cache else (
        f"searched {record.evaluations} candidates ({record.strategy})"
    )
    print(
        f"{spec.key} / {workload.name} ({workload.solver}, "
        f"{workload.num_rows} rows): {source}"
    )
    print(
        f"  tuned:   sg={record.candidate.sub_group_size} "
        f"wg={record.candidate.work_group_size} "
        f"reduce={record.candidate.reduction_scope} "
        f"slm={record.candidate.slm_strategy} "
        f"-> {record.modeled_seconds * 1e6:.2f} us"
    )
    print(
        f"  default: {record.default_seconds * 1e6:.2f} us  "
        f"(speedup {record.speedup:.3f}x)"
    )
    return 0


def _cmd_advisor(args) -> None:
    from repro.bench.figures import fig8_roofline

    report = fig8_roofline(
        mechanism=args.mechanism, platform=args.platform, num_batch=args.batch
    )
    for line in report.lines():
        print(line)


def _split_trace_args(argv: list[str]) -> tuple[dict, list[str]]:
    """Pull the trace options out of ``argv``, leaving the wrapped command.

    Done by hand rather than argparse because the wrapped command keeps its
    own flags: ``repro trace stencil --sizes 16 --trace-out t.json`` must
    route ``--sizes 16`` to ``stencil`` and ``--trace-out`` to ``trace``,
    wherever they appear.
    """
    options = {"trace_out": "trace.json", "jsonl_out": None, "summary": True}
    rest: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        key = None
        if arg.startswith("--trace-out"):
            key = "trace_out"
        elif arg.startswith("--jsonl-out"):
            key = "jsonl_out"
        if key is not None:
            if "=" in arg:
                options[key] = arg.split("=", 1)[1]
            else:
                if i + 1 >= len(argv):
                    raise SystemExit(f"repro trace: {arg} requires a value")
                options[key] = argv[i + 1]
                i += 1
        elif arg == "--no-summary":
            options["summary"] = False
        else:
            rest.append(arg)
        i += 1
    return options, rest


def _cmd_trace(argv: list[str]) -> int:
    """Run a wrapped command under a fresh tracer and export the trace.

    The wrapped command's exit code is propagated — including non-zero
    codes from ``SystemExit`` (e.g. argparse usage errors) and failures
    that raise — and the trace collected up to the failure point is still
    written, so a trace of a crashing run can be inspected.
    """
    import traceback

    from repro.observability import (
        Tracer,
        format_summary,
        use_tracer,
        write_chrome_trace,
        write_jsonl,
    )

    options, rest = _split_trace_args(argv)
    if not rest or rest[0] == "trace":
        raise SystemExit(
            "usage: repro trace <command> [command args] "
            "[--trace-out FILE] [--jsonl-out FILE] [--no-summary]"
        )

    tracer = Tracer()
    try:
        with use_tracer(tracer):
            code = main(rest)
    except SystemExit as exc:  # argparse errors, explicit exits in wrapped cmds
        if exc.code is None:
            code = 0
        elif isinstance(exc.code, int):
            code = exc.code
        else:
            print(exc.code, file=sys.stderr)
            code = 1
    except Exception:
        traceback.print_exc()
        code = 1

    path = write_chrome_trace(tracer, options["trace_out"])
    if options["jsonl_out"]:
        write_jsonl(tracer, options["jsonl_out"])
    if options["summary"]:
        print()
        print(format_summary(tracer))
    print(
        f"\ntrace written to {path} ({len(tracer.spans)} spans, "
        f"{len(tracer.events)} events) — open in Perfetto or chrome://tracing"
    )
    if code != 0:
        print(f"warning: wrapped command exited {code}", file=sys.stderr)
    return code


def _sanitize_selftest() -> int:
    """Run the seeded-mutation battery; non-zero unless every case passes."""
    from repro.sanitize.selftest import run_selftest

    results = run_selftest()
    width = max(len(r.name) for r in results)
    failures = 0
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        failures += not r.passed
        expect = r.expect if r.expect is not None else "clean"
        got = r.got if r.got is not None else "clean"
        print(f"  {status}  {r.name:<{width}}  expect={expect}  got={got}")
    total = len(results)
    print(
        f"\nsanitizer selftest: {total - failures}/{total} cases passed "
        f"({sum(1 for r in results if r.expect)} mutants, "
        f"{sum(1 for r in results if r.expect is None)} clean)"
    )
    return 1 if failures else 0


def _sanitize_check(case_name: str) -> int:
    """Run one battery kernel; a violation prints its report and exits 1."""
    from repro.sanitize.selftest import case_by_name, run_case

    try:
        case = case_by_name(case_name)
    except KeyError as exc:
        raise SystemExit(f"repro sanitize check: {exc.args[0]}") from None
    result = run_case(case)
    if result.got is None:
        print(f"{case.name}: no violation")
        return 0
    print(result.message)
    return 1


def _sanitize_diff(argv: list[str]) -> int:
    """Run the differential grid on a seeded random SPD batch."""
    import numpy as np

    from repro.sanitize.diff import kernel_grid, run_differential

    parser = argparse.ArgumentParser(prog="repro sanitize diff")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch", type=int, default=3)
    parser.add_argument("--rows", type=int, default=16)
    parser.add_argument(
        "--backends",
        default="sycl,cuda,wide",
        help="comma-separated backend subset of the grid "
        "(sycl, cuda/cudasim, wide)",
    )
    args = parser.parse_args(argv)

    from repro.sanitize.diff import BACKENDS
    from repro.serve.config import BACKEND_ALIASES

    backends = tuple(
        BACKEND_ALIASES.get(name, name)
        for name in args.backends.split(",")
        if name
    )
    unknown = [name for name in backends if name not in BACKENDS]
    if unknown:
        raise SystemExit(
            f"repro sanitize diff: unknown backend(s) {unknown}; "
            f"choose from {BACKENDS}"
        )

    rng = np.random.default_rng(args.seed)
    nb, n = args.batch, args.rows
    dense = np.zeros((nb, n, n))
    for k in range(nb):
        a = rng.standard_normal((n, n)) * 0.1
        dense[k] = np.eye(n) + a @ a.T
    b = rng.standard_normal((nb, n))

    cases = kernel_grid(f"seed{args.seed}", backends=backends)
    disagreements = 0
    for case in cases:
        outcome = run_differential(dense, b, case)
        disagreements += not outcome.agree
        print(outcome.describe())
    print(
        f"\ndifferential grid: {disagreements} disagreement(s) over "
        f"{len(cases)} cases (batch {nb}, {n} rows, seed {args.seed}, "
        f"backends {','.join(backends)})"
    )
    return 1 if disagreements else 0


def _cmd_sanitize(argv: list[str]) -> int:
    """The ``sanitize`` command: selftest / check / diff / wrapped command.

    Wrapping installs a process-wide sanitizer, runs the inner command, and
    prints the checking summary; a violation prints its structured report
    and exits 1 (the report still reaches any enclosing ``trace`` wrapper,
    which writes the trace collected up to the failure).
    """
    from repro.exceptions import BarrierDivergenceError, SanitizerError
    from repro.sanitize import Sanitizer, format_summary, use_sanitizer

    if not argv or argv[0] == "sanitize":
        raise SystemExit(
            "usage: repro sanitize {selftest | check <case> | diff [opts] | "
            "<command> [args]}"
        )
    if argv[0] == "selftest":
        return _sanitize_selftest()
    if argv[0] == "check":
        if len(argv) < 2:
            raise SystemExit("usage: repro sanitize check <case>")
        return _sanitize_check(argv[1])
    if argv[0] == "diff":
        return _sanitize_diff(argv[1:])

    sanitizer = Sanitizer()
    try:
        with use_sanitizer(sanitizer):
            code = main(argv)
    except (SanitizerError, BarrierDivergenceError) as exc:
        print(str(exc), file=sys.stderr)
        print(file=sys.stderr)
        print(format_summary(sanitizer), file=sys.stderr)
        return 1
    print()
    print(format_summary(sanitizer))
    return code


def _profile_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        default="drm19",
        help="PeleLM mechanism name or stencil:<n> (default drm19)",
    )
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--solvers", default="cg,bicgstab")
    parser.add_argument("--backends", default="sycl,cuda")
    parser.add_argument("--max-iters", type=int, default=40)
    parser.add_argument("--tolerance", type=float, default=1e-8)


def _profile_report(argv: list[str]) -> int:
    """Per-kernel × per-phase measured-counter attribution, both backends."""
    from repro.profile.report import format_report
    from repro.profile.runner import profile_workload

    parser = argparse.ArgumentParser(prog="repro profile report")
    _profile_workload_args(parser)
    args = parser.parse_args(argv)

    profilers = profile_workload(
        args.workload,
        solvers=tuple(args.solvers.split(",")),
        backends=tuple(args.backends.split(",")),
        num_batch=args.batch,
        tolerance=args.tolerance,
        max_iterations=args.max_iters,
    )
    print(
        format_report(
            profilers, f"measured counters: {args.workload} (batch {args.batch})"
        )
    )
    return 0


def _profile_roofline(argv: list[str]) -> int:
    """Measured roofline placement + model-drift verdict (exit 1 on drift)."""
    from repro.hw.specs import gpu
    from repro.profile.roofline import (
        DEFAULT_TOLERANCE,
        drift_report,
        modeled_intensities,
        place_measured,
    )
    from repro.profile.runner import build_workload, profile_workload

    parser = argparse.ArgumentParser(prog="repro profile roofline")
    _profile_workload_args(parser)
    parser.add_argument("--solver", default="cg")
    parser.add_argument("--platform", default="pvc1")
    parser.add_argument(
        "--drift-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="max relative measured-vs-model intensity drift per level",
    )
    args = parser.parse_args(argv)

    backend = "cuda" if args.platform in ("a100", "h100") else "sycl"
    profilers = profile_workload(
        args.workload,
        solvers=(args.solver,),
        backends=(backend,),
        num_batch=args.batch,
        tolerance=args.tolerance,
        max_iterations=args.max_iters,
    )
    profiler = profilers[backend]
    spec = gpu(args.platform)
    matrix, b = build_workload(args.workload, num_batch=args.batch)
    modeled = modeled_intensities(
        spec,
        matrix,
        b,
        solver=args.solver,
        tolerance=args.tolerance,
        max_iterations=args.max_iters,
    )

    failed = False
    for name in profiler.kernel_names():
        profile = profiler.profile_for(name)
        report = drift_report(
            profile, spec, modeled, tolerance=args.drift_tolerance
        )
        print(report.describe())
        failed |= not report.ok
        # placement against the modeled device time for this spec
        point = place_measured(profile, spec, runtime_seconds=1e-3)
        print(
            f"  roofline: binding roof = {point.binding_roof}, attainable "
            f"{point.attainable_gflops:.1f} GFLOP/s "
            f"(compute roof {point.compute_roof_gflops:.0f})"
        )
    return 1 if failed else 0


def _profile_export(argv: list[str]) -> int:
    """Folded-stack (flamegraph) and JSON snapshot export."""
    import json as _json

    from repro.profile.folded import folded_lines, write_folded
    from repro.profile.runner import profile_workload

    parser = argparse.ArgumentParser(prog="repro profile export")
    _profile_workload_args(parser)
    parser.add_argument("--out", default="profile.folded")
    parser.add_argument(
        "--weight",
        default="flops",
        help="counter weighting the stacks (flops, total_bytes, slm_bytes, ...)",
    )
    parser.add_argument("--json-out", default=None)
    args = parser.parse_args(argv)

    profilers = profile_workload(
        args.workload,
        solvers=tuple(args.solvers.split(",")),
        backends=tuple(args.backends.split(",")),
        num_batch=args.batch,
        tolerance=args.tolerance,
        max_iterations=args.max_iters,
    )
    lines: list[str] = []
    for backend in sorted(profilers):
        lines.extend(
            f"{backend};{line}" for line in folded_lines(profilers[backend], args.weight)
        )
    write_folded(lines, args.out)
    print(f"wrote {len(lines)} folded stacks to {args.out} (weight: {args.weight})")
    if args.json_out:
        snapshot = {b: p.snapshot() for b, p in sorted(profilers.items())}
        with open(args.json_out, "w", encoding="utf-8") as fh:
            _json.dump(snapshot, fh, indent=2, sort_keys=True)
        print(f"wrote counter snapshot to {args.json_out}")
    return 0


def _cmd_profile(argv: list[str]) -> int:
    """The ``profile`` command: report / roofline / export / wrapped command.

    Wrapping installs a process-wide profiler, runs the inner command, and
    prints the measured-counter attribution for every kernel it launched —
    composing with ``trace`` and ``sanitize`` the same way they compose
    with each other.
    """
    from repro.profile import Profiler, set_profiler
    from repro.profile.report import format_report

    if not argv or argv[0] == "profile":
        raise SystemExit(
            "usage: repro profile {report [opts] | roofline [opts] | "
            "export [opts] | <command> [args]}"
        )
    if argv[0] in ("report", "roofline", "export"):
        handler = {
            "report": _profile_report,
            "roofline": _profile_roofline,
            "export": _profile_export,
        }[argv[0]]
        try:
            return handler(argv[1:])
        except ValueError as exc:  # unknown workload/solver/backend names
            print(f"repro profile {argv[0]}: {exc}", file=sys.stderr)
            return 2

    profiler = Profiler()
    set_profiler(profiler)
    try:
        code = main(argv)
    finally:
        set_profiler(None)
    print()
    if profiler.kernel_names():
        print(format_report(profiler, "measured kernel counters"))
    else:
        print("profile: no instrumented kernel launches")
    return code


def _slo_specs(args):
    """Objectives for the ``slo``/``top`` commands: file or stock defaults."""
    from repro.telemetry import default_slos, load_slos

    if getattr(args, "specs", None):
        return load_slos(args.specs)
    return default_slos(latency_threshold_ms=args.threshold_ms)


def _slo_run_synthetic(args):
    """Drive a synthetic serve workload on a synthetic multi-hour clock.

    Each epoch submits ``--requests`` real requests through a
    :class:`~repro.serve.service.SolverService`, optionally seeds a
    latency regression (``--inject-latency-ms`` observed for
    ``--inject-fraction`` of the epoch's requests — the knob CI flips to
    prove the alert pages), then advances the synthetic clock by
    ``--epoch-minutes`` and samples the monitor. Returns the monitor, its
    final statuses and the service's event log.
    """
    import numpy as np

    from repro.serve import ServeConfig, SolveRequest, SolverService
    from repro.telemetry import SloMonitor
    from repro.workloads.stencil import three_point_stencil

    state = {"now": 0.0}
    config = ServeConfig(
        max_batch_size=args.batch_size,
        max_wait_ms=1.0,
        num_workers=args.workers,
        backend=args.backend,
    )
    pattern = three_point_stencil(args.size, 1).item_scipy(0)
    rng = np.random.default_rng(args.seed)

    with SolverService(config) as service:
        monitor = SloMonitor(
            service.metrics, specs=_slo_specs(args), clock=lambda: state["now"]
        )
        monitor.sample()
        hdr = service.metrics.log_histogram("serve.latency_hdr_ms")
        for _epoch in range(args.epochs):
            tickets = []
            for _ in range(args.requests):
                values = pattern.copy()
                values.data = values.data * rng.uniform(0.9, 1.1, size=values.nnz)
                tickets.append(
                    service.submit(
                        SolveRequest(
                            values,
                            rng.standard_normal(args.size),
                            solver=args.solver,
                            preconditioner="jacobi",
                            tolerance=1e-8,
                        )
                    )
                )
            for ticket in tickets:
                ticket.result(timeout=60.0)
            if args.inject_latency_ms > 0:
                for _ in range(int(round(args.inject_fraction * args.requests))):
                    hdr.observe(args.inject_latency_ms)
            state["now"] += args.epoch_minutes * 60.0
            monitor.sample()
        statuses = monitor.evaluate(now=state["now"])
        events = service.events
    return monitor, statuses, events


def _slo_offline_statuses(args):
    """Score a Prometheus text dump against the objectives (no windows)."""
    from pathlib import Path

    from repro.telemetry import SloStatus, counts_from_prometheus

    text = Path(args.metrics_in).read_text(encoding="utf-8")
    statuses = []
    for spec in _slo_specs(args):
        bad, total = counts_from_prometheus(spec, text)
        statuses.append(SloStatus(spec=spec, bad=bad, total=total))
    return statuses


def _slo_check_or_report(mode: str, argv: list[str]) -> int:
    """The ``slo check`` / ``slo report`` forms (synthetic or offline)."""
    from repro.bench.report import print_table
    from repro.observability.metrics import MetricsRegistry
    from repro.telemetry import SloMonitor

    parser = argparse.ArgumentParser(prog=f"repro slo {mode}")
    parser.add_argument("--requests", type=int, default=32, help="requests per epoch")
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument(
        "--epoch-minutes",
        type=float,
        default=10.0,
        help="synthetic minutes the clock advances per epoch",
    )
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--backend", choices=["sycl", "cuda", "cudasim", "wide"], default="sycl"
    )
    parser.add_argument("--solver", default="bicgstab")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold-ms",
        type=float,
        default=500.0,
        help="latency objective boundary (ignored with --specs)",
    )
    parser.add_argument("--specs", default=None, help="SLO spec JSON file")
    parser.add_argument(
        "--metrics-in",
        default=None,
        help="score a Prometheus text dump offline instead of running a workload",
    )
    parser.add_argument(
        "--inject-latency-ms",
        type=float,
        default=0.0,
        help="seed a latency regression: observe this latency for a "
        "fraction of each epoch's requests",
    )
    parser.add_argument(
        "--inject-fraction",
        type=float,
        default=0.3,
        help="fraction of each epoch's requests the seeded regression hits",
    )
    args = parser.parse_args(argv)

    if args.metrics_in:
        statuses = _slo_offline_statuses(args)
        monitor = SloMonitor(MetricsRegistry(), specs=[s.spec for s in statuses])
        print_table(monitor.report_rows(statuses), f"slo compliance ({args.metrics_in})")
        failing = [s for s in statuses if not s.compliant]
    else:
        minutes = args.epochs * args.epoch_minutes
        print(
            f"slo {mode}: {args.epochs} epochs x {args.requests} requests, "
            f"synthetic clock {minutes:.0f} min"
            + (
                f", seeded regression {args.inject_latency_ms:.0f} ms on "
                f"{args.inject_fraction:.0%} of requests"
                if args.inject_latency_ms > 0
                else ""
            )
        )
        _monitor, statuses, _events = _slo_run_synthetic(args)
        print()
        print_table(_monitor.report_rows(statuses), "slo burn state")
        failing = [s for s in statuses if s.burning or not s.compliant]

    if failing:
        names = ", ".join(s.spec.name for s in failing)
        print(f"\nslo {mode}: FAILING — {names}", file=sys.stderr)
        return 1 if mode == "check" else 0
    print(f"\nslo {mode}: all objectives healthy")
    return 0


def _slo_wrap(argv: list[str]) -> int:
    """Run a wrapped command under a telemetry hub and score it at exit.

    Every :class:`~repro.serve.service.SolverService` the wrapped command
    creates registers its metrics on the hub and shares the hub's event
    log; at exit the combined counts are scored against the objectives
    (overall compliance — a one-shot command has no burn-window
    timeline). Non-zero when the wrapped command fails *or* an objective
    is violated, so CI can gate any repro command on its SLOs.
    """
    import traceback

    from repro.bench.report import print_table
    from repro.observability.metrics import MetricsRegistry
    from repro.telemetry import SloMonitor, TelemetryHub, use_event_log, use_hub

    options = {"threshold_ms": 500.0, "specs": None, "events_out": None}
    rest: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        key = None
        if arg.startswith("--slo-threshold-ms"):
            key = "threshold_ms"
        elif arg.startswith("--slo-specs"):
            key = "specs"
        elif arg.startswith("--slo-events-out"):
            key = "events_out"
        if key is not None:
            if "=" in arg:
                options[key] = arg.split("=", 1)[1]
            else:
                if i + 1 >= len(argv):
                    raise SystemExit(f"repro slo: {arg} requires a value")
                options[key] = argv[i + 1]
                i += 1
        else:
            rest.append(arg)
        i += 1
    options["threshold_ms"] = float(options["threshold_ms"])

    hub = TelemetryHub()
    try:
        with use_hub(hub), use_event_log(hub.event_log):
            code = main(rest)
    except SystemExit as exc:
        if exc.code is None:
            code = 0
        elif isinstance(exc.code, int):
            code = exc.code
        else:
            print(exc.code, file=sys.stderr)
            code = 1
    except Exception:
        traceback.print_exc()
        code = 1

    class _Opts:
        specs = options["specs"]
        threshold_ms = options["threshold_ms"]

    specs = _slo_specs(_Opts)
    statuses = hub.slo_statuses(specs)
    monitor = SloMonitor(MetricsRegistry(), specs=specs)
    print()
    print_table(monitor.report_rows(statuses), "slo compliance (wrapped command)")
    if options["events_out"]:
        path = hub.event_log.write_jsonl(options["events_out"])
        print(f"{len(hub.event_log)} telemetry events written to {path}")
    violated = [s for s in statuses if not s.compliant]
    if violated:
        names = ", ".join(s.spec.name for s in violated)
        print(f"slo: VIOLATED — {names}", file=sys.stderr)
        return code or 1
    if not hub.registries:
        print("slo: wrapped command created no services; nothing to score")
    else:
        print("slo: all objectives met")
    if code != 0:
        print(f"warning: wrapped command exited {code}", file=sys.stderr)
    return code


def _cmd_slo(argv: list[str]) -> int:
    """The ``slo`` command: check / report / wrapped command."""
    if not argv or argv[0] == "slo":
        raise SystemExit(
            "usage: repro slo {check [opts] | report [opts] | <command> [args] "
            "[--slo-threshold-ms MS] [--slo-specs FILE] [--slo-events-out FILE]}"
        )
    if argv[0] in ("check", "report"):
        return _slo_check_or_report(argv[0], argv[1:])
    return _slo_wrap(argv)


def _cmd_top(args) -> int:
    """Live text dashboard over a synthetic serve workload."""
    import threading
    import time as _time

    import numpy as np

    from repro.serve import ServeConfig, SolveRequest, SolverService
    from repro.telemetry import SloMonitor, dashboard_text, default_slos
    from repro.workloads.stencil import three_point_stencil

    if getattr(args, "shards", 1) > 1:
        return _top_fleet(args)

    config = ServeConfig(
        max_batch_size=args.batch_size,
        max_wait_ms=2.0,
        num_workers=args.workers,
        backend=args.backend,
    )
    pattern = three_point_stencil(args.size, 1).item_scipy(0)
    rng = np.random.default_rng(args.seed)

    with SolverService(config) as service:
        monitor = SloMonitor(
            service.metrics, specs=default_slos(latency_threshold_ms=args.threshold_ms)
        )
        monitor.sample()
        stop = threading.Event()

        def feed() -> None:
            # spread the workload across the dashboard's lifetime so the
            # frames show the counters moving
            for k in range(args.requests):
                if stop.is_set():
                    return
                values = pattern.copy()
                values.data = values.data * rng.uniform(0.9, 1.1, size=values.nnz)
                try:
                    ticket = service.submit(
                        SolveRequest(
                            values,
                            rng.standard_normal(args.size),
                            solver=args.solver,
                            preconditioner="jacobi",
                            tolerance=1e-8,
                        )
                    )
                    ticket.result(timeout=60.0)
                except Exception:
                    return
                if args.requests > 1 and k % 8 == 7:
                    _time.sleep(min(args.interval / 4.0, 0.05))

        feeder = threading.Thread(target=feed, name="repro-top-feeder", daemon=True)
        feeder.start()
        try:
            for frame in range(args.frames):
                if frame:
                    _time.sleep(args.interval)
                print(
                    dashboard_text(
                        service.metrics,
                        monitor=monitor,
                        events=service.events,
                        title=f"repro top — frame {frame + 1}/{args.frames}",
                    )
                )
        finally:
            stop.set()
            feeder.join(timeout=60.0)
    return 0


def _top_fleet(args) -> int:
    """``top --shards N``: the dashboard over a live fleet, shard panel on."""
    import threading
    import time as _time

    import numpy as np

    from repro.fleet import FleetConfig, FleetService
    from repro.serve import ServeConfig
    from repro.telemetry import dashboard_text
    from repro.workloads.arrivals import keyed_requests, stencil_pattern

    config = FleetConfig(
        serve=ServeConfig(
            max_batch_size=args.batch_size,
            max_wait_ms=2.0,
            num_workers=args.workers,
            backend=args.backend,
        ),
        initial_replicas=args.shards,
        max_replicas=max(args.shards, 8),
    )
    pattern = stencil_pattern(args.size)
    rng = np.random.default_rng(args.seed)
    requests = keyed_requests(
        pattern, rng, args.size, args.requests,
        max(16, 2 * args.shards), solver=args.solver,
    )

    with FleetService(config) as fleet:
        stop = threading.Event()

        def feed() -> None:
            for k, request in enumerate(requests):
                if stop.is_set():
                    return
                try:
                    fleet.submit(request).result(timeout=60.0)
                except Exception:
                    return
                if len(requests) > 1 and k % 8 == 7:
                    _time.sleep(min(args.interval / 4.0, 0.05))

        feeder = threading.Thread(target=feed, name="repro-top-feeder", daemon=True)
        feeder.start()
        try:
            for frame in range(args.frames):
                if frame:
                    _time.sleep(args.interval)
                fleet.refresh_metrics()
                print(
                    dashboard_text(
                        fleet.metrics,
                        events=fleet.events,
                        fleet=fleet,
                        title=f"repro top — fleet — frame {frame + 1}/{args.frames}",
                    )
                )
        finally:
            stop.set()
            feeder.join(timeout=60.0)
    return 0


def _chaos_parser(prog: str) -> argparse.ArgumentParser:
    """Shared workload/service flags for ``chaos replay`` and ``chaos battery``."""
    parser = argparse.ArgumentParser(prog=prog)
    parser.add_argument("--requests", type=int, default=128)
    parser.add_argument("--rate", type=float, default=400.0, help="arrival rate (req/s)")
    parser.add_argument(
        "--pattern", choices=["uniform", "poisson", "bursty", "diurnal"],
        default="diurnal",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    parser.add_argument("--fault-seed", type=int, default=0, help="fault-plan seed")
    parser.add_argument("--size", type=int, default=24)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--keys", type=int, default=4, help="distinct BatchKeys")
    parser.add_argument(
        "--shards", type=int, default=1,
        help="run against a fleet of this many shards (1 = single service)",
    )
    parser.add_argument("--threshold-ms", type=float, default=500.0)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-ticket wait budget (s); expiry counts as lost")
    parser.add_argument("--trace-in", default=None, help="replay this saved trace")
    parser.add_argument("--trace-out", default=None, help="save the trace (JSONL)")
    return parser


def _chaos_trace_and_factory(args, chaos):
    """Build (trace items, service factory) from parsed chaos flags."""
    from repro.chaos.replay import build_trace, load_trace, save_trace
    from repro.serve import ServeConfig, SolverService

    if args.trace_in:
        items = load_trace(args.trace_in)
    else:
        items = build_trace(
            seed=args.seed,
            num_requests=args.requests,
            rate_rps=args.rate,
            pattern=args.pattern,
            num_keys=args.keys,
        )
    if args.trace_out:
        path = save_trace(items, args.trace_out)
        print(f"trace ({len(items)} items) written to {path}")

    serve_config = ServeConfig(
        max_batch_size=args.batch_size,
        max_wait_ms=args.wait_ms,
        num_workers=args.workers,
    )
    if args.shards > 1:
        from repro.fleet import FleetConfig, FleetService

        fleet_config = FleetConfig(
            serve=serve_config,
            initial_replicas=args.shards,
            max_replicas=max(args.shards, 8),
        )
        return items, (lambda: FleetService(fleet_config, chaos=chaos))
    return items, (lambda: SolverService(serve_config, chaos=chaos))


def _chaos_print_report(report, title: str) -> None:
    from repro.bench.report import print_table

    print(
        f"\n{title}: {report.completed}/{report.total} completed, "
        f"{report.failed} failed (structured), {report.rejected} rejected, "
        f"{report.lost} LOST, {report.fallbacks} fallbacks, "
        f"p50/p99 {report.latency_p50_ms:.2f}/{report.latency_p99_ms:.2f} ms "
        f"in {report.duration_s:.2f} s"
    )
    if report.statuses:
        print(
            "status codes: "
            + ", ".join(f"{code}={n}" for code, n in sorted(report.statuses.items()))
        )
    if report.injected:
        print(
            "injected faults: "
            + ", ".join(f"{k}={n}" for k, n in sorted(report.injected.items()))
        )
    print()
    print_table(report.tenant_rows(), "per-tenant outcomes")
    slo_rows = [
        {
            "slo": row["name"],
            "objective": f"{row['objective']:.3f}",
            "good": f"{row['good_fraction']:.4f}",
            "budget_used": f"{row['budget_consumed']:.2f}x",
            "state": "OK" if row["compliant"] else "VIOLATED",
        }
        for row in report.slo_rows
    ]
    print()
    print_table(slo_rows, "SLO verdicts")


def _chaos_replay(argv: list[str]) -> int:
    """``chaos replay``: score a trace replay; non-zero on lost tickets or,
    absent injected faults, on any SLO violation."""
    parser = _chaos_parser("repro chaos replay")
    parser.add_argument(
        "--faults", action="store_true",
        help="install the seeded fault battery during the replay",
    )
    args = parser.parse_args(argv)

    from repro.chaos import ChaosInjector, FaultPlan
    from repro.chaos.replay import run_replay

    chaos = ChaosInjector(FaultPlan.battery(seed=args.fault_seed)) if args.faults else None
    items, factory = _chaos_trace_and_factory(args, chaos)
    mode = "fault battery" if args.faults else "clean"
    print(
        f"chaos replay ({mode}): {len(items)} requests, pattern={args.pattern}, "
        f"{args.shards} shard(s)"
    )
    report = run_replay(
        items,
        factory,
        seed=args.seed,
        size=args.size,
        latency_threshold_ms=args.threshold_ms,
        result_timeout_s=args.timeout,
    )
    _chaos_print_report(report, "replay")
    if report.lost:
        print(f"\nFAIL: {report.lost} request(s) lost (no structured outcome)")
        return 1
    if not args.faults and not report.slo_compliant:
        print("\nFAIL: SLO violated on a clean replay")
        return 1
    print("\nPASS")
    return 0


def _chaos_battery(argv: list[str]) -> int:
    """``chaos battery``: the seeded fault battery as a gate.

    Passes only when every fault kind fired at least once, zero tickets
    were lost, and every failure carried a structured (non-500) status.
    The whole run executes under a flight recorder; on any failure a
    diagnostic bundle is dumped and its path printed — CI uploads it as
    an artifact, and ``repro postmortem analyze <path>`` explains the
    loss.
    """
    parser = _chaos_parser("repro chaos battery")
    parser.add_argument(
        "--bundle-dir",
        default="/tmp/repro_chaos_bundles",
        help="flight-recorder bundles are dumped here on failure "
        "(printed as the CI artifact path)",
    )
    parser.add_argument(
        "--dump-bundle",
        action="store_true",
        help="dump a bundle even when the battery passes (feeds smoke "
        "pipelines that drive the postmortem CLI on every run)",
    )
    args = parser.parse_args(argv)

    from repro.chaos import ChaosInjector, FaultPlan
    from repro.chaos.plan import FAULT_KINDS
    from repro.chaos.replay import run_replay
    from repro.recorder import FlightRecorder, use_recorder

    chaos = ChaosInjector(FaultPlan.battery(seed=args.fault_seed))
    items, factory = _chaos_trace_and_factory(args, chaos)
    print(
        f"chaos battery: {len(items)} requests under "
        f"{len(chaos.plan.specs)} fault specs, {args.shards} shard(s)"
    )
    recorder = FlightRecorder(
        capacity=4096, solve_capacity=1024, shard="chaos-battery"
    )
    with use_recorder(recorder):
        report = run_replay(
            items,
            factory,
            seed=args.seed,
            size=args.size,
            latency_threshold_ms=args.threshold_ms,
            result_timeout_s=args.timeout,
        )
    _chaos_print_report(report, "battery")

    failures = []
    if report.lost:
        failures.append(f"{report.lost} request(s) lost")
    unstructured = report.statuses.get(500, 0)
    if unstructured:
        failures.append(f"{unstructured} failure(s) without a structured status")
    silent = [k for k in FAULT_KINDS if not report.injected.get(k)]
    if silent:
        failures.append(f"fault kind(s) never fired: {', '.join(silent)}")
    if failures:
        bundle = recorder.dump(args.bundle_dir, reason="chaos_battery_failure")
        print("\nFAIL: " + "; ".join(failures))
        print(f"flight-recorder bundle (CI artifact): {bundle}")
        print(f"analyze with: python -m repro postmortem analyze {bundle}")
        return 1
    print(
        f"\nPASS: {report.injected_total} faults injected, zero lost, "
        f"all failures structured"
    )
    if args.dump_bundle:
        bundle = recorder.dump(args.bundle_dir, reason="manual")
        print(f"flight-recorder bundle (CI artifact): {bundle}")
    return 0


def _chaos_wrap(argv: list[str]) -> int:
    """``chaos <command> [args] [--fault-seed N]``: run any repro command
    with the seeded fault battery ambiently installed.

    ``--fault-seed`` may appear anywhere in the wrapped argv (the same
    convention as ``trace``'s ``--trace-out``) — it is split out here and
    never reaches the wrapped command's parser.
    """
    fault_seed = 0
    rest: list[str] = []
    i = 0
    while i < len(argv):
        if argv[i] == "--fault-seed":
            if i + 1 >= len(argv):
                print("repro chaos: --fault-seed needs a value", file=sys.stderr)
                return 2
            try:
                fault_seed = int(argv[i + 1])
            except ValueError:
                print(f"repro chaos: bad --fault-seed {argv[i + 1]!r}", file=sys.stderr)
                return 2
            i += 2
            continue
        rest.append(argv[i])
        i += 1
    if not rest:
        print(
            "usage: repro chaos replay|battery [flags] | "
            "repro chaos [--fault-seed N] <command> [args]",
            file=sys.stderr,
        )
        return 2

    from repro.chaos import ChaosInjector, FaultPlan, use_chaos

    injector = ChaosInjector(FaultPlan.battery(seed=fault_seed))
    print(f"chaos: fault battery (seed {fault_seed}) installed for: {' '.join(rest)}")
    with use_chaos(injector):
        code = main(rest)
    counts = injector.injected_by_kind()
    summary = ", ".join(f"{k}={n}" for k, n in sorted(counts.items())) or "none"
    print(
        f"\nchaos: {injector.total_injected} fault(s) injected over "
        f"{injector.flushes_seen} flushes ({summary})"
    )
    return code


def _cmd_chaos(argv: list[str]) -> int:
    if argv and argv[0] == "replay":
        return _chaos_replay(argv[1:])
    if argv and argv[0] == "battery":
        return _chaos_battery(argv[1:])
    return _chaos_wrap(argv)


def _cmd_postmortem(argv: list[str]) -> int:
    """``postmortem {analyze,timeline,diff}``: read flight-recorder bundles.

    * ``analyze <bundle>...`` — incident attribution (infrastructure
      fault vs. convergence class) with victim trace ids; ``--json``
      prints the machine-readable analysis instead of the report.
    * ``timeline <bundle>...`` — the merged cross-shard event timeline.
    * ``diff <a> <b>`` — what changed between two bundles.
    """
    parser = argparse.ArgumentParser(
        prog="repro postmortem",
        description="analyze flight-recorder diagnostic bundles",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    analyze = sub.add_parser("analyze", help="attribute incidents and failures")
    analyze.add_argument("bundles", nargs="+", help="bundle dirs (or parents of)")
    analyze.add_argument("--json", action="store_true", help="print JSON, not the report")
    analyze.add_argument("--out", default=None, help="also write the report here")
    timeline = sub.add_parser("timeline", help="merged cross-shard event timeline")
    timeline.add_argument("bundles", nargs="+", help="bundle dirs (or parents of)")
    timeline.add_argument("--limit", type=int, default=None, help="last N events only")
    diff = sub.add_parser("diff", help="what changed between two bundles")
    diff.add_argument("a", help="the before bundle")
    diff.add_argument("b", help="the after bundle")
    args = parser.parse_args(argv)

    import json
    from pathlib import Path

    from repro.recorder import (
        analyze_bundles,
        diff_bundles,
        load_bundle,
        load_bundles,
        render_analysis,
        render_diff,
        render_timeline,
    )

    if args.action == "analyze":
        analysis = analyze_bundles(load_bundles(args.bundles))
        if args.json:
            print(json.dumps(analysis, indent=2, default=str))
        else:
            print(render_analysis(analysis))
        if args.out:
            Path(args.out).write_text(render_analysis(analysis))
            print(f"report written to {args.out}")
        return 0
    if args.action == "timeline":
        print(render_timeline(load_bundles(args.bundles), limit=args.limit))
        return 0
    print(render_diff(diff_bundles(load_bundle(args.a), load_bundle(args.b))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (one sub-command per experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batched iterative solvers — paper reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 1-5").set_defaults(fn=_cmd_tables)
    sub.add_parser("figures", help="regenerate Figures 4-8").set_defaults(fn=_cmd_figures)
    sub.add_parser("features", help="dispatch feature matrix").set_defaults(
        fn=_cmd_features
    )

    pele = sub.add_parser("pele", help="PeleLM speedup study (Fig 7)")
    pele.add_argument("--batch", type=int, default=2**17)
    pele.set_defaults(fn=_cmd_pele)

    stencil = sub.add_parser("stencil", help="stencil scaling study (Figs 4-5)")
    stencil.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64, 128])
    stencil.add_argument("--nb-solve", type=int, default=8)
    stencil.set_defaults(fn=_cmd_stencil)

    advisor = sub.add_parser("advisor", help="Fig 8 Advisor-style report")
    advisor.add_argument("--mechanism", default="dodecane_lu")
    advisor.add_argument("--platform", default="pvc1")
    advisor.add_argument("--batch", type=int, default=2**17)
    advisor.set_defaults(fn=_cmd_advisor)

    serve_demo = sub.add_parser(
        "serve-demo", help="demo the async batched-solver service (repro.serve)"
    )
    serve_demo.add_argument("--requests", type=int, default=256)
    serve_demo.add_argument("--size", type=int, default=32)
    serve_demo.add_argument("--batch-size", type=int, default=32)
    serve_demo.add_argument("--wait-ms", type=float, default=2.0)
    serve_demo.add_argument("--workers", type=int, default=2)
    serve_demo.add_argument(
        "--backend", choices=["sycl", "cuda", "cudasim", "wide"], default="sycl"
    )
    serve_demo.add_argument(
        "--execution", choices=["vectorized", "kernel"], default="vectorized"
    )
    serve_demo.add_argument("--solver", default="bicgstab")
    serve_demo.add_argument(
        "--shards",
        "--replicas",
        dest="shards",
        type=int,
        default=1,
        help="route the workload through a fleet of this many shard replicas "
        "(repro.fleet); 1 = the plain single-service path",
    )
    serve_demo.add_argument(
        "--keys",
        type=int,
        default=16,
        help="distinct BatchKeys in the workload (fleet path only; "
        "key diversity is what spreads load across shards)",
    )
    serve_demo.add_argument(
        "--tenants",
        type=int,
        default=0,
        help="split the workload over this many tenants (cycling through the "
        "high/normal/low priority classes) and print the per-tenant QoS "
        "table; 0 = single default tenant",
    )
    serve_demo.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        help="max in-flight requests per tenant (submissions over quota are "
        "rejected with a structured 429)",
    )
    serve_demo.add_argument(
        "--tuning-db",
        default=None,
        help="serve tuned launch geometry from this TuningDB file",
    )
    serve_demo.add_argument(
        "--metrics-out",
        default=None,
        help="dump the service metrics in Prometheus text format to this file",
    )
    serve_demo.add_argument(
        "--events-out",
        default=None,
        help="write the structured telemetry event log (JSONL) to this file",
    )
    serve_demo.set_defaults(fn=_cmd_serve_demo)

    fleet_demo = sub.add_parser(
        "fleet-demo",
        help="demo the sharded solver fleet (repro.fleet): consistent-hash "
        "routing, scale-up/drain lifecycle, optional autoscaler",
    )
    fleet_demo.add_argument("--requests", type=int, default=128)
    fleet_demo.add_argument("--keys", type=int, default=32, help="distinct BatchKeys")
    fleet_demo.add_argument("--size", type=int, default=16, help="rows per system")
    fleet_demo.add_argument("--batch-size", type=int, default=4)
    fleet_demo.add_argument(
        "--shards", type=int, default=2, help="initial shard replicas"
    )
    fleet_demo.add_argument(
        "--rate", type=float, default=1000.0, help="arrival rate (req/s)"
    )
    fleet_demo.add_argument(
        "--arrival", choices=["poisson", "bursty"], default="poisson"
    )
    fleet_demo.add_argument(
        "--dwell-ms",
        type=float,
        default=20.0,
        help="simulated device occupancy per flush (ms)",
    )
    fleet_demo.add_argument(
        "--backend", choices=["sycl", "cuda", "cudasim", "wide"], default="sycl"
    )
    fleet_demo.add_argument(
        "--autoscale",
        action="store_true",
        help="run the Autoscaler control loop instead of the manual "
        "scale-up/drain demonstration",
    )
    fleet_demo.add_argument(
        "--autoscale-interval", type=float, default=0.25,
        help="seconds between autoscaler evaluations",
    )
    fleet_demo.add_argument(
        "--threshold-ms", type=float, default=500.0,
        help="autoscaler p99 latency objective",
    )
    fleet_demo.add_argument("--seed", type=int, default=42)
    fleet_demo.add_argument(
        "--metrics-out",
        default=None,
        help="dump the fleet metrics in Prometheus text format to this file",
    )
    fleet_demo.add_argument(
        "--events-out",
        default=None,
        help="write the structured telemetry event log (JSONL) to this file",
    )
    fleet_demo.set_defaults(fn=_cmd_fleet_demo)

    tune = sub.add_parser(
        "tune", help="empirical launch-parameter autotuning (repro.tune)"
    )
    tune.add_argument(
        "action",
        choices=["tune", "show", "clear"],
        help="tune = search one workload; show = list records; clear = drop records",
    )
    tune.add_argument("--db", default="tuning_db.json", help="TuningDB file path")
    tune.add_argument(
        "--platform",
        default=None,
        help="platform key (pvc1/pvc2/a100/h100); required for 'tune', "
        "filters for 'clear'",
    )
    tune.add_argument(
        "--workload",
        default="stencil",
        help="'stencil' (with --rows) or a PeleLM mechanism name",
    )
    tune.add_argument("--rows", type=int, default=32)
    tune.add_argument("--nb-solve", type=int, default=8)
    tune.add_argument("--strategy", choices=["grid", "coordinate", "random"], default="grid")
    tune.add_argument("--budget", type=int, default=16)
    tune.add_argument("--patience", type=int, default=8)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--prune-fraction", type=float, default=1.0)
    tune.add_argument("--force", action="store_true", help="re-search even on a DB hit")
    tune.add_argument(
        "--store-generic",
        action="store_true",
        help="also store the winner under the device-wide wildcard key",
    )
    tune.add_argument(
        "--solver", dest="solver", default=None, help="solver filter for 'clear'"
    )
    tune.set_defaults(fn=_cmd_tune)

    trace = sub.add_parser(
        "trace",
        help="run a command with tracing enabled and export a Chrome trace "
        "(trace <command> [args] --trace-out FILE [--jsonl-out FILE] "
        "[--no-summary])",
    )
    trace.add_argument("wrapped", nargs=argparse.REMAINDER)
    trace.set_defaults(fn=lambda a: _cmd_trace(a.wrapped))

    profile = sub.add_parser(
        "profile",
        help="measured kernel counters (repro.profile): 'report' (per-phase "
        "attribution, both backends), 'roofline' (measured placement + "
        "model-drift verdict), 'export' (folded stacks / JSON), or any "
        "repro command to run with counter collection enabled",
    )
    profile.add_argument("wrapped", nargs=argparse.REMAINDER)
    profile.set_defaults(fn=lambda a: _cmd_profile(a.wrapped))

    slo = sub.add_parser(
        "slo",
        help="SLO monitor (repro.telemetry): 'check' (synthetic workload + "
        "burn-rate alerts, non-zero when burning; seed a regression with "
        "--inject-latency-ms), 'report' (burn table, or score a Prometheus "
        "dump via --metrics-in), or any repro command to run under a "
        "telemetry hub and score at exit",
    )
    slo.add_argument("wrapped", nargs=argparse.REMAINDER)
    slo.set_defaults(fn=lambda a: _cmd_slo(a.wrapped))

    top = sub.add_parser(
        "top",
        help="live text dashboard over a synthetic serve workload: metrics, "
        "latency sparklines, SLO burn state, recent events",
    )
    top.add_argument("--frames", type=int, default=4)
    top.add_argument("--interval", type=float, default=0.5, help="seconds between frames")
    top.add_argument("--requests", type=int, default=64)
    top.add_argument("--size", type=int, default=16)
    top.add_argument("--batch-size", type=int, default=16)
    top.add_argument("--workers", type=int, default=2)
    top.add_argument(
        "--backend", choices=["sycl", "cuda", "cudasim", "wide"], default="sycl"
    )
    top.add_argument("--solver", default="bicgstab")
    top.add_argument("--threshold-ms", type=float, default=500.0)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--shards",
        type=int,
        default=1,
        help="drive a fleet of this many shard replicas and show the "
        "per-shard panel (1 = single service)",
    )
    top.set_defaults(fn=_cmd_top)

    chaos = sub.add_parser(
        "chaos",
        help="fault injection (repro.chaos): 'replay' (seeded trace replay "
        "scored against the SLOs; --faults adds the battery), 'battery' "
        "(the seeded fault gate: every kind fires, zero lost tickets, all "
        "failures structured), or any repro command to run with the fault "
        "battery ambiently installed",
    )
    chaos.add_argument("wrapped", nargs=argparse.REMAINDER)
    chaos.set_defaults(fn=lambda a: _cmd_chaos(a.wrapped))

    postmortem = sub.add_parser(
        "postmortem",
        help="flight-recorder bundle analysis (repro.recorder): 'analyze' "
        "(incident + failure attribution), 'timeline' (merged cross-shard "
        "event stream), 'diff' (what changed between two bundles)",
    )
    postmortem.add_argument("wrapped", nargs=argparse.REMAINDER)
    postmortem.set_defaults(fn=lambda a: _cmd_postmortem(a.wrapped))

    sanitize = sub.add_parser(
        "sanitize",
        help="kernel sanitizer: 'selftest' (mutation battery), 'check <case>' "
        "(one battery kernel), 'diff' (backend differential grid), or any "
        "repro command to run with launch checking enabled",
    )
    sanitize.add_argument("wrapped", nargs=argparse.REMAINDER)
    sanitize.set_defaults(fn=lambda a: _cmd_sanitize(a.wrapped))

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args) or 0


if __name__ == "__main__":
    sys.exit(main())
