"""BatchDense: dense batched storage (Fig. 2, left).

Used for the dense-matrix code paths (e.g. block-Jacobi blocks, GMRES
Hessenberg systems) and as the reference the sparse formats round-trip
through in tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix, as_float_values
from repro.exceptions import DimensionMismatchError

_FP_BYTES = 8


class BatchDense(BatchedMatrix):
    """A batch of dense matrices stored as one ``(nb, rows, cols)`` array."""

    format_name = "dense"

    def __init__(self, values: np.ndarray, dtype: np.dtype | type | None = None) -> None:
        values = as_float_values(values, dtype)
        if values.ndim != 3:
            raise DimensionMismatchError(
                f"BatchDense expects a (num_batch, rows, cols) array, got "
                f"ndim={values.ndim}"
            )
        super().__init__(*values.shape, dtype=values.dtype)
        self.values = np.ascontiguousarray(values)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_item(cls, matrix: np.ndarray, num_batch: int) -> "BatchDense":
        """Replicate one dense matrix across a batch."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise DimensionMismatchError("from_item expects a 2-D matrix")
        return cls(np.repeat(matrix[None, :, :], num_batch, axis=0))

    # -- BatchedMatrix interface --------------------------------------------------

    @property
    def nnz_per_item(self) -> int:
        return self._num_rows * self._num_cols

    def apply(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
        x_name: str = "x",
        y_name: str = "y",
    ) -> np.ndarray:
        x = self.check_vector("x", x)
        # (nb, r, c) @ (nb, c, 1) -> (nb, r); einsum avoids the reshape dance.
        y = np.einsum("brc,bc->br", self.values, x)
        if ledger is not None:
            ledger.tally_spmv(
                self._num_batch,
                self._num_rows,
                self.nnz_per_item,
                index_bytes=0,
                mat_name="A",
                x_name=x_name,
                y_name=y_name,
            )
        if out is None:
            return y
        out[...] = y
        return out

    def to_batch_dense(self) -> np.ndarray:
        return self.values.copy()

    def diagonal(self) -> np.ndarray:
        n = min(self._num_rows, self._num_cols)
        return self.values[:, np.arange(n), np.arange(n)].copy()

    def scaled_copy(self, factors: np.ndarray) -> "BatchDense":
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self._num_batch,):
            raise DimensionMismatchError(
                f"factors must have shape ({self._num_batch},), got {factors.shape}"
            )
        return BatchDense(self.values * factors[:, None, None])

    @property
    def storage_bytes(self) -> int:
        # Fig. 2: num_matrices x rows x cols values, no pattern arrays.
        return self.value_bytes * self._num_batch * self._num_rows * self._num_cols

    def astype(self, dtype: np.dtype | type) -> "BatchDense":
        """Copy in another precision format."""
        return BatchDense(self.values, dtype=dtype)

    def take_batch(self, selection: slice) -> "BatchDense":
        """Sub-batch of the dense stack."""
        return BatchDense(self.values[selection], dtype=self.dtype)

    # -- dense-only extras ---------------------------------------------------------

    def transpose(self) -> "BatchDense":
        """Batched transpose."""
        return BatchDense(np.ascontiguousarray(self.values.transpose(0, 2, 1)))
