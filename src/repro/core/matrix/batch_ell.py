"""BatchEll: padded ELL storage, column-major values (Fig. 2, right).

Suited to matrices with a similar number of non-zeros in every row
(Section 3.1): rows are padded to a uniform width, which removes the row
pointers and makes accesses coalesced — each work-item owns one row, so
consecutive work-items touch consecutive elements of the column-major
value array.

The shared column-index array has shape ``(ell_width, num_rows)`` with
``-1`` marking padding; the value array has shape
``(num_batch, ell_width, num_rows)`` so that the innermost axis is the row
index, mirroring the column-major device layout.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.matrix.base import as_float_values
from repro.core.matrix.batch_csr import BatchCsr
from repro.exceptions import BadSparsityPatternError, DimensionMismatchError

_FP_BYTES = 8
_IDX_BYTES = 4

#: Column index marking a padding slot.
PADDING = -1


class BatchEll(BatchedMatrix):
    """A batch of ELL matrices sharing the padded column-index array."""

    format_name = "ell"

    def __init__(
        self,
        col_idxs: np.ndarray,
        values: np.ndarray,
        num_cols: int | None = None,
        dtype: np.dtype | type | None = None,
    ) -> None:
        col_idxs = np.ascontiguousarray(np.asarray(col_idxs, dtype=np.int32))
        values = np.ascontiguousarray(as_float_values(values, dtype))
        if col_idxs.ndim != 2:
            raise BadSparsityPatternError(
                f"col_idxs must be (ell_width, num_rows), got ndim={col_idxs.ndim}"
            )
        if values.ndim != 3 or values.shape[1:] != col_idxs.shape:
            raise DimensionMismatchError(
                f"values must be (num_batch,) + {col_idxs.shape}, got {values.shape}"
            )
        ell_width, num_rows = col_idxs.shape
        if ell_width == 0:
            raise BadSparsityPatternError("ELL width must be at least 1")
        ncols = int(num_cols) if num_cols is not None else num_rows
        super().__init__(values.shape[0], num_rows, ncols, dtype=values.dtype)

        valid = col_idxs != PADDING
        in_range = (col_idxs >= 0) & (col_idxs < ncols)
        if np.any(valid & ~in_range):
            raise BadSparsityPatternError(
                f"ELL column indices outside [0, {ncols}) (use {PADDING} for padding)"
            )
        if np.any(values[:, ~valid] != 0.0):
            raise BadSparsityPatternError("padding slots must hold zero values")

        self.col_idxs = col_idxs
        self.values = values
        self._valid = valid
        # Gather-safe indices: padding reads x[0] but is masked out of the sum.
        self._safe_cols = np.where(valid, col_idxs, 0)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_batch_csr(cls, csr: BatchCsr) -> "BatchEll":
        """Convert from :class:`BatchCsr`, padding rows to the widest row."""
        width = csr.max_nnz_per_row()
        num_rows = csr.num_rows
        col_idxs = np.full((width, num_rows), PADDING, dtype=np.int32)
        values = np.zeros((csr.num_batch, width, num_rows), dtype=csr.dtype)
        lengths = np.diff(csr.row_ptrs)
        for row in range(num_rows):
            start = csr.row_ptrs[row]
            for slot in range(lengths[row]):
                col_idxs[slot, row] = csr.col_idxs[start + slot]
                values[:, slot, row] = csr.values[:, start + slot]
        return cls(col_idxs, values, num_cols=csr.num_cols)

    @classmethod
    def from_dense(cls, batch: np.ndarray) -> "BatchEll":
        """Build from a dense batch via the shared union pattern."""
        return cls.from_batch_csr(BatchCsr.from_dense(batch))

    # -- BatchedMatrix interface -----------------------------------------------------

    @property
    def ell_width(self) -> int:
        """Stored entries per row (after padding)."""
        return int(self.col_idxs.shape[0])

    @property
    def nnz_per_item(self) -> int:
        # Stored entries including padding — this is what the format
        # actually keeps in memory and what the storage formula counts.
        return int(self.col_idxs.size)

    @property
    def nnz_unpadded(self) -> int:
        """Structurally meaningful entries per item (padding excluded)."""
        return int(self._valid.sum())

    def apply(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
        x_name: str = "x",
        y_name: str = "y",
    ) -> np.ndarray:
        x = self.check_vector("x", x)
        # One fused gather per ELL slot; padding gathers x[:, 0] but is
        # zeroed by the stored zero values, so no masking multiply needed.
        y = np.zeros((self._num_batch, self._num_rows), dtype=self.dtype)
        for slot in range(self.ell_width):
            y += self.values[:, slot, :] * x[:, self._safe_cols[slot]]
        if ledger is not None:
            ledger.tally_spmv(
                self._num_batch,
                self._num_rows,
                self.nnz_per_item,
                index_bytes=self.pattern_bytes,
                mat_name="A",
                x_name=x_name,
                y_name=y_name,
            )
        if out is None:
            return y
        out[...] = y
        return out

    def to_batch_dense(self) -> np.ndarray:
        dense = np.zeros(
            (self._num_batch, self._num_rows, self._num_cols), dtype=self.dtype
        )
        rows = np.arange(self._num_rows)
        for slot in range(self.ell_width):
            valid = self._valid[slot]
            dense[:, rows[valid], self.col_idxs[slot][valid]] += self.values[:, slot, valid]
        return dense

    def diagonal(self) -> np.ndarray:
        n = min(self._num_rows, self._num_cols)
        diag = np.zeros((self._num_batch, n), dtype=self.dtype)
        for slot in range(self.ell_width):
            hit = self.col_idxs[slot][:n] == np.arange(n)
            diag[:, hit] = self.values[:, slot, :n][:, hit]
        return diag

    def scaled_copy(self, factors: np.ndarray) -> "BatchEll":
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self._num_batch,):
            raise DimensionMismatchError(
                f"factors must have shape ({self._num_batch},), got {factors.shape}"
            )
        return BatchEll(self.col_idxs, self.values * factors[:, None, None], self._num_cols)

    @property
    def pattern_bytes(self) -> int:
        """Shared padded column-index array footprint."""
        return _IDX_BYTES * self.col_idxs.size

    @property
    def storage_bytes(self) -> int:
        # Fig. 2: [num_matrices x padded nnz] values + [width x rows] indices.
        return self.value_bytes * self._num_batch * self.nnz_per_item + self.pattern_bytes

    def astype(self, dtype: np.dtype | type) -> "BatchEll":
        """Copy in another precision format (values converted, pattern shared)."""
        return BatchEll(self.col_idxs, self.values, self._num_cols, dtype=dtype)

    def take_batch(self, selection: slice) -> "BatchEll":
        """Sub-batch with the same shared padded pattern."""
        return BatchEll(
            self.col_idxs, self.values[selection], self._num_cols, dtype=self.dtype
        )
