"""Conversions between the batched matrix formats.

The dispatch mechanism's first level is the matrix format (Figure 3);
:func:`convert` moves a batch between BatchDense/BatchCsr/BatchEll while
preserving the values, the batch order and the precision format. Sparse
round-trips through the dense representation use the union pattern —
explicit stored zeros are not preserved (the same normalization Ginkgo's
read routines apply).
"""

from __future__ import annotations

from repro.core.matrix.base import BatchedMatrix
from repro.core.matrix.batch_csr import BatchCsr
from repro.core.matrix.batch_dense import BatchDense
from repro.core.matrix.batch_ell import BatchEll
from repro.exceptions import UnsupportedCombinationError

_FORMATS = ("dense", "csr", "ell")


def convert(matrix: BatchedMatrix, fmt: str) -> BatchedMatrix:
    """Convert ``matrix`` to format ``fmt`` (``dense``/``csr``/``ell``)."""
    if fmt not in _FORMATS:
        raise UnsupportedCombinationError(
            f"unknown matrix format {fmt!r}; available: {_FORMATS}"
        )
    if matrix.format_name == fmt:
        return matrix
    if fmt == "dense":
        return BatchDense(matrix.to_batch_dense(), dtype=matrix.dtype)
    if fmt == "csr":
        # through the dense union pattern (drops ELL padding slots)
        return BatchCsr.from_dense(matrix.to_batch_dense()).astype(matrix.dtype)
    # fmt == "ell"
    if isinstance(matrix, BatchCsr):
        return BatchEll.from_batch_csr(matrix)
    return BatchEll.from_dense(matrix.to_batch_dense()).astype(matrix.dtype)
