"""BatchCsr: CSR values per item with one shared sparsity pattern.

This is the paper's general-purpose format (Section 3.1): the row-pointer
and column-index arrays are stored once for the whole batch, the value
array holds every item's non-zeros. The batched SpMV vectorizes across the
batch: a gather of ``x`` by the shared column indices followed by a
segmented row reduction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix, as_float_values
from repro.exceptions import BadSparsityPatternError, DimensionMismatchError

_FP_BYTES = 8
_IDX_BYTES = 4


class BatchCsr(BatchedMatrix):
    """A batch of CSR matrices sharing row pointers and column indices.

    Parameters
    ----------
    row_ptrs:
        ``(num_rows + 1,)`` int array; ``row_ptrs[0] == 0`` and
        ``row_ptrs[-1] == nnz``.
    col_idxs:
        ``(nnz,)`` int array of column indices, in-range; within a row the
        indices must be unique (sorted order is normalized on construction).
    values:
        ``(num_batch, nnz)`` float array — one value row per batch item.
    num_cols:
        Column count; defaults to ``num_rows`` (square systems).
    """

    format_name = "csr"

    def __init__(
        self,
        row_ptrs: np.ndarray,
        col_idxs: np.ndarray,
        values: np.ndarray,
        num_cols: int | None = None,
        dtype: np.dtype | type | None = None,
    ) -> None:
        row_ptrs = np.ascontiguousarray(np.asarray(row_ptrs, dtype=np.int32))
        col_idxs = np.ascontiguousarray(np.asarray(col_idxs, dtype=np.int32))
        values = as_float_values(values, dtype)
        if values.ndim != 2:
            raise DimensionMismatchError(
                f"BatchCsr values must be (num_batch, nnz), got ndim={values.ndim}"
            )
        num_rows = row_ptrs.shape[0] - 1
        if num_rows <= 0:
            raise BadSparsityPatternError("row_ptrs must have at least 2 entries")
        ncols = int(num_cols) if num_cols is not None else num_rows
        super().__init__(values.shape[0], num_rows, ncols, dtype=values.dtype)

        nnz = values.shape[1]
        _validate_pattern(row_ptrs, col_idxs, nnz, num_rows, ncols)

        # Normalize to sorted column order within each row so downstream
        # kernels (diagonal lookup, ILU schedules) can binary-search.
        order = _sort_within_rows(row_ptrs, col_idxs)
        self.row_ptrs = row_ptrs
        self.col_idxs = np.ascontiguousarray(col_idxs[order])
        self.values = np.ascontiguousarray(values[:, order])

        self._row_lengths = np.diff(self.row_ptrs)
        self._has_empty_rows = bool(np.any(self._row_lengths == 0))
        # Row index of every stored non-zero; drives the empty-row-safe SpMV
        # and per-row reductions elsewhere.
        self._row_of_nnz = np.repeat(
            np.arange(self._num_rows, dtype=np.int32), self._row_lengths
        )
        self._diag_positions = self._locate_diagonal()

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_dense(cls, batch: np.ndarray, keep_pattern_of: str = "union") -> "BatchCsr":
        """Build from an ``(nb, rows, cols)`` dense batch.

        The shared pattern is the union of the non-zero locations across
        the batch (``keep_pattern_of="union"``) or the pattern of the first
        item (``"first"``); values of items missing an entry of the shared
        pattern are stored as explicit zeros.
        """
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim != 3:
            raise DimensionMismatchError("from_dense expects (nb, rows, cols)")
        if keep_pattern_of == "union":
            mask = np.any(batch != 0.0, axis=0)
        elif keep_pattern_of == "first":
            mask = batch[0] != 0.0
        else:
            raise ValueError(f"unknown keep_pattern_of={keep_pattern_of!r}")
        if not mask.any():
            # keep at least the diagonal so the matrix is representable
            n = min(batch.shape[1], batch.shape[2])
            mask = np.zeros(batch.shape[1:], dtype=bool)
            mask[np.arange(n), np.arange(n)] = True
        rows, cols = np.nonzero(mask)
        row_ptrs = np.zeros(batch.shape[1] + 1, dtype=np.int32)
        np.add.at(row_ptrs, rows + 1, 1)
        row_ptrs = np.cumsum(row_ptrs, dtype=np.int32)
        values = batch[:, rows, cols]
        return cls(row_ptrs, cols.astype(np.int32), values, num_cols=batch.shape[2])

    @classmethod
    def from_scipy_batch(cls, items: list[sp.spmatrix]) -> "BatchCsr":
        """Build from a list of scipy sparse matrices with identical patterns."""
        if not items:
            raise DimensionMismatchError("from_scipy_batch needs at least one matrix")
        ref = items[0].tocsr().sorted_indices()
        ref.eliminate_zeros()
        values = np.empty((len(items), ref.nnz), dtype=np.float64)
        for i, item in enumerate(items):
            csr = item.tocsr().sorted_indices()
            csr.eliminate_zeros()
            same = (
                csr.shape == ref.shape
                and np.array_equal(csr.indptr, ref.indptr)
                and np.array_equal(csr.indices, ref.indices)
            )
            if not same:
                raise BadSparsityPatternError(
                    f"batch item {i} does not share the sparsity pattern of item 0"
                )
            values[i] = csr.data
        return cls(ref.indptr, ref.indices, values, num_cols=ref.shape[1])

    @classmethod
    def from_item_pattern(
        cls, pattern: sp.spmatrix, values: np.ndarray
    ) -> "BatchCsr":
        """Build from one pattern matrix plus a ``(nb, nnz)`` value array."""
        csr = pattern.tocsr().sorted_indices()
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != csr.nnz:
            raise DimensionMismatchError(
                f"values must be (num_batch, {csr.nnz}), got {values.shape}"
            )
        return cls(csr.indptr, csr.indices, values, num_cols=csr.shape[1])

    # -- BatchedMatrix interface ------------------------------------------------------

    @property
    def nnz_per_item(self) -> int:
        return int(self.values.shape[1])

    def apply(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
        x_name: str = "x",
        y_name: str = "y",
    ) -> np.ndarray:
        x = self.check_vector("x", x)
        products = self.values * x[:, self.col_idxs]
        if self._has_empty_rows:
            y = np.zeros((self._num_batch, self._num_rows), dtype=self.dtype)
            np.add.at(
                y,
                (np.arange(self._num_batch)[:, None], self._row_of_nnz[None, :]),
                products,
            )
        else:
            y = np.add.reduceat(products, self.row_ptrs[:-1], axis=1)
        if ledger is not None:
            ledger.tally_spmv(
                self._num_batch,
                self._num_rows,
                self.nnz_per_item,
                index_bytes=self.pattern_bytes,
                mat_name="A",
                x_name=x_name,
                y_name=y_name,
            )
        if out is None:
            return y
        out[...] = y
        return out

    def to_batch_dense(self) -> np.ndarray:
        dense = np.zeros(
            (self._num_batch, self._num_rows, self._num_cols), dtype=self.dtype
        )
        dense[:, self._row_of_nnz, self.col_idxs] = self.values
        return dense

    def diagonal(self) -> np.ndarray:
        n = min(self._num_rows, self._num_cols)
        diag = np.zeros((self._num_batch, n), dtype=self.dtype)
        present = self._diag_positions >= 0
        diag[:, present[:n]] = self.values[:, self._diag_positions[:n][present[:n]]]
        return diag

    def scaled_copy(self, factors: np.ndarray) -> "BatchCsr":
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self._num_batch,):
            raise DimensionMismatchError(
                f"factors must have shape ({self._num_batch},), got {factors.shape}"
            )
        return BatchCsr(
            self.row_ptrs, self.col_idxs, self.values * factors[:, None], self._num_cols
        )

    @property
    def pattern_bytes(self) -> int:
        """Shared-pattern footprint: row pointers + column indices."""
        return _IDX_BYTES * (self._num_rows + 1) + _IDX_BYTES * self.nnz_per_item

    @property
    def storage_bytes(self) -> int:
        # Fig. 2: [num_matrices x nnz] values + [(rows+1)] ptrs + [nnz] cols.
        return self.value_bytes * self._num_batch * self.nnz_per_item + self.pattern_bytes

    def astype(self, dtype: np.dtype | type) -> "BatchCsr":
        """Copy in another precision format (values converted, pattern shared)."""
        return BatchCsr(
            self.row_ptrs, self.col_idxs, self.values, self._num_cols, dtype=dtype
        )

    def take_batch(self, selection: slice) -> "BatchCsr":
        """Sub-batch with the same shared pattern."""
        return BatchCsr(
            self.row_ptrs,
            self.col_idxs,
            self.values[selection],
            self._num_cols,
            dtype=self.dtype,
        )

    def transpose(self) -> "BatchCsr":
        """Batched transpose: one pattern transposition, values permuted.

        Because the pattern is shared, the CSR->CSC permutation is computed
        once and applied to every item's value row — the transpose costs a
        gather, no per-item symbolic work. Enables two-sided Krylov methods
        (e.g. BatchBicg) that apply both A and A^T.
        """
        order = np.lexsort((self._row_of_nnz, self.col_idxs))
        t_rows = self.col_idxs[order]          # rows of A^T
        t_cols = self._row_of_nnz[order]       # cols of A^T
        t_row_ptrs = np.zeros(self._num_cols + 1, dtype=np.int32)
        np.add.at(t_row_ptrs, t_rows + 1, 1)
        t_row_ptrs = np.cumsum(t_row_ptrs, dtype=np.int32)
        return BatchCsr(
            t_row_ptrs,
            t_cols.astype(np.int32),
            self.values[:, order],
            num_cols=self._num_rows,
            dtype=self.dtype,
        )

    # -- CSR-specific helpers -----------------------------------------------------------

    @property
    def row_of_nnz(self) -> np.ndarray:
        """Row index of each stored entry (shared across the batch)."""
        return self._row_of_nnz

    @property
    def diag_positions(self) -> np.ndarray:
        """Value-array position of each row's diagonal entry, -1 if absent."""
        return self._diag_positions

    def item_scipy(self, index: int) -> sp.csr_matrix:
        """Batch item ``index`` as a scipy CSR matrix."""
        if not 0 <= index < self._num_batch:
            raise IndexError(f"batch index {index} outside [0, {self._num_batch})")
        return sp.csr_matrix(
            (self.values[index].copy(), self.col_idxs.copy(), self.row_ptrs.copy()),
            shape=(self._num_rows, self._num_cols),
        )

    def max_nnz_per_row(self) -> int:
        """Largest row length (the ELL width after conversion)."""
        return int(self._row_lengths.max())

    def _locate_diagonal(self) -> np.ndarray:
        n = min(self._num_rows, self._num_cols)
        positions = np.full(self._num_rows, -1, dtype=np.int64)
        for row in range(n):
            start, end = self.row_ptrs[row], self.row_ptrs[row + 1]
            cols = self.col_idxs[start:end]
            hit = np.searchsorted(cols, row)
            if hit < cols.shape[0] and cols[hit] == row:
                positions[row] = start + hit
        return positions


def _validate_pattern(
    row_ptrs: np.ndarray, col_idxs: np.ndarray, nnz: int, num_rows: int, num_cols: int
) -> None:
    if row_ptrs[0] != 0 or row_ptrs[-1] != nnz:
        raise BadSparsityPatternError(
            f"row_ptrs must span [0, nnz={nnz}], got ends "
            f"({row_ptrs[0]}, {row_ptrs[-1]})"
        )
    if np.any(np.diff(row_ptrs) < 0):
        raise BadSparsityPatternError("row_ptrs must be non-decreasing")
    if col_idxs.shape != (nnz,):
        raise BadSparsityPatternError(
            f"col_idxs must have shape ({nnz},), got {col_idxs.shape}"
        )
    if nnz and (col_idxs.min() < 0 or col_idxs.max() >= num_cols):
        raise BadSparsityPatternError(
            f"column indices outside [0, {num_cols}): "
            f"range [{col_idxs.min()}, {col_idxs.max()}]"
        )
    # uniqueness within each row
    for row in range(num_rows):
        cols = col_idxs[row_ptrs[row] : row_ptrs[row + 1]]
        if np.unique(cols).shape[0] != cols.shape[0]:
            raise BadSparsityPatternError(f"row {row} contains duplicate column indices")


def _sort_within_rows(row_ptrs: np.ndarray, col_idxs: np.ndarray) -> np.ndarray:
    """Permutation that sorts column indices within each row."""
    order = np.arange(col_idxs.shape[0], dtype=np.int64)
    for row in range(row_ptrs.shape[0] - 1):
        start, end = row_ptrs[row], row_ptrs[row + 1]
        segment = np.argsort(col_idxs[start:end], kind="stable")
        order[start:end] = start + segment
    return order
