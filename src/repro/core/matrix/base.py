"""Abstract interface of batched matrices.

Every batched format stores ``num_batch`` matrices of identical shape and —
for the sparse formats — an identical sparsity pattern, stored once
(Section 3.1 of the paper). The solvers only use this interface, which is
what lets the multi-level dispatch mechanism combine any format with any
solver (Figure 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.counters import TrafficLedger
from repro.exceptions import DimensionMismatchError
from repro.utils.validation import ensure_2d_batch



def as_float_values(values, dtype):
    """Normalize a value array: keep float32/float64 inputs, default float64."""
    values = np.asarray(values)
    if dtype is not None:
        return values.astype(dtype, copy=False)
    if values.dtype.kind == "f" and values.dtype.itemsize in (4, 8):
        return values
    return values.astype(np.float64, copy=False)


class BatchedMatrix(ABC):
    """A batch of equally-sized linear operators A_1 ... A_n."""

    #: Short format tag used by dispatch tables ("dense", "csr", "ell").
    format_name: str = "abstract"

    def __init__(
        self,
        num_batch: int,
        num_rows: int,
        num_cols: int,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if num_batch <= 0 or num_rows <= 0 or num_cols <= 0:
            raise DimensionMismatchError(
                f"batched matrix dimensions must be positive, got "
                f"({num_batch}, {num_rows}, {num_cols})"
            )
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise ValueError(
                f"batched matrices hold floating values, got dtype {dtype}"
            )
        self._num_batch = int(num_batch)
        self._num_rows = int(num_rows)
        self._num_cols = int(num_cols)
        self._dtype = dtype

    # -- shape ----------------------------------------------------------------

    @property
    def num_batch(self) -> int:
        """Number of systems in the batch."""
        return self._num_batch

    @property
    def num_rows(self) -> int:
        """Rows of each batch item."""
        return self._num_rows

    @property
    def num_cols(self) -> int:
        """Columns of each batch item."""
        return self._num_cols

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(num_batch, num_rows, num_cols)``."""
        return (self._num_batch, self._num_rows, self._num_cols)

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the stored values (the precision format)."""
        return self._dtype

    @property
    def value_bytes(self) -> int:
        """Bytes per stored value (8 for FP64, 4 for FP32)."""
        return self._dtype.itemsize

    # -- required functionality -------------------------------------------------

    @property
    @abstractmethod
    def nnz_per_item(self) -> int:
        """Stored non-zeros per batch item (including explicit zeros)."""

    @abstractmethod
    def apply(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
        x_name: str = "x",
        y_name: str = "y",
    ) -> np.ndarray:
        """Batched matrix-vector product ``y_i = A_i x_i``.

        ``x`` has shape ``(num_batch, num_cols)`` (or ``(num_cols,)``,
        broadcast). Traffic is tallied into ``ledger`` when provided.
        """

    @abstractmethod
    def to_batch_dense(self) -> np.ndarray:
        """Densify to an ``(num_batch, rows, cols)`` array."""

    @abstractmethod
    def diagonal(self) -> np.ndarray:
        """Extract the main diagonals, shape ``(num_batch, min(rows, cols))``."""

    @abstractmethod
    def scaled_copy(self, factors: np.ndarray) -> "BatchedMatrix":
        """Return a new batched matrix with item ``i`` scaled by ``factors[i]``."""

    @abstractmethod
    def astype(self, dtype: np.dtype | type) -> "BatchedMatrix":
        """Return a copy in another precision format (dispatch level 1)."""

    @abstractmethod
    def take_batch(self, selection: slice) -> "BatchedMatrix":
        """A sub-batch view-copy: items ``selection``, same shared pattern.

        This is the "trivial distribution over MPI ranks" primitive of the
        paper's multi-GPU outlook (Section 4.2): partitioning a batch
        requires no pattern rewriting and no communication.
        """

    @property
    @abstractmethod
    def storage_bytes(self) -> int:
        """Total storage per the paper's Fig. 2 formulas (FP64 values, int32 pattern)."""

    # -- provided helpers ---------------------------------------------------------

    def item_dense(self, index: int) -> np.ndarray:
        """Dense copy of batch item ``index`` (useful for reference solves)."""
        if not 0 <= index < self._num_batch:
            raise IndexError(
                f"batch index {index} outside [0, {self._num_batch})"
            )
        return self.to_batch_dense()[index]

    def check_vector(self, name: str, x: np.ndarray, length: int | None = None) -> np.ndarray:
        """Validate a batched vector operand against this matrix."""
        return ensure_2d_batch(
            name,
            x,
            self._num_batch,
            self._num_cols if length is None else length,
            dtype=self._dtype,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_batch={self._num_batch}, "
            f"num_rows={self._num_rows}, num_cols={self._num_cols}, "
            f"nnz_per_item={self.nnz_per_item})"
        )
