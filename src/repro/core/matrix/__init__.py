"""Batched matrix formats sharing one sparsity pattern (Section 3.1, Fig. 2).

Three formats, mirroring Ginkgo's batched module:

* :class:`BatchDense` — dense ``(num_batch, rows, cols)`` storage.
* :class:`BatchCsr` — CSR values per item; one shared copy of the row
  pointers and column indices.
* :class:`BatchEll` — ELL values per item stored column-major (coalesced on
  GPUs); one shared copy of the padded column-index array.

All formats expose batched SpMV (``apply``), diagonal extraction, dense
round-trips and the paper's storage-size formulas.
"""

from repro.core.matrix.base import BatchedMatrix
from repro.core.matrix.batch_dense import BatchDense
from repro.core.matrix.batch_csr import BatchCsr
from repro.core.matrix.batch_ell import BatchEll

__all__ = ["BatchedMatrix", "BatchDense", "BatchCsr", "BatchEll"]
