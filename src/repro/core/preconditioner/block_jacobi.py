"""Block-Jacobi preconditioner with a uniform block size.

The introduction of the paper motivates batched functionality with exactly
this operator: applying a block-diagonal inverse is a batch of small dense
matrix-vector products. Generation inverts each diagonal block of each
system (vectorized with ``numpy.linalg.inv`` over a 4-D block stack);
application is one batched block GEMV.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.preconditioner.base import BatchPreconditioner
from repro.exceptions import SingularMatrixError


class BatchBlockJacobi(BatchPreconditioner):
    """Inverts ``ceil(n / block_size)`` diagonal blocks per system.

    The final block is smaller when ``block_size`` does not divide ``n``;
    it is padded with identity so the whole stack inverts in one call.
    """

    preconditioner_name = "block_jacobi"

    def __init__(self, matrix: BatchedMatrix, block_size: int = 4) -> None:
        super().__init__(matrix)
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        n = matrix.num_rows
        self.block_size = min(block_size, n)
        self.num_blocks = -(-n // self.block_size)
        padded = self.num_blocks * self.block_size

        dense = matrix.to_batch_dense()
        nb = matrix.num_batch
        blocks = np.zeros(
            (nb, self.num_blocks, self.block_size, self.block_size), dtype=matrix.dtype
        )
        eye = np.eye(self.block_size, dtype=matrix.dtype)
        for blk in range(self.num_blocks):
            lo = blk * self.block_size
            hi = min(lo + self.block_size, n)
            size = hi - lo
            blocks[:, blk, :size, :size] = dense[:, lo:hi, lo:hi]
            if size < self.block_size:
                blocks[:, blk, size:, size:] = eye[size:, size:]
        try:
            self.inv_blocks = np.linalg.inv(blocks)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"a diagonal block is singular: {exc}"
            ) from exc
        self._padded = padded

    def apply(
        self,
        r: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
    ) -> np.ndarray:
        out = self._prepare_out(r, out)
        nb, n = r.shape
        if n == self._padded:
            r_blocks = r.reshape(nb, self.num_blocks, self.block_size)
        else:
            padded = np.zeros((nb, self._padded), dtype=r.dtype)
            padded[:, :n] = r
            r_blocks = padded.reshape(nb, self.num_blocks, self.block_size)
        z_blocks = np.einsum("nbij,nbj->nbi", self.inv_blocks, r_blocks)
        out[...] = z_blocks.reshape(nb, self._padded)[:, :n]
        if ledger is not None:
            ledger.tally_precond_apply(nb, n, self.work_flops_per_row, "precond")
        return out

    def workspace_doubles_per_system(self) -> int:
        return self.num_blocks * self.block_size * self.block_size

    @property
    def work_flops_per_row(self) -> float:
        # each row participates in a (block_size x block_size) GEMV row
        return 2.0 * self.block_size
