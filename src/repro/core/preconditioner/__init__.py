"""Batched preconditioners (Table 3, third column).

All preconditioners of a batch share a *type* but are generated per system
(Section 3: M_i is adjusted to the specific system A_i). Provided:

* :class:`BatchIdentity` — no preconditioning.
* :class:`BatchJacobi` — scalar Jacobi (inverse diagonal); the paper uses
  this for all PeleLM inputs.
* :class:`BatchBlockJacobi` — dense inverses of uniform diagonal blocks.
* :class:`BatchIlu` — ILU(0) on the shared sparsity pattern with
  batch-vectorized factorization and triangular solves.
* :class:`BatchIsai` — incomplete sparse approximate inverse on the
  pattern of A (requires :class:`~repro.core.matrix.BatchCsr`, matching
  the restriction called out in Section 3).
"""

from repro.core.preconditioner.base import BatchPreconditioner
from repro.core.preconditioner.identity import BatchIdentity
from repro.core.preconditioner.jacobi import BatchJacobi
from repro.core.preconditioner.block_jacobi import BatchBlockJacobi
from repro.core.preconditioner.ic0 import BatchIc0
from repro.core.preconditioner.ilu import BatchIlu
from repro.core.preconditioner.isai import BatchIsai

__all__ = [
    "BatchPreconditioner",
    "BatchIdentity",
    "BatchJacobi",
    "BatchBlockJacobi",
    "BatchIlu",
    "BatchIc0",
    "BatchIsai",
]
