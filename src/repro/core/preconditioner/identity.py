"""The identity preconditioner (no preconditioning)."""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.preconditioner.base import BatchPreconditioner


class BatchIdentity(BatchPreconditioner):
    """``z = r``: used when the solver runs unpreconditioned.

    The apply is a plain copy so that solvers can treat preconditioned and
    unpreconditioned configurations uniformly (the fused kernel always has
    a PRECOND step — Algorithm 1 line 12).
    """

    preconditioner_name = "identity"

    def __init__(self, matrix: BatchedMatrix) -> None:
        super().__init__(matrix)

    def apply(
        self,
        r: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
    ) -> np.ndarray:
        out = self._prepare_out(r, out)
        out[...] = r
        if ledger is not None:
            ledger.tally_copy(r.shape[0], r.shape[1], "r", "z")
        return out

    def workspace_doubles_per_system(self) -> int:
        return 0

    @property
    def work_flops_per_row(self) -> float:
        return 0.0
