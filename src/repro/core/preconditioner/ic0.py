"""Batched IC(0): incomplete Cholesky on the shared sparsity pattern.

The symmetric sibling of :class:`~repro.core.preconditioner.ilu.BatchIlu`
for the CG path: SPD batch items factor as ``A ~= L L^T`` restricted to
the lower triangle of the shared pattern. Like ILU(0), the elimination
schedule is computed once from the pattern and replayed with vectorized
value updates across the batch; application is two schedule-driven
triangular solves.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.matrix.batch_csr import BatchCsr
from repro.core.preconditioner.base import BatchPreconditioner
from repro.exceptions import BadSparsityPatternError, SingularMatrixError


class BatchIc0(BatchPreconditioner):
    """IC(0) for batches of SPD systems (structurally symmetric pattern)."""

    preconditioner_name = "ic0"

    def __init__(self, matrix: BatchedMatrix) -> None:
        super().__init__(matrix)
        csr = matrix if isinstance(matrix, BatchCsr) else BatchCsr.from_dense(
            matrix.to_batch_dense()
        )
        if csr.num_rows != csr.num_cols:
            raise SingularMatrixError("IC(0) requires square systems")
        if np.any(csr.diag_positions < 0):
            row = int(np.argmax(csr.diag_positions < 0))
            raise SingularMatrixError(
                f"IC(0) requires a full diagonal; row {row} has none"
            )
        _check_symmetric_pattern(csr)
        self._rows = _lower_rows(csr)
        self._factor = _factorize(csr, self._rows)
        self._num_rows = csr.num_rows

    def apply(
        self,
        r: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
    ) -> np.ndarray:
        out = self._prepare_out(r, out)
        n = self._num_rows
        lvals = self._factor
        z = np.empty_like(r)
        # forward: L z = r
        for row in range(n):
            positions, cols, diag_idx = self._rows[row]
            acc = r[:, row]
            if positions.size:
                acc = acc - np.einsum("bk,bk->b", lvals[:, positions], z[:, cols])
            z[:, row] = acc / lvals[:, diag_idx]
        # backward: L^T x = z (column sweep of L)
        out[...] = z
        for row in range(n - 1, -1, -1):
            positions, cols, diag_idx = self._rows[row]
            out[:, row] /= lvals[:, diag_idx]
            if positions.size:
                out[:, cols] -= lvals[:, positions] * out[:, row][:, None]
        if ledger is not None:
            ledger.tally_precond_apply(
                r.shape[0], r.shape[1], self.work_flops_per_row, "precond"
            )
        return out

    def factor_dense(self) -> np.ndarray:
        """Dense copies of the L factors, shape ``(nb, n, n)``."""
        nb, n = self.num_batch, self._num_rows
        lower = np.zeros((nb, n, n))
        for row in range(n):
            positions, cols, diag_idx = self._rows[row]
            lower[:, row, row] = self._factor[:, diag_idx]
            for pos, col in zip(positions, cols):
                lower[:, row, col] = self._factor[:, pos]
        return lower

    def workspace_doubles_per_system(self) -> int:
        return int(self._factor.shape[1])

    @property
    def work_flops_per_row(self) -> float:
        return 2.0 * self._factor.shape[1] / max(1, self._num_rows)


def _check_symmetric_pattern(csr: BatchCsr) -> None:
    present = set(zip(csr.row_of_nnz.tolist(), csr.col_idxs.tolist()))
    for r, c in present:
        if (c, r) not in present:
            raise BadSparsityPatternError(
                f"IC(0) requires a structurally symmetric pattern; entry "
                f"({r}, {c}) has no transpose partner"
            )


def _lower_rows(csr: BatchCsr):
    """Per-row (strictly-lower positions-in-L, their cols, diag index-in-L).

    L is stored compactly: only the lower triangle's values, indexed by a
    dense running counter in row-major order.
    """
    rows = []
    counter = 0
    for row in range(csr.num_rows):
        start, end = csr.row_ptrs[row], csr.row_ptrs[row + 1]
        cols = csr.col_idxs[start:end]
        below = cols[cols < row]
        # assign compact indices in order: strictly-lower entries, then diag
        pos_arr = list(range(counter, counter + below.size))
        counter += below.size
        diag_idx = counter
        counter += 1
        rows.append(
            (
                np.asarray(pos_arr, dtype=np.int64),
                below.astype(np.int64),
                diag_idx,
            )
        )
    return rows


def _factorize(csr: BatchCsr, rows) -> np.ndarray:
    """Row-by-row IC(0): vectorized across the batch within each entry."""
    nb = csr.num_batch
    total = sum(r[0].size + 1 for r in rows)
    lvals = np.zeros((nb, total))

    # dense row cache of L for the dot products (n is small)
    n = csr.num_rows
    ldense = np.zeros((nb, n, n))
    lookup = {}
    for row in range(n):
        for pos in range(csr.row_ptrs[row], csr.row_ptrs[row + 1]):
            lookup[(row, int(csr.col_idxs[pos]))] = pos

    for row in range(n):
        positions, cols, diag_idx = rows[row]
        for pos, col in zip(positions, cols):
            col = int(col)
            a_rc = csr.values[:, lookup[(row, col)]]
            dot = np.einsum(
                "bk,bk->b", ldense[:, row, :col], ldense[:, col, :col]
            )
            l_rc = (a_rc - dot) / ldense[:, col, col]
            lvals[:, pos] = l_rc
            ldense[:, row, col] = l_rc
        a_rr = csr.values[:, int(csr.diag_positions[row])]
        dot = np.einsum("bk,bk->b", ldense[:, row, :row], ldense[:, row, :row])
        pivot2 = a_rr - dot
        if np.any(pivot2 <= 0.0):
            bad = int(np.argmax(pivot2 <= 0.0))
            raise SingularMatrixError(
                f"IC(0) breakdown (non-positive pivot) at row {row}, "
                f"batch item {bad}; is the batch SPD?"
            )
        l_rr = np.sqrt(pivot2)
        lvals[:, diag_idx] = l_rr
        ldense[:, row, row] = l_rr
    return lvals
