"""Batched ILU(0) preconditioner on the shared sparsity pattern.

Because every batch item shares one sparsity pattern (Section 3.1), the
elimination *schedule* of an ILU(0) factorization can be computed once from
the pattern and replayed over all items with vectorized value updates —
this is the batch analogue of Ginkgo's BatchIlu. The factorization is the
classic IKJ-form incomplete LU restricted to the pattern of A, storing L
(unit diagonal, implicit) and U in-place in a copy of the value array.

Application performs the two triangular solves ``L z = r`` and ``U x = z``
row-by-row, vectorized across the batch within each row.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.matrix.batch_csr import BatchCsr
from repro.core.preconditioner.base import BatchPreconditioner
from repro.exceptions import SingularMatrixError


class BatchIlu(BatchPreconditioner):
    """ILU(0) with schedule-driven, batch-vectorized factorization."""

    preconditioner_name = "ilu"

    def __init__(self, matrix: BatchedMatrix) -> None:
        super().__init__(matrix)
        csr = matrix if isinstance(matrix, BatchCsr) else BatchCsr.from_dense(
            matrix.to_batch_dense()
        )
        if csr.num_rows != csr.num_cols:
            raise SingularMatrixError("ILU(0) requires square systems")
        if np.any(csr.diag_positions < 0):
            missing = int(np.argmax(csr.diag_positions < 0))
            raise SingularMatrixError(
                f"ILU(0) requires a structurally full diagonal; row {missing} "
                "has no diagonal entry in the shared pattern"
            )
        self._csr = csr
        self._schedule = _build_schedule(csr)
        self._factor_values = _factorize(csr, self._schedule)
        self._lower, self._upper = _split_triangles(csr)

    # -- application -----------------------------------------------------------

    def apply(
        self,
        r: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
    ) -> np.ndarray:
        out = self._prepare_out(r, out)
        vals = self._factor_values
        n = self.num_rows
        z = np.empty_like(r)
        # Forward solve L z = r (unit diagonal).
        for row in range(n):
            positions, cols = self._lower[row]
            if positions.size:
                z[:, row] = r[:, row] - np.einsum(
                    "bk,bk->b", vals[:, positions], z[:, cols]
                )
            else:
                z[:, row] = r[:, row]
        # Backward solve U x = z.
        for row in range(n - 1, -1, -1):
            positions, cols, diag_pos = self._upper[row]
            acc = z[:, row]
            if positions.size:
                acc = acc - np.einsum("bk,bk->b", vals[:, positions], out[:, cols])
            out[:, row] = acc / vals[:, diag_pos]
        if ledger is not None:
            ledger.tally_precond_apply(
                r.shape[0], r.shape[1], self.work_flops_per_row, "precond"
            )
        return out

    # -- introspection ------------------------------------------------------------

    @property
    def factor_values(self) -> np.ndarray:
        """The in-place LU values, shape ``(num_batch, nnz)`` (L unit-diagonal)."""
        return self._factor_values

    def factor_dense(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense (L, U) copies for verification, shapes ``(nb, n, n)``."""
        csr = self._csr
        nb, n = self.num_batch, self.num_rows
        lower = np.zeros((nb, n, n))
        upper = np.zeros((nb, n, n))
        lower[:, np.arange(n), np.arange(n)] = 1.0
        for row in range(n):
            for pos in range(csr.row_ptrs[row], csr.row_ptrs[row + 1]):
                col = csr.col_idxs[pos]
                if col < row:
                    lower[:, row, col] = self._factor_values[:, pos]
                else:
                    upper[:, row, col] = self._factor_values[:, pos]
        return lower, upper

    def workspace_doubles_per_system(self) -> int:
        return self._csr.nnz_per_item

    @property
    def work_flops_per_row(self) -> float:
        return 2.0 * self._csr.nnz_per_item / max(1, self.num_rows)


# ---------------------------------------------------------------------------
# schedule construction and replay
# ---------------------------------------------------------------------------


def _position_lookup(csr: BatchCsr) -> dict[tuple[int, int], int]:
    lookup: dict[tuple[int, int], int] = {}
    for row in range(csr.num_rows):
        for pos in range(csr.row_ptrs[row], csr.row_ptrs[row + 1]):
            lookup[(row, int(csr.col_idxs[pos]))] = pos
    return lookup


def _build_schedule(csr: BatchCsr):
    """Elimination steps derived purely from the shared pattern.

    Each step handles one (row i, pivot k) pair: divide A[i,k] by A[k,k],
    then subtract the scaled row-k entries from the row-i entries that
    exist in the pattern. Steps are emitted in IKJ order so replaying them
    sequentially reproduces the sequential ILU(0).
    """
    lookup = _position_lookup(csr)
    schedule = []
    for i in range(csr.num_rows):
        row_cols = csr.col_idxs[csr.row_ptrs[i] : csr.row_ptrs[i + 1]]
        for k in row_cols:
            k = int(k)
            if k >= i:
                break
            ik = lookup[(i, k)]
            kk = lookup[(k, k)]
            targets, rights = [], []
            for j in row_cols:
                j = int(j)
                if j <= k:
                    continue
                kj = lookup.get((k, j))
                if kj is not None:
                    targets.append(lookup[(i, j)])
                    rights.append(kj)
            schedule.append(
                (
                    ik,
                    kk,
                    np.asarray(targets, dtype=np.int64),
                    np.asarray(rights, dtype=np.int64),
                )
            )
    return schedule


def _factorize(csr: BatchCsr, schedule) -> np.ndarray:
    values = csr.values.copy()
    for ik, kk, targets, rights in schedule:
        pivot = values[:, kk]
        if np.any(np.isclose(pivot, 0.0)):
            bad = int(np.argmax(np.isclose(pivot, 0.0)))
            raise SingularMatrixError(
                f"zero pivot encountered during ILU(0) at batch item {bad}"
            )
        factor = values[:, ik] / pivot
        values[:, ik] = factor
        if targets.size:
            values[:, targets] -= factor[:, None] * values[:, rights]
    return values


def _split_triangles(csr: BatchCsr):
    """Per-row position/column lists for the two triangular solves."""
    lower = []
    upper = []
    for row in range(csr.num_rows):
        start, end = csr.row_ptrs[row], csr.row_ptrs[row + 1]
        cols = csr.col_idxs[start:end]
        positions = np.arange(start, end, dtype=np.int64)
        below = cols < row
        above = cols > row
        lower.append((positions[below], cols[below].astype(np.int64)))
        upper.append(
            (
                positions[above],
                cols[above].astype(np.int64),
                int(csr.diag_positions[row]),
            )
        )
    return lower, upper
