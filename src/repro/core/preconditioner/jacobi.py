"""Scalar Jacobi preconditioner: M_i = diag(A_i)^{-1}.

The paper uses this preconditioner for all PeleLM + SUNDIALS inputs
("the PeleLM+SUNDIALS matrices use a scalar Jacobi preconditioner to
accelerate convergence", Section 4.1). Generation extracts each system's
diagonal; application is one elementwise multiply per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.preconditioner.base import BatchPreconditioner
from repro.exceptions import SingularMatrixError


class BatchJacobi(BatchPreconditioner):
    """Inverse-diagonal scaling, generated per batch item."""

    preconditioner_name = "jacobi"

    def __init__(self, matrix: BatchedMatrix) -> None:
        super().__init__(matrix)
        diag = matrix.diagonal()
        if diag.shape[1] != matrix.num_rows:
            raise SingularMatrixError(
                "scalar Jacobi requires a square system (full main diagonal)"
            )
        zero_rows = np.isclose(diag, 0.0)
        if zero_rows.any():
            bad = np.argwhere(zero_rows)[0]
            raise SingularMatrixError(
                f"zero diagonal entry at batch item {bad[0]}, row {bad[1]}; "
                "scalar Jacobi is undefined"
            )
        self.inv_diag = 1.0 / diag

    def apply(
        self,
        r: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
    ) -> np.ndarray:
        out = self._prepare_out(r, out)
        np.multiply(self.inv_diag, r, out=out)
        if ledger is not None:
            ledger.tally_precond_apply(
                r.shape[0], r.shape[1], self.work_flops_per_row, "precond"
            )
        return out

    def workspace_doubles_per_system(self) -> int:
        # one inverse-diagonal entry per row
        return self.num_rows

    @property
    def work_flops_per_row(self) -> float:
        return 1.0
