"""Batched ISAI: incomplete sparse approximate inverse.

Computes an explicit sparse approximate inverse M with the sparsity
pattern of A, so that applying the preconditioner is a single batched
SpMV — attractive inside a fused solver kernel because it needs no
triangular solves. For each row ``i`` with pattern ``J = cols(A, i)``, the
row ``m_i`` restricted to ``J`` solves the local system

    A[J, J]^T  m_i[J]^T = e_i[J],

the standard (general, one-sided) ISAI construction. The local systems are
dense, tiny (|J| x |J|) and solved for all batch items at once with one
``numpy.linalg.solve`` per row.

As in Ginkgo (and noted in Section 3 of the paper), BatchIsai requires the
BatchCsr format: the construction indexes the shared CSR pattern directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.matrix.batch_csr import BatchCsr
from repro.core.preconditioner.base import BatchPreconditioner
from repro.exceptions import SingularMatrixError, UnsupportedCombinationError


class BatchIsai(BatchPreconditioner):
    """General ISAI with the sparsity pattern of A (requires BatchCsr)."""

    preconditioner_name = "isai"

    def __init__(self, matrix: BatchedMatrix) -> None:
        if not isinstance(matrix, BatchCsr):
            raise UnsupportedCombinationError(
                "BatchIsai requires the BatchCsr matrix format (as in Ginkgo); "
                f"got {type(matrix).__name__}"
            )
        super().__init__(matrix)
        if matrix.num_rows != matrix.num_cols:
            raise SingularMatrixError("ISAI requires square systems")
        self._approx_inverse = _build_isai(matrix)

    def apply(
        self,
        r: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
    ) -> np.ndarray:
        out = self._prepare_out(r, out)
        self._approx_inverse.apply(r, out=out)
        if ledger is not None:
            ledger.tally_precond_apply(
                r.shape[0], r.shape[1], self.work_flops_per_row, "precond"
            )
        return out

    @property
    def approximate_inverse(self) -> BatchCsr:
        """The explicit approximate inverse M (same pattern as A)."""
        return self._approx_inverse

    def workspace_doubles_per_system(self) -> int:
        return self._approx_inverse.nnz_per_item

    @property
    def work_flops_per_row(self) -> float:
        return 2.0 * self._approx_inverse.nnz_per_item / max(1, self.num_rows)


def _build_isai(csr: BatchCsr) -> BatchCsr:
    nb = csr.num_batch
    values = np.zeros_like(csr.values)

    # Pre-compute a (row, col) -> position map once for the gathers.
    position: dict[tuple[int, int], int] = {}
    for row in range(csr.num_rows):
        for pos in range(csr.row_ptrs[row], csr.row_ptrs[row + 1]):
            position[(row, int(csr.col_idxs[pos]))] = pos

    for row in range(csr.num_rows):
        start, end = csr.row_ptrs[row], csr.row_ptrs[row + 1]
        pattern_cols = csr.col_idxs[start:end].astype(np.int64)
        k = pattern_cols.shape[0]
        # Local matrix: (A[J, J])^T for every batch item, gathered from the
        # shared pattern; entries absent from the pattern are structural zeros.
        local = np.zeros((nb, k, k))
        for a, ra in enumerate(pattern_cols):
            for b, cb in enumerate(pattern_cols):
                pos = position.get((int(ra), int(cb)))
                if pos is not None:
                    # transpose: local[:, b, a] = A[ra, cb]
                    local[:, b, a] = csr.values[:, pos]
        rhs = np.zeros((nb, k))
        rhs[:, pattern_cols == row] = 1.0
        try:
            solution = np.linalg.solve(local, rhs[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular ISAI local system at row {row}: {exc}"
            ) from exc
        values[:, start:end] = solution
    return BatchCsr(csr.row_ptrs, csr.col_idxs, values, num_cols=csr.num_cols)
