"""Abstract batched preconditioner.

A preconditioner is *generated* from the batched system matrix at
construction time (one generation, reused across the whole solve) and then
*applied* once per solver iteration: ``z_i = M_i r_i``. Generation happens
on the host side of the dispatch mechanism; application is part of the
fused solver kernel, so its workspace competes for shared local memory —
hence :meth:`workspace_doubles_per_system`, which the SLM planner of
Section 3.5 consults ("the preconditioner workspace is also allocated on
the SLM if the SLM is still available").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix


class BatchPreconditioner(ABC):
    """Base class of all batched preconditioners."""

    #: Tag used by the dispatch tables ("identity", "jacobi", "ilu", "isai", ...).
    preconditioner_name: str = "abstract"

    def __init__(self, matrix: BatchedMatrix) -> None:
        self.num_batch = matrix.num_batch
        self.num_rows = matrix.num_rows

    @abstractmethod
    def apply(
        self,
        r: np.ndarray,
        out: np.ndarray | None = None,
        ledger: TrafficLedger | None = None,
    ) -> np.ndarray:
        """Apply ``z_i = M_i r_i`` for every system; shape ``(nb, n)``."""

    @abstractmethod
    def workspace_doubles_per_system(self) -> int:
        """FP64 elements of per-system state the apply kernel reads.

        Used by :func:`repro.core.workspace.plan_workspace` to decide
        whether the preconditioner data fits into the remaining SLM.
        """

    @property
    def work_flops_per_row(self) -> float:
        """Approximate FLOPs per matrix row of one application (for the ledger)."""
        return 1.0

    def _prepare_out(self, r: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        if out is None:
            return np.empty_like(r)
        if out.shape != r.shape:
            raise ValueError(f"out shape {out.shape} does not match r shape {r.shape}")
        return out

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_batch={self.num_batch}, "
            f"num_rows={self.num_rows})"
        )
