"""Batched BLAS-1 building blocks (Section 3.2).

The solvers compose from these device-kernel equivalents: dot, 2-norm,
axpy-family updates, scaling and copies, all vectorized across the batch.
Per-system scalars are ``(num_batch,)`` arrays; vectors are
``(num_batch, n)`` arrays. Every routine optionally tallies FLOPs and
per-object traffic into a :class:`~repro.core.counters.TrafficLedger`,
attributing bytes to the *named* operands so the workspace planner can
split SLM from global-memory traffic.

In-place variants write into ``out`` to avoid allocations in the solver
iteration loops (the vectorized path allocates its workspace once per
solve, mirroring the single-kernel design of Section 3.4).
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import TrafficLedger
from repro.exceptions import DimensionMismatchError


def _check_same_shape(x: np.ndarray, y: np.ndarray, op: str) -> None:
    if x.shape != y.shape:
        raise DimensionMismatchError(f"{op}: operand shapes differ: {x.shape} vs {y.shape}")


def _as_batch_scalar(alpha, num_batch: int) -> np.ndarray:
    """Normalize a scalar or per-system array to shape ``(num_batch, 1)``."""
    arr = np.asarray(alpha, dtype=np.float64)
    if arr.ndim == 0:
        return np.full((num_batch, 1), float(arr))
    if arr.shape == (num_batch,):
        return arr[:, None]
    if arr.shape == (num_batch, 1):
        return arr
    raise DimensionMismatchError(
        f"batch scalar must be scalar or ({num_batch},), got shape {arr.shape}"
    )


def dot(
    x: np.ndarray,
    y: np.ndarray,
    ledger: TrafficLedger | None = None,
    names: tuple[str, str] = ("x", "y"),
) -> np.ndarray:
    """Per-system dot products ``(num_batch,)``."""
    _check_same_shape(x, y, "dot")
    result = np.einsum("bi,bi->b", x, y)
    if ledger is not None:
        ledger.tally_dot(x.shape[0], x.shape[1], names[0], names[1])
    return result


def norm2(
    x: np.ndarray,
    ledger: TrafficLedger | None = None,
    name: str = "x",
) -> np.ndarray:
    """Per-system Euclidean norms ``(num_batch,)``."""
    result = np.sqrt(np.einsum("bi,bi->b", x, x))
    if ledger is not None:
        ledger.tally_norm2(x.shape[0], x.shape[1], name)
    return result


def axpy(
    alpha,
    x: np.ndarray,
    y: np.ndarray,
    ledger: TrafficLedger | None = None,
    names: tuple[str, str] = ("x", "y"),
) -> np.ndarray:
    """In-place ``y += alpha * x`` with scalar or per-system ``alpha``."""
    _check_same_shape(x, y, "axpy")
    a = _as_batch_scalar(alpha, x.shape[0])
    y += a * x
    if ledger is not None:
        ledger.tally_axpy(x.shape[0], x.shape[1], names[0], names[1])
    return y


def axpby(
    alpha,
    x: np.ndarray,
    beta,
    y: np.ndarray,
    ledger: TrafficLedger | None = None,
    names: tuple[str, str] = ("x", "y"),
) -> np.ndarray:
    """In-place ``y = alpha * x + beta * y``."""
    _check_same_shape(x, y, "axpby")
    a = _as_batch_scalar(alpha, x.shape[0])
    b = _as_batch_scalar(beta, x.shape[0])
    y *= b
    y += a * x
    if ledger is not None:
        # axpby moves the same operands as axpy plus one extra scale pass of y
        ledger.tally_axpy(x.shape[0], x.shape[1], names[0], names[1])
        ledger.tally_scal(x.shape[0], x.shape[1], names[1])
    return y


def scal(
    alpha,
    x: np.ndarray,
    ledger: TrafficLedger | None = None,
    name: str = "x",
) -> np.ndarray:
    """In-place ``x *= alpha``."""
    a = _as_batch_scalar(alpha, x.shape[0])
    x *= a
    if ledger is not None:
        ledger.tally_scal(x.shape[0], x.shape[1], name)
    return x


def copy(
    src: np.ndarray,
    dst: np.ndarray,
    ledger: TrafficLedger | None = None,
    names: tuple[str, str] = ("src", "dst"),
) -> np.ndarray:
    """In-place ``dst[...] = src``."""
    _check_same_shape(src, dst, "copy")
    dst[...] = src
    if ledger is not None:
        ledger.tally_copy(src.shape[0], src.shape[1], names[0], names[1])
    return dst


def elementwise_mul(
    x: np.ndarray,
    y: np.ndarray,
    out: np.ndarray,
    ledger: TrafficLedger | None = None,
    names: tuple[str, str, str] = ("x", "y", "out"),
) -> np.ndarray:
    """``out = x * y`` elementwise — the scalar-Jacobi apply kernel shape."""
    _check_same_shape(x, y, "elementwise_mul")
    _check_same_shape(x, out, "elementwise_mul")
    np.multiply(x, y, out=out)
    if ledger is not None:
        nb, n = x.shape
        ledger.add_flops(float(nb * n))
        for name in names:
            ledger.add_bytes(name, float(ledger.fp_bytes) * nb * n)
        ledger.add_call("elementwise", nb)
    return out
