"""Matrix-size-driven kernel launch configuration (Section 3.6).

The solvers pick their execution configuration at runtime from the input
matrix size:

* the work-group size is the number of rows rounded up to the next
  multiple of the sub-group size (SYCL requires divisibility);
* the sub-group size is 16 for small matrices and 32 for large ones on
  PVC (both supported); CUDA devices are fixed at the warp width 32;
* reductions run at sub-group scope when a single sub-group covers the
  system ("for small matrices it is more efficient to implement the
  reduction within a subgroup since we do not need to read/write through
  the SLM"), and at work-group scope otherwise.

The small/large threshold "needs to be determined experimentally for each
targeted device"; devices may carry a tuned value in
``device.extra['sub_group_threshold_rows']``, with a conservative default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.workspace import WorkspacePlan
from repro.exceptions import DeviceCapabilityError
from repro.observability.tracer import current_tracer
from repro.sycl.device import SyclDevice
from repro.sycl.ndrange import NDRange
from repro.utils.validation import round_up

#: Default matrix-size threshold (rows) above which sub-group size 32 wins.
DEFAULT_SUB_GROUP_THRESHOLD_ROWS = 64

#: Reduction scopes.
SUB_GROUP_REDUCE = "sub_group"
WORK_GROUP_REDUCE = "work_group"


@dataclass(frozen=True)
class KernelLaunchPlan:
    """The execution configuration of one fused batched-solver kernel."""

    num_groups: int
    work_group_size: int
    sub_group_size: int
    reduction_scope: str
    slm_bytes_per_group: int

    @property
    def global_size(self) -> int:
        """Total work-items of the launch."""
        return self.num_groups * self.work_group_size

    def nd_range(self) -> NDRange:
        """The simulator ND-range realizing this plan."""
        return NDRange(self.global_size, self.work_group_size, self.sub_group_size)

    def with_num_groups(self, num_groups: int) -> "KernelLaunchPlan":
        """The same per-group geometry applied to a different batch size.

        The group-level choices of Section 3.6 (work-group size, sub-group
        size, reduction scope, SLM footprint) depend only on the matrix
        size, not on how many systems are batched — so a cached plan can be
        re-targeted to a new flush by swapping the group count.
        """
        if num_groups <= 0:
            raise ValueError(f"num_groups must be positive, got {num_groups}")
        return replace(self, num_groups=num_groups)


@dataclass(frozen=True)
class LaunchGeometry:
    """The matrix-size-dependent part of a launch plan (Section 3.6).

    Everything here is a pure function of ``(device, num_rows)``; the
    serving layer's plan cache stores one geometry per configuration and
    stamps out :class:`KernelLaunchPlan` instances per flush via
    :meth:`plan`.
    """

    work_group_size: int
    sub_group_size: int
    reduction_scope: str
    device_name: str

    def plan(self, num_batch: int, slm_bytes_per_group: int = 0) -> KernelLaunchPlan:
        """A concrete launch plan for ``num_batch`` systems of this geometry."""
        if num_batch <= 0:
            raise ValueError(f"num_batch must be positive, got {num_batch}")
        return KernelLaunchPlan(
            num_groups=num_batch,
            work_group_size=self.work_group_size,
            sub_group_size=self.sub_group_size,
            reduction_scope=self.reduction_scope,
            slm_bytes_per_group=slm_bytes_per_group,
        )


class LaunchConfigurator:
    """Chooses work-group/sub-group sizes for a device and matrix size.

    ``tuning_db`` is any object with a ``lookup_geometry(device, solver,
    preconditioner, num_rows, precision)`` method (duck-typed so this core
    layer never imports :mod:`repro.tune`); when it returns a geometry,
    that experimentally-tuned choice replaces the Section-3.6 heuristic.
    """

    def __init__(
        self,
        device: SyclDevice,
        sub_group_threshold_rows: int | None = None,
        tuning_db: object | None = None,
    ) -> None:
        self.device = device
        self.tuning_db = tuning_db
        if sub_group_threshold_rows is None:
            raw = device.extra.get(
                "sub_group_threshold_rows", DEFAULT_SUB_GROUP_THRESHOLD_ROWS
            )
            try:
                sub_group_threshold_rows = int(raw)
            except (TypeError, ValueError):
                raise ValueError(
                    f"device {device.name!r} carries a non-integer "
                    f"extra['sub_group_threshold_rows'] value {raw!r}; expected "
                    "a positive row count"
                ) from None
        if sub_group_threshold_rows <= 0:
            raise ValueError(
                f"sub_group_threshold_rows must be positive, got {sub_group_threshold_rows}"
            )
        self.sub_group_threshold_rows = sub_group_threshold_rows

    def pick_sub_group_size(self, num_rows: int) -> int:
        """Sub-group size 16 below the threshold, 32 above (when supported)."""
        sizes = self.device.sub_group_sizes
        if len(sizes) == 1:
            return sizes[0]
        small, large = min(sizes), max(sizes)
        return small if num_rows <= self.sub_group_threshold_rows else large

    def pick_work_group_size(self, num_rows: int, sub_group_size: int) -> int:
        """Rows rounded up to the sub-group size, clamped to the device max."""
        size = round_up(num_rows, sub_group_size)
        if size > self.device.max_work_group_size:
            # Large systems process rows in strided chunks; the group size
            # saturates at the device maximum (still sub-group aligned).
            size = (
                self.device.max_work_group_size
                // sub_group_size
                * sub_group_size
            )
            if size == 0:
                raise DeviceCapabilityError(
                    f"device {self.device.name!r} cannot form a work-group of "
                    f"sub-group size {sub_group_size}"
                )
        return size

    def pick_reduction_scope(self, num_rows: int, sub_group_size: int) -> str:
        """Sub-group-scope reductions once a single sub-group covers the rows."""
        return SUB_GROUP_REDUCE if num_rows <= sub_group_size else WORK_GROUP_REDUCE

    def tuned_geometry(
        self,
        num_rows: int,
        solver: str = "*",
        preconditioner: str = "*",
        precision: str = "*",
    ) -> LaunchGeometry | None:
        """The TuningDB's geometry for this problem, or ``None``.

        Wildcard (``"*"``) context fields match only device-wide generic
        records, so callers without a full dispatch context still pick up
        tunings stored for the whole device.
        """
        if self.tuning_db is None:
            return None
        return self.tuning_db.lookup_geometry(
            self.device, solver, preconditioner, num_rows, precision
        )

    def geometry(
        self,
        num_rows: int,
        solver: str = "*",
        preconditioner: str = "*",
        precision: str = "*",
    ) -> LaunchGeometry:
        """The batch-size-independent launch choices for ``num_rows``.

        A :class:`TuningDB` attached at construction is consulted first
        (with the given dispatch context); the Section-3.6 heuristic is the
        fallback for problems nobody has tuned.
        """
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        tuned = self.tuned_geometry(
            num_rows, solver=solver, preconditioner=preconditioner, precision=precision
        )
        if tuned is not None:
            return tuned
        sg = self.pick_sub_group_size(num_rows)
        self.device.validate_sub_group_size(sg)
        wg = self.pick_work_group_size(num_rows, sg)
        return LaunchGeometry(
            work_group_size=wg,
            sub_group_size=sg,
            reduction_scope=self.pick_reduction_scope(num_rows, sg),
            device_name=self.device.name,
        )

    def configure(
        self,
        num_rows: int,
        num_batch: int,
        workspace: WorkspacePlan | None = None,
        solver: str = "*",
        preconditioner: str = "*",
        precision: str = "*",
    ) -> KernelLaunchPlan:
        """Full launch plan for a batch of ``num_batch`` n-row systems."""
        if num_rows <= 0 or num_batch <= 0:
            raise ValueError(
                f"num_rows and num_batch must be positive, got ({num_rows}, {num_batch})"
            )
        plan = self.geometry(
            num_rows,
            solver=solver,
            preconditioner=preconditioner,
            precision=precision,
        ).plan(
            num_batch,
            slm_bytes_per_group=0 if workspace is None else workspace.slm_bytes_used,
        )
        tracer = current_tracer()
        if tracer.enabled:
            # decorate whatever span surrounds the configuration (a solve,
            # a hw estimate, a kernel launch) with the Section 3.6 choices
            tracer.annotate(
                num_groups=plan.num_groups,
                work_group_size=plan.work_group_size,
                sub_group_size=plan.sub_group_size,
                reduction_scope=plan.reduction_scope,
                slm_bytes_per_group=plan.slm_bytes_per_group,
                launch_device=self.device.name,
            )
        return plan
