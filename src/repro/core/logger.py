"""Per-system convergence logging.

Ginkgo's batched solvers "monitor the solver convergence for each system in
the batch individually" (Section 3). The :class:`ConvergenceLogger` records,
per system, the iteration at which it converged and its final residual
norm; optionally it keeps the full residual history, which the examples use
to plot convergence and the tests use to assert monotone-ish behaviour of
CG on SPD problems.
"""

from __future__ import annotations

import numpy as np


class ConvergenceLogger:
    """Records per-system iteration counts and residual norms.

    Parameters
    ----------
    num_batch:
        Number of systems being tracked.
    keep_history:
        When true, every iteration's residual-norm vector is stored
        (``history`` has shape ``(num_iterations + 1, num_batch)`` after
        the solve, including the initial residual).
    """

    def __init__(self, num_batch: int, keep_history: bool = False) -> None:
        if num_batch <= 0:
            raise ValueError(f"num_batch must be positive, got {num_batch}")
        self.num_batch = num_batch
        self.keep_history = keep_history
        self.iterations = np.zeros(num_batch, dtype=np.int64)
        self.final_residuals = np.full(num_batch, np.nan)
        self._history: list[np.ndarray] = []
        self._converged = np.zeros(num_batch, dtype=bool)

    def log_initial(self, res_norms: np.ndarray) -> None:
        """Record the initial residual norms (iteration 0)."""
        self.final_residuals = np.asarray(res_norms, dtype=np.float64).copy()
        if self.keep_history:
            self._history.append(self.final_residuals.copy())

    def log_iteration(self, iteration: int, res_norms: np.ndarray, active: np.ndarray) -> None:
        """Record iteration ``iteration`` for the systems still ``active``.

        Residuals of inactive (already converged) systems keep their
        converged values; active systems get their counts bumped.
        """
        res_norms = np.asarray(res_norms, dtype=np.float64)
        self.iterations[active] = iteration
        self.final_residuals[active] = res_norms[active]
        if self.keep_history:
            snapshot = self._history[-1].copy() if self._history else res_norms.copy()
            snapshot[active] = res_norms[active]
            self._history.append(snapshot)

    def mark_converged(self, mask: np.ndarray) -> None:
        """Flag systems as converged (idempotent)."""
        self._converged |= np.asarray(mask, dtype=bool)

    @property
    def converged(self) -> np.ndarray:
        """Boolean mask of systems that satisfied the stopping criterion."""
        return self._converged.copy()

    @property
    def history(self) -> np.ndarray:
        """Residual-norm history, shape ``(records, num_batch)``.

        Raises ``RuntimeError`` when history keeping was not enabled.
        """
        if not self.keep_history:
            raise RuntimeError(
                "residual history was not recorded; construct the logger "
                "with keep_history=True"
            )
        return np.asarray(self._history)

    def summary(self) -> dict:
        """Aggregate view used by the benchmark harness."""
        return {
            "num_systems": self.num_batch,
            "num_converged": int(self._converged.sum()),
            "min_iterations": int(self.iterations.min()),
            "max_iterations": int(self.iterations.max()),
            "mean_iterations": float(self.iterations.mean()),
            "max_final_residual": float(np.nanmax(self.final_residuals)),
        }
