"""Per-system convergence logging.

Ginkgo's batched solvers "monitor the solver convergence for each system in
the batch individually" (Section 3). The :class:`ConvergenceLogger` records,
per system, the iteration at which it converged and its final residual
norm; optionally it keeps the full residual history, which the examples use
to plot convergence and the tests use to assert monotone-ish behaviour of
CG on SPD problems.

Independently of full-history keeping, every logger maintains an
**always-on, bounded** residual curve: decimated snapshots (at most
:data:`CURVE_LIMIT` records, stride-doubling as the solve runs long)
plus a frozen-mask from guarded-divide breakdowns. This is the raw
material for the flight recorder's convergence forensics
(:mod:`repro.recorder.classify`) — cheap enough to leave on in
production, informative enough to classify breakdown / stagnation /
divergence after the fact.
"""

from __future__ import annotations

import numpy as np

#: Always-on curve bound: at most this many decimated snapshots are kept.
CURVE_LIMIT = 64


class ConvergenceLogger:
    """Records per-system iteration counts and residual norms.

    Parameters
    ----------
    num_batch:
        Number of systems being tracked.
    keep_history:
        When true, every iteration's residual-norm vector is stored
        (``history`` has shape ``(num_iterations + 1, num_batch)`` after
        the solve, including the initial residual).
    """

    def __init__(self, num_batch: int, keep_history: bool = False) -> None:
        if num_batch <= 0:
            raise ValueError(f"num_batch must be positive, got {num_batch}")
        self.num_batch = num_batch
        self.keep_history = keep_history
        self.iterations = np.zeros(num_batch, dtype=np.int64)
        self.final_residuals = np.full(num_batch, np.nan)
        self._history: list[np.ndarray] = []
        self._converged = np.zeros(num_batch, dtype=bool)
        self._frozen = np.zeros(num_batch, dtype=bool)
        # always-on bounded curve: decimated (iteration, residuals) records
        self._curve: list[np.ndarray] = []
        self._curve_iters: list[int] = []
        self._curve_stride = 1
        self._adopted_curves: list[np.ndarray] | None = None

    def log_initial(self, res_norms: np.ndarray) -> None:
        """Record the initial residual norms (iteration 0)."""
        self.final_residuals = np.asarray(res_norms, dtype=np.float64).copy()
        if self.keep_history:
            self._history.append(self.final_residuals.copy())
        self._curve = [self.final_residuals.copy()]
        self._curve_iters = [0]
        self._curve_stride = 1

    def log_iteration(self, iteration: int, res_norms: np.ndarray, active: np.ndarray) -> None:
        """Record iteration ``iteration`` for the systems still ``active``.

        Residuals of inactive (already converged) systems keep their
        converged values; active systems get their counts bumped.
        """
        res_norms = np.asarray(res_norms, dtype=np.float64)
        self.iterations[active] = iteration
        self.final_residuals[active] = res_norms[active]
        if self.keep_history:
            snapshot = self._history[-1].copy() if self._history else res_norms.copy()
            snapshot[active] = res_norms[active]
            self._history.append(snapshot)
        if iteration % self._curve_stride == 0:
            base = self._curve[-1] if self._curve else res_norms
            snapshot = base.copy()
            snapshot[active] = res_norms[active]
            self._curve.append(snapshot)
            self._curve_iters.append(iteration)
            if len(self._curve) > CURVE_LIMIT:
                # halve the sampling density: keep every other record (the
                # first stays), future iterations sampled at double stride
                self._curve = self._curve[::2]
                self._curve_iters = self._curve_iters[::2]
                self._curve_stride *= 2

    def mark_converged(self, mask: np.ndarray) -> None:
        """Flag systems as converged (idempotent)."""
        self._converged |= np.asarray(mask, dtype=bool)

    def mark_frozen(self, mask: np.ndarray) -> None:
        """Flag systems frozen by a guarded-divide breakdown (idempotent)."""
        self._frozen |= np.asarray(mask, dtype=bool)

    @property
    def converged(self) -> np.ndarray:
        """Boolean mask of systems that satisfied the stopping criterion."""
        return self._converged.copy()

    @property
    def frozen(self) -> np.ndarray:
        """Boolean mask of systems a guarded divide froze (breakdowns)."""
        return self._frozen.copy()

    @property
    def history(self) -> np.ndarray:
        """Residual-norm history, shape ``(records, num_batch)``.

        Raises ``RuntimeError`` when history keeping was not enabled.
        """
        if not self.keep_history:
            raise RuntimeError(
                "residual history was not recorded; construct the logger "
                "with keep_history=True"
            )
        return np.asarray(self._history)

    # -- always-on forensic curves --------------------------------------------

    def adopt_history_curves(self, history: np.ndarray, iterations: np.ndarray) -> None:
        """Adopt a device-recorded residual history as the forensic curves.

        The fused kernels log residuals into a dense ``(num_batch,
        slots)`` array (NaN-padded past each system's last iteration)
        instead of calling :meth:`log_iteration`; this installs each
        system's recorded prefix so :meth:`residual_curves` works
        identically on the kernel path.
        """
        history = np.asarray(history, dtype=np.float64)
        iterations = np.asarray(iterations, dtype=np.int64)
        self._adopted_curves = [
            history[i, : min(int(iterations[i]) + 1, history.shape[1])].copy()
            for i in range(history.shape[0])
        ]

    def residual_curves(self) -> list[np.ndarray]:
        """One bounded residual trajectory per system (always available).

        Each curve starts at the initial residual and ends at the
        system's final residual; interior samples come from the decimated
        always-on snapshots, truncated at the system's own last
        iteration (so a system that converged early does not trail its
        neighbours' progress).
        """
        if self._adopted_curves is not None:
            return [c.copy() for c in self._adopted_curves]
        if not self._curve:
            return [
                np.asarray([self.final_residuals[i]])
                for i in range(self.num_batch)
            ]
        records = np.asarray(self._curve)
        iters = np.asarray(self._curve_iters)
        curves = []
        for i in range(self.num_batch):
            keep = iters <= self.iterations[i]
            curve = records[keep, i] if keep.any() else records[:1, i]
            last_iter = iters[keep][-1] if keep.any() else 0
            if last_iter < self.iterations[i] or curve.size == 0:
                curve = np.append(curve, self.final_residuals[i])
            curves.append(curve)
        return curves

    def summary(self) -> dict:
        """Aggregate view used by the benchmark harness."""
        return {
            "num_systems": self.num_batch,
            "num_converged": int(self._converged.sum()),
            "min_iterations": int(self.iterations.min()),
            "max_iterations": int(self.iterations.max()),
            "mean_iterations": float(self.iterations.mean()),
            "max_final_residual": float(np.nanmax(self.final_residuals)),
        }
