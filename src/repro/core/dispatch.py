"""The multi-level dispatch mechanism (Section 3.3, Figure 3).

Ginkgo's batched solvers resolve, at runtime, a full kernel configuration
from string-level choices: matrix format x solver x preconditioner x
stopping criterion (and, one level below, sub-group size and reduction
scope — see :mod:`repro.core.launch`). Templates make each resolved
combination a single fused kernel; here the resolution produces a
concrete solver object wired to concrete preconditioner/criterion
instances, with the same legality rules (e.g. BatchIsai requires the
BatchCsr format).

:func:`feature_matrix` reproduces Table 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.matrix import BatchCsr, BatchDense, BatchEll, BatchedMatrix
from repro.core.matrix.conversions import convert
from repro.core.preconditioner import (
    BatchBlockJacobi,
    BatchIc0,
    BatchIdentity,
    BatchIlu,
    BatchIsai,
    BatchJacobi,
)
from repro.core.solver import (
    BatchBicg,
    BatchBicgstab,
    BatchCgs,
    BatchCg,
    BatchDirect,
    BatchGmres,
    BatchIterativeSolver,
    BatchRichardson,
    BatchSolveResult,
    BatchTrsv,
    SolverSettings,
)
from repro.core.stop import AbsoluteResidual, RelativeResidual
from repro.exceptions import UnsupportedCombinationError
from repro.observability.tracer import Tracer, current_tracer, use_tracer

#: Registered batched matrix formats.
FORMATS: dict[str, type] = {
    "dense": BatchDense,
    "csr": BatchCsr,
    "ell": BatchEll,
}

#: Registered batched solvers.
SOLVERS: dict[str, type] = {
    "cg": BatchCg,
    "bicg": BatchBicg,
    "bicgstab": BatchBicgstab,
    "cgs": BatchCgs,
    "gmres": BatchGmres,
    "richardson": BatchRichardson,
    "trsv": BatchTrsv,
    "direct": BatchDirect,
}

#: Registered batched preconditioners.
PRECONDITIONERS: dict[str, type] = {
    "identity": BatchIdentity,
    "jacobi": BatchJacobi,
    "block_jacobi": BatchBlockJacobi,
    "ic0": BatchIc0,
    "ilu": BatchIlu,
    "isai": BatchIsai,
}

#: Registered stopping criteria.
CRITERIA: dict[str, type] = {
    "absolute": AbsoluteResidual,
    "relative": RelativeResidual,
}

#: Preconditioners that only work with a specific matrix format
#: (Section 3: "BatchIsai needing the BatchCsr matrix format").
_FORMAT_RESTRICTED_PRECONDITIONERS: dict[str, str] = {"isai": "csr"}

#: Solvers that ignore the preconditioner (direct one-shot kernels).
_UNPRECONDITIONED_SOLVERS = frozenset({"trsv", "direct"})

#: Precision formats of the dispatch mechanism (Section 3.4: the fused
#: kernel is instantiated per precision format).
PRECISIONS: dict[str, type] = {"double": np.float64, "single": np.float32}


def feature_matrix() -> dict[str, list[str]]:
    """The batched feature-support table (Table 3 of the paper).

    The extra entries beyond the paper's table (richardson, direct,
    identity, block_jacobi) are the roadmap/baseline additions this
    library ships; the bench for Table 3 prints only the paper's rows.
    """
    return {
        "matrix_formats": sorted(FORMATS),
        "solvers": sorted(SOLVERS),
        "preconditioners": sorted(PRECONDITIONERS),
        "stopping_criteria": sorted(CRITERIA),
    }


@dataclass
class BatchSolverFactory:
    """Runtime-configurable factory — the top of the dispatch tree.

    Example
    -------
    >>> factory = BatchSolverFactory(solver="bicgstab", preconditioner="jacobi",
    ...                              criterion="relative", tolerance=1e-10)
    >>> result = factory.solve(matrix, b)          # doctest: +SKIP
    """

    solver: str = "bicgstab"
    preconditioner: str = "identity"
    criterion: str = "relative"
    precision: str = "double"
    matrix_format: str | None = None
    tolerance: float = 1e-8
    max_iterations: int = 500
    keep_history: bool = False
    solver_options: dict[str, Any] = field(default_factory=dict)
    preconditioner_options: dict[str, Any] = field(default_factory=dict)
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.solver not in SOLVERS:
            raise UnsupportedCombinationError(
                f"unknown solver {self.solver!r}; available: {sorted(SOLVERS)}"
            )
        if self.preconditioner not in PRECONDITIONERS:
            raise UnsupportedCombinationError(
                f"unknown preconditioner {self.preconditioner!r}; "
                f"available: {sorted(PRECONDITIONERS)}"
            )
        if self.criterion not in CRITERIA:
            raise UnsupportedCombinationError(
                f"unknown stopping criterion {self.criterion!r}; "
                f"available: {sorted(CRITERIA)}"
            )
        if self.precision not in PRECISIONS:
            raise UnsupportedCombinationError(
                f"unknown precision {self.precision!r}; "
                f"available: {sorted(PRECISIONS)}"
            )
        if self.matrix_format is not None and self.matrix_format not in FORMATS:
            raise UnsupportedCombinationError(
                f"unknown matrix format {self.matrix_format!r}; "
                f"available: {sorted(FORMATS)}"
            )

    def validate_combination(self, matrix: BatchedMatrix) -> None:
        """Check the (format, solver, preconditioner) triple is legal."""
        required = _FORMAT_RESTRICTED_PRECONDITIONERS.get(self.preconditioner)
        if required is not None and matrix.format_name != required:
            raise UnsupportedCombinationError(
                f"preconditioner {self.preconditioner!r} requires the "
                f"{required!r} matrix format, got {matrix.format_name!r}"
            )

    def create(self, matrix: BatchedMatrix) -> BatchIterativeSolver:
        """Instantiate the fully-dispatched solver for ``matrix``.

        When the factory requests a different matrix format or precision
        than the input carries, the matrix is converted first (dispatch
        levels 1-2 of Figure 3).
        """
        if self.matrix_format is not None and matrix.format_name != self.matrix_format:
            matrix = convert(matrix, self.matrix_format)
        self.validate_combination(matrix)
        wanted = np.dtype(PRECISIONS[self.precision])
        if matrix.dtype != wanted:
            matrix = matrix.astype(wanted)
        tracer = self.tracer if self.tracer is not None else current_tracer()
        if tracer.enabled:
            # the resolved dispatch tuple (Figure 3 levels 1-5)
            tracer.annotate(
                solver=self.solver,
                preconditioner=self.preconditioner,
                criterion=self.criterion,
                precision=self.precision,
                matrix_format=matrix.format_name,
            )
            tracer.metrics.counter(
                f"dispatch.{self.solver}.{matrix.format_name}.{self.precision}"
            ).inc()
        settings = SolverSettings(
            max_iterations=self.max_iterations,
            criterion=CRITERIA[self.criterion](self.tolerance),
            keep_history=self.keep_history,
        )
        if self.solver in _UNPRECONDITIONED_SOLVERS:
            precond = None
            if self.preconditioner != "identity":
                raise UnsupportedCombinationError(
                    f"solver {self.solver!r} is a direct kernel and does not "
                    f"accept a preconditioner (got {self.preconditioner!r})"
                )
        else:
            precond = PRECONDITIONERS[self.preconditioner](
                matrix, **self.preconditioner_options
            )
        solver_cls = SOLVERS[self.solver]
        return solver_cls(
            matrix, preconditioner=precond, settings=settings, **self.solver_options
        )

    def solve(
        self, matrix: BatchedMatrix, b, x0=None
    ) -> BatchSolveResult:
        """One-call dispatch-and-solve.

        When the factory carries a ``tracer`` it is installed for the
        whole call, so the dispatch span encloses the solver and
        fused-kernel spans the lower layers emit.
        """
        with use_tracer(self.tracer):
            tracer = current_tracer()
            with tracer.span(
                "dispatch.solve",
                category="dispatch",
                solver=self.solver,
                preconditioner=self.preconditioner,
                criterion=self.criterion,
                precision=self.precision,
                tolerance=self.tolerance,
                max_iterations=self.max_iterations,
            ):
                return self.create(matrix).solve(b, x0=x0)


def dispatch_solve(
    matrix: BatchedMatrix,
    b,
    x0=None,
    solver: str = "bicgstab",
    preconditioner: str = "identity",
    criterion: str = "relative",
    tolerance: float = 1e-8,
    max_iterations: int = 500,
    tracer: Tracer | None = None,
    **solver_options: Any,
) -> BatchSolveResult:
    """Functional façade over :class:`BatchSolverFactory`."""
    factory = BatchSolverFactory(
        solver=solver,
        preconditioner=preconditioner,
        criterion=criterion,
        tolerance=tolerance,
        max_iterations=max_iterations,
        solver_options=solver_options,
        tracer=tracer,
    )
    return factory.solve(matrix, b, x0=x0)
