"""The multi-level dispatch mechanism (Section 3.3, Figure 3).

Ginkgo's batched solvers resolve, at runtime, a full kernel configuration
from string-level choices: matrix format x solver x preconditioner x
stopping criterion (and, one level below, sub-group size and reduction
scope — see :mod:`repro.core.launch`). Templates make each resolved
combination a single fused kernel; here the resolution produces a
concrete solver object wired to concrete preconditioner/criterion
instances, with the same legality rules (e.g. BatchIsai requires the
BatchCsr format).

:func:`feature_matrix` reproduces Table 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.matrix import BatchCsr, BatchDense, BatchEll, BatchedMatrix
from repro.core.matrix.conversions import convert
from repro.core.preconditioner import (
    BatchBlockJacobi,
    BatchIc0,
    BatchIdentity,
    BatchIlu,
    BatchIsai,
    BatchJacobi,
)
from repro.core.solver import (
    BatchBicg,
    BatchBicgstab,
    BatchCgs,
    BatchCg,
    BatchDirect,
    BatchGmres,
    BatchIterativeSolver,
    BatchRichardson,
    BatchSolveResult,
    BatchTrsv,
    SolverSettings,
)
from repro.core.stop import AbsoluteResidual, RelativeResidual
from repro.exceptions import UnsupportedCombinationError
from repro.observability.tracer import Tracer, current_tracer, use_tracer

#: Registered batched matrix formats.
FORMATS: dict[str, type] = {
    "dense": BatchDense,
    "csr": BatchCsr,
    "ell": BatchEll,
}

#: Registered batched solvers.
SOLVERS: dict[str, type] = {
    "cg": BatchCg,
    "bicg": BatchBicg,
    "bicgstab": BatchBicgstab,
    "cgs": BatchCgs,
    "gmres": BatchGmres,
    "richardson": BatchRichardson,
    "trsv": BatchTrsv,
    "direct": BatchDirect,
}

#: Registered batched preconditioners.
PRECONDITIONERS: dict[str, type] = {
    "identity": BatchIdentity,
    "jacobi": BatchJacobi,
    "block_jacobi": BatchBlockJacobi,
    "ic0": BatchIc0,
    "ilu": BatchIlu,
    "isai": BatchIsai,
}

#: Registered stopping criteria.
CRITERIA: dict[str, type] = {
    "absolute": AbsoluteResidual,
    "relative": RelativeResidual,
}

#: Preconditioners that only work with a specific matrix format
#: (Section 3: "BatchIsai needing the BatchCsr matrix format").
_FORMAT_RESTRICTED_PRECONDITIONERS: dict[str, str] = {"isai": "csr"}

#: Solvers that ignore the preconditioner (direct one-shot kernels).
_UNPRECONDITIONED_SOLVERS = frozenset({"trsv", "direct"})

#: Precision formats of the dispatch mechanism (Section 3.4: the fused
#: kernel is instantiated per precision format).
PRECISIONS: dict[str, type] = {"double": np.float64, "single": np.float32}


def feature_matrix() -> dict[str, list[str]]:
    """The batched feature-support table (Table 3 of the paper).

    The extra entries beyond the paper's table (richardson, direct,
    identity, block_jacobi) are the roadmap/baseline additions this
    library ships; the bench for Table 3 prints only the paper's rows.
    """
    return {
        "matrix_formats": sorted(FORMATS),
        "solvers": sorted(SOLVERS),
        "preconditioners": sorted(PRECONDITIONERS),
        "stopping_criteria": sorted(CRITERIA),
    }


@dataclass(frozen=True)
class ResolvedDispatch:
    """A fully-resolved Figure-3 dispatch: concrete classes, no lookups left.

    Produced once by :meth:`BatchSolverFactory.resolve`; building a solver
    from it (:meth:`build`) performs no string lookups, no legality checks
    and no registry access — which is what lets the serving layer's plan
    cache amortize dispatch resolution across repeated configurations.
    """

    solver_cls: type
    preconditioner_cls: type | None
    criterion_cls: type
    dtype: Any
    matrix_format: str
    tolerance: float
    max_iterations: int
    keep_history: bool
    solver_options: tuple[tuple[str, Any], ...]
    preconditioner_options: tuple[tuple[str, Any], ...]

    def prepare(self, matrix: BatchedMatrix) -> BatchedMatrix:
        """Convert ``matrix`` to the resolved format/precision (levels 1-2)."""
        if matrix.format_name != self.matrix_format:
            matrix = convert(matrix, self.matrix_format)
        wanted = np.dtype(self.dtype)
        if matrix.dtype != wanted:
            matrix = matrix.astype(wanted)
        return matrix

    def build(self, matrix: BatchedMatrix) -> BatchIterativeSolver:
        """Instantiate the solver for a matrix already in resolved form."""
        settings = SolverSettings(
            max_iterations=self.max_iterations,
            criterion=self.criterion_cls(self.tolerance),
            keep_history=self.keep_history,
        )
        precond = None
        if self.preconditioner_cls is not None:
            precond = self.preconditioner_cls(
                matrix, **dict(self.preconditioner_options)
            )
        return self.solver_cls(
            matrix,
            preconditioner=precond,
            settings=settings,
            **dict(self.solver_options),
        )


@dataclass
class BatchSolverFactory:
    """Runtime-configurable factory — the top of the dispatch tree.

    Example
    -------
    >>> factory = BatchSolverFactory(solver="bicgstab", preconditioner="jacobi",
    ...                              criterion="relative", tolerance=1e-10)
    >>> result = factory.solve(matrix, b)          # doctest: +SKIP
    """

    solver: str = "bicgstab"
    preconditioner: str = "identity"
    criterion: str = "relative"
    precision: str = "double"
    matrix_format: str | None = None
    tolerance: float = 1e-8
    max_iterations: int = 500
    keep_history: bool = False
    solver_options: dict[str, Any] = field(default_factory=dict)
    preconditioner_options: dict[str, Any] = field(default_factory=dict)
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.solver not in SOLVERS:
            raise UnsupportedCombinationError(
                f"unknown solver {self.solver!r}; available: {sorted(SOLVERS)}"
            )
        if self.preconditioner not in PRECONDITIONERS:
            raise UnsupportedCombinationError(
                f"unknown preconditioner {self.preconditioner!r}; "
                f"available: {sorted(PRECONDITIONERS)}"
            )
        if self.criterion not in CRITERIA:
            raise UnsupportedCombinationError(
                f"unknown stopping criterion {self.criterion!r}; "
                f"available: {sorted(CRITERIA)}"
            )
        if self.precision not in PRECISIONS:
            raise UnsupportedCombinationError(
                f"unknown precision {self.precision!r}; "
                f"available: {sorted(PRECISIONS)}"
            )
        if self.matrix_format is not None and self.matrix_format not in FORMATS:
            raise UnsupportedCombinationError(
                f"unknown matrix format {self.matrix_format!r}; "
                f"available: {sorted(FORMATS)}"
            )

    def validate_combination(self, matrix: BatchedMatrix) -> None:
        """Check the (format, solver, preconditioner) triple is legal."""
        required = _FORMAT_RESTRICTED_PRECONDITIONERS.get(self.preconditioner)
        if required is not None and matrix.format_name != required:
            raise UnsupportedCombinationError(
                f"preconditioner {self.preconditioner!r} requires the "
                f"{required!r} matrix format, got {matrix.format_name!r}"
            )

    def dispatch_key(self, matrix_format: str | None = None) -> tuple:
        """Hashable identity of the resolved dispatch tuple.

        Two factories with equal keys resolve to the same concrete kernel
        configuration; the serving layer's plan cache uses this (together
        with the launch-relevant matrix size) as its cache key.
        """
        fmt = matrix_format if matrix_format is not None else self.matrix_format
        return (
            self.solver,
            self.preconditioner,
            self.criterion,
            self.precision,
            fmt,
            self.tolerance,
            self.max_iterations,
            self.keep_history,
            tuple(sorted(self.solver_options.items())),
            tuple(sorted(self.preconditioner_options.items())),
        )

    def resolve(self, matrix_format: str | None = None) -> ResolvedDispatch:
        """Resolve every dispatch level to concrete classes (Figure 3).

        ``matrix_format`` is the format of the matrix that will be solved
        (defaults to the factory's requested format); it is needed up front
        because the legality rules are format-dependent (e.g. BatchIsai
        requires BatchCsr).
        """
        fmt = matrix_format if matrix_format is not None else self.matrix_format
        if fmt is None:
            raise UnsupportedCombinationError(
                "resolve() needs a concrete matrix format: pass matrix_format= "
                "or configure the factory with one"
            )
        if fmt not in FORMATS:
            raise UnsupportedCombinationError(
                f"unknown matrix format {fmt!r}; available: {sorted(FORMATS)}"
            )
        required = _FORMAT_RESTRICTED_PRECONDITIONERS.get(self.preconditioner)
        if required is not None and fmt != required:
            raise UnsupportedCombinationError(
                f"preconditioner {self.preconditioner!r} requires the "
                f"{required!r} matrix format, got {fmt!r}"
            )
        if self.solver in _UNPRECONDITIONED_SOLVERS:
            if self.preconditioner != "identity":
                raise UnsupportedCombinationError(
                    f"solver {self.solver!r} is a direct kernel and does not "
                    f"accept a preconditioner (got {self.preconditioner!r})"
                )
            precond_cls = None
        else:
            precond_cls = PRECONDITIONERS[self.preconditioner]
        return ResolvedDispatch(
            solver_cls=SOLVERS[self.solver],
            preconditioner_cls=precond_cls,
            criterion_cls=CRITERIA[self.criterion],
            dtype=PRECISIONS[self.precision],
            matrix_format=fmt,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            keep_history=self.keep_history,
            solver_options=tuple(sorted(self.solver_options.items())),
            preconditioner_options=tuple(sorted(self.preconditioner_options.items())),
        )

    def create(self, matrix: BatchedMatrix) -> BatchIterativeSolver:
        """Instantiate the fully-dispatched solver for ``matrix``.

        When the factory requests a different matrix format or precision
        than the input carries, the matrix is converted first (dispatch
        levels 1-2 of Figure 3).
        """
        target_format = (
            self.matrix_format if self.matrix_format is not None else matrix.format_name
        )
        resolved = self.resolve(target_format)
        matrix = resolved.prepare(matrix)
        tracer = self.tracer if self.tracer is not None else current_tracer()
        if tracer.enabled:
            # the resolved dispatch tuple (Figure 3 levels 1-5)
            tracer.annotate(
                solver=self.solver,
                preconditioner=self.preconditioner,
                criterion=self.criterion,
                precision=self.precision,
                matrix_format=matrix.format_name,
            )
            tracer.metrics.counter(
                f"dispatch.{self.solver}.{matrix.format_name}.{self.precision}"
            ).inc()
        return resolved.build(matrix)

    def solve(
        self, matrix: BatchedMatrix, b, x0=None
    ) -> BatchSolveResult:
        """One-call dispatch-and-solve.

        When the factory carries a ``tracer`` it is installed for the
        whole call, so the dispatch span encloses the solver and
        fused-kernel spans the lower layers emit.
        """
        with use_tracer(self.tracer):
            tracer = current_tracer()
            with tracer.span(
                "dispatch.solve",
                category="dispatch",
                solver=self.solver,
                preconditioner=self.preconditioner,
                criterion=self.criterion,
                precision=self.precision,
                tolerance=self.tolerance,
                max_iterations=self.max_iterations,
            ):
                return self.create(matrix).solve(b, x0=x0)


def dispatch_solve(
    matrix: BatchedMatrix,
    b,
    x0=None,
    solver: str = "bicgstab",
    preconditioner: str = "identity",
    criterion: str = "relative",
    tolerance: float = 1e-8,
    max_iterations: int = 500,
    tracer: Tracer | None = None,
    **solver_options: Any,
) -> BatchSolveResult:
    """Functional façade over :class:`BatchSolverFactory`."""
    factory = BatchSolverFactory(
        solver=solver,
        preconditioner=preconditioner,
        criterion=criterion,
        tolerance=tolerance,
        max_iterations=max_iterations,
        solver_options=solver_options,
        tracer=tracer,
    )
    return factory.solve(matrix, b, x0=x0)
