"""Instrumentation: per-solve FLOP and memory-traffic accounting.

The production (vectorized) solvers tally the arithmetic and the logical
memory traffic of every kernel building block into a :class:`TrafficLedger`.
Traffic is attributed to *named objects* (the residual ``r``, search
direction ``p``, system matrix ``A``, right-hand side ``b``, ...) because
the hardware model needs to split the total between memory levels: the
workspace planner (:mod:`repro.core.workspace`) decides which objects live
in shared local memory and which stream from L2/HBM, exactly as Section 3.5
of the paper describes, and the Fig. 8 memory-metrics reproduction reads
that split straight off the ledger.

All byte counts are *logical* (algorithmic) traffic: each operand element
is counted once per kernel touch. Cache effects are applied later by the
hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_FP_BYTES = 8  # default: the paper evaluates FP64 throughout
_IDX_BYTES = 4  # 32-bit sparsity-pattern indices


@dataclass
class TrafficLedger:
    """Accumulates FLOPs, per-object bytes and kernel-call counts.

    ``fp_bytes`` is the width of one floating value (8 for FP64, 4 for
    FP32) — the dispatch mechanism's precision-format level scales every
    value-traffic tally through it.
    """

    flops: float = 0.0
    bytes_by_object: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    fp_bytes: int = _FP_BYTES

    # -- low-level tally API -------------------------------------------------

    def add_flops(self, count: float) -> None:
        """Record ``count`` floating-point operations."""
        self.flops += count

    def add_bytes(self, obj: str, count: float) -> None:
        """Attribute ``count`` bytes of traffic to object ``obj``."""
        self.bytes_by_object[obj] = self.bytes_by_object.get(obj, 0.0) + count

    def add_call(self, kind: str, count: int = 1) -> None:
        """Record ``count`` invocations of kernel building-block ``kind``."""
        self.calls[kind] = self.calls.get(kind, 0) + count

    # -- building-block helpers (used by repro.core.blas / matrix) -----------

    def tally_dot(self, num_batch: int, length: int, x_name: str, y_name: str) -> None:
        """A batched dot: reads x and y, 2n flops per system."""
        self.add_flops(2.0 * num_batch * length)
        self.add_bytes(x_name, self.fp_bytes * num_batch * length)
        self.add_bytes(y_name, self.fp_bytes * num_batch * length)
        self.add_call("dot", num_batch)

    def tally_norm2(self, num_batch: int, length: int, x_name: str) -> None:
        """A batched 2-norm: reads x, 2n flops per system."""
        self.add_flops(2.0 * num_batch * length)
        self.add_bytes(x_name, self.fp_bytes * num_batch * length)
        self.add_call("norm", num_batch)

    def tally_axpy(self, num_batch: int, length: int, x_name: str, y_name: str) -> None:
        """A batched axpy (y += alpha x): reads x, reads+writes y, 2n flops."""
        self.add_flops(2.0 * num_batch * length)
        self.add_bytes(x_name, self.fp_bytes * num_batch * length)
        self.add_bytes(y_name, 2.0 * self.fp_bytes * num_batch * length)
        self.add_call("axpy", num_batch)

    def tally_scal(self, num_batch: int, length: int, x_name: str) -> None:
        """A batched scale (x *= alpha): reads+writes x, n flops."""
        self.add_flops(1.0 * num_batch * length)
        self.add_bytes(x_name, 2.0 * self.fp_bytes * num_batch * length)
        self.add_call("scal", num_batch)

    def tally_copy(self, num_batch: int, length: int, src_name: str, dst_name: str) -> None:
        """A batched copy: reads src, writes dst."""
        self.add_bytes(src_name, self.fp_bytes * num_batch * length)
        self.add_bytes(dst_name, self.fp_bytes * num_batch * length)
        self.add_call("copy", num_batch)

    def tally_spmv(
        self,
        num_batch: int,
        num_rows: int,
        nnz: int,
        index_bytes: int,
        mat_name: str,
        x_name: str,
        y_name: str,
    ) -> None:
        """A batched SpMV: reads values+pattern of A, gathers x, writes y.

        ``index_bytes`` is the per-item sparsity-pattern footprint. The
        pattern is *stored* once for the whole batch (Section 3.1, the
        Fig. 2 amortization) but every work-group still *reads* it, so its
        traffic is counted per batch item. Matrix values and pattern are
        tallied under separate object names (``<mat>_values`` /
        ``<mat>_pattern``) because the workspace planner may cache the
        values in SLM while the pattern stays in the L2-served read-only
        stream.
        """
        self.add_flops(2.0 * num_batch * nnz)
        self.add_bytes(f"{mat_name}_values", float(self.fp_bytes) * num_batch * nnz)
        self.add_bytes(f"{mat_name}_pattern", float(index_bytes) * num_batch)
        self.add_bytes(x_name, self.fp_bytes * num_batch * nnz)
        self.add_bytes(y_name, self.fp_bytes * num_batch * num_rows)
        self.add_call("spmv", num_batch)

    def tally_precond_apply(
        self, num_batch: int, length: int, work_flops_per_row: float, name: str = "precond"
    ) -> None:
        """A preconditioner application z = M r."""
        self.add_flops(work_flops_per_row * num_batch * length)
        self.add_bytes(name, self.fp_bytes * num_batch * length)
        self.add_call("precond", num_batch)

    # -- aggregation ----------------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """All logical traffic regardless of destination level."""
        return sum(self.bytes_by_object.values())

    def bytes_for(self, names: set[str] | frozenset[str]) -> float:
        """Total traffic of the given object names."""
        return sum(v for k, v in self.bytes_by_object.items() if k in names)

    def merged(self, other: "TrafficLedger") -> "TrafficLedger":
        """Return a new ledger combining self and ``other``."""
        result = TrafficLedger(flops=self.flops + other.flops, fp_bytes=self.fp_bytes)
        for src in (self.bytes_by_object, other.bytes_by_object):
            for k, v in src.items():
                result.add_bytes(k, v)
        for src in (self.calls, other.calls):
            for k, v in src.items():
                result.add_call(k, v)
        return result

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of total logical traffic (roofline x-axis)."""
        total = self.total_bytes
        return self.flops / total if total > 0 else 0.0
