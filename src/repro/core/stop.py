"""Stopping criteria for the batched solvers (Table 3, rightmost column).

Each system of the batch converges on its own (the solvers monitor
convergence individually — Section 3); a criterion therefore maps a vector
of residual norms to a boolean convergence mask. Two criteria, following
the paper: absolute residual norm and residual norm relative to the
right-hand side.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_positive


class StoppingCriterion(ABC):
    """Decides, per system, whether the iteration may stop."""

    #: Tag used by the dispatch mechanism.
    criterion_name: str = "abstract"

    def __init__(self, tolerance: float = 1e-8) -> None:
        check_positive("tolerance", tolerance)
        self.tolerance = float(tolerance)

    @abstractmethod
    def thresholds(self, b_norms: np.ndarray) -> np.ndarray:
        """Per-system residual-norm thresholds given the RHS norms."""

    def check(self, res_norms: np.ndarray, b_norms: np.ndarray) -> np.ndarray:
        """Boolean mask of systems whose residual satisfies the criterion."""
        return res_norms <= self.thresholds(b_norms)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tolerance={self.tolerance!r})"


class AbsoluteResidual(StoppingCriterion):
    """Stop system ``i`` once ``||r_i|| <= tolerance``."""

    criterion_name = "absolute"

    def thresholds(self, b_norms: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(b_norms, dtype=np.float64), self.tolerance)


class RelativeResidual(StoppingCriterion):
    """Stop system ``i`` once ``||r_i|| <= tolerance * ||b_i||``.

    Systems with a zero right-hand side fall back to the absolute
    criterion (their exact solution is x = 0 and any absolute threshold is
    achievable).
    """

    criterion_name = "relative"

    def thresholds(self, b_norms: np.ndarray) -> np.ndarray:
        b_norms = np.asarray(b_norms, dtype=np.float64)
        scaled = self.tolerance * b_norms
        thresholds = np.where(b_norms > 0.0, scaled, self.tolerance)
        # a non-finite RHS norm would make the threshold infinite and
        # declare garbage "converged"; NaN thresholds never compare true
        return np.where(np.isfinite(b_norms), thresholds, np.nan)
