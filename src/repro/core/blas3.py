"""Batched dense linear algebra: GEMM and pivoted LU, from scratch.

The paper's introduction frames batched *dense* routines (batched BLAS,
batched LU [7]) as the established baseline technology that batched sparse
iterative solvers compete with. This module implements that substrate —
batch-vectorized over NumPy, one sequential loop over the (small) matrix
dimension, everything else fused across the batch:

* :func:`batched_gemm` — ``C = alpha A B + beta C`` over 3-D stacks;
* :func:`batched_lu_factor` / :func:`batched_lu_solve` — dense LU with
  per-system partial pivoting (the variable-size batched LU of reference
  [7], fixed-size variant);
* :func:`batched_trsm` — batched triangular solves with multiple RHS.

:class:`~repro.core.solver.direct.BatchDirect` builds on these instead of
LAPACK, so the direct baseline the benches compare against is itself a
from-scratch implementation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, SingularMatrixError


def _check_stack(name: str, a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 3:
        raise DimensionMismatchError(f"{name} must be a 3-D batch, got ndim={a.ndim}")
    return a


def batched_gemm(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """``C_i = alpha * A_i @ B_i + beta * C_i`` for every batch item."""
    a = _check_stack("a", a)
    b = _check_stack("b", b)
    if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
        raise DimensionMismatchError(
            f"gemm shapes incompatible: {a.shape} @ {b.shape}"
        )
    product = np.matmul(a, b)
    if out is None:
        return alpha * product
    if out.shape != product.shape:
        raise DimensionMismatchError(
            f"out has shape {out.shape}, expected {product.shape}"
        )
    out *= beta
    out += alpha * product
    return out


def batched_lu_factor(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """In-place-style batched LU with partial pivoting.

    Returns ``(lu, piv)``: ``lu`` packs the unit-lower L below and U on/above
    the diagonal; ``piv[i, k]`` is the row swapped with row ``k`` of system
    ``i`` at step ``k`` (LAPACK ``getrf`` convention). Raises
    :class:`SingularMatrixError` when any system's pivot vanishes.
    """
    lu = _check_stack("a", a).copy()
    nb, n, m = lu.shape
    if n != m:
        raise DimensionMismatchError(f"LU needs square systems, got {n}x{m}")
    piv = np.empty((nb, n), dtype=np.int64)
    batch = np.arange(nb)
    for k in range(n):
        # per-system pivot row: largest magnitude in column k at/below k
        p = np.argmax(np.abs(lu[:, k:, k]), axis=1) + k
        piv[:, k] = p
        # swap rows k and p in every system (no-ops where p == k)
        rows_k = lu[batch, k, :].copy()
        lu[batch, k, :] = lu[batch, p, :]
        lu[batch, p, :] = rows_k
        pivot = lu[:, k, k]
        if np.any(pivot == 0.0):
            bad = int(np.argmax(pivot == 0.0))
            raise SingularMatrixError(
                f"batched LU: zero pivot at step {k} in batch item {bad}"
            )
        if k + 1 < n:
            lu[:, k + 1 :, k] /= pivot[:, None]
            lu[:, k + 1 :, k + 1 :] -= (
                lu[:, k + 1 :, k : k + 1] * lu[:, k : k + 1, k + 1 :]
            )
    return lu, piv


def batched_lu_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A_i x_i = b_i`` from a :func:`batched_lu_factor` result."""
    lu = _check_stack("lu", lu)
    nb, n, _ = lu.shape
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (nb, n):
        raise DimensionMismatchError(f"b must have shape ({nb}, {n}), got {b.shape}")
    if piv.shape != (nb, n):
        raise DimensionMismatchError(
            f"piv must have shape ({nb}, {n}), got {piv.shape}"
        )
    x = b.copy()
    batch = np.arange(nb)
    # apply the recorded row swaps in factorization order
    for k in range(n):
        p = piv[:, k]
        xk = x[batch, k].copy()
        x[batch, k] = x[batch, p]
        x[batch, p] = xk
    # forward: L y = P b (unit diagonal)
    for i in range(1, n):
        x[:, i] -= np.einsum("bk,bk->b", lu[:, i, :i], x[:, :i])
    # backward: U x = y
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[:, i] -= np.einsum("bk,bk->b", lu[:, i, i + 1 :], x[:, i + 1 :])
        x[:, i] /= lu[:, i, i]
    return x


def batched_trsm(
    a: np.ndarray,
    b: np.ndarray,
    lower: bool = True,
    unit_diagonal: bool = False,
) -> np.ndarray:
    """Batched triangular solve with (possibly) multiple right-hand sides.

    ``a`` is ``(nb, n, n)`` triangular; ``b`` is ``(nb, n)`` or
    ``(nb, n, k)``. Only the relevant triangle of ``a`` is referenced.
    """
    a = _check_stack("a", a)
    nb, n, m = a.shape
    if n != m:
        raise DimensionMismatchError(f"trsm needs square systems, got {n}x{m}")
    b = np.asarray(b, dtype=np.float64)
    squeeze = b.ndim == 2
    if squeeze:
        b = b[..., None]
    if b.shape[0] != nb or b.shape[1] != n:
        raise DimensionMismatchError(
            f"b must have shape ({nb}, {n}[, k]), got {b.shape}"
        )
    x = b.copy()
    order = range(n) if lower else range(n - 1, -1, -1)
    for i in order:
        if lower and i > 0:
            x[:, i, :] -= np.einsum("bk,bkj->bj", a[:, i, :i], x[:, :i, :])
        elif not lower and i + 1 < n:
            x[:, i, :] -= np.einsum("bk,bkj->bj", a[:, i, i + 1 :], x[:, i + 1 :, :])
        if not unit_diagonal:
            diag = a[:, i, i]
            if np.any(diag == 0.0):
                bad = int(np.argmax(diag == 0.0))
                raise SingularMatrixError(
                    f"batched trsm: zero diagonal at row {i}, batch item {bad}"
                )
            x[:, i, :] /= diag[:, None]
    return x[..., 0] if squeeze else x
