"""Shared-local-memory workspace planning (Section 3.5 of the paper).

Each work-group solves one linear system and keeps its intermediate
vectors in SLM when they fit. The paper assigns a *priority order* per
solver — for BatchCg, in decreasing priority: ``r, z, p, t, x`` — and the
solver "dynamically determines at runtime how many vectors can be
allocated on the SLM ... based on the input matrix size and the available
SLM memory on the device". The preconditioner workspace is placed last,
"if the SLM is still available". The system matrix and right-hand side
always stream from global memory (they are read-only and too large; they
are expected to be served by the L2 cache).

:func:`plan_workspace` reproduces that policy. The resulting
:class:`WorkspacePlan` maps every named solver object to the memory level
it lives in; the ledger-based hardware model uses this to split logical
traffic between SLM, L2 and HBM (and the Fig. 8 bench reads the split
directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

_FP_BYTES = 8

#: Memory levels a solver object can be resident in.
SLM = "slm"
GLOBAL = "global"


@dataclass(frozen=True)
class SlmBudget:
    """Available shared local memory for one work-group, in bytes."""

    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError(f"negative SLM capacity: {self.capacity_bytes}")

    @property
    def capacity_doubles(self) -> int:
        """Capacity expressed in FP64 elements."""
        return self.capacity_bytes // _FP_BYTES


@dataclass
class WorkspacePlan:
    """Placement decision for every named object of a solve."""

    placement: dict[str, str] = field(default_factory=dict)
    slm_doubles_used: int = 0
    bytes_per_value: int = _FP_BYTES

    @property
    def slm_bytes_used(self) -> int:
        """SLM footprint of one work-group under this plan."""
        return self.slm_doubles_used * self.bytes_per_value

    @property
    def slm_resident(self) -> frozenset[str]:
        """Names of the objects allocated in shared local memory."""
        return frozenset(k for k, v in self.placement.items() if v == SLM)

    @property
    def global_resident(self) -> frozenset[str]:
        """Names of the objects left in global memory."""
        return frozenset(k for k, v in self.placement.items() if v == GLOBAL)

    def level_of(self, name: str) -> str:
        """Memory level of object ``name`` (global when never planned)."""
        return self.placement.get(name, GLOBAL)


def plan_workspace(
    vector_priority: list[tuple[str, int]],
    budget: SlmBudget,
    precond_doubles: int = 0,
    always_global: tuple[str, ...] = ("A", "b"),
    bytes_per_value: int = _FP_BYTES,
) -> WorkspacePlan:
    """Greedy SLM allocation in priority order.

    Parameters
    ----------
    vector_priority:
        ``(name, doubles_per_system)`` pairs in *decreasing* priority, as
        specified by each solver (e.g. BatchCg's ``r, z, p, t, x``).
    budget:
        Per-work-group SLM capacity.
    precond_doubles:
        Size of the preconditioner's per-system state; placed last, per
        the paper.
    always_global:
        Objects that never move to SLM (the system matrix and RHS).
    bytes_per_value:
        Width of one stored value (8 for FP64, 4 for FP32): halving the
        precision doubles how many vectors fit — one of the reasons the
        dispatch mechanism carries a precision-format level.

    The allocation is greedy-with-skip: a vector that does not fit is left
    in global memory but *later, smaller* candidates may still claim the
    remaining SLM — matching "how many vectors can be allocated on the
    SLM" rather than a strict prefix rule.
    """
    if bytes_per_value <= 0:
        raise ValueError(f"bytes_per_value must be positive, got {bytes_per_value}")
    plan = WorkspacePlan(bytes_per_value=bytes_per_value)
    remaining = budget.capacity_bytes // bytes_per_value
    candidates = list(vector_priority)
    if precond_doubles > 0:
        candidates.append(("precond", precond_doubles))
    for name, doubles in candidates:
        if doubles < 0:
            raise ValueError(f"object {name!r} has negative size {doubles}")
        if doubles <= remaining:
            plan.placement[name] = SLM
            remaining -= doubles
            plan.slm_doubles_used += doubles
        else:
            plan.placement[name] = GLOBAL
    for name in always_global:
        plan.placement[name] = GLOBAL
    return plan
