"""BatchBicg: batched two-sided biconjugate gradients.

Another roadmap extension (Section 5): classic BiCG is the two-sided
ancestor of BiCGSTAB/CGS and needs products with both ``A`` and ``A^T``
per iteration. The shared-pattern formats make the batched transpose
cheap (one pattern permutation for the whole batch —
:meth:`repro.core.matrix.BatchCsr.transpose`), so BiCG slots into the
same fused design; its presence also exercises the transpose code path
the other solvers never touch.

Preconditioning is split symmetrically (M applied to both recurrences),
matching the textbook preconditioned BiCG.
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.core.matrix.batch_csr import BatchCsr
from repro.core.solver.base import (
    BatchIterativeSolver,
    ConvergenceTracker,
    guarded_divide,
)
from repro.exceptions import UnsupportedCombinationError


class BatchBicg(BatchIterativeSolver):
    """Preconditioned BiCG over a batch of general systems (needs BatchCsr)."""

    solver_name = "bicg"

    def __init__(self, matrix, preconditioner=None, settings=None) -> None:
        super().__init__(matrix, preconditioner, settings)
        if not isinstance(matrix, BatchCsr):
            raise UnsupportedCombinationError(
                "BatchBicg applies A^T and therefore requires the BatchCsr "
                f"format (cheap shared-pattern transpose); got {matrix.format_name!r}"
            )
        self._transposed = matrix.transpose()

    def workspace_vectors(self) -> list[tuple[str, int]]:
        n = self.matrix.num_rows
        return [
            ("r", n),
            ("r_star", n),
            ("p", n),
            ("p_star", n),
            ("z", n),
            ("z_star", n),
            ("t", n),
            ("x", n),
            ("A_cache", self.matrix.nnz_per_item),
        ]

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        matrix = self.matrix
        transposed = self._transposed
        precond = self.preconditioner

        r = self._initial_residual(b, x, ledger)
        r_star = r.copy()
        ledger.tally_copy(*b.shape, "r", "r_star")

        z = precond.apply(r, ledger=ledger)
        z_star = precond.apply(r_star, ledger=ledger)
        p = z.copy()
        p_star = z_star.copy()
        ledger.tally_copy(*b.shape, "z", "p")
        ledger.tally_copy(*b.shape, "z_star", "p_star")
        rho = blas.dot(z, r_star, ledger, ("z", "r_star"))

        t = np.empty_like(b)
        t_star = np.empty_like(b)

        res_norms = blas.norm2(r, ledger, "r")
        tracker.start(res_norms)

        for iteration in range(1, self.settings.max_iterations + 1):
            active = tracker.active
            if not active.any():
                break

            # t = A p ; t* = A^T p* ; alpha = rho / (p* . t)
            matrix.apply(p, out=t, ledger=ledger, x_name="p", y_name="t")
            transposed.apply(
                p_star, out=t_star, ledger=ledger, x_name="p_star", y_name="t_star"
            )
            pt = blas.dot(p_star, t, ledger, ("p_star", "t"))
            alpha, breakdown = guarded_divide(rho, pt, active)
            if breakdown.any():
                tracker.freeze(breakdown)
                active = active & ~breakdown

            blas.axpy(alpha, p, x, ledger, ("p", "x"))
            blas.axpy(-alpha, t, r, ledger, ("t", "r"))
            blas.axpy(-alpha, t_star, r_star, ledger, ("t_star", "r_star"))

            res_norms = blas.norm2(r, ledger, "r")
            tracker.update(iteration, res_norms, active)

            precond.apply(r, out=z, ledger=ledger)
            precond.apply(r_star, out=z_star, ledger=ledger)
            rho_new = blas.dot(z, r_star, ledger, ("z", "r_star"))
            beta, breakdown = guarded_divide(rho_new, rho, tracker.active)
            if breakdown.any():
                tracker.freeze(breakdown)
            blas.axpby(1.0, z, beta, p, ledger, ("z", "p"))
            blas.axpby(1.0, z_star, beta, p_star, ledger, ("z_star", "p_star"))
            rho = rho_new
