"""BatchTrsv: batched sparse triangular solve.

Table 3 lists BatchTrsv among the batched solvers: it solves systems whose
matrices are (or are treated as) triangular, in one forward or backward
sweep per system — it is a *direct* one-shot kernel, so it ignores
``max_iterations`` and always reports one iteration.

Strictly-triangular structure is detected from the shared sparsity
pattern; entries on the wrong side of the diagonal raise. The sweep is the
same schedule-driven, batch-vectorized substitution the ILU(0)
preconditioner uses for its apply.
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.core.matrix.base import BatchedMatrix
from repro.core.matrix.batch_csr import BatchCsr
from repro.core.solver.base import BatchIterativeSolver, ConvergenceTracker
from repro.exceptions import BadSparsityPatternError, SingularMatrixError


class BatchTrsv(BatchIterativeSolver):
    """One-sweep batched triangular substitution.

    Parameters
    ----------
    uplo:
        ``"lower"`` (forward substitution) or ``"upper"`` (backward).
    unit_diagonal:
        Treat the diagonal as implicit ones (entries on the diagonal are
        then forbidden in the pattern).
    """

    solver_name = "trsv"

    def __init__(
        self,
        matrix: BatchedMatrix,
        preconditioner=None,
        settings=None,
        uplo: str = "lower",
        unit_diagonal: bool = False,
    ) -> None:
        super().__init__(matrix, preconditioner, settings)
        if uplo not in ("lower", "upper"):
            raise ValueError(f"uplo must be 'lower' or 'upper', got {uplo!r}")
        self.uplo = uplo
        self.unit_diagonal = bool(unit_diagonal)
        csr = matrix if isinstance(matrix, BatchCsr) else BatchCsr.from_dense(
            matrix.to_batch_dense()
        )
        self._csr = csr
        self._validate_structure(csr)
        if not self.unit_diagonal:
            if np.any(csr.diag_positions < 0):
                row = int(np.argmax(csr.diag_positions < 0))
                raise SingularMatrixError(
                    f"triangular solve needs a full diagonal; row {row} has none"
                )
            if np.any(np.isclose(csr.values[:, csr.diag_positions], 0.0)):
                raise SingularMatrixError("zero diagonal entry in triangular system")

    def workspace_vectors(self) -> list[tuple[str, int]]:
        n = self.matrix.num_rows
        return [("x", n)]

    def model_stages(self, result) -> float:
        # the substitution sweep is one dependent stage per row
        return float(self.matrix.num_rows)

    def _validate_structure(self, csr: BatchCsr) -> None:
        row_of = csr.row_of_nnz
        cols = csr.col_idxs
        if self.uplo == "lower":
            bad = cols > row_of
        else:
            bad = cols < row_of
        if self.unit_diagonal:
            bad |= cols == row_of
        if bad.any():
            pos = int(np.argmax(bad))
            raise BadSparsityPatternError(
                f"entry ({int(row_of[pos])}, {int(cols[pos])}) violates the "
                f"{'unit-' if self.unit_diagonal else ''}{self.uplo}-triangular structure"
            )

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        csr = self._csr
        n = csr.num_rows
        vals = csr.values
        res_norms = blas.norm2(self._initial_residual(b, x, ledger), ledger, "r")
        tracker.start(res_norms)

        order = range(n) if self.uplo == "lower" else range(n - 1, -1, -1)
        for row in order:
            start, end = csr.row_ptrs[row], csr.row_ptrs[row + 1]
            cols = csr.col_idxs[start:end].astype(np.int64)
            positions = np.arange(start, end, dtype=np.int64)
            off = cols != row
            acc = b[:, row]
            if off.any():
                acc = acc - np.einsum(
                    "bk,bk->b", vals[:, positions[off]], x[:, cols[off]]
                )
            if self.unit_diagonal:
                x[:, row] = acc
            else:
                x[:, row] = acc / vals[:, int(csr.diag_positions[row])]
        ledger.add_flops(2.0 * b.shape[0] * csr.nnz_per_item)
        ledger.add_bytes("A_values", float(ledger.fp_bytes) * b.shape[0] * csr.nnz_per_item)
        ledger.add_bytes("x", 2.0 * ledger.fp_bytes * b.shape[0] * n)
        ledger.add_call("trsv", b.shape[0])

        r = self.matrix.apply(x, ledger=ledger, x_name="x", y_name="r")
        np.subtract(b, r, out=r)
        res_norms = blas.norm2(r, ledger, "r")
        tracker.update(1, res_norms, np.ones(b.shape[0], dtype=bool))
