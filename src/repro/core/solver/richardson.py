"""BatchRichardson: batched stationary (relaxed preconditioned) iteration.

Listed in the paper's roadmap as part of the extended batched solver
collection; also useful as the simplest possible fused kernel for testing
the dispatch and workspace machinery. Iterates

    x <- x + omega * M (b - A x)

which converges whenever ``||I - omega M A|| < 1`` (e.g. scalar-Jacobi on
diagonally dominant systems).
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.core.solver.base import BatchIterativeSolver, ConvergenceTracker


class BatchRichardson(BatchIterativeSolver):
    """Relaxed preconditioned Richardson iteration.

    Parameters
    ----------
    omega:
        Relaxation factor (default 1.0 — plain preconditioned Richardson).
    """

    solver_name = "richardson"

    def __init__(self, matrix, preconditioner=None, settings=None, omega: float = 1.0) -> None:
        super().__init__(matrix, preconditioner, settings)
        if not 0.0 < omega <= 2.0:
            raise ValueError(f"relaxation factor omega must be in (0, 2], got {omega}")
        self.omega = float(omega)

    def workspace_vectors(self) -> list[tuple[str, int]]:
        n = self.matrix.num_rows
        return [("r", n), ("z", n), ("x", n), ("A_cache", self.matrix.nnz_per_item)]

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        matrix = self.matrix
        precond = self.preconditioner

        r = self._initial_residual(b, x, ledger)
        res_norms = blas.norm2(r, ledger, "r")
        tracker.start(res_norms)

        z = np.empty_like(b)
        t = np.empty_like(b)
        for iteration in range(1, self.settings.max_iterations + 1):
            active = tracker.active
            if not active.any():
                break

            precond.apply(r, out=z, ledger=ledger)
            step = np.where(active, self.omega, 0.0)
            blas.axpy(step, z, x, ledger, ("z", "x"))

            # r <- b - A x, computed incrementally: r -= omega * A z
            matrix.apply(z, out=t, ledger=ledger, x_name="z", y_name="t")
            blas.axpy(-step, t, r, ledger, ("t", "r"))

            res_norms = blas.norm2(r, ledger, "r")
            tracker.update(iteration, res_norms, active)
