"""Batched solvers (Table 3, second column).

Iterative Krylov solvers (:class:`BatchCg`, :class:`BatchBicgstab`,
:class:`BatchGmres`), the stationary :class:`BatchRichardson`, the batched
sparse triangular solve :class:`BatchTrsv`, and the dense-LU
:class:`BatchDirect` baseline the iterative methods are compared against.

All solvers operate on one :class:`~repro.core.matrix.BatchedMatrix` and
``(num_batch, n)`` right-hand sides, support an initial guess, per-system
stopping (absolute/relative criteria) and per-system convergence logging,
and tally their FLOPs/traffic into a
:class:`~repro.core.counters.TrafficLedger` for the hardware model.
"""

from repro.core.solver.base import (
    BatchIterativeSolver,
    BatchSolveResult,
    ConvergenceTracker,
    SolverSettings,
)
from repro.core.solver.cg import BatchCg
from repro.core.solver.bicg import BatchBicg
from repro.core.solver.bicgstab import BatchBicgstab
from repro.core.solver.cgs import BatchCgs
from repro.core.solver.gmres import BatchGmres
from repro.core.solver.richardson import BatchRichardson
from repro.core.solver.trsv import BatchTrsv
from repro.core.solver.direct import BatchDirect

__all__ = [
    "BatchIterativeSolver",
    "BatchSolveResult",
    "ConvergenceTracker",
    "SolverSettings",
    "BatchCg",
    "BatchBicg",
    "BatchBicgstab",
    "BatchCgs",
    "BatchGmres",
    "BatchRichardson",
    "BatchTrsv",
    "BatchDirect",
]
