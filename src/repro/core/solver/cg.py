"""BatchCg: batched preconditioned conjugate gradients (Algorithm 1).

For symmetric positive definite batch items (the paper's 3-point-stencil
study uses CG on SPD stencil matrices). The implementation follows
Algorithm 1 of the paper, vectorized across the batch with per-system
freezing of converged items.
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.core.solver.base import (
    BatchIterativeSolver,
    ConvergenceTracker,
    guarded_divide,
)


class BatchCg(BatchIterativeSolver):
    """Preconditioned CG over a batch of SPD systems."""

    solver_name = "cg"

    def workspace_vectors(self) -> list[tuple[str, int]]:
        # Section 3.5: decreasing priority r, z, p, t, x; the (preconditioned)
        # matrix values are "also allocated on the SLM" after the vectors,
        # and the preconditioner workspace comes last (plan_workspace adds it).
        n = self.matrix.num_rows
        return [
            ("r", n),
            ("z", n),
            ("p", n),
            ("t", n),
            ("x", n),
            ("A_cache", self.matrix.nnz_per_item),
        ]

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        matrix = self.matrix
        precond = self.preconditioner

        # r <- b - A x ; z <- M r ; p <- z  (Algorithm 1, line 2)
        r = self._initial_residual(b, x, ledger)
        z = precond.apply(r, ledger=ledger)
        p = z.copy()
        ledger.tally_copy(*b.shape, "z", "p")
        rho = blas.dot(r, z, ledger, ("r", "z"))

        res_norms = blas.norm2(r, ledger, "r")
        tracker.start(res_norms)

        t = np.empty_like(b)
        for iteration in range(1, self.settings.max_iterations + 1):
            active = tracker.active
            if not active.any():
                break

            # t <- A p ; alpha <- rho / (p . t)
            matrix.apply(p, out=t, ledger=ledger, x_name="p", y_name="t")
            pt = blas.dot(p, t, ledger, ("p", "t"))
            alpha, breakdown = guarded_divide(rho, pt, active)
            if breakdown.any():
                tracker.freeze(breakdown)
                active = active & ~breakdown

            # x <- x + alpha p ; r <- r - alpha t
            blas.axpy(alpha, p, x, ledger, ("p", "x"))
            blas.axpy(-alpha, t, r, ledger, ("t", "r"))

            res_norms = blas.norm2(r, ledger, "r")
            tracker.update(iteration, res_norms, active)

            # z <- M r ; beta <- (r . z) / rho ; p <- z + beta p
            precond.apply(r, out=z, ledger=ledger)
            rho_new = blas.dot(r, z, ledger, ("r", "z"))
            beta, breakdown = guarded_divide(rho_new, rho, tracker.active)
            if breakdown.any():
                tracker.freeze(breakdown)
            blas.axpby(1.0, z, beta, p, ledger, ("z", "p"))
            rho = rho_new
