"""Common machinery of the batched solvers.

Every solver follows the structure of the paper's fused kernel
(Section 3.4): one logical kernel performs the whole iteration for every
batch item, each system converging individually against the configured
stopping criterion. The vectorized implementation mirrors that with a
single NumPy iteration loop over the whole batch and a per-system active
mask: converged systems have their update scalars forced to zero, freezing
their state exactly as a work-group that broke out of its loop would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.counters import TrafficLedger
from repro.core.logger import ConvergenceLogger
from repro.core.matrix.base import BatchedMatrix
from repro.core.preconditioner.base import BatchPreconditioner
from repro.core.preconditioner.identity import BatchIdentity
from repro.core.stop import RelativeResidual, StoppingCriterion
from repro.exceptions import DimensionMismatchError
from repro.observability.tracer import NULL_TRACER, Tracer, current_tracer, use_tracer


@dataclass
class SolverSettings:
    """User-facing solve parameters.

    ``max_iterations`` bounds the iteration count per system;
    ``criterion`` is the per-system stopping criterion (Table 3 offers
    absolute and relative residual criteria); ``keep_history`` records
    residual norms every iteration (costs memory; used by examples/tests).
    """

    max_iterations: int = 500
    criterion: StoppingCriterion = field(default_factory=lambda: RelativeResidual(1e-8))
    keep_history: bool = False

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if not isinstance(self.criterion, StoppingCriterion):
            raise TypeError(
                f"criterion must be a StoppingCriterion, got {type(self.criterion)}"
            )


@dataclass
class BatchSolveResult:
    """Outcome of one batched solve."""

    x: np.ndarray
    iterations: np.ndarray
    residual_norms: np.ndarray
    converged: np.ndarray
    logger: ConvergenceLogger
    ledger: TrafficLedger
    solver_name: str

    @property
    def num_batch(self) -> int:
        """Number of systems solved."""
        return self.x.shape[0]

    @property
    def all_converged(self) -> bool:
        """True when every system satisfied the stopping criterion."""
        return bool(self.converged.all())

    @property
    def max_iterations_used(self) -> int:
        """Largest per-system iteration count."""
        return int(self.iterations.max())

    def select(self, indices) -> "BatchSolveResult":
        """A sub-result holding only the systems at ``indices``.

        The serving layer uses this to scatter one flushed batch solve back
        into per-request responses. The per-system arrays are sliced
        (copies); the ``logger`` and ``ledger`` stay those of the
        originating batch solve, since convergence history and traffic
        accounting belong to the fused kernel launch, not to any single
        system.
        """
        idx = np.atleast_1d(np.asarray(indices))
        return BatchSolveResult(
            x=self.x[idx],
            iterations=self.iterations[idx],
            residual_norms=self.residual_norms[idx],
            converged=self.converged[idx],
            logger=self.logger,
            ledger=self.ledger,
            solver_name=self.solver_name,
        )

    def __repr__(self) -> str:
        return (
            f"BatchSolveResult(solver={self.solver_name!r}, "
            f"num_batch={self.num_batch}, converged={int(self.converged.sum())}"
            f"/{self.num_batch}, max_iters={self.max_iterations_used})"
        )


class ConvergenceTracker:
    """Per-system convergence bookkeeping shared by all iterative solvers."""

    def __init__(
        self,
        criterion: StoppingCriterion,
        b_norms: np.ndarray,
        logger: ConvergenceLogger,
        tracer: Tracer | None = None,
    ) -> None:
        self.thresholds = criterion.thresholds(b_norms)
        self.logger = logger
        self.converged = np.zeros(b_norms.shape[0], dtype=bool)
        self._frozen = np.zeros(b_norms.shape[0], dtype=bool)
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def start(self, res_norms: np.ndarray) -> None:
        """Record iteration 0; systems may converge immediately."""
        self.logger.log_initial(res_norms)
        self.converged = res_norms <= self.thresholds
        self.logger.mark_converged(self.converged)
        self._emit_convergence(0, res_norms)

    def update(self, iteration: int, res_norms: np.ndarray, active: np.ndarray) -> None:
        """Record an iteration and absorb newly converged systems."""
        self.logger.log_iteration(iteration, res_norms, active)
        newly = active & (res_norms <= self.thresholds)
        self.converged |= newly
        self.logger.mark_converged(newly)
        self._emit_convergence(iteration, res_norms)

    def _emit_convergence(self, iteration: int, res_norms: np.ndarray) -> None:
        """Per-iteration counter sample on the installed tracer (if any)."""
        tracer = self._tracer
        if not tracer.enabled:
            return
        active = self.active
        num_active = int(active.sum())
        worst = float(np.max(res_norms[active])) if num_active else 0.0
        tracer.counter(
            "convergence.active_systems", active=num_active, converged=int(self.converged.sum())
        )
        tracer.counter("convergence.worst_residual", residual=worst)
        tracer.metrics.counter("solver.iterations_total").inc(
            num_active if iteration > 0 else 0
        )

    def freeze(self, mask: np.ndarray) -> None:
        """Stop iterating the masked systems without marking them converged.

        Used on breakdown (zero denominators): the system keeps its current
        iterate and is reported as not converged.
        """
        self._frozen |= mask
        self.logger.mark_frozen(mask)
        if self._tracer.enabled and np.any(mask):
            self._tracer.instant("solver.breakdown", systems=int(np.sum(mask)))
            self._tracer.metrics.counter("solver.breakdowns").inc(int(np.sum(mask)))

    @property
    def active(self) -> np.ndarray:
        """Systems that still iterate."""
        return ~(self.converged | self._frozen)

    @property
    def all_done(self) -> bool:
        """True when no system remains active."""
        return not self.active.any()


def guarded_divide(numerator: np.ndarray, denominator: np.ndarray, active: np.ndarray):
    """Per-system division that returns 0 where inactive or denominator is 0.

    Returns ``(quotient, breakdown_mask)``; ``breakdown_mask`` flags active
    systems whose denominator vanished (solver breakdown).
    """
    denom_ok = denominator != 0.0
    safe = np.where(denom_ok, denominator, 1.0)
    quotient = np.where(active & denom_ok, numerator / safe, 0.0)
    breakdown = active & ~denom_ok
    return quotient, breakdown


class BatchIterativeSolver(ABC):
    """Base class: holds the matrix, preconditioner and settings."""

    solver_name: str = "abstract"

    def __init__(
        self,
        matrix: BatchedMatrix,
        preconditioner: BatchPreconditioner | None = None,
        settings: SolverSettings | None = None,
    ) -> None:
        if matrix.num_rows != matrix.num_cols:
            raise DimensionMismatchError(
                f"batched solvers require square systems, got "
                f"{matrix.num_rows}x{matrix.num_cols}"
            )
        self.matrix = matrix
        self.preconditioner = (
            preconditioner if preconditioner is not None else BatchIdentity(matrix)
        )
        if self.preconditioner.num_batch != matrix.num_batch:
            raise DimensionMismatchError(
                "preconditioner batch size does not match the matrix batch size"
            )
        self.settings = settings if settings is not None else SolverSettings()

    # -- solver-specific pieces ------------------------------------------------

    @abstractmethod
    def workspace_vectors(self) -> list[tuple[str, int]]:
        """``(name, doubles_per_system)`` in decreasing SLM priority.

        Feeds :func:`repro.core.workspace.plan_workspace`; the order
        follows Section 3.5 (usage frequency and size).
        """

    @abstractmethod
    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        """Run the iteration in-place on ``x``."""

    # -- the public solve entry point ----------------------------------------------

    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        tracer: Tracer | None = None,
    ) -> BatchSolveResult:
        """Solve ``A_i x_i = b_i`` for every batch item.

        ``b`` is ``(num_batch, n)`` or ``(n,)`` (broadcast); ``x0`` is the
        optional initial guess (zero by default) — the capability the
        paper highlights as the key advantage of iterative batched solvers
        inside nonlinear outer loops. ``tracer`` opts this solve into the
        observability layer: it is installed for the duration of the call
        (so nested layers feed it too) and receives one solver span, one
        fused-kernel span (the Section 3.4 single-launch structure) and
        per-iteration convergence counters.
        """
        matrix = self.matrix
        b = matrix.check_vector("b", b)
        if x0 is None:
            x = np.zeros_like(b)
        else:
            x = matrix.check_vector("x0", x0).copy()

        with use_tracer(tracer):
            tr = current_tracer()
            ledger = TrafficLedger(fp_bytes=matrix.value_bytes)
            logger = ConvergenceLogger(matrix.num_batch, self.settings.keep_history)
            from repro.core import blas  # local import to avoid a cycle at module load

            with tr.span(
                f"solve.{self.solver_name}",
                category="solver",
                solver=self.solver_name,
                preconditioner=self.preconditioner.preconditioner_name,
                matrix_format=matrix.format_name,
                precision=str(matrix.dtype),
                num_batch=matrix.num_batch,
                num_rows=matrix.num_rows,
            ) as span:
                b_norms = blas.norm2(b, ledger, "b")
                tracker = ConvergenceTracker(
                    self.settings.criterion, b_norms, logger, tracer=tr
                )

                kernel_args = (
                    self._fused_kernel_trace_args() if tr.enabled else {}
                )
                with tr.span(
                    f"batch_{self.solver_name}_fused", category="kernel", **kernel_args
                ) as kspan:
                    self._iterate(b, x, tracker, ledger)
                    kspan.set("iterations", int(logger.iterations.max()))

                if tr.enabled:
                    num_converged = int(tracker.converged.sum())
                    span.set_args(
                        converged=num_converged,
                        max_iterations_used=int(logger.iterations.max()),
                        flops=ledger.flops,
                        logical_bytes=ledger.total_bytes,
                    )
                    metrics = tr.metrics
                    metrics.counter("solver.solves").inc()
                    metrics.counter("solver.systems").inc(matrix.num_batch)
                    metrics.counter("solver.systems_converged").inc(num_converged)
                    metrics.counter("solver.flops").inc(ledger.flops)
                    metrics.counter("solver.logical_bytes").inc(ledger.total_bytes)
                    metrics.histogram("solver.iterations_per_system").observe_many(
                        logger.iterations.tolist()
                    )

        return BatchSolveResult(
            x=x,
            iterations=logger.iterations.copy(),
            residual_norms=logger.final_residuals.copy(),
            converged=tracker.converged.copy(),
            logger=logger,
            ledger=ledger,
            solver_name=self.solver_name,
        )

    def _fused_kernel_trace_args(self) -> dict:
        """LaunchStats-shaped arguments for the fused-kernel span.

        The vectorized path executes one logical fused launch per solve
        (the paper's single-kernel structure); its geometry is what the
        launch configurator would pick on the reference device (PVC-1S,
        Section 3.6), with the SLM footprint from the Section 3.5
        priority-ordered workspace plan.
        """
        from repro.core.launch import LaunchConfigurator
        from repro.core.workspace import SlmBudget, plan_workspace
        from repro.sycl.device import pvc_stack_device

        device = pvc_stack_device(1)
        workspace = plan_workspace(
            self.workspace_vectors(),
            SlmBudget(device.slm_bytes_per_cu),
            precond_doubles=self.preconditioner.workspace_doubles_per_system(),
            bytes_per_value=self.matrix.value_bytes,
        )
        plan = LaunchConfigurator(device).configure(
            self.matrix.num_rows, self.matrix.num_batch, workspace
        )
        return {
            "num_groups": plan.num_groups,
            "work_group_size": plan.work_group_size,
            "sub_group_size": plan.sub_group_size,
            "reduction_scope": plan.reduction_scope,
            "slm_bytes_per_group": plan.slm_bytes_per_group,
            "launch_device": device.name,
        }

    # -- hardware-model hooks -------------------------------------------------------

    def model_stages(self, result: BatchSolveResult) -> float:
        """Dependent kernel stages per system, for the timing model.

        Iterative solvers advance in synchronized iterations, so the mean
        iteration count is the critical-path length. Direct kernels
        override this: their user-facing iteration count is 1, but their
        elimination/substitution sweeps are sequentially dependent stages
        the wave-timing model must price.
        """
        return float(max(1.0, float(np.mean(result.iterations))))

    # -- shared helpers -----------------------------------------------------------

    def _initial_residual(
        self, b: np.ndarray, x: np.ndarray, ledger: TrafficLedger
    ) -> np.ndarray:
        """``r = b - A x`` (skips the SpMV for an all-zero initial guess)."""
        if not x.any():
            return b.copy()
        r = self.matrix.apply(x, ledger=ledger, x_name="x", y_name="r")
        np.subtract(b, r, out=r)
        ledger.tally_axpy(b.shape[0], b.shape[1], "b", "r")
        return r

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(matrix={self.matrix!r}, "
            f"preconditioner={self.preconditioner.preconditioner_name!r})"
        )
