"""BatchDirect: batched dense LU baseline.

The paper positions batched *iterative* solvers against batched *direct*
methods (Sections 1-2): direct solvers restart from a full factorization
for every system and cannot exploit initial guesses or relaxed accuracy.
This baseline solves every batch item exactly with the from-scratch
batched dense LU of :mod:`repro.core.blas3` (partial pivoting, batch-
vectorized), densifying sparse inputs — which is precisely the
fill-in/memory behaviour that makes direct methods unattractive in the
batched setting.

It reports one "iteration" per system and an exact (round-off level)
residual, so it plugs into the same result type and harness as the
iterative solvers; for the hardware timing model it exposes its true
critical path — three dependent stages per elimination column (pivot
search, row swap, rank-1 update) — via :meth:`model_stages`.
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.blas3 import batched_lu_factor, batched_lu_solve
from repro.core.counters import TrafficLedger
from repro.core.solver.base import BatchIterativeSolver, ConvergenceTracker


class BatchDirect(BatchIterativeSolver):
    """Dense batched LU solve of every system (the direct baseline)."""

    solver_name = "direct"

    def workspace_vectors(self) -> list[tuple[str, int]]:
        n = self.matrix.num_rows
        # A dense factorization needs the full n^2 factor plus the solution:
        # the workspace-pressure argument against batched direct methods.
        return [("LU", n * n), ("x", n)]

    def model_stages(self, result) -> float:
        # per elimination column: pivot-search reduction, row swap,
        # rank-1 update — three synchronization-separated stages
        return 3.0 * self.matrix.num_rows

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        n = self.matrix.num_rows
        nb = b.shape[0]
        res_norms = blas.norm2(self._initial_residual(b, x, ledger), ledger, "r")
        tracker.start(res_norms)

        dense = self.matrix.to_batch_dense()
        lu, piv = batched_lu_factor(dense)  # raises SingularMatrixError
        x[...] = batched_lu_solve(lu, piv, np.asarray(b, dtype=np.float64))

        # LU cost ~ 2/3 n^3 per system plus two triangular solves.
        ledger.add_flops(nb * (2.0 / 3.0 * n**3 + 2.0 * n**2))
        ledger.add_bytes("LU", 2.0 * ledger.fp_bytes * nb * n * n)
        ledger.add_bytes("x", 2.0 * ledger.fp_bytes * nb * n)
        ledger.add_call("lu", nb)

        r = self.matrix.apply(x, ledger=ledger, x_name="x", y_name="r")
        np.subtract(b, r, out=r)
        res_norms = blas.norm2(r, ledger, "r")
        tracker.update(1, res_norms, np.ones(nb, dtype=bool))
