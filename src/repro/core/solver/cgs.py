"""BatchCgs: batched conjugate gradient squared.

An extension beyond the paper's Table 3 (Ginkgo's batched roadmap —
Section 5 — grows the solver set over time): CGS is the transpose-free
sibling of BiCGSTAB with the same building blocks (two SpMV, a handful of
dots/axpys per iteration), so it drops into the same fused-kernel design,
workspace planner and dispatch machinery. Right-preconditioned, per-system
masked like the other solvers.
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.core.solver.base import (
    BatchIterativeSolver,
    ConvergenceTracker,
    guarded_divide,
)


class BatchCgs(BatchIterativeSolver):
    """Preconditioned CGS over a batch of general systems."""

    solver_name = "cgs"

    def workspace_vectors(self) -> list[tuple[str, int]]:
        n = self.matrix.num_rows
        return [
            ("r", n),
            ("u", n),
            ("p", n),
            ("q", n),
            ("v", n),
            ("t", n),
            ("r_hat", n),
            ("x", n),
            ("A_cache", self.matrix.nnz_per_item),
        ]

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        matrix = self.matrix
        precond = self.preconditioner
        nb = b.shape[0]

        r = self._initial_residual(b, x, ledger)
        r_hat = r.copy()
        ledger.tally_copy(*b.shape, "r", "r_hat")

        u = np.zeros_like(b)
        p = np.zeros_like(b)
        q = np.zeros_like(b)
        v = np.empty_like(b)
        t = np.empty_like(b)
        hat = np.empty_like(b)
        rho_old = np.ones(nb)

        res_norms = blas.norm2(r, ledger, "r")
        tracker.start(res_norms)

        for iteration in range(1, self.settings.max_iterations + 1):
            active = tracker.active
            if not active.any():
                break

            rho = blas.dot(r_hat, r, ledger, ("r_hat", "r"))
            if iteration == 1:
                blas.copy(r, u, ledger, ("r", "u"))
                blas.copy(r, p, ledger, ("r", "p"))
            else:
                beta, breakdown = guarded_divide(rho, rho_old, active)
                if breakdown.any():
                    tracker.freeze(breakdown)
                    active = active & ~breakdown
                # u = r + beta q ; p = u + beta (q + beta p)
                blas.copy(r, u, ledger, ("r", "u"))
                blas.axpy(beta, q, u, ledger, ("q", "u"))
                blas.axpby(1.0, q, beta, p, ledger, ("q", "p"))
                blas.axpby(1.0, u, beta, p, ledger, ("u", "p"))

            # v = A M p ; alpha = rho / (r_hat . v)
            precond.apply(p, out=hat, ledger=ledger)
            matrix.apply(hat, out=v, ledger=ledger, x_name="p_hat", y_name="v")
            sigma = blas.dot(r_hat, v, ledger, ("r_hat", "v"))
            alpha, breakdown = guarded_divide(rho, sigma, active)
            if breakdown.any():
                tracker.freeze(breakdown)
                active = active & ~breakdown

            # q = u - alpha v ; correction direction u + q
            blas.copy(u, q, ledger, ("u", "q"))
            blas.axpy(-alpha, v, q, ledger, ("v", "q"))
            np.add(u, q, out=t)
            ledger.tally_axpy(nb, b.shape[1], "u", "q")

            # x += alpha M (u + q) ; r -= alpha A M (u + q)
            precond.apply(t, out=hat, ledger=ledger)
            blas.axpy(alpha, hat, x, ledger, ("uq_hat", "x"))
            matrix.apply(hat, out=t, ledger=ledger, x_name="uq_hat", y_name="t")
            blas.axpy(-alpha, t, r, ledger, ("t", "r"))

            res_norms = blas.norm2(r, ledger, "r")
            tracker.update(iteration, res_norms, active)
            rho_old = np.where(active, rho, rho_old)
