"""BatchBicgstab: batched preconditioned BiCGSTAB.

The workhorse solver of the paper's evaluation: the PeleLM chemistry
Jacobians are non-SPD, so only BiCGSTAB (not CG) is applicable
(Section 4.3). Right-preconditioned BiCGSTAB in the Ginkgo formulation:
the preconditioner is applied to the search directions (``p_hat``,
``s_hat``) so the recurrence works on the true residual.
"""

from __future__ import annotations

import numpy as np

from repro.core import blas
from repro.core.counters import TrafficLedger
from repro.core.solver.base import (
    BatchIterativeSolver,
    ConvergenceTracker,
    guarded_divide,
)


class BatchBicgstab(BatchIterativeSolver):
    """Preconditioned BiCGSTAB over a batch of general systems."""

    solver_name = "bicgstab"

    def workspace_vectors(self) -> list[tuple[str, int]]:
        # Priority by usage frequency and size, analogous to the BatchCg
        # ordering of Section 3.5: the residual pair and search vectors
        # first, the shadow residual and x copy last.
        n = self.matrix.num_rows
        return [
            ("r", n),
            ("p", n),
            ("v", n),
            ("s", n),
            ("t", n),
            ("p_hat", n),
            ("s_hat", n),
            ("r_hat", n),
            ("x", n),
            ("A_cache", self.matrix.nnz_per_item),
        ]

    def _iterate(
        self,
        b: np.ndarray,
        x: np.ndarray,
        tracker: ConvergenceTracker,
        ledger: TrafficLedger,
    ) -> None:
        matrix = self.matrix
        precond = self.preconditioner
        nb = b.shape[0]

        r = self._initial_residual(b, x, ledger)
        r_hat = r.copy()
        ledger.tally_copy(*b.shape, "r", "r_hat")

        rho_old = np.ones(nb)
        alpha = np.ones(nb)
        omega = np.ones(nb)
        p = np.zeros_like(b)
        v = np.zeros_like(b)
        p_hat = np.empty_like(b)
        s = np.empty_like(b)
        s_hat = np.empty_like(b)
        t = np.empty_like(b)

        res_norms = blas.norm2(r, ledger, "r")
        tracker.start(res_norms)

        for iteration in range(1, self.settings.max_iterations + 1):
            active = tracker.active
            if not active.any():
                break

            # rho = (r_hat . r); beta = (rho/rho_old)(alpha/omega)
            rho = blas.dot(r_hat, r, ledger, ("r_hat", "r"))
            ratio, breakdown = guarded_divide(rho, rho_old, active)
            alpha_over_omega, brk2 = guarded_divide(alpha, omega, active)
            breakdown |= brk2
            beta = ratio * alpha_over_omega
            beta = np.where(active, beta, 0.0)

            # p = r + beta (p - omega v)
            blas.axpy(-omega, v, p, ledger, ("v", "p"))
            blas.axpby(1.0, r, beta, p, ledger, ("r", "p"))

            # p_hat = M p ; v = A p_hat
            precond.apply(p, out=p_hat, ledger=ledger)
            matrix.apply(p_hat, out=v, ledger=ledger, x_name="p_hat", y_name="v")

            # alpha = rho / (r_hat . v)
            rv = blas.dot(r_hat, v, ledger, ("r_hat", "v"))
            alpha, brk3 = guarded_divide(rho, rv, active)
            breakdown |= brk3

            # s = r - alpha v
            blas.copy(r, s, ledger, ("r", "s"))
            blas.axpy(-alpha, v, s, ledger, ("v", "s"))

            # s_hat = M s ; t = A s_hat
            precond.apply(s, out=s_hat, ledger=ledger)
            matrix.apply(s_hat, out=t, ledger=ledger, x_name="s_hat", y_name="t")

            # omega = (t . s) / (t . t)
            ts = blas.dot(t, s, ledger, ("t", "s"))
            tt = blas.dot(t, t, ledger, ("t", "t"))
            omega, brk4 = guarded_divide(ts, tt, active)
            breakdown |= brk4

            # x += alpha p_hat + omega s_hat ; r = s - omega t
            blas.axpy(alpha, p_hat, x, ledger, ("p_hat", "x"))
            blas.axpy(omega, s_hat, x, ledger, ("s_hat", "x"))
            blas.copy(s, r, ledger, ("s", "r"))
            blas.axpy(-omega, t, r, ledger, ("t", "r"))

            res_norms = blas.norm2(r, ledger, "r")
            tracker.update(iteration, res_norms, active)
            if breakdown.any():
                # A vanished denominator usually means the residual already
                # collapsed; only freeze systems that are still above their
                # threshold after this iteration's update.
                tracker.freeze(breakdown & tracker.active)

            rho_old = np.where(active, rho, rho_old)
